"""Unit tests for the hidden shift algorithm."""

import pytest

from repro.boolean.bent import HiddenShiftInstance, MaioranaMcFarland
from repro.boolean.permutation import BitPermutation
from repro.boolean.spectral import find_shift_classically
from repro.boolean.truth_table import TruthTable
from repro.algorithms.hidden_shift import (
    deterministic_success_sweep,
    hidden_shift_circuit,
    phase_oracle_circuit,
    solve_hidden_shift,
)
from repro.synthesis.transformation import (
    bidirectional_synthesis,
    transformation_based_synthesis,
)


@pytest.fixture
def paper_instance(paper_pi):
    """Fig. 7's instance: MM with pi = [0,2,3,5,7,1,4,6], h = 0, s = 5."""
    return HiddenShiftInstance(
        MaioranaMcFarland(paper_pi, TruthTable(3)), 5
    )


class TestCircuitConstruction:
    def test_structure_queries(self, paper_instance):
        built = hidden_shift_circuit(paper_instance)
        assert built.g_queries == 1
        assert built.dual_queries == 1

    def test_three_hadamard_layers(self, paper_instance):
        built = hidden_shift_circuit(paper_instance)
        h_count = built.circuit.count_ops()["h"]
        assert h_count >= 3 * paper_instance.num_vars

    def test_all_qubits_measured(self, paper_instance):
        built = hidden_shift_circuit(paper_instance)
        measured = {
            g.targets[0] for g in built.circuit.gates if g.is_measurement
        }
        assert measured == set(range(paper_instance.num_vars))

    def test_unknown_method_rejected(self, paper_instance):
        with pytest.raises(ValueError):
            hidden_shift_circuit(paper_instance, method="quantum-magic")


class TestSolving:
    @pytest.mark.parametrize("method", ["truth_table", "mm"])
    def test_paper_instance(self, paper_instance, method):
        result = solve_hidden_shift(paper_instance, method=method)
        assert result.success
        assert result.measured_shift == 5
        assert result.probability == pytest.approx(1.0)

    @pytest.mark.parametrize("method", ["truth_table", "mm"])
    def test_random_instances_deterministic(self, method):
        results = deterministic_success_sweep(
            2, trials=12, seed=7, method=method
        )
        assert all(r.success for r in results)
        assert all(
            r.probability == pytest.approx(1.0) for r in results
        )

    def test_nonzero_h_function(self):
        """The general MM case with h != 0 (beyond the paper's h = 0)."""
        mm = MaioranaMcFarland(
            BitPermutation([2, 0, 3, 1]), TruthTable(2, 0b1001)
        )
        for shift in (0, 3, 9, 15):
            instance = HiddenShiftInstance(mm, shift)
            for method in ("truth_table", "mm"):
                result = solve_hidden_shift(instance, method=method)
                assert result.success, (shift, method)

    def test_zero_shift(self):
        mm = MaioranaMcFarland.inner_product(2)
        result = solve_hidden_shift(HiddenShiftInstance(mm, 0))
        assert result.measured_shift == 0

    def test_custom_synthesis_functions(self, paper_instance):
        result = solve_hidden_shift(
            paper_instance,
            method="mm",
            synth=bidirectional_synthesis,
            inverse_synth=transformation_based_synthesis,
        )
        assert result.success

    def test_agrees_with_classical_correlation(self):
        """Quantum result == classical exhaustive correlation."""
        instance = HiddenShiftInstance.random(2, seed=31)
        quantum = solve_hidden_shift(instance).measured_shift
        classical = find_shift_classically(
            instance.f_table(), instance.g_table()
        )
        assert quantum == classical == instance.shift


class TestPhaseOracleHelper:
    def test_wires_subset(self):
        table = TruthTable.from_function(2, lambda a, b: a and b)
        circ = phase_oracle_circuit(table, 4, wires=[1, 3])
        touched = {q for g in circ.gates for q in g.qubits}
        assert touched <= {1, 3}

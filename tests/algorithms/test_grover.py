"""Unit tests for Grover search."""

import pytest

from repro.algorithms.grover import (
    diffusion_circuit,
    grover_circuit,
    optimal_iterations,
    solve_grover,
)
from repro.boolean.truth_table import TruthTable
from repro.core.unitary import circuit_unitary

import numpy as np


class TestDiffusion:
    def test_unitary_form(self):
        """Diffusion = 2|s><s| - I up to global phase."""
        n = 3
        unitary = circuit_unitary(diffusion_circuit(n))
        dim = 1 << n
        s = np.full((dim, 1), 1 / np.sqrt(dim))
        expected = 2 * (s @ s.T) - np.eye(dim)
        ratio = unitary[0, 0] / expected[0, 0]
        assert np.allclose(unitary, ratio * expected, atol=1e-9)


class TestIterations:
    def test_quarter_pi_scaling(self):
        # floor(pi/4 sqrt(2^n / M))
        assert optimal_iterations(4, 1) == 3
        assert optimal_iterations(2, 1) == 1
        assert optimal_iterations(8, 1) == 12

    def test_multiple_solutions_fewer_iterations(self):
        assert optimal_iterations(6, 4) <= optimal_iterations(6, 1)

    def test_zero_solutions_rejected(self):
        with pytest.raises(ValueError):
            optimal_iterations(3, 0)


class TestSolve:
    def test_unique_marked_item(self):
        result = solve_grover(
            lambda a, b, c, d: a and b and c and d, seed=1
        )
        assert result.measured == 0b1111
        assert result.is_solution
        assert result.success_probability > 0.9

    def test_predicate_with_negations(self):
        result = solve_grover(
            lambda a, b, c: a and not b and not c, seed=1
        )
        assert result.measured == 0b001
        assert result.success_probability > 0.9

    def test_truth_table_input(self):
        table = TruthTable(3)
        table.bits |= 1 << 6
        result = solve_grover(table, seed=1)
        assert result.measured == 6

    def test_multiple_solutions(self):
        table = TruthTable.from_function(4, lambda a, b, c, d: a and b and c)
        result = solve_grover(table, seed=0)
        assert result.is_solution
        assert result.success_probability > 0.8

    def test_unsatisfiable_rejected(self):
        with pytest.raises(ValueError):
            solve_grover(TruthTable(3))

    def test_explicit_iteration_count(self):
        table = TruthTable(3)
        table.bits |= 1 << 2
        over_rotated = solve_grover(table, iterations=4, seed=1)
        optimal = solve_grover(table, iterations=2, seed=1)
        assert optimal.success_probability >= over_rotated.success_probability

    def test_circuit_iteration_structure(self):
        table = TruthTable(3)
        table.bits |= 1
        circ = grover_circuit(table, iterations=2)
        # two diffusion blocks -> at least 2 ccz/mcz gates
        ops = circ.count_ops()
        assert ops.get("ccz", 0) + ops.get("mcz", 0) >= 2

"""Unit tests for Simon's algorithm."""

import pytest

from repro.algorithms.simon import (
    SimonInstance,
    simon_circuit,
    solve_simon,
)


class TestInstance:
    @pytest.mark.parametrize("seed", range(6))
    def test_promise_holds(self, seed):
        instance = SimonInstance.random(3, seed=seed)
        assert instance.verify_promise()
        assert instance.secret != 0

    def test_two_to_one(self):
        instance = SimonInstance.random(3, seed=1)
        image = instance.function.image()
        from collections import Counter

        counts = Counter(image)
        assert all(count == 2 for count in counts.values())

    def test_reproducible(self):
        a = SimonInstance.random(3, seed=5)
        b = SimonInstance.random(3, seed=5)
        assert a.secret == b.secret
        assert a.function.image() == b.function.image()


class TestCircuit:
    def test_layout(self):
        instance = SimonInstance.random(3, seed=2)
        circuit = simon_circuit(instance)
        # n input qubits + n output lines from the Bennett oracle
        assert circuit.num_qubits == 6
        measured = {g.targets[0] for g in circuit.gates if g.is_measurement}
        assert measured == {0, 1, 2}

    def test_oracle_uses_xor_style_gates(self):
        instance = SimonInstance.random(2, seed=3)
        circuit = simon_circuit(instance)
        names = set(circuit.count_ops())
        assert names <= {"h", "x", "cx", "ccx", "mcx", "measure"}


class TestSolve:
    @pytest.mark.parametrize("seed", range(8))
    def test_recovers_secret_n3(self, seed):
        instance = SimonInstance.random(3, seed=seed)
        result = solve_simon(instance, seed=seed)
        assert result.success
        assert result.recovered == instance.secret

    def test_recovers_secret_n4(self):
        instance = SimonInstance.random(4, seed=11)
        result = solve_simon(instance, seed=4)
        assert result.success

    def test_sampled_equations_orthogonal_to_secret(self):
        instance = SimonInstance.random(3, seed=7)
        result = solve_simon(instance, seed=7)
        for equation in result.equations:
            assert bin(equation & instance.secret).count("1") % 2 == 0

    def test_query_count_linear_not_exponential(self):
        """O(n) queries suffice (vs 2^(n/2) classically)."""
        instance = SimonInstance.random(4, seed=2)
        result = solve_simon(instance, seed=2)
        assert result.success
        assert result.quantum_queries <= 20

"""Unit tests for Deutsch–Jozsa."""

import random

import pytest

from repro.algorithms.deutsch_jozsa import (
    deutsch_jozsa_circuit,
    solve_deutsch_jozsa,
)
from repro.boolean.truth_table import TruthTable


class TestDeutschJozsa:
    def test_constant_functions(self):
        for value in (False, True):
            table = TruthTable.constant(3, value)
            assert solve_deutsch_jozsa(table).verdict == "constant"

    def test_balanced_projection(self):
        table = TruthTable.projection(3, 1)
        assert solve_deutsch_jozsa(table).verdict == "balanced"

    def test_balanced_parity(self):
        table = TruthTable.from_function(4, lambda a, b, c, d: a ^ b ^ c ^ d)
        assert solve_deutsch_jozsa(table).verdict == "balanced"

    @pytest.mark.parametrize("seed", range(8))
    def test_random_balanced_functions(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 4)
        # random balanced function: shuffle half ones
        positions = list(range(1 << n))
        rng.shuffle(positions)
        table = TruthTable(n)
        for x in positions[: (1 << n) // 2]:
            table.bits |= 1 << x
        assert solve_deutsch_jozsa(table).verdict == "balanced"

    def test_promise_violation_rejected(self):
        table = TruthTable(2, 0b0001)  # 1 one of 4: neither
        with pytest.raises(ValueError):
            solve_deutsch_jozsa(table)

    def test_single_query(self):
        """The circuit contains exactly one oracle block: gate count of
        the oracle equals the ESOP gates, no repetition."""
        from repro.boolean.esop import minimize_esop

        table = TruthTable.projection(3, 0)
        circuit = deutsch_jozsa_circuit(table)
        non_oracle = 3 + 3 + 3  # H layers + measures
        cubes = minimize_esop(table)
        assert len(circuit) <= non_oracle + 4 * len(cubes)

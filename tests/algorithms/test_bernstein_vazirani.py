"""Unit tests for Bernstein–Vazirani."""

import pytest

from repro.algorithms.bernstein_vazirani import (
    bernstein_vazirani_circuit,
    linear_function,
    solve_bernstein_vazirani,
)
from repro.boolean.esop import minimize_esop


class TestLinearFunction:
    def test_values(self):
        table = linear_function(3, 0b101)
        assert table(0b001) == 1
        assert table(0b101) == 0
        assert table(0b011) == 1

    def test_offset(self):
        plain = linear_function(2, 0b01, 0)
        offset = linear_function(2, 0b01, 1)
        assert plain == ~offset

    def test_esop_is_z_layer(self):
        """A linear function minimizes to single-literal cubes."""
        cubes = minimize_esop(linear_function(4, 0b1011))
        assert len(cubes) == 3
        assert all(c.num_literals() == 1 for c in cubes)


class TestSolve:
    @pytest.mark.parametrize("a", [0, 1, 0b101, 0b111, 0b1101, 0b11111])
    def test_recovers_mask(self, a):
        n = max(a.bit_length(), 1) if a else 3
        n = max(n, 3)
        result = solve_bernstein_vazirani(n, a)
        assert result.success
        assert result.recovered == a

    def test_offset_does_not_affect_answer(self):
        for b in (0, 1):
            result = solve_bernstein_vazirani(4, 0b1010, b=b)
            assert result.recovered == 0b1010

    def test_single_oracle_query(self):
        circuit = bernstein_vazirani_circuit(linear_function(5, 0b10101))
        # oracle = 3 Z gates; everything else is 2 H layers + measures
        assert circuit.count_ops().get("z", 0) == 3

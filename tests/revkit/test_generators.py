"""Unit tests for the revgen benchmark generators."""

import pytest

from repro.boolean.spectral import is_bent
from repro.revkit import generators


class TestGenerators:
    def test_hwb(self):
        perm = generators.hwb(4)
        assert perm.num_bits == 4
        assert perm(0) == 0

    def test_random_permutation_seeded(self):
        assert generators.random_permutation(3, seed=2) == \
            generators.random_permutation(3, seed=2)

    def test_modular_adder(self):
        perm = generators.modular_adder(3, 3)
        for x in range(8):
            assert perm(x) == (x + 3) % 8

    def test_modular_adder_is_cyclic(self):
        perm = generators.modular_adder(3, 1)
        cycles = perm.cycles()
        assert len(cycles) == 1
        assert len(cycles[0]) == 8

    def test_bit_rotation(self):
        perm = generators.bit_rotation(4, 1)
        assert perm(0b0001) == 0b0010
        assert perm(0b1000) == 0b0001

    def test_bit_rotation_composes_to_identity(self):
        perm = generators.bit_rotation(4, 1)
        result = perm
        for _ in range(3):
            result = result.compose(perm)
        assert result.is_identity()

    def test_gray_code(self):
        perm = generators.gray_code(3)
        for x in range(8):
            assert perm(x) == x ^ (x >> 1)

    def test_inner_product_bent(self):
        assert is_bent(generators.inner_product_bent(2))

    def test_maiorana_mcfarland_bent(self):
        assert is_bent(generators.maiorana_mcfarland(2, seed=3))

    def test_random_function_seeded(self):
        assert generators.random_function(4, seed=1) == \
            generators.random_function(4, seed=1)

"""Unit tests for the RevKit command shell."""

import pytest

from repro.revkit import RevKitShell, ShellError


class TestCommandParsing:
    def test_eq5_pipeline_runs(self):
        """The paper's Eq. (5) script must run end to end."""
        shell = RevKitShell()
        outputs = shell.run("revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c")
        assert len(outputs) == 6
        assert "generated" in outputs[0]
        assert "gates" in outputs[1]
        assert "T:" in outputs[4]
        assert "qubits:" in outputs[5]

    def test_unknown_command(self):
        with pytest.raises(ShellError):
            RevKitShell().execute("frobnicate")

    def test_empty_segments_skipped(self):
        outputs = RevKitShell().run("revgen --hwb 3;; tbs;")
        assert len(outputs) == 2

    def test_log_accumulates(self):
        shell = RevKitShell()
        shell.run("revgen --hwb 3; tbs")
        assert len(shell.log) == 2


class TestCommands:
    def test_revgen_variants(self):
        for option in (
            "--hwb 3",
            "--random 3 --seed 7",
            "--adder 3 --const 2",
            "--rotate 3",
            "--gray 3",
        ):
            shell = RevKitShell()
            shell.execute(f"revgen {option}")
            assert shell.function is not None

    def test_revgen_without_option_rejected(self):
        with pytest.raises(ShellError):
            RevKitShell().execute("revgen")

    def test_synthesis_requires_function(self):
        with pytest.raises(ShellError):
            RevKitShell().execute("tbs")

    def test_tbs_and_simulate(self):
        shell = RevKitShell()
        shell.run("revgen --random 3 --seed 5; tbs")
        assert "matches specification: True" in shell.execute("simulate")

    def test_dbs_and_simulate(self):
        shell = RevKitShell()
        shell.run("revgen --random 3 --seed 5; dbs")
        assert "matches specification: True" in shell.execute("simulate")

    def test_exact_synthesis_command(self):
        shell = RevKitShell()
        shell.run("revgen --random 3 --seed 1; exs")
        assert "optimal" in shell.log[-1]
        assert "matches specification: True" in shell.execute("simulate")

    def test_esopbs_needs_truth_table(self):
        shell = RevKitShell()
        shell.execute("revgen --hwb 3")
        with pytest.raises(ShellError):
            shell.execute("esopbs")

    def test_esopbs_on_bent_function(self):
        shell = RevKitShell()
        shell.run("revgen --bent 2; esopbs")
        assert shell.reversible is not None
        assert shell.reversible.num_lines == 5

    def test_rptm_requires_reversible(self):
        with pytest.raises(ShellError):
            RevKitShell().execute("rptm")

    def test_tpar_requires_quantum(self):
        shell = RevKitShell()
        shell.run("revgen --hwb 3; tbs")
        with pytest.raises(ShellError):
            shell.execute("tpar")

    def test_tpar_never_increases_t(self):
        shell = RevKitShell()
        shell.run("revgen --hwb 4; tbs; revsimp; rptm")
        before = shell.quantum.t_count()
        shell.execute("tpar")
        assert shell.quantum.t_count() <= before

    def test_rptm_no_relative_phase_costs_more(self):
        shell_a = RevKitShell()
        shell_a.run("revgen --hwb 4; tbs; rptm")
        shell_b = RevKitShell()
        shell_b.run("revgen --hwb 4; tbs; rptm --no-relative-phase")
        assert shell_a.quantum.t_count() < shell_b.quantum.t_count()

    def test_ps_function_info(self):
        shell = RevKitShell()
        shell.execute("revgen --hwb 3")
        assert "permutation on 3 bits" in shell.execute("ps")

    def test_ps_circuit_reversible_stats(self):
        shell = RevKitShell()
        shell.run("revgen --hwb 3; tbs")
        assert "quantum-cost" in shell.execute("ps -c")

    def test_backends_lists_every_builtin(self):
        from repro.simulator import backends

        out = RevKitShell().execute("backends")
        for name in ("numpy", "numba", "numba_parallel"):
            assert name in out
        assert "aka np/default" in out
        if backends.NumbaParallelBackend.available():
            assert "unavailable" not in out.split("numba_parallel")[1]
        else:
            assert "pip install numba" in out

    def test_backends_python_method_mirrors_command(self):
        shell = RevKitShell()
        assert shell.backends() == shell.execute("backends")

    def test_ps_empty_store_rejected(self):
        with pytest.raises(ShellError):
            RevKitShell().execute("ps")

    def test_write_qasm(self, tmp_path):
        shell = RevKitShell()
        shell.run("revgen --hwb 3; tbs; rptm")
        path = tmp_path / "out.qasm"
        output = shell.execute(f"write_qasm {path}")
        text = path.read_text()
        assert text.startswith("OPENQASM 2.0;")
        assert output == (
            f"wrote {len(text.splitlines())} lines to {path}"
        )

    @pytest.mark.parametrize(
        "command, marker",
        [
            ("write_qasm3", "OPENQASM 3.0;"),
            ("write_qsharp", "operation CompiledOperation"),
            ("write_projectq", "MainEngine()"),
            ("write_cirq", "cirq.Circuit"),
            ("write_qir", "__quantum__qis__"),
        ],
    )
    def test_write_every_registered_format(self, tmp_path, command, marker):
        shell = RevKitShell()
        shell.run("revgen --hwb 3; tbs; rptm")
        path = tmp_path / "out.txt"
        shell.execute(f"{command} {path}")
        assert marker in path.read_text()

    def test_write_unknown_format_lists_registered(self, tmp_path):
        shell = RevKitShell()
        shell.run("revgen --hwb 3; tbs; rptm")
        with pytest.raises(ShellError, match="unknown emission format"):
            shell.execute(f"write_verilog {tmp_path / 'x'}")

    def test_write_python_method(self, tmp_path):
        shell = RevKitShell()
        shell.run("revgen --hwb 3; tbs; rptm")
        path = tmp_path / "out.ll"
        shell.write("qir", str(path))
        assert "entry_point" in path.read_text()

    def test_python_api_mirror(self):
        shell = RevKitShell()
        shell.revgen(hwb=3)
        shell.tbs(bidirectional=True)
        shell.revsimp()
        shell.rptm()
        shell.tpar()
        result = shell.ps(circuit=True)
        assert "T:" in result

    def test_cancel_command(self):
        shell = RevKitShell()
        shell.run("revgen --hwb 3; tbs; rptm")
        before = len(shell.quantum)
        shell.execute("cancel")
        assert len(shell.quantum) <= before


class TestTemplateCommand:
    def test_templ_in_pipeline(self):
        shell = RevKitShell()
        shell.run("revgen --hwb 4; tbs; revsimp; templ")
        assert "matches specification: True" in shell.execute("simulate")

    def test_templ_never_grows(self):
        shell = RevKitShell()
        shell.run("revgen --random 4 --seed 3; tbs")
        before = len(shell.reversible)
        shell.execute("templ")
        assert len(shell.reversible) <= before

    def test_templ_requires_circuit(self):
        with pytest.raises(ShellError):
            RevKitShell().execute("templ")


class TestVerifyCommand:
    def test_verify_after_pipeline(self):
        shell = RevKitShell()
        shell.run("revgen --hwb 4; tbs; revsimp; rptm; tpar")
        assert shell.execute("verify") == "equivalent: True"

    def test_verify_detects_corruption(self):
        shell = RevKitShell()
        shell.run("revgen --hwb 3; tbs; rptm")
        shell.quantum.x(0)  # corrupt the mapped circuit
        assert "False" in shell.execute("verify")

    def test_verify_requires_both_stores(self):
        shell = RevKitShell()
        shell.run("revgen --hwb 3; tbs")
        with pytest.raises(ShellError):
            shell.execute("verify")

    def test_verify_after_dbs(self):
        shell = RevKitShell()
        shell.run("revgen --random 3 --seed 9; dbs; templ; rptm; cancel")
        assert shell.execute("verify") == "equivalent: True"

"""Unit tests for truth tables."""

import pytest

from repro.boolean.truth_table import MultiTruthTable, TruthTable


class TestConstruction:
    def test_from_function(self):
        table = TruthTable.from_function(2, lambda a, b: a and b)
        assert table.values() == [0, 0, 0, 1]

    def test_from_values(self):
        table = TruthTable.from_values([0, 1, 1, 0])
        assert table(1) == 1
        assert table(3) == 0

    def test_from_values_bad_length(self):
        with pytest.raises(ValueError):
            TruthTable.from_values([0, 1, 1])

    def test_hex_round_trip(self):
        table = TruthTable.from_function(4, lambda a, b, c, d: (a and b) ^ (c and d))
        assert TruthTable.from_hex(4, table.to_hex()) == table

    def test_constant(self):
        assert TruthTable.constant(3, True).count_ones() == 8
        assert TruthTable.constant(3, False).count_ones() == 0

    def test_projection(self):
        table = TruthTable.projection(3, 1)
        for x in range(8):
            assert table(x) == (x >> 1) & 1

    def test_inner_product(self):
        table = TruthTable.inner_product(2)
        # f(x, y) = x.y with x = bits 0..1, y = bits 2..3
        assert table(0b0101) == 1  # x=01, y=01
        assert table(0b0110) == 0  # x=10, y=01
        assert table(0b1111) == 0  # x=11, y=11 -> 1^1 = 0

    def test_size_guard(self):
        with pytest.raises(ValueError):
            TruthTable(25)


class TestQueries:
    def test_evaluate_assignment(self):
        table = TruthTable.from_function(3, lambda a, b, c: a and not b and c)
        assert table.evaluate([1, 0, 1]) == 1
        assert table.evaluate([1, 1, 1]) == 0

    def test_balanced(self):
        assert TruthTable.projection(3, 0).is_balanced()
        assert not TruthTable.constant(3, True).is_balanced()

    def test_support(self):
        table = TruthTable.from_function(3, lambda a, b, c: a ^ c)
        assert table.support() == [0, 2]

    def test_support_of_constant_empty(self):
        assert TruthTable.constant(3, True).support() == []


class TestAlgebra:
    def test_xor_and_or_not(self):
        a = TruthTable.projection(2, 0)
        b = TruthTable.projection(2, 1)
        assert (a ^ b).values() == [0, 1, 1, 0]
        assert (a & b).values() == [0, 0, 0, 1]
        assert (a | b).values() == [0, 1, 1, 1]
        assert (~a).values() == [1, 0, 1, 0]

    def test_incompatible_sizes(self):
        with pytest.raises(ValueError):
            TruthTable(2) ^ TruthTable(3)

    def test_cofactor(self):
        table = TruthTable.from_function(2, lambda a, b: a and b)
        positive = table.cofactor(0, 1)
        for x in range(4):
            assert positive(x) == ((x >> 1) & 1)

    def test_shift(self):
        table = TruthTable.from_function(2, lambda a, b: a and b)
        shifted = table.shift(0b01)
        for x in range(4):
            assert shifted(x) == table(x ^ 1)

    def test_shift_involution(self):
        table = TruthTable(4, 0xBEEF)
        assert table.shift(5).shift(5) == table

    def test_permute_vars(self):
        table = TruthTable.projection(3, 0)
        swapped = table.permute_vars([2, 1, 0])
        assert swapped == TruthTable.projection(3, 2)

    def test_permute_vars_invalid(self):
        with pytest.raises(ValueError):
            TruthTable(2).permute_vars([0, 0])

    def test_extend(self):
        table = TruthTable.from_function(2, lambda a, b: a ^ b)
        wide = table.extend(4)
        for x in range(16):
            assert wide(x) == table(x & 3)

    def test_extend_cannot_shrink(self):
        with pytest.raises(ValueError):
            TruthTable(3).extend(2)

    def test_hashable(self):
        a = TruthTable(2, 0b0110)
        b = TruthTable(2, 0b0110)
        assert len({a, b}) == 1


class TestMultiTruthTable:
    def test_from_function(self):
        tables = MultiTruthTable.from_function(2, 2, lambda x: (x + 1) % 4)
        assert tables(0) == 1
        assert tables(3) == 0

    def test_reversibility_check(self):
        adder = MultiTruthTable.from_function(2, 2, lambda x: (x + 1) % 4)
        assert adder.is_reversible()
        constant = MultiTruthTable.from_function(2, 2, lambda x: 0)
        assert not constant.is_reversible()

    def test_non_square_not_reversible(self):
        tables = MultiTruthTable.from_function(3, 2, lambda x: x & 3)
        assert not tables.is_reversible()

    def test_mismatched_outputs_rejected(self):
        with pytest.raises(ValueError):
            MultiTruthTable([TruthTable(2), TruthTable(3)])

    def test_image(self):
        tables = MultiTruthTable.from_function(2, 2, lambda x: x ^ 3)
        assert tables.image() == [3, 2, 1, 0]

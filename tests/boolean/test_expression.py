"""Unit tests for Python-predicate compilation (PhaseOracle input)."""

import pytest

from repro.boolean.expression import (
    ExpressionError,
    function_arity,
    predicate_to_truth_table,
)
from repro.boolean.truth_table import TruthTable


class TestArity:
    def test_plain_function(self):
        def f(a, b, c):
            return a

        assert function_arity(f) == 3

    def test_lambda(self):
        assert function_arity(lambda a, b: a and b) == 2


class TestSymbolicCompilation:
    def test_paper_predicate(self):
        def f(a, b, c, d):
            return (a and b) ^ (c and d)

        table = predicate_to_truth_table(f)
        expected = TruthTable.from_function(4, f)
        assert table == expected

    def test_boolean_operators(self):
        cases = [
            (lambda a, b: a and b, 2),
            (lambda a, b: a or b, 2),
            (lambda a: not a, 1),
            (lambda a, b: a ^ b, 2),
            (lambda a, b: a & b, 2),
            (lambda a, b: a | b, 2),
            (lambda a: ~a, 1),
            (lambda a, b: a == b, 2),
            (lambda a, b: a != b, 2),
            (lambda a, b, c: b if a else c, 3),
        ]
        for func, arity in cases:
            table = predicate_to_truth_table(func, arity)
            # reference: plain tabulation with bool coercion
            reference = TruthTable(arity)
            for x in range(1 << arity):
                args = [bool((x >> i) & 1) for i in range(arity)]
                value = func(*args)
                if isinstance(value, int) and not isinstance(value, bool):
                    value = value & 1
                if value:
                    reference.bits |= 1 << x
            assert table == reference

    def test_constants(self):
        assert predicate_to_truth_table(lambda a: True, 1) == TruthTable.constant(1, True)
        assert predicate_to_truth_table(lambda a: 0, 1) == TruthTable.constant(1, False)

    def test_nested_expression(self):
        def f(a, b, c, d, e, g):
            return (a and b) ^ (c and d) ^ (e and g)

        table = predicate_to_truth_table(f)
        assert table == TruthTable.inner_product(3).permute_vars(
            [0, 3, 1, 4, 2, 5]
        )


class TestFallback:
    def test_arithmetic_predicate_falls_back(self):
        def f(a, b):
            return (int(a) + int(b)) % 2 == 1

        table = predicate_to_truth_table(f)
        assert table == TruthTable.from_function(2, lambda a, b: a ^ b)

    def test_builtin_not_symbolic(self):
        # builtins have no retrievable source: brute force path
        table = predicate_to_truth_table(bool, 1)
        assert table == TruthTable.projection(1, 0)


class TestVariableOrdering:
    def test_first_arg_is_lsb(self):
        table = predicate_to_truth_table(lambda a, b: a, 2)
        assert table == TruthTable.projection(2, 0)
        table = predicate_to_truth_table(lambda a, b: b, 2)
        assert table == TruthTable.projection(2, 1)

"""Unit tests for Walsh–Hadamard spectral analysis."""

import random

import numpy as np
import pytest

from repro.boolean.spectral import (
    correlation,
    dual_bent,
    find_shift_classically,
    fwht,
    is_bent,
    linear_structure,
    nonlinearity,
    walsh_spectrum,
)
from repro.boolean.truth_table import TruthTable


class TestTransform:
    def test_fwht_involution_up_to_scale(self):
        rng = random.Random(0)
        vec = np.array([rng.randint(-5, 5) for _ in range(16)])
        assert np.array_equal(fwht(fwht(vec)), 16 * vec)

    def test_spectrum_of_constant(self):
        spectrum = walsh_spectrum(TruthTable.constant(3, False))
        assert spectrum[0] == 8
        assert np.all(spectrum[1:] == 0)

    def test_spectrum_of_linear_function(self):
        # f = x0 ^ x1 concentrates at w = 0b11
        table = TruthTable.from_function(2, lambda a, b: a ^ b)
        spectrum = walsh_spectrum(table)
        # f(x) equals w.x at w = 0b11, so the exponent vanishes: +4
        assert spectrum[0b11] == 4
        assert sum(abs(int(v)) for v in spectrum) == 4

    def test_parseval(self):
        rng = random.Random(2)
        for _ in range(10):
            table = TruthTable(4, rng.getrandbits(16))
            spectrum = walsh_spectrum(table)
            assert int(np.sum(spectrum.astype(object) ** 2)) == 16 * 16


class TestBentness:
    def test_inner_product_is_bent(self):
        for half in (1, 2, 3):
            assert is_bent(TruthTable.inner_product(half))

    def test_linear_function_not_bent(self):
        assert not is_bent(TruthTable.projection(4, 0))

    def test_odd_arity_never_bent(self):
        assert not is_bent(TruthTable(3, 0b10010110))

    def test_bent_functions_are_maximally_nonlinear(self):
        table = TruthTable.inner_product(2)
        # bound: 2^{n-1} - 2^{n/2-1} = 8 - 2 = 6 for n = 4
        assert nonlinearity(table) == 6

    def test_shifted_bent_still_bent(self):
        table = TruthTable.inner_product(2)
        for shift in range(16):
            assert is_bent(table.shift(shift))


class TestDual:
    def test_ip_self_dual(self):
        table = TruthTable.inner_product(2)
        assert dual_bent(table) == table

    def test_dual_involution(self):
        from repro.boolean.bent import MaioranaMcFarland

        mm = MaioranaMcFarland.random(2, seed=7)
        table = mm.truth_table()
        assert dual_bent(dual_bent(table)) == table

    def test_dual_requires_bent(self):
        with pytest.raises(ValueError):
            dual_bent(TruthTable.projection(4, 0))

    def test_dual_spectrum_signs(self):
        table = TruthTable.inner_product(2)
        dual = dual_bent(table)
        spectrum = walsh_spectrum(table)
        for w in range(16):
            expected = 4 if dual(w) == 0 else -4
            assert spectrum[w] == expected


class TestCorrelationAndShiftRecovery:
    def test_correlation_peak_at_shift(self):
        table = TruthTable.inner_product(2)
        shifted = table.shift(9)
        corr = correlation(table, shifted)
        assert abs(int(corr[9])) == 16

    def test_find_shift(self):
        rng = random.Random(5)
        table = TruthTable.inner_product(2)
        for _ in range(10):
            s = rng.randrange(16)
            assert find_shift_classically(table, table.shift(s)) == s

    def test_find_shift_rejects_unrelated(self):
        f = TruthTable.inner_product(2)
        g = TruthTable(4, 0x1234)
        assert find_shift_classically(f, g) is None

    def test_bent_has_trivial_linear_structure(self):
        assert linear_structure(TruthTable.inner_product(2)) == [0]

    def test_linear_function_has_full_linear_structure(self):
        table = TruthTable.projection(2, 0)
        assert len(linear_structure(table)) == 4


class TestAutocorrelation:
    def test_bent_is_perfectly_nonlinear(self):
        from repro.boolean.spectral import (
            autocorrelation,
            is_perfectly_nonlinear,
        )

        table = TruthTable.inner_product(2)
        assert is_perfectly_nonlinear(table)
        r = autocorrelation(table)
        assert r[0] == 16
        assert all(int(v) == 0 for v in r[1:])

    def test_linear_function_maximal_autocorrelation(self):
        from repro.boolean.spectral import autocorrelation

        table = TruthTable.projection(3, 0)
        r = autocorrelation(table)
        # f(x ^ a) + f(x) is constant for every a: |r| = 2^n everywhere
        assert all(abs(int(v)) == 8 for v in r)

    def test_pn_equals_bent_on_random_functions(self):
        import random

        from repro.boolean.spectral import is_perfectly_nonlinear

        rng = random.Random(4)
        agree = 0
        for _ in range(30):
            table = TruthTable(4, rng.getrandbits(16))
            assert is_perfectly_nonlinear(table) == is_bent(table)
            agree += 1
        assert agree == 30

    def test_autocorrelation_origin_is_size(self):
        from repro.boolean.spectral import autocorrelation

        table = TruthTable(3, 0b10110100)
        assert autocorrelation(table)[0] == 8

"""Unit tests for XAG networks and k-LUT mapping."""

import random

import pytest

from repro.boolean.esop import minimize_esop
from repro.boolean.network import LogicNetwork, lut_map
from repro.boolean.truth_table import TruthTable


class TestNetworkConstruction:
    def test_constant_propagation(self):
        net = LogicNetwork(2)
        a = net.input_signal(0)
        assert net.create_and(a, net.constant(False)) == net.constant(False)
        assert net.create_and(a, net.constant(True)) == a
        assert net.create_xor(a, net.constant(False)) == a

    def test_idempotence_and_complement_rules(self):
        net = LogicNetwork(1)
        a = net.input_signal(0)
        assert net.create_and(a, a) == a
        assert net.create_and(a, net.create_not(a)) == net.constant(False)
        assert net.create_xor(a, a) == net.constant(False)
        assert net.create_xor(a, net.create_not(a)) == net.constant(True)

    def test_structural_hashing(self):
        net = LogicNetwork(2)
        a, b = net.input_signal(0), net.input_signal(1)
        g1 = net.create_and(a, b)
        g2 = net.create_and(b, a)  # commutativity normalized
        assert g1 == g2
        assert net.num_gates() == 1

    def test_or_via_and(self):
        net = LogicNetwork(2)
        a, b = net.input_signal(0), net.input_signal(1)
        net.add_output(net.create_or(a, b))
        assert net.simulate()[0] == TruthTable.from_function(
            2, lambda x, y: x or y
        )


class TestSimulation:
    @pytest.mark.parametrize("seed", range(10))
    def test_from_esop_round_trip(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 6)
        table = TruthTable(n, rng.getrandbits(1 << n))
        net = LogicNetwork.from_esop(minimize_esop(table), n)
        assert net.simulate()[0] == table

    def test_multi_output_sharing(self):
        t1 = TruthTable.from_function(3, lambda a, b, c: a and b)
        t2 = TruthTable.from_function(3, lambda a, b, c: (a and b) ^ c)
        net = LogicNetwork.from_truth_tables([t1, t2])
        out = net.simulate()
        assert out[0] == t1
        assert out[1] == t2

    def test_depth(self):
        net = LogicNetwork(4)
        sigs = [net.input_signal(i) for i in range(4)]
        layer1 = net.create_and(sigs[0], sigs[1])
        layer2 = net.create_and(layer1, sigs[2])
        net.add_output(layer2)
        assert net.depth() == 2

    def test_fanout_counts(self):
        net = LogicNetwork(2)
        a, b = net.input_signal(0), net.input_signal(1)
        g = net.create_and(a, b)
        net.add_output(g)
        net.add_output(net.create_xor(g, a))
        counts = net.fanout_counts()
        assert counts[g >> 1] == 2  # used by output and by xor


class TestLutMapping:
    @pytest.mark.parametrize("k", [2, 3, 4])
    @pytest.mark.parametrize("seed", range(5))
    def test_mapping_preserves_function(self, k, seed):
        rng = random.Random(seed * 17 + k)
        n = rng.randint(2, 6)
        table = TruthTable(n, rng.getrandbits(1 << n))
        net = LogicNetwork.from_truth_table(table)
        mapped = lut_map(net, k)
        assert mapped.simulate()[0] == table

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_k_feasibility(self, k):
        table = TruthTable.inner_product(3)
        net = LogicNetwork.from_truth_table(table)
        mapped = lut_map(net, k)
        for lut in mapped.luts:
            assert len(lut.leaves) <= k

    def test_lut_count_shrinks_with_larger_k(self):
        table = TruthTable.inner_product(3)
        net = LogicNetwork.from_truth_table(table)
        small = lut_map(net, 2).num_luts()
        large = lut_map(net, 6).num_luts()
        assert large <= small

    def test_multi_output_mapping(self):
        tables = [
            TruthTable.from_function(4, lambda a, b, c, d: (a and b) ^ (c and d)),
            TruthTable.from_function(4, lambda a, b, c, d: a ^ d),
        ]
        net = LogicNetwork.from_truth_tables(tables)
        mapped = lut_map(net, 3)
        out = mapped.simulate()
        assert out[0] == tables[0]
        assert out[1] == tables[1]

    def test_k_lower_bound(self):
        with pytest.raises(ValueError):
            lut_map(LogicNetwork(2), 1)

    def test_topological_order(self):
        table = TruthTable.inner_product(3)
        mapped = lut_map(LogicNetwork.from_truth_table(table), 3)
        seen = set(range(1, mapped.num_inputs + 1)) | {0}
        for lut in mapped.luts:
            assert set(lut.leaves) <= seen
            seen.add(lut.node)

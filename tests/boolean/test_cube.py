"""Unit tests for cubes and ESOP evaluation."""

import pytest

from repro.boolean.cube import Cube, esop_evaluate, esop_to_truth_table
from repro.boolean.truth_table import TruthTable


class TestCube:
    def test_from_literals(self):
        cube = Cube.from_literals([(0, True), (2, False)])
        assert cube.evaluate(0b001) == 1
        assert cube.evaluate(0b101) == 0
        assert cube.evaluate(0b000) == 0

    def test_duplicate_variable_rejected(self):
        with pytest.raises(ValueError):
            Cube.from_literals([(0, True), (0, False)])

    def test_polarity_outside_mask_rejected(self):
        with pytest.raises(ValueError):
            Cube(mask=0b01, polarity=0b10)

    def test_tautology(self):
        cube = Cube.tautology()
        assert all(cube.evaluate(x) for x in range(8))
        assert cube.num_literals() == 0

    def test_minterm(self):
        cube = Cube.minterm(3, 5)
        assert cube.evaluate(5) == 1
        assert sum(cube.evaluate(x) for x in range(8)) == 1

    def test_literals_iteration(self):
        cube = Cube.from_literals([(1, True), (3, False)])
        assert list(cube.literals()) == [(1, True), (3, False)]
        assert cube.positive_vars() == [1]
        assert cube.negative_vars() == [3]

    def test_to_truth_table(self):
        cube = Cube.from_literals([(0, True), (1, True)])
        table = cube.to_truth_table(2)
        assert table == TruthTable.from_function(2, lambda a, b: a and b)


class TestDistance:
    def test_distance_zero(self):
        a = Cube.from_literals([(0, True)])
        assert a.distance(Cube.from_literals([(0, True)])) == 0

    def test_distance_polarity(self):
        a = Cube.from_literals([(0, True), (1, True)])
        b = Cube.from_literals([(0, True), (1, False)])
        assert a.distance(b) == 1

    def test_distance_missing_variable(self):
        a = Cube.from_literals([(0, True), (1, True)])
        b = Cube.from_literals([(0, True)])
        assert a.distance(b) == 1

    def test_distance_mixed(self):
        a = Cube.from_literals([(0, True), (1, True)])
        b = Cube.from_literals([(1, False), (2, True)])
        # differ: var0 (only a), var1 (polarity), var2 (only b)
        assert a.distance(b) == 3


class TestRestrict:
    def test_restrict_free_variable(self):
        cube = Cube.from_literals([(0, True)])
        assert cube.restrict(1, True) == cube

    def test_restrict_matching(self):
        cube = Cube.from_literals([(0, True), (1, False)])
        restricted = cube.restrict(0, True)
        assert restricted == Cube.from_literals([(1, False)])

    def test_restrict_conflicting(self):
        cube = Cube.from_literals([(0, True)])
        assert cube.restrict(0, False) is None


class TestEsopSemantics:
    def test_xor_of_overlapping_cubes(self):
        cubes = [
            Cube.from_literals([(0, True)]),
            Cube.from_literals([(1, True)]),
        ]
        table = esop_to_truth_table(cubes, 2)
        assert table == TruthTable.from_function(2, lambda a, b: a ^ b)

    def test_esop_evaluate_matches_table(self):
        cubes = [
            Cube.from_literals([(0, True), (1, True)]),
            Cube.tautology(),
        ]
        table = esop_to_truth_table(cubes, 2)
        for x in range(4):
            assert esop_evaluate(cubes, x) == table(x)

    def test_str(self):
        assert str(Cube.tautology()) == "1"
        assert str(Cube.from_literals([(0, True), (2, False)])) == "x0&~x2"

"""Unit tests for the ROBDD package."""

import random

import pytest

from repro.boolean.bdd import ONE, ZERO, Bdd
from repro.boolean.truth_table import TruthTable


class TestNodeConstruction:
    def test_reduction_rule(self):
        bdd = Bdd(2)
        # low == high collapses
        assert bdd.make_node(0, ONE, ONE) == ONE

    def test_unique_table_sharing(self):
        bdd = Bdd(2)
        a = bdd.make_node(0, ZERO, ONE)
        b = bdd.make_node(0, ZERO, ONE)
        assert a == b

    def test_variable(self):
        bdd = Bdd(3)
        var = bdd.variable(1)
        assert bdd.evaluate(var, 0b010) == 1
        assert bdd.evaluate(var, 0b101) == 0

    def test_variable_range_check(self):
        with pytest.raises(ValueError):
            Bdd(2).variable(2)


class TestOperations:
    def test_ite_basics(self):
        bdd = Bdd(2)
        x0 = bdd.variable(0)
        assert bdd.ite(ONE, x0, ZERO) == x0
        assert bdd.ite(ZERO, x0, ONE) == ONE
        assert bdd.ite(x0, ONE, ZERO) == x0

    def test_and_or_xor_not(self):
        bdd = Bdd(2)
        x0, x1 = bdd.variable(0), bdd.variable(1)
        conj = bdd.apply_and(x0, x1)
        disj = bdd.apply_or(x0, x1)
        xor = bdd.apply_xor(x0, x1)
        neg = bdd.apply_not(x0)
        for x in range(4):
            a, b = x & 1, (x >> 1) & 1
            assert bdd.evaluate(conj, x) == (a & b)
            assert bdd.evaluate(disj, x) == (a | b)
            assert bdd.evaluate(xor, x) == (a ^ b)
            assert bdd.evaluate(neg, x) == 1 - a

    def test_de_morgan(self):
        bdd = Bdd(3)
        x, y = bdd.variable(0), bdd.variable(2)
        left = bdd.apply_not(bdd.apply_and(x, y))
        right = bdd.apply_or(bdd.apply_not(x), bdd.apply_not(y))
        assert left == right  # canonicity gives structural equality


class TestTruthTableBridge:
    @pytest.mark.parametrize("seed", range(12))
    def test_round_trip(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 6)
        table = TruthTable(n, rng.getrandbits(1 << n))
        bdd = Bdd(n)
        root = bdd.from_truth_table(table)
        assert bdd.to_truth_table(root) == table

    def test_terminal_cases(self):
        bdd = Bdd(3)
        assert bdd.from_truth_table(TruthTable(3)) == ZERO
        assert bdd.from_truth_table(TruthTable.constant(3, True)) == ONE

    def test_canonicity(self):
        """Equal functions build identical roots."""
        bdd = Bdd(4)
        table = TruthTable.inner_product(2)
        root_a = bdd.from_truth_table(table)
        x = [bdd.variable(i) for i in range(4)]
        # x0y0 ^ x1y1 with y = vars 2, 3
        root_b = bdd.apply_xor(
            bdd.apply_and(x[0], x[2]), bdd.apply_and(x[1], x[3])
        )
        assert root_a == root_b


class TestQueries:
    def test_reachable_nodes_topological(self):
        bdd = Bdd(3)
        root = bdd.from_truth_table(
            TruthTable.from_function(3, lambda a, b, c: (a and b) or c)
        )
        order = bdd.reachable_nodes([root])
        seen = set()
        for node in order:
            data = bdd.node(node)
            for child in (data.low, data.high):
                if not bdd.is_terminal(child):
                    assert child in seen
            seen.add(node)
        assert order[-1] == root

    def test_count_nodes_shared(self):
        bdd = Bdd(2)
        x0 = bdd.variable(0)
        x1 = bdd.variable(1)
        assert bdd.count_nodes([x0, x1, x0]) == 2

    @pytest.mark.parametrize("seed", range(8))
    def test_count_satisfying(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 5)
        table = TruthTable(n, rng.getrandbits(1 << n))
        bdd = Bdd(n)
        root = bdd.from_truth_table(table)
        assert bdd.count_satisfying(root) == table.count_ones()

    def test_count_satisfying_terminals(self):
        bdd = Bdd(4)
        assert bdd.count_satisfying(ZERO) == 0
        assert bdd.count_satisfying(ONE) == 16

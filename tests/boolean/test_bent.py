"""Unit tests for Maiorana–McFarland bent functions and instances."""

import pytest

from repro.boolean.bent import (
    HiddenShiftInstance,
    MaioranaMcFarland,
    MaioranaMcFarlandDual,
)
from repro.boolean.permutation import BitPermutation
from repro.boolean.spectral import dual_bent, is_bent
from repro.boolean.truth_table import TruthTable


class TestMaioranaMcFarland:
    def test_inner_product_special_case(self):
        mm = MaioranaMcFarland.inner_product(2)
        assert mm.truth_table() == TruthTable.inner_product(2)

    def test_arity_check(self):
        with pytest.raises(ValueError):
            MaioranaMcFarland(BitPermutation.identity(2), TruthTable(3))

    @pytest.mark.parametrize("seed", range(6))
    def test_always_bent(self, seed):
        mm = MaioranaMcFarland.random(2, seed=seed)
        assert is_bent(mm.truth_table())
        assert mm.verify_bent()

    def test_evaluate_matches_definition(self):
        pi = BitPermutation([0, 2, 3, 1])
        h = TruthTable(2, 0b0110)
        mm = MaioranaMcFarland(pi, h)
        for x in range(4):
            for y in range(4):
                expected = (bin(x & pi(y)).count("1") & 1) ^ h(y)
                assert mm.evaluate(x, y) == expected
                assert mm(x | (y << 2)) == expected

    def test_structured_dual_matches_spectral_dual(self):
        """The closed-form MM dual must equal the Walsh-spectrum dual."""
        for seed in range(5):
            mm = MaioranaMcFarland.random(2, seed=seed)
            assert mm.dual().truth_table() == dual_bent(mm.truth_table())

    def test_paper_instance_dual(self):
        mm = MaioranaMcFarland(
            BitPermutation([0, 2, 3, 5, 7, 1, 4, 6]), TruthTable(3)
        )
        assert mm.dual().truth_table() == dual_bent(mm.truth_table())

    def test_dual_evaluate(self):
        pi = BitPermutation([1, 0, 3, 2])
        dual = MaioranaMcFarlandDual(pi.inverse(), TruthTable(2))
        for x in range(4):
            for y in range(4):
                expected = bin(pi.inverse()(x) & y).count("1") & 1
                assert dual.evaluate(x, y) == expected


class TestHiddenShiftInstance:
    def test_g_table_is_shift_of_f(self):
        instance = HiddenShiftInstance.random(2, seed=3)
        f = instance.f_table()
        g = instance.g_table()
        for x in range(16):
            assert g(x) == f(x ^ instance.shift)

    def test_dual_tables_agree(self):
        instance = HiddenShiftInstance.random(2, seed=4)
        assert instance.dual_table() == instance.spectral_dual_table()

    def test_shift_range_check(self):
        mm = MaioranaMcFarland.inner_product(1)
        with pytest.raises(ValueError):
            HiddenShiftInstance(mm, 4)

    def test_random_reproducible(self):
        a = HiddenShiftInstance.random(2, seed=9)
        b = HiddenShiftInstance.random(2, seed=9)
        assert a.shift == b.shift
        assert a.f_table() == b.f_table()

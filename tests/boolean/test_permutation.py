"""Unit tests for bit-vector permutations."""

import pytest

from repro.boolean.permutation import BitPermutation
from repro.boolean.truth_table import MultiTruthTable


class TestConstruction:
    def test_identity(self):
        perm = BitPermutation.identity(3)
        assert perm.is_identity()
        assert perm.num_bits == 3

    def test_not_a_permutation_rejected(self):
        with pytest.raises(ValueError):
            BitPermutation([0, 0, 1, 2])

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            BitPermutation([0, 1, 2])

    def test_random_seeded(self):
        a = BitPermutation.random(3, seed=1)
        b = BitPermutation.random(3, seed=1)
        assert a == b

    def test_from_truth_tables(self):
        tables = MultiTruthTable.from_function(2, 2, lambda x: x ^ 3)
        perm = BitPermutation.from_truth_tables(tables)
        assert perm.image == [3, 2, 1, 0]

    def test_from_irreversible_rejected(self):
        tables = MultiTruthTable.from_function(2, 2, lambda x: 0)
        with pytest.raises(ValueError):
            BitPermutation.from_truth_tables(tables)


class TestHwb:
    def test_hwb_is_permutation(self):
        for n in (2, 3, 4, 5):
            BitPermutation.hidden_weighted_bit(n)  # constructor validates

    def test_hwb_fixes_zero_and_ones(self):
        for n in (2, 3, 4):
            perm = BitPermutation.hidden_weighted_bit(n)
            assert perm(0) == 0
            assert perm((1 << n) - 1) == (1 << n) - 1

    def test_hwb_rotation_semantics(self):
        perm = BitPermutation.hidden_weighted_bit(4)
        x = 0b0011  # weight 2 -> output bit i = input bit (i+2)%4
        expected = 0
        for i in range(4):
            if (x >> ((i + 2) % 4)) & 1:
                expected |= 1 << i
        assert perm(x) == expected


class TestAlgebra:
    def test_inverse(self):
        perm = BitPermutation.random(3, seed=5)
        inv = perm.inverse()
        for x in range(8):
            assert inv(perm(x)) == x
            assert perm(inv(x)) == x

    def test_compose(self):
        a = BitPermutation.random(3, seed=1)
        b = BitPermutation.random(3, seed=2)
        composed = a.compose(b)
        for x in range(8):
            assert composed(x) == a(b(x))

    def test_compose_width_mismatch(self):
        with pytest.raises(ValueError):
            BitPermutation.identity(2).compose(BitPermutation.identity(3))

    def test_cycles(self):
        perm = BitPermutation([1, 0, 2, 3])
        cycles = perm.cycles()
        assert cycles == [[0, 1]]

    def test_parity(self):
        assert BitPermutation([1, 0, 2, 3]).parity() == 1
        assert BitPermutation.identity(2).parity() == 0
        # 3-cycle is even
        assert BitPermutation([1, 2, 0, 3]).parity() == 0

    def test_output_tables_round_trip(self):
        perm = BitPermutation.random(3, seed=9)
        tables = perm.to_truth_tables()
        assert BitPermutation.from_truth_tables(tables) == perm

    def test_hamming_complexity(self):
        assert BitPermutation.identity(3).hamming_complexity() == 0
        swap_all = BitPermutation([3, 2, 1, 0])  # x -> ~x: distance 2 each
        assert swap_all.hamming_complexity() == 8

"""Unit tests for ESOP extraction and minimization.

The central invariant: every cover returned by any routine must XOR
back to the input function exactly.
"""

import random

import pytest

from repro.boolean.cube import esop_to_truth_table
from repro.boolean.esop import (
    best_fprm,
    exorcism,
    fprm,
    minimize_esop,
    minterm_cover,
    pprm,
)
from repro.boolean.truth_table import TruthTable


def assert_cover_correct(cubes, table):
    assert esop_to_truth_table(cubes, table.num_vars) == table


class TestPprm:
    def test_and_function(self):
        table = TruthTable.from_function(2, lambda a, b: a and b)
        cubes = pprm(table)
        assert len(cubes) == 1
        assert cubes[0].mask == 0b11
        assert cubes[0].polarity == 0b11

    def test_xor_function(self):
        table = TruthTable.from_function(2, lambda a, b: a ^ b)
        cubes = pprm(table)
        assert len(cubes) == 2
        assert_cover_correct(cubes, table)

    def test_or_needs_three_cubes(self):
        table = TruthTable.from_function(2, lambda a, b: a or b)
        cubes = pprm(table)
        # a or b = a ^ b ^ ab
        assert len(cubes) == 3
        assert_cover_correct(cubes, table)

    def test_constant_one(self):
        table = TruthTable.constant(3, True)
        cubes = pprm(table)
        assert len(cubes) == 1
        assert cubes[0].num_literals() == 0

    def test_zero_function_empty_cover(self):
        assert pprm(TruthTable(3)) == []

    def test_all_cubes_positive(self):
        rng = random.Random(1)
        for _ in range(20):
            table = TruthTable(4, rng.getrandbits(16))
            for cube in pprm(table):
                assert cube.polarity == cube.mask

    @pytest.mark.parametrize("seed", range(10))
    def test_random_correctness(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 6)
        table = TruthTable(n, rng.getrandbits(1 << n))
        assert_cover_correct(pprm(table), table)


class TestFprm:
    def test_negative_polarity_nand_like(self):
        # ~a & ~b has a 1-cube FPRM at polarity 0b11
        table = TruthTable.from_function(2, lambda a, b: not a and not b)
        cubes = fprm(table, 0b11)
        assert len(cubes) == 1
        assert_cover_correct(cubes, table)

    def test_polarity_respected(self):
        rng = random.Random(3)
        for _ in range(15):
            n = rng.randint(1, 5)
            table = TruthTable(n, rng.getrandbits(1 << n))
            polarity = rng.getrandbits(n)
            cubes = fprm(table, polarity)
            assert_cover_correct(cubes, table)
            for cube in cubes:
                # a variable in negative polarity never appears positive
                assert (cube.polarity & polarity) == 0

    def test_best_fprm_not_worse_than_pprm(self):
        rng = random.Random(5)
        for _ in range(10):
            table = TruthTable(4, rng.getrandbits(16))
            best, polarity = best_fprm(table)
            assert len(best) <= len(pprm(table))
            assert_cover_correct(best, table)

    def test_best_fprm_greedy_path(self):
        # forces the greedy branch by shrinking the exhaustive budget
        table = TruthTable.inner_product(2)
        cubes, polarity = best_fprm(table, max_exhaustive_vars=1)
        assert_cover_correct(cubes, table)


class TestExorcism:
    def test_cancels_duplicates(self):
        table = TruthTable.from_function(2, lambda a, b: a and b)
        cubes = pprm(table) + pprm(table) + pprm(table)
        reduced = exorcism(cubes)
        assert len(reduced) == 1
        assert_cover_correct(reduced, table)

    def test_merges_distance_one(self):
        # ab ^ a~b = a
        cubes = minterm_cover(
            TruthTable.from_function(2, lambda a, b: a)
        )
        reduced = exorcism(cubes)
        assert len(reduced) == 1
        assert reduced[0].num_literals() == 1

    @pytest.mark.parametrize("seed", range(15))
    def test_never_breaks_cover(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 6)
        table = TruthTable(n, rng.getrandbits(1 << n))
        reduced = exorcism(minterm_cover(table), rounds=6)
        assert_cover_correct(reduced, table)

    def test_improves_minterm_cover(self):
        table = TruthTable.inner_product(2)
        minterms = minterm_cover(table)
        reduced = exorcism(minterms, rounds=8)
        assert len(reduced) < len(minterms)


class TestMinimizeEsop:
    @pytest.mark.parametrize("effort", ["fast", "medium", "high"])
    def test_correct_at_all_efforts(self, effort):
        rng = random.Random(11)
        for _ in range(8):
            n = rng.randint(1, 5)
            table = TruthTable(n, rng.getrandbits(1 << n))
            assert_cover_correct(minimize_esop(table, effort=effort), table)

    def test_paper_bent_function_two_cubes(self):
        """f = x1x2 XOR x3x4 minimizes to exactly its two AND cubes."""
        table = TruthTable.from_function(
            4, lambda a, b, c, d: (a and b) ^ (c and d)
        )
        cubes = minimize_esop(table)
        assert len(cubes) == 2
        assert sorted(c.num_literals() for c in cubes) == [2, 2]

    def test_zero_function(self):
        assert minimize_esop(TruthTable(4)) == []

    def test_inner_product_cube_count(self):
        """IP on 2n variables needs exactly n cubes."""
        for half in (1, 2, 3):
            table = TruthTable.inner_product(half)
            assert len(minimize_esop(table)) == half

"""Unit tests for reversible pebble games."""

import pytest

from repro.synthesis.pebbling import (
    PebbleGameError,
    bennett_moves,
    checkpoint_moves,
    optimal_moves,
    pebble_tradeoff_curve,
    validate_moves,
)


class TestValidation:
    def test_bennett_is_legal(self):
        for n in (1, 2, 5, 10):
            moves = bennett_moves(n)
            assert validate_moves(n, moves) == n
            assert len(moves) == 2 * n - 1

    def test_illegal_move_detected(self):
        with pytest.raises(PebbleGameError):
            validate_moves(3, [(1, True)])  # step 0 not pebbled

    def test_redundant_move_detected(self):
        with pytest.raises(PebbleGameError):
            validate_moves(2, [(0, True), (0, True)])

    def test_unclean_final_state_detected(self):
        moves = [(0, True), (1, True)]  # step 0 left pebbled
        with pytest.raises(PebbleGameError):
            validate_moves(2, moves)

    def test_result_must_be_pebbled(self):
        with pytest.raises(PebbleGameError):
            validate_moves(2, [(0, True), (0, False)])


class TestCheckpointStrategy:
    @pytest.mark.parametrize("n", [4, 8, 12, 16, 31])
    def test_legal_for_various_budgets(self, n):
        for budget in range(3, n + 1):
            try:
                moves = checkpoint_moves(n, budget)
            except PebbleGameError:
                continue
            validate_moves(n, moves)

    def test_small_budget_raises(self):
        with pytest.raises(PebbleGameError):
            checkpoint_moves(64, 2)

    def test_fewer_pebbles_than_bennett(self):
        n = 16
        moves = checkpoint_moves(n, 6)
        peak = validate_moves(n, moves)
        assert peak < n

    def test_more_moves_with_fewer_pebbles(self):
        n = 16
        generous = len(checkpoint_moves(n, n))
        tight_moves = checkpoint_moves(n, 5)
        validate_moves(n, tight_moves)
        assert len(tight_moves) > generous


class TestOptimalSearch:
    def test_matches_bennett_with_full_budget(self):
        n = 6
        moves = optimal_moves(n, n)
        assert len(moves) <= len(bennett_moves(n))
        validate_moves(n, moves)

    def test_budget_respected(self):
        n = 8
        for budget in (3, 4, 5):
            moves = optimal_moves(n, budget)
            if moves is None:
                continue
            peak = validate_moves(n, moves)
            assert peak <= budget

    def test_infeasible_budget_returns_none(self):
        # pebbling n steps needs at least ~log2(n) pebbles
        assert optimal_moves(16, 2) is None

    def test_optimal_never_beaten_by_checkpointing(self):
        n, budget = 10, 4
        best = optimal_moves(n, budget)
        heuristic = checkpoint_moves(n, budget)
        peak = validate_moves(n, heuristic)
        if peak <= budget:
            assert len(best) <= len(heuristic)

    def test_length_guard(self):
        with pytest.raises(PebbleGameError):
            optimal_moves(21, 5)


class TestTradeoffCurve:
    def test_monotone_tradeoff(self):
        """Fewer pebbles never means fewer moves (Pareto frontier)."""
        points = pebble_tradeoff_curve(24, list(range(3, 25)))
        assert points
        points.sort()
        for (p1, m1), (p2, m2) in zip(points, points[1:]):
            if p1 < p2:
                assert m1 >= m2

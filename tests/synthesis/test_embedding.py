"""Unit tests for Bennett and explicit embeddings."""

import random

import pytest

from repro.boolean.truth_table import MultiTruthTable, TruthTable
from repro.synthesis.embedding import (
    bennett_embedding,
    explicit_embedding,
    minimum_garbage_bits,
    verify_embedding,
)


class TestBennettEmbedding:
    def test_structure(self):
        table = TruthTable.from_function(2, lambda a, b: a and b)
        g = bennett_embedding(table)
        assert g.num_bits == 3
        assert verify_embedding(g, table, in_place=False)

    def test_self_inverse(self):
        """g(x, y) = (x, y ^ f(x)) is an involution."""
        table = TruthTable.from_function(3, lambda a, b, c: a ^ (b and c))
        g = bennett_embedding(table)
        assert g.compose(g).is_identity()

    @pytest.mark.parametrize("seed", range(10))
    def test_random_multi_output(self, seed):
        rng = random.Random(seed)
        n, m = rng.randint(1, 4), rng.randint(1, 3)
        tables = MultiTruthTable(
            [TruthTable(n, rng.getrandbits(1 << n)) for _ in range(m)]
        )
        g = bennett_embedding(tables)
        assert g.num_bits == n + m
        assert verify_embedding(g, tables, in_place=False)


class TestMinimumGarbage:
    def test_injective_needs_none(self):
        tables = MultiTruthTable.from_function(2, 2, lambda x: x ^ 3)
        assert minimum_garbage_bits(tables) == 0

    def test_constant_needs_n(self):
        table = TruthTable.constant(3, False)
        assert minimum_garbage_bits(table) == 3

    def test_and_function(self):
        # AND: output 0 has multiplicity 3 -> ceil(log2 3) = 2
        table = TruthTable.from_function(2, lambda a, b: a and b)
        assert minimum_garbage_bits(table) == 2


class TestExplicitEmbedding:
    def test_in_place_property(self):
        table = TruthTable.from_function(2, lambda a, b: a and b)
        g, r = explicit_embedding(table)
        assert verify_embedding(g, table, in_place=True)

    def test_line_count_is_information_theoretic_minimum(self):
        table = TruthTable.from_function(2, lambda a, b: a and b)
        g, r = explicit_embedding(table)
        assert r == max(2, 1 + minimum_garbage_bits(table))

    def test_reversible_input_needs_no_extra_lines(self):
        tables = MultiTruthTable.from_function(3, 3, lambda x: (x + 3) % 8)
        g, r = explicit_embedding(tables)
        assert r == 3
        assert verify_embedding(g, tables, in_place=True)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_functions(self, seed):
        rng = random.Random(seed)
        n, m = rng.randint(1, 4), rng.randint(1, 3)
        tables = MultiTruthTable(
            [TruthTable(n, rng.getrandbits(1 << n)) for _ in range(m)]
        )
        g, r = explicit_embedding(tables)
        assert r >= max(n, m)
        assert verify_embedding(g, tables, in_place=True)

    def test_reciprocal_style_function(self):
        """The paper's in-place example shape: x -> output bits of a
        nonlinear function with bounded multiplicity."""
        table = MultiTruthTable.from_function(
            4, 4, lambda x: (7 * x + 3) % 16
        )
        g, r = explicit_embedding(table)
        assert r == 4  # affine bijection: no garbage at all
        assert verify_embedding(g, table, in_place=True)

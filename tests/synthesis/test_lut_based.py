"""Unit tests for LUT-based hierarchical synthesis (LHRS)."""

import random

import pytest

from repro.boolean.truth_table import TruthTable
from repro.synthesis.lut_based import (
    AncillaBudgetError,
    lut_synthesis,
    verify_lut_synthesis,
)


class TestBennettStrategy:
    def test_simple_function(self):
        table = TruthTable.from_function(
            4, lambda a, b, c, d: (a and b) ^ (c and d)
        )
        result = lut_synthesis(table, k=3, strategy="bennett")
        assert verify_lut_synthesis(result, table)
        assert result.strategy == "bennett"

    def test_ancillae_equal_luts(self):
        table = TruthTable.inner_product(3)
        result = lut_synthesis(table, k=3, strategy="bennett")
        assert result.num_ancillae == result.num_luts

    @pytest.mark.parametrize("k", [2, 3, 4])
    @pytest.mark.parametrize("seed", range(6))
    def test_random_functions(self, k, seed):
        rng = random.Random(seed * 31 + k)
        n = rng.randint(2, 5)
        table = TruthTable(n, rng.getrandbits(1 << n))
        result = lut_synthesis(table, k=k, strategy="bennett")
        assert verify_lut_synthesis(result, table)


class TestEagerStrategy:
    @pytest.mark.parametrize("k", [2, 3, 4])
    @pytest.mark.parametrize("seed", range(6))
    def test_random_functions(self, k, seed):
        rng = random.Random(seed * 13 + k)
        n = rng.randint(2, 5)
        m = rng.randint(1, 2)
        tables = [TruthTable(n, rng.getrandbits(1 << n)) for _ in range(m)]
        result = lut_synthesis(tables, k=k, strategy="eager")
        assert verify_lut_synthesis(result, tables)

    def test_eager_saves_ancillae_on_deep_networks(self):
        """A multi-level single-output function: the output LUT lands
        on the output line, so eager needs fewer ancillae."""
        table = TruthTable.inner_product(3)
        bennett = lut_synthesis(table, k=2, strategy="bennett")
        eager = lut_synthesis(table, k=2, strategy="eager")
        assert eager.num_ancillae < bennett.num_ancillae
        assert verify_lut_synthesis(eager, table)

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            lut_synthesis(TruthTable(2, 0b0110), strategy="magic")


class TestAncillaBudget:
    def test_generous_budget_accepted(self):
        table = TruthTable.inner_product(2)
        result = lut_synthesis(table, k=3, ancilla_budget=100)
        assert verify_lut_synthesis(result, table)

    def test_tight_budget_falls_back_to_eager(self):
        table = TruthTable.inner_product(3)
        bennett_cost = lut_synthesis(table, k=2).num_ancillae
        eager_cost = lut_synthesis(table, k=2, strategy="eager").num_ancillae
        assert eager_cost < bennett_cost
        result = lut_synthesis(
            table, k=2, strategy="bennett", ancilla_budget=eager_cost
        )
        assert result.strategy == "eager"
        assert verify_lut_synthesis(result, table)

    def test_impossible_budget_raises(self):
        table = TruthTable.inner_product(3)
        with pytest.raises(AncillaBudgetError):
            lut_synthesis(table, k=2, ancilla_budget=0)


class TestQubitGateTradeoff:
    def test_larger_k_fewer_ancillae(self):
        """Coarser LUTs = fewer intermediate values = fewer ancillae
        (but bigger single-target gates) — the Sec. V trade-off."""
        table = TruthTable.inner_product(3)
        fine = lut_synthesis(table, k=2)
        coarse = lut_synthesis(table, k=5)
        assert coarse.num_ancillae <= fine.num_ancillae

"""Unit tests for BDD-based hierarchical synthesis."""

import random

import pytest

from repro.boolean.bdd import Bdd
from repro.boolean.truth_table import TruthTable
from repro.synthesis.bdd_based import bdd_synthesis, verify_bdd_synthesis


class TestBddSynthesis:
    def test_simple_and(self):
        table = TruthTable.from_function(2, lambda a, b: a and b)
        result = bdd_synthesis(table)
        assert verify_bdd_synthesis(result, table)
        assert result.num_inputs == 2
        assert result.num_outputs == 1

    def test_ancilla_count_equals_bdd_nodes(self):
        table = TruthTable.inner_product(2)
        bdd = Bdd(4)
        nodes = bdd.count_nodes([bdd.from_truth_table(table)])
        result = bdd_synthesis(table)
        assert result.num_ancillae == nodes
        assert result.total_lines == 4 + 1 + nodes

    def test_ancillae_restored(self):
        """Bennett compute-copy-uncompute leaves ancillae clean —
        checked on all inputs by the verifier."""
        rng = random.Random(0)
        for _ in range(8):
            n = rng.randint(1, 5)
            table = TruthTable(n, rng.getrandbits(1 << n))
            result = bdd_synthesis(table)
            assert verify_bdd_synthesis(result, table)

    def test_constant_functions(self):
        for value in (False, True):
            table = TruthTable.constant(3, value)
            result = bdd_synthesis(table)
            assert verify_bdd_synthesis(result, table)
            assert result.num_ancillae == 0

    def test_projection_function(self):
        table = TruthTable.projection(3, 1)
        result = bdd_synthesis(table)
        assert verify_bdd_synthesis(result, table)

    def test_multi_output_sharing(self):
        """Shared BDD nodes across outputs are computed once."""
        t1 = TruthTable.from_function(3, lambda a, b, c: a and b)
        t2 = TruthTable.from_function(3, lambda a, b, c: (a and b) or c)
        result = bdd_synthesis([t1, t2])
        assert verify_bdd_synthesis(result, [t1, t2])
        separate = (
            bdd_synthesis(t1).num_ancillae + bdd_synthesis(t2).num_ancillae
        )
        assert result.num_ancillae <= separate

    @pytest.mark.parametrize("seed", range(10))
    def test_random_multi_output(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 5)
        m = rng.randint(1, 3)
        tables = [TruthTable(n, rng.getrandbits(1 << n)) for _ in range(m)]
        result = bdd_synthesis(tables)
        assert verify_bdd_synthesis(result, tables)

    def test_gate_count_linear_in_nodes(self):
        """Each node contributes at most 2 compute + 2 uncompute MCTs."""
        table = TruthTable.inner_product(3)
        result = bdd_synthesis(table)
        bound = 4 * result.bdd_nodes + result.num_outputs
        assert len(result.circuit) <= bound

"""Unit tests for MCT gates and reversible circuits."""

import pytest

from repro.boolean.permutation import BitPermutation
from repro.core.unitary import circuit_unitary, unitary_as_permutation
from repro.synthesis.reversible import MctGate, ReversibleCircuit


class TestMctGate:
    def test_default_positive_polarity(self):
        gate = MctGate(2, (0, 1))
        assert gate.polarity == (True, True)

    def test_fires(self):
        gate = MctGate(2, (0, 1), (True, False))
        assert gate.fires(0b001)       # c0=1, c1=0
        assert not gate.fires(0b011)

    def test_apply(self):
        gate = MctGate(2, (0, 1))
        assert gate.apply(0b011) == 0b111
        assert gate.apply(0b111) == 0b011
        assert gate.apply(0b001) == 0b001

    def test_not_gate(self):
        gate = MctGate(0)
        assert gate.apply(0) == 1
        assert gate.apply(1) == 0

    def test_target_in_controls_rejected(self):
        with pytest.raises(ValueError):
            MctGate(0, (0,))

    def test_polarity_length_mismatch(self):
        with pytest.raises(ValueError):
            MctGate(0, (1, 2), (True,))

    def test_masks_round_trip(self):
        gate = MctGate(3, (0, 2), (False, True))
        rebuilt = MctGate.from_masks(
            3, gate.control_mask(), gate.polarity_mask()
        )
        assert rebuilt == gate

    def test_remap(self):
        gate = MctGate(2, (0, 1), (True, False))
        mapped = gate.remap({0: 5, 1: 4, 2: 3})
        assert mapped.target == 3
        assert mapped.controls == (5, 4)
        assert mapped.polarity == (True, False)


class TestReversibleCircuit:
    def test_identity_permutation(self):
        assert ReversibleCircuit(3).permutation().is_identity()

    def test_builders(self):
        circ = ReversibleCircuit(3)
        circ.x(0).cnot(0, 1).toffoli(0, 1, 2)
        assert len(circ) == 3
        assert circ.permutation()(0) == 0b111

    def test_line_range_check(self):
        with pytest.raises(ValueError):
            ReversibleCircuit(2).add_gate(2)

    def test_dagger_inverts(self):
        circ = ReversibleCircuit(3)
        circ.x(0).toffoli(0, 1, 2).cnot(0, 1)
        perm = circ.permutation()
        inv = circ.dagger().permutation()
        assert perm.compose(inv).is_identity()

    def test_negative_controls_semantics(self):
        circ = ReversibleCircuit(2)
        circ.add_gate(1, (0,), (False,))  # flips line1 when line0 = 0
        perm = circ.permutation()
        assert perm(0b00) == 0b10
        assert perm(0b01) == 0b01

    def test_compose(self):
        a = ReversibleCircuit(2).x(0)
        b = ReversibleCircuit(2).cnot(0, 1)
        a.compose(b)
        assert a.permutation()(0) == 0b11

    def test_quantum_cost_table(self):
        circ = ReversibleCircuit(5)
        circ.x(0)
        assert circ.quantum_cost() == 1
        circ.toffoli(0, 1, 2)
        assert circ.quantum_cost() == 6
        circ.add_gate(4, (0, 1, 2))
        assert circ.quantum_cost() == 6 + (1 << 4) - 3

    def test_control_histogram(self):
        circ = ReversibleCircuit(3).x(0).cnot(0, 1).toffoli(0, 1, 2)
        assert circ.control_histogram() == {0: 1, 1: 1, 2: 1}

    def test_t_count_estimate(self):
        circ = ReversibleCircuit(3).toffoli(0, 1, 2)
        assert circ.t_count_estimate() == 7
        circ2 = ReversibleCircuit(4).add_gate(3, (0, 1, 2))
        assert circ2.t_count_estimate() == 7 * 3


class TestQuantumConversion:
    def test_positive_mct_to_quantum(self):
        circ = ReversibleCircuit(3).toffoli(0, 1, 2)
        quantum = circ.to_quantum_circuit()
        assert [g.name for g in quantum] == ["ccx"]

    def test_negative_controls_wrapped_in_x(self):
        circ = ReversibleCircuit(2)
        circ.add_gate(1, (0,), (False,))
        quantum = circ.to_quantum_circuit()
        assert [g.name for g in quantum] == ["x", "cx", "x"]

    @pytest.mark.parametrize("seed", range(5))
    def test_quantum_conversion_preserves_permutation(self, seed):
        import random

        rng = random.Random(seed)
        circ = ReversibleCircuit(3)
        for _ in range(8):
            target = rng.randrange(3)
            others = [l for l in range(3) if l != target]
            k = rng.randint(0, 2)
            controls = tuple(rng.sample(others, k))
            polarity = tuple(rng.random() < 0.5 for _ in controls)
            circ.add_gate(target, controls, polarity)
        perm = unitary_as_permutation(
            circuit_unitary(circ.to_quantum_circuit())
        )
        assert perm == circ.permutation().image

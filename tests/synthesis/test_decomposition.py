"""Unit tests for decomposition-based synthesis (dbs)."""

import random

import pytest

from repro.boolean.permutation import BitPermutation
from repro.synthesis.decomposition import (
    decomposition_based_synthesis,
    young_subgroup_decomposition,
)


class TestYoungSubgroupDecomposition:
    def test_gate_count_bound(self):
        """At most 2n single-target gates for an n-line permutation."""
        for seed in range(10):
            perm = BitPermutation.random(4, seed=seed)
            lefts, rights = young_subgroup_decomposition(perm)
            assert len(lefts) + len(rights) <= 8

    def test_single_target_gates_reconstruct_permutation(self):
        perm = BitPermutation.random(3, seed=3)
        lefts, rights = young_subgroup_decomposition(perm)
        ordered = list(rights) + list(reversed(lefts))

        def apply_all(x):
            for gate in ordered:
                x = gate.apply(x)
            return x

        for x in range(8):
            assert apply_all(x) == perm(x)

    def test_identity_produces_no_gates(self):
        lefts, rights = young_subgroup_decomposition(
            BitPermutation.identity(3)
        )
        assert lefts == [] and rights == []


class TestDecompositionSynthesis:
    def test_paper_pi(self, paper_pi):
        circ = decomposition_based_synthesis(paper_pi)
        assert circ.permutation() == paper_pi

    @pytest.mark.parametrize("seed", range(25))
    def test_random_permutations(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 5)
        perm = BitPermutation.random(n, seed=seed * 7)
        circ = decomposition_based_synthesis(perm)
        assert circ.permutation() == perm

    def test_all_two_bit_permutations(self):
        from itertools import permutations

        for image in permutations(range(4)):
            perm = BitPermutation(list(image))
            circ = decomposition_based_synthesis(perm)
            assert circ.permutation() == perm

    def test_single_line(self):
        perm = BitPermutation([1, 0])
        circ = decomposition_based_synthesis(perm)
        assert circ.permutation() == perm

    def test_hwb(self):
        perm = BitPermutation.hidden_weighted_bit(4)
        circ = decomposition_based_synthesis(perm)
        assert circ.permutation() == perm

    def test_controls_exclude_target_line(self):
        """Every MCT from dbs controls only on other lines."""
        perm = BitPermutation.random(4, seed=99)
        circ = decomposition_based_synthesis(perm)
        for gate in circ:
            assert gate.target not in gate.controls

"""Unit tests for exact (BFS) synthesis."""

import pytest

from repro.boolean.permutation import BitPermutation
from repro.synthesis.exact import (
    all_mct_gates,
    exact_synthesis,
    minimum_gate_count,
)
from repro.synthesis.transformation import transformation_based_synthesis


class TestGateEnumeration:
    def test_counts(self):
        # n lines: n targets x 3^(n-1) control configurations
        assert len(all_mct_gates(1)) == 1
        assert len(all_mct_gates(2)) == 2 * 3
        assert len(all_mct_gates(3)) == 3 * 9

    def test_gates_distinct(self):
        gates = all_mct_gates(3)
        assert len(set(gates)) == len(gates)


class TestExactSynthesis:
    def test_identity_is_zero_gates(self):
        circ = exact_synthesis(BitPermutation.identity(2))
        assert len(circ) == 0

    def test_single_gate_functions_found_at_depth_one(self):
        for gate in all_mct_gates(2):
            image = [gate.apply(x) for x in range(4)]
            circ = exact_synthesis(BitPermutation(image))
            assert len(circ) <= 1

    @pytest.mark.parametrize("seed", range(8))
    def test_correct_and_minimal(self, seed):
        perm = BitPermutation.random(3, seed=seed)
        circ = exact_synthesis(perm)
        assert circ is not None
        assert circ.permutation() == perm
        # no shorter circuit exists: compare against heuristic result
        heuristic = transformation_based_synthesis(perm)
        assert len(circ) <= len(heuristic)

    def test_width_guard(self):
        with pytest.raises(ValueError):
            exact_synthesis(BitPermutation.identity(4))

    def test_minimum_gate_count_helper(self):
        perm = BitPermutation([1, 0, 2, 3, 4, 5, 6, 7])
        count = minimum_gate_count(perm)
        # x0 flip conditioned on x1=0, x2=0: one negatively-controlled MCT
        assert count == 1

    def test_swap_needs_three_cnots(self):
        # swap of two lines = 3 CNOTs, and no 2-gate solution exists
        perm = BitPermutation([0, 2, 1, 3])
        assert minimum_gate_count(perm) == 3

"""Unit tests for transformation-based synthesis (tbs)."""

import random

import pytest

from repro.boolean.permutation import BitPermutation
from repro.synthesis.transformation import (
    bidirectional_synthesis,
    transformation_based_synthesis,
)


class TestBasicSynthesis:
    def test_identity_needs_no_gates(self):
        circ = transformation_based_synthesis(BitPermutation.identity(3))
        assert len(circ) == 0

    def test_single_not(self):
        perm = BitPermutation([1, 0])
        circ = transformation_based_synthesis(perm)
        assert circ.permutation() == perm
        assert len(circ) == 1

    def test_cnot_function(self):
        perm = BitPermutation([0, 3, 2, 1])  # CNOT(0 -> 1)
        circ = transformation_based_synthesis(perm)
        assert circ.permutation() == perm

    def test_paper_pi(self, paper_pi):
        circ = transformation_based_synthesis(paper_pi)
        assert circ.permutation() == paper_pi

    @pytest.mark.parametrize("seed", range(30))
    def test_random_permutations(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 5)
        perm = BitPermutation.random(n, seed=seed)
        circ = transformation_based_synthesis(perm)
        assert circ.permutation() == perm

    def test_all_two_bit_permutations(self):
        """Exhaustive over S_4: every 2-line permutation synthesizes."""
        from itertools import permutations

        for image in permutations(range(4)):
            perm = BitPermutation(list(image))
            circ = transformation_based_synthesis(perm)
            assert circ.permutation() == perm

    def test_hwb(self):
        perm = BitPermutation.hidden_weighted_bit(4)
        circ = transformation_based_synthesis(perm)
        assert circ.permutation() == perm


class TestBidirectional:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_permutations(self, seed):
        rng = random.Random(seed + 1000)
        n = rng.randint(1, 5)
        perm = BitPermutation.random(n, seed=seed + 1000)
        circ = bidirectional_synthesis(perm)
        assert circ.permutation() == perm

    def test_never_worse_on_average(self):
        """Bidirectional should win or tie on most instances (the
        motivation for the variant in [43])."""
        wins = ties = losses = 0
        for seed in range(40):
            perm = BitPermutation.random(4, seed=seed)
            basic = len(transformation_based_synthesis(perm))
            bidir = len(bidirectional_synthesis(perm))
            if bidir < basic:
                wins += 1
            elif bidir == basic:
                ties += 1
            else:
                losses += 1
        assert wins + ties > losses

    def test_hwb_improvement(self):
        perm = BitPermutation.hidden_weighted_bit(4)
        basic = len(transformation_based_synthesis(perm))
        bidir = len(bidirectional_synthesis(perm))
        assert bidir <= basic

    def test_all_two_bit_permutations(self):
        from itertools import permutations

        for image in permutations(range(4)):
            perm = BitPermutation(list(image))
            assert bidirectional_synthesis(perm).permutation() == perm

"""Unit tests for single-target gates."""

import random

import pytest

from repro.boolean.truth_table import TruthTable
from repro.synthesis.single_target import (
    SingleTargetGate,
    single_target_gates_to_circuit,
)


class TestSingleTargetGate:
    def test_apply(self):
        function = TruthTable.from_function(2, lambda a, b: a and b)
        gate = SingleTargetGate(0, (1, 2), function)
        assert gate.apply(0b110) == 0b111  # controls 1,2 set -> flip 0
        assert gate.apply(0b010) == 0b010

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SingleTargetGate(0, (1,), TruthTable(2))

    def test_target_among_controls_rejected(self):
        with pytest.raises(ValueError):
            SingleTargetGate(1, (1, 2), TruthTable(2))

    def test_mct_lowering_matches_semantics(self):
        rng = random.Random(4)
        for _ in range(20):
            function = TruthTable(2, rng.getrandbits(4))
            gate = SingleTargetGate(2, (0, 1), function)
            mcts = gate.to_mct_gates()
            for value in range(8):
                expected = gate.apply(value)
                actual = value
                for mct in mcts:
                    actual = mct.apply(actual)
                assert actual == expected

    def test_constant_zero_function_no_gates(self):
        gate = SingleTargetGate(0, (1, 2), TruthTable(2))
        assert gate.to_mct_gates() == []

    def test_constant_one_function_single_not(self):
        gate = SingleTargetGate(0, (1, 2), TruthTable.constant(2, True))
        mcts = gate.to_mct_gates()
        assert len(mcts) == 1
        assert mcts[0].num_controls == 0

    def test_control_lines_non_contiguous(self):
        function = TruthTable.from_function(2, lambda a, b: a ^ b)
        gate = SingleTargetGate(1, (0, 3), function)
        mcts = gate.to_mct_gates()
        used = {line for mct in mcts for line in mct.controls}
        assert used <= {0, 3}


class TestCascadeLowering:
    def test_cascade(self):
        f1 = TruthTable.from_function(1, lambda a: a)
        f2 = TruthTable.from_function(1, lambda a: not a)
        gates = [
            SingleTargetGate(1, (0,), f1),
            SingleTargetGate(0, (1,), f2),
        ]
        circ = single_target_gates_to_circuit(gates, 2)
        value = 0b01
        for gate in gates:
            value = gate.apply(value)
        assert circ.apply(0b01) == value

"""Unit tests for linear (CNOT-only) circuit synthesis."""

import random

import pytest

from repro.core.circuit import QuantumCircuit
from repro.synthesis.linear import (
    Gf2Matrix,
    cnot_circuit_to_matrix,
    gaussian_synthesis,
    pmh_synthesis,
)


class TestGf2Matrix:
    def test_identity(self):
        matrix = Gf2Matrix.identity(4)
        assert matrix.is_identity()
        assert matrix.rank() == 4

    def test_from_lists(self):
        matrix = Gf2Matrix.from_lists([[1, 1], [0, 1]])
        assert matrix.entry(0, 0) == 1
        assert matrix.entry(0, 1) == 1
        assert matrix.entry(1, 0) == 0

    def test_apply(self):
        matrix = Gf2Matrix.from_lists([[1, 1], [0, 1]])
        # y0 = x0 ^ x1, y1 = x1
        assert matrix.apply(0b01) == 0b01
        assert matrix.apply(0b10) == 0b11

    def test_multiply_identity(self):
        matrix = Gf2Matrix.random_invertible(4, seed=2)
        assert matrix.multiply(Gf2Matrix.identity(4)) == matrix

    def test_inverse(self):
        matrix = Gf2Matrix.random_invertible(5, seed=3)
        assert matrix.multiply(matrix.inverse()).is_identity()

    def test_singular_inverse_rejected(self):
        singular = Gf2Matrix.from_lists([[1, 1], [1, 1]])
        with pytest.raises(ValueError):
            singular.inverse()

    def test_rank_of_singular(self):
        assert Gf2Matrix.from_lists([[1, 1], [1, 1]]).rank() == 1

    def test_random_invertible_is_invertible(self):
        for seed in range(5):
            assert Gf2Matrix.random_invertible(6, seed=seed).rank() == 6


class TestSynthesis:
    @pytest.mark.parametrize("seed", range(12))
    def test_gaussian_round_trip(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 7)
        matrix = Gf2Matrix.random_invertible(n, seed=seed)
        circuit = gaussian_synthesis(matrix)
        assert cnot_circuit_to_matrix(circuit) == matrix
        assert all(g.name == "cx" for g in circuit)

    @pytest.mark.parametrize("seed", range(12))
    def test_pmh_round_trip(self, seed):
        rng = random.Random(seed + 100)
        n = rng.randint(1, 8)
        matrix = Gf2Matrix.random_invertible(n, seed=seed + 100)
        circuit = pmh_synthesis(matrix)
        assert cnot_circuit_to_matrix(circuit) == matrix

    def test_identity_needs_no_gates(self):
        assert len(gaussian_synthesis(Gf2Matrix.identity(4))) == 0
        assert len(pmh_synthesis(Gf2Matrix.identity(4))) == 0

    def test_single_cnot_matrix(self):
        circuit = QuantumCircuit(2).cx(0, 1)
        matrix = cnot_circuit_to_matrix(circuit)
        rebuilt = gaussian_synthesis(matrix)
        assert cnot_circuit_to_matrix(rebuilt) == matrix
        assert len(rebuilt) == 1

    def test_singular_rejected(self):
        singular = Gf2Matrix.from_lists([[1, 0], [1, 0]])
        with pytest.raises(ValueError):
            gaussian_synthesis(singular)

    def test_pmh_beats_gaussian_on_wide_matrices(self):
        """The log-factor saving must show up on average at n = 16+."""
        import statistics

        gauss, pmh = [], []
        for seed in range(8):
            matrix = Gf2Matrix.random_invertible(16, seed=seed)
            gauss.append(len(gaussian_synthesis(matrix)))
            pmh.append(len(pmh_synthesis(matrix)))
        assert statistics.mean(pmh) < statistics.mean(gauss)

    def test_section_size_parameter(self):
        matrix = Gf2Matrix.random_invertible(8, seed=4)
        for section in (1, 2, 3, 4, 8):
            circuit = pmh_synthesis(matrix, section_size=section)
            assert cnot_circuit_to_matrix(circuit) == matrix

    def test_matrix_extraction_with_swap(self):
        circuit = QuantumCircuit(2).swap(0, 1)
        matrix = cnot_circuit_to_matrix(circuit)
        assert matrix.apply(0b01) == 0b10

    def test_non_cnot_rejected(self):
        with pytest.raises(ValueError):
            cnot_circuit_to_matrix(QuantumCircuit(1).h(0))

    @pytest.mark.parametrize("seed", range(6))
    def test_unitary_agreement(self, seed):
        """The synthesized circuit's permutation equals M's action."""
        n = 4
        matrix = Gf2Matrix.random_invertible(n, seed=seed)
        circuit = pmh_synthesis(matrix)
        from repro.core.unitary import circuit_unitary, unitary_as_permutation

        perm = unitary_as_permutation(circuit_unitary(circuit))
        for x in range(1 << n):
            assert perm[x] == matrix.apply(x)

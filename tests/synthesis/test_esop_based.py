"""Unit tests for ESOP-based synthesis (the Bennett XOR oracle)."""

import random

import pytest

from repro.boolean.truth_table import MultiTruthTable, TruthTable
from repro.synthesis.esop_based import (
    esop_synthesis,
    verify_esop_circuit,
)


class TestEsopSynthesis:
    def test_single_output_layout(self):
        table = TruthTable.from_function(2, lambda a, b: a and b)
        circ = esop_synthesis(table)
        assert circ.num_lines == 3
        assert verify_esop_circuit(circ, table)

    def test_inputs_never_targets(self):
        table = TruthTable.inner_product(2)
        circ = esop_synthesis(table)
        for gate in circ:
            assert gate.target >= 4

    def test_xor_semantics_on_nonzero_target(self):
        """U|x>|y> = |x>|y ^ f(x)> also for y = 1."""
        table = TruthTable.from_function(2, lambda a, b: a ^ b)
        circ = esop_synthesis(table)
        for x in range(4):
            out = circ.apply(x | (1 << 2))
            assert (out >> 2) & 1 == 1 ^ table(x)

    def test_multi_output(self):
        tables = MultiTruthTable.from_function(3, 2, lambda x: (x * 3) & 3)
        circ = esop_synthesis(tables)
        assert circ.num_lines == 5
        assert verify_esop_circuit(circ, tables)

    @pytest.mark.parametrize("seed", range(15))
    def test_random_functions(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 6)
        m = rng.randint(1, 3)
        tables = [TruthTable(n, rng.getrandbits(1 << n)) for _ in range(m)]
        circ = esop_synthesis(tables)
        assert verify_esop_circuit(circ, tables)

    def test_constant_one_output(self):
        table = TruthTable.constant(2, True)
        circ = esop_synthesis(table)
        assert verify_esop_circuit(circ, table)
        # constant realized by an uncontrolled NOT
        assert any(g.num_controls == 0 for g in circ)

    def test_zero_function_no_gates(self):
        circ = esop_synthesis(TruthTable(3))
        assert len(circ) == 0

    def test_gate_count_equals_cube_count(self):
        from repro.boolean.esop import minimize_esop

        table = TruthTable.inner_product(2)
        circ = esop_synthesis(table)
        assert len(circ) == len(minimize_esop(table))

    def test_scales_beyond_simulation(self):
        """Oracle synthesis itself must handle ~16 input variables."""
        table = TruthTable.inner_product(8)  # 16 variables
        circ = esop_synthesis(table, effort="fast")
        assert circ.num_lines == 17
        assert len(circ) == 8  # one cube per x_i y_i pair

"""Shared fixtures and helpers for the test suite."""

import random

import numpy as np
import pytest

from repro.boolean.permutation import BitPermutation
from repro.boolean.truth_table import TruthTable
from repro.core.circuit import QuantumCircuit


@pytest.fixture
def rng():
    return random.Random(12345)


@pytest.fixture
def paper_pi():
    """The permutation of the paper's Fig. 7: pi = [0,2,3,5,7,1,4,6]."""
    return BitPermutation([0, 2, 3, 5, 7, 1, 4, 6])


@pytest.fixture
def paper_f4():
    """The bent function of Fig. 4: f = x1x2 XOR x3x4."""
    return TruthTable.from_function(
        4, lambda a, b, c, d: (a and b) ^ (c and d)
    )


def random_clifford_t_circuit(num_qubits, num_gates, seed=0):
    """A random circuit over the Clifford+T basis (no measurement)."""
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits)
    one_qubit = ["h", "x", "y", "z", "s", "sdg", "t", "tdg"]
    for _ in range(num_gates):
        if num_qubits >= 2 and rng.random() < 0.35:
            a, b = rng.sample(range(num_qubits), 2)
            if rng.random() < 0.8:
                circuit.cx(a, b)
            else:
                circuit.cz(a, b)
        else:
            getattr(circuit, rng.choice(one_qubit))(
                rng.randrange(num_qubits)
            )
    return circuit


def assert_states_equal(state_a, state_b, atol=1e-9):
    assert state_a.num_qubits == state_b.num_qubits
    fidelity = abs(np.vdot(state_a.data, state_b.data)) ** 2
    assert fidelity > 1 - atol, f"states differ (fidelity {fidelity})"

"""Shared fixtures and helpers for the test suite."""

import random

import pytest

from repro.boolean.permutation import BitPermutation
from repro.boolean.truth_table import TruthTable


@pytest.fixture
def rng():
    return random.Random(12345)


@pytest.fixture
def paper_pi():
    """The permutation of the paper's Fig. 7: pi = [0,2,3,5,7,1,4,6]."""
    return BitPermutation([0, 2, 3, 5, 7, 1, 4, 6])


@pytest.fixture
def paper_f4():
    """The bent function of Fig. 4: f = x1x2 XOR x3x4."""
    return TruthTable.from_function(
        4, lambda a, b, c, d: (a and b) ^ (c and d)
    )


# Re-exported for backwards compatibility; the canonical home of these
# helpers is tests/_helpers.py so test modules can import them without
# relying on the ambiguous top-level module name "conftest".
from _helpers import assert_states_equal, random_clifford_t_circuit  # noqa: E402,F401

"""Async session execution: ordering, bounds, cancellation, errors."""

import asyncio
import threading

import pytest

from repro.boolean.permutation import BitPermutation
from repro.compiler import CompilerSession
from repro.pipeline import (
    Flow,
    PassCache,
    PipelineError,
    SynthesisPass,
)
from repro.synthesis.transformation import transformation_based_synthesis


class TestCompileManyAsync:
    def test_results_follow_input_order(self):
        session = CompilerSession(
            target="toffoli", cache=PassCache(), max_workers=4
        )
        workloads = [{"hwb": n} for n in (3, 4, 5)] * 2
        results = asyncio.run(session.compile_many_async(workloads))
        assert [r.reversible.num_lines for r in results] == [3, 4, 5, 3, 4, 5]

    def test_matches_sync_batch(self):
        workloads = [{"hwb": n} for n in (3, 4)]
        sync = CompilerSession(target="clifford_t", cache=None).compile_many(
            workloads
        )
        session = CompilerSession(target="clifford_t", cache=None)
        batched = asyncio.run(session.compile_many_async(workloads))
        for a, b in zip(sync, batched):
            assert a.circuit.gates == b.circuit.gates

    def test_empty_batch(self):
        session = CompilerSession(cache=None)
        assert asyncio.run(session.compile_many_async([])) == []

    def test_usable_from_a_running_loop(self):
        session = CompilerSession(target="toffoli", cache=PassCache())

        async def story():
            # two overlapping batches on one loop, one shared cache
            first, second = await asyncio.gather(
                session.compile_many_async([{"hwb": 3}]),
                session.compile_many_async([{"hwb": 3}]),
            )
            return first[0], second[0]

        one, other = asyncio.run(story())
        assert one.reversible.gates == other.reversible.gates

    def test_bounded_in_flight_concurrency(self):
        active = {"now": 0, "peak": 0}
        lock = threading.Lock()

        def counting_synthesis(perm):
            with lock:
                active["now"] += 1
                active["peak"] = max(active["peak"], active["now"])
            try:
                return transformation_based_synthesis(perm)
            finally:
                with lock:
                    active["now"] -= 1

        flow = Flow(
            name="counting",
            description="synthesis with a concurrency probe",
            passes=(SynthesisPass(counting_synthesis),),
        )
        session = CompilerSession(cache=None, max_workers=8)
        workloads = [
            BitPermutation([(j + i) % 8 for j in range(8)])
            for i in range(8)
        ]
        asyncio.run(
            session.compile_many_async(workloads, flow=flow, max_in_flight=2)
        )
        assert active["peak"] <= 2

    def test_exception_propagates_unwrapped(self):
        session = CompilerSession(target="toffoli", cache=None)
        with pytest.raises(TypeError, match="workload"):
            asyncio.run(
                session.compile_many_async([{"hwb": 3}, object()])
            )

    def test_pipeline_error_propagates_unwrapped(self):
        session = CompilerSession(cache=None)
        with pytest.raises(PipelineError, match="unknown flow"):
            asyncio.run(
                session.compile_many_async([{"hwb": 3}], flow="warp")
            )

    def test_failure_cancels_remaining_jobs(self):
        started = []
        lock = threading.Lock()

        def tracking_synthesis(perm):
            with lock:
                started.append(perm)
            return transformation_based_synthesis(perm)

        flow = Flow(
            name="tracking",
            description="records which jobs ever started",
            passes=(SynthesisPass(tracking_synthesis),),
        )
        session = CompilerSession(cache=None)
        workloads = [object()] + [
            BitPermutation(list(range(8))) for _ in range(16)
        ]
        with pytest.raises(TypeError):
            asyncio.run(
                session.compile_many_async(
                    workloads, flow=flow, max_in_flight=1
                )
            )
        # with the bad job first and one-at-a-time flight, the failure
        # cancels the queue before most of it ever starts
        assert len(started) < 16

    def test_cancellation_propagates(self):
        session = CompilerSession(target="clifford_t", cache=None)

        async def cancel_midway():
            batch = asyncio.ensure_future(
                session.compile_many_async(
                    [{"hwb": 6}] * 4, max_in_flight=1
                )
            )
            await asyncio.sleep(0.01)
            batch.cancel()
            with pytest.raises(asyncio.CancelledError):
                await batch

        asyncio.run(cancel_midway())


class TestSweepAsync:
    GRID = {"hwb": [3, 4], "synthesis": ["tbs", "tbs-bidir"]}

    def test_matches_sync_sweep(self):
        serial = CompilerSession(cache=PassCache(), max_workers=1).sweep(
            self.GRID
        )
        session = CompilerSession(cache=PassCache(), max_workers=4)
        swept = asyncio.run(session.sweep_async(self.GRID))
        assert [p.params for p in serial] == [p.params for p in swept]
        for a, b in zip(serial, swept):
            assert a.result.circuit.gates == b.result.circuit.gates

    def test_rejects_flow_override(self):
        session = CompilerSession(flow="eq5", cache=None)
        with pytest.raises(PipelineError, match="flow= override"):
            asyncio.run(session.sweep_async({"hwb": [3]}))

    def test_shares_cache_with_sync_paths(self):
        cache = PassCache()
        session = CompilerSession(cache=cache, max_workers=4)
        asyncio.run(session.sweep_async(self.GRID))
        repeat = session.sweep(self.GRID)
        assert all(
            point.result.cache_hits == len(point.result.records)
            for point in repeat
        )


class TestProcessExecutorAsync:
    def test_process_pool_batch(self, tmp_path):
        session = CompilerSession(
            target="toffoli",
            cache=str(tmp_path / "tier"),
            executor="process",
            max_workers=2,
        )
        results = asyncio.run(
            session.compile_many_async([{"hwb": 3}, {"hwb": 4}])
        )
        assert [r.reversible.num_lines for r in results] == [3, 4]
        # the disk tier the workers fed now serves this process
        replay = CompilerSession(
            target="toffoli", cache=str(tmp_path / "tier")
        ).compile({"hwb": 4})
        assert replay.cache_hits == len(replay.records)

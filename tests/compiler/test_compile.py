"""The compile facade: target resolution, preset equivalence, emission."""

import pytest

import repro
from repro.compiler import (
    CompilationResult,
    EmissionError,
    Target,
    get_target,
    list_targets,
    register_target,
    targets,
)
from repro.core.circuit import QuantumCircuit
from repro.frameworks.qsharp import parse_operation_body
from repro.pipeline import FlowState, Pipeline, PipelineError, flows
from repro.synthesis.transformation import transformation_based_synthesis


class TestPresetEquivalence:
    """repro.compile() reproduces the hand-wired presets gate-for-gate."""

    def test_eq5_gate_for_gate(self):
        direct = flows.EQ5.run(pipeline=Pipeline(cache=None))
        facade = repro.compile(
            {"hwb": 4}, target="clifford_t", cache=None
        )
        assert facade.circuit.gates == direct.quantum.gates
        assert facade.reversible.gates == direct.reversible.gates
        assert [r.name for r in facade.records] == [
            r.name for r in direct.records
        ]
        assert (
            facade.statistics.as_dict()
            == direct.state.artifacts["statistics"].as_dict()
        )

    def test_qsharp_gate_for_gate(self, paper_pi):
        direct = flows.QSHARP.run(
            FlowState(function=paper_pi), pipeline=Pipeline(cache=None)
        )
        facade = repro.compile(paper_pi, target="qsharp", cache=None)
        assert facade.circuit.gates == direct.quantum.gates

    def test_device_gate_for_gate(self, paper_pi):
        source = flows.QSHARP.run(
            FlowState(function=paper_pi), pipeline=Pipeline(cache=None)
        ).quantum
        direct = flows.DEVICE.run(
            FlowState(quantum=source.copy()),
            pipeline=Pipeline(cache=None),
        )
        facade = repro.compile(
            source.copy(), target="ibm_qe5", cache=None
        )
        assert facade.circuit.gates == direct.quantum.gates
        assert (
            facade.routing.initial_layout == direct.routing.initial_layout
        )

    def test_explicit_flow_overrides_target(self):
        direct = flows.EQ5.run(pipeline=Pipeline(cache=None))
        facade = repro.compile(None, flow=flows.EQ5, cache=None)
        assert facade.circuit.gates == direct.quantum.gates

    def test_named_flow_string(self):
        direct = flows.EQ5.run(pipeline=Pipeline(cache=None))
        facade = repro.compile(None, flow="eq5", cache=None)
        assert facade.circuit.gates == direct.quantum.gates

    def test_explicit_flow_rejects_generator_workload(self):
        with pytest.raises(PipelineError, match="generator pass"):
            repro.compile({"hwb": 6}, flow="eq5", cache=None)

    def test_explicit_flow_rejects_clobbered_function(self, paper_pi):
        # EQ5's GeneratePass would overwrite the permutation
        with pytest.raises(PipelineError, match="overwrite"):
            repro.compile(paper_pi, flow="eq5", cache=None)

    def test_explicit_flow_rejects_clobbered_circuits(self, paper_pi):
        # ... and would equally discard circuit-level workloads
        from repro.synthesis.transformation import (
            transformation_based_synthesis,
        )

        with pytest.raises(PipelineError, match="overwrite or ignore"):
            repro.compile(
                QuantumCircuit(2).h(0).cx(0, 1), flow="eq5", cache=None
            )
        with pytest.raises(PipelineError, match="overwrite or ignore"):
            repro.compile(
                transformation_based_synthesis(paper_pi),
                flow="eq5",
                cache=None,
            )

    def test_explicit_flow_accepts_consumed_function(self, paper_pi):
        # QSHARP consumes the seeded function: legitimate combination
        direct = flows.QSHARP.run(
            FlowState(function=paper_pi), pipeline=Pipeline(cache=None)
        )
        facade = repro.compile(paper_pi, flow="qsharp", cache=None)
        assert facade.circuit.gates == direct.quantum.gates

    def test_toffoli_level_zero_is_raw_synthesis(self, paper_pi):
        facade = repro.compile(
            paper_pi,
            target=targets.TOFFOLI.with_(optimization_level=0),
            cache=None,
        )
        assert (
            facade.reversible.gates
            == transformation_based_synthesis(paper_pi).gates
        )
        assert facade.circuit is None


class TestTargets:
    def test_presets_registered(self):
        names = list_targets()
        for expected in (
            "toffoli", "clifford_t", "ibm_qe5", "qsharp", "projectq"
        ):
            assert expected in names

    def test_get_target_by_name_case_insensitive(self):
        assert get_target("CLIFFORD_T") is targets.CLIFFORD_T
        assert get_target(None) is targets.CLIFFORD_T
        assert get_target(targets.QSHARP) is targets.QSHARP

    def test_unknown_target_lists_registered(self):
        with pytest.raises(PipelineError, match="registered targets"):
            get_target("warp_drive")

    def test_register_conflict(self):
        with pytest.raises(PipelineError, match="already registered"):
            register_target(Target(name="toffoli"))

    def test_register_and_resolve_custom(self, paper_pi):
        custom = register_target(
            Target(
                name="test_custom_ll",
                optimization_level=1,
                synthesis="dbs",
            ),
            overwrite=True,
        )
        result = repro.compile(paper_pi, target="test_custom_ll", cache=None)
        assert result.record("dbs")
        assert result.target is custom

    def test_with_derives_without_registering(self):
        derived = targets.CLIFFORD_T.with_(optimization_level=0)
        assert derived.optimization_level == 0
        assert targets.CLIFFORD_T.optimization_level == 2
        assert derived.name == targets.CLIFFORD_T.name

    def test_reversible_target_rejects_circuit(self):
        with pytest.raises(PipelineError, match="reversible-level"):
            repro.compile(
                QuantumCircuit(1).h(0), target="toffoli", cache=None
            )

    def test_reversible_target_rejects_statistics_flag(self, paper_pi):
        # ps needs a quantum circuit; refuse rather than silently drop
        with pytest.raises(PipelineError, match="collect_statistics"):
            repro.compile(
                paper_pi,
                target=targets.TOFFOLI.with_(collect_statistics=True),
                cache=None,
            )

    def test_empty_workload_without_flow_rejected(self):
        with pytest.raises(PipelineError, match="nothing to compile"):
            repro.compile(None, cache=None)

    def test_target_synthesis_override(self, paper_pi):
        result = repro.compile(
            paper_pi,
            target=targets.CLIFFORD_T.with_(synthesis="tbs-bidir"),
            cache=None,
        )
        assert result.record("tbs-bidir")

    def test_routing_appended_for_function_workloads(self, paper_pi):
        result = repro.compile(paper_pi, target="ibm_qe5", cache=None)
        assert result.routing is not None
        assert result.record("route")


class TestCompilationResult:
    @pytest.fixture
    def result(self, paper_pi) -> CompilationResult:
        return repro.compile(paper_pi, target="qsharp", cache=None)

    def test_metrics_and_report(self, result):
        metrics = result.metrics()
        assert metrics["gates"] == len(result.circuit)
        assert result.record("tbs").name == "tbs"
        assert "rptm" in result.report()
        assert "target=qsharp" in result.summary()

    def test_to_qasm_round_trips(self, result):
        from repro.emit.qasm2 import from_qasm

        parsed = from_qasm(result.to_qasm())
        assert parsed.gates == result.circuit.gates
        # lazy: the second call returns the cached text
        assert result.to_qasm() is result.to_qasm()

    def test_to_qsharp_round_trips(self, result, paper_pi):
        code = result.to_qsharp(name="Oracle")
        assert "operation Oracle" in code
        parsed = parse_operation_body(code, result.circuit.num_qubits)
        assert parsed.gates == result.circuit.gates

    def test_to_projectq_replays(self, result):
        source = result.to_projectq()
        namespace = {}
        exec(source, namespace)  # noqa: S102 - generated by us
        replayed = namespace["eng"].circuit
        assert replayed.gates == result.circuit.gates

    def test_emit_uses_target_default(self, result):
        assert result.emit() == result.to_qsharp()

    def test_emit_without_format_raises(self, paper_pi):
        bare = repro.compile(paper_pi, target="clifford_t", cache=None)
        with pytest.raises(EmissionError, match="no emission format"):
            bare.emit()

    def test_emit_unknown_format_raises(self, result):
        with pytest.raises(EmissionError, match="unknown emission format"):
            result.emit("verilog")

    def test_reversible_result_cannot_emit(self, paper_pi):
        mct = repro.compile(paper_pi, target="toffoli", cache=None)
        with pytest.raises(EmissionError, match="no\\s+quantum circuit"):
            mct.to_qasm()

    def test_verify_flag_runs_verification(self, paper_pi):
        result = repro.compile(
            paper_pi, target="qsharp", verify=True, cache=None
        )
        assert result.circuit.is_clifford_t()


class TestFrameworkDispatch:
    """Rewired entry points match their pre-redesign outputs."""

    def test_qsharp_operation_matches_legacy_flow(self, paper_pi):
        from repro.frameworks.qsharp import permutation_oracle_operation

        legacy = flows.qsharp().run(
            FlowState(function=paper_pi), pipeline=Pipeline(cache=None)
        )
        operation = permutation_oracle_operation(
            paper_pi, pipeline=Pipeline(cache=None)
        )
        assert operation.circuit.gates == legacy.quantum.gates

    def test_projectq_backend_matches_legacy_flow(self):
        from repro.frameworks.projectq import CompilerBackend
        from repro.mapping.routing import CouplingMap

        circuit = QuantumCircuit(3)
        circuit.h(0).ccx(0, 1, 2).h(0)
        coupling = CouplingMap.ibm_qx2()
        legacy = flows.device(coupling=coupling, optimize=True).run(
            FlowState(quantum=circuit.copy()),
            pipeline=Pipeline(cache=None),
        )
        backend = CompilerBackend(
            coupling=coupling, pipeline=Pipeline(cache=None)
        )
        compiled = backend.compile(circuit.copy())
        assert compiled.gates == legacy.quantum.gates

    def test_hidden_shift_mm_oracle_unchanged(self, paper_pi):
        from repro.algorithms.hidden_shift import _synthesize_permutation

        assert (
            _synthesize_permutation(paper_pi, None, "tbs").gates
            == transformation_based_synthesis(paper_pi).gates
        )

    def test_grover_accepts_expression_workloads(self):
        from repro.algorithms.grover import solve_grover

        result = solve_grover("a and b", seed=7)
        assert result.is_solution
        assert result.measured == 3

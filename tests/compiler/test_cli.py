"""The ``python -m repro`` command-line front door."""

import json
import subprocess
import sys

import pytest

from repro.__main__ import main


@pytest.fixture
def run_cli(capsys):
    def _run(*argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    return _run


class TestCompileCommand:
    def test_eq5_story_from_the_shell(self, run_cli):
        code, out, _err = run_cli(
            "compile", "hwb=4", "--target", "clifford_t",
            "--stats", "--report",
        )
        assert code == 0
        assert "revgen-hwb" in out
        assert "tpar" in out
        assert "T:" in out  # the ps -c statistics block

    def test_expression_workload(self, run_cli):
        code, out, _err = run_cli("compile", "(a and b) ^ (c and d)")
        assert code == 0
        assert "t_count=" in out

    def test_emit_qasm_on_stdout(self, run_cli):
        code, out, _err = run_cli(
            "compile", "perm:0,2,3,5,7,1,4,6",
            "--target", "ibm_qe5", "--emit", "qasm",
        )
        assert code == 0
        assert out.startswith("OPENQASM 2.0;")

    def test_emit_qsharp(self, run_cli):
        code, out, _err = run_cli(
            "compile", "perm:0,2,3,5,7,1,4,6",
            "--target", "qsharp", "--emit", "qsharp",
        )
        assert code == 0
        assert "operation CompiledOperation" in out

    def test_truth_table_spec(self, run_cli):
        code, out, _err = run_cli(
            "compile", "tt:3:e8", "--target", "toffoli", "--stats"
        )
        assert code == 0
        assert "mct_gates" in out

    def test_qasm_file_workload(self, run_cli, tmp_path):
        from repro.core.circuit import QuantumCircuit

        path = tmp_path / "circuit.qasm"
        path.write_text(QuantumCircuit(2).h(0).cx(0, 1).to_qasm())
        code, out, _err = run_cli(
            "compile", str(path), "--target", "projectq"
        )
        assert code == 0
        assert "workload=qasm(circuit.qasm)" in out

    def test_json_file_workload(self, run_cli, tmp_path):
        path = tmp_path / "workload.json"
        path.write_text(json.dumps({"hwb": 3}))
        code, out, _err = run_cli("compile", str(path))
        assert code == 0
        assert "revgen(hwb=3)" in out

    def test_cache_dir_persists(self, run_cli, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, out, _err = run_cli(
            "compile", "hwb=3", "--cache-dir", cache_dir
        )
        assert code == 0
        assert "cached=0" in out
        code, out, _err = run_cli(
            "compile", "hwb=3", "--cache-dir", cache_dir
        )
        assert code == 0
        assert "cached=0" not in out

    def test_verify_flag(self, run_cli):
        code, _out, _err = run_cli("compile", "hwb=3", "--verify")
        assert code == 0

    def test_bad_workload_exits_nonzero(self, run_cli):
        code, _out, err = run_cli("compile", "definitely: not valid!")
        assert code == 2
        assert "supported workload shapes" in err

    @pytest.mark.parametrize(
        "workload", ["perm:0,1,1", "perm:0,x", "tt:4:zz"]
    )
    def test_malformed_workload_spec_exits_cleanly(self, run_cli, workload):
        code, _out, err = run_cli("compile", workload)
        assert code == 2
        assert err.startswith("error:")

    def test_corrupt_json_file_exits_cleanly(self, run_cli, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        code, _out, err = run_cli("compile", str(path))
        assert code == 2
        assert err.startswith("error:")

    def test_emission_error_exits_cleanly(self, run_cli):
        # a reversible-level target has no quantum circuit to emit
        code, _out, err = run_cli(
            "compile", "hwb=3", "--target", "toffoli", "--emit", "qasm"
        )
        assert code == 2
        assert "error: cannot emit qasm" in err

    def test_flow_preset_with_empty_seed(self, run_cli):
        code, out, _err = run_cli("compile", "-", "--flow", "eq5")
        assert code == 0
        assert "passes=6" in out

    def test_flow_preset_rejects_conflicting_workload(self, run_cli):
        # eq5 generates hwb=4 itself; a generator workload would be
        # silently discarded, so the CLI refuses the combination
        code, _out, err = run_cli("compile", "hwb=6", "--flow", "eq5")
        assert code == 2
        assert "generator pass" in err


class TestCacheCommand:
    def _warm(self, run_cli, cache_dir):
        code, _out, _err = run_cli(
            "compile", "hwb=3", "--cache-dir", cache_dir
        )
        assert code == 0

    def test_stats_json(self, run_cli, tmp_path):
        cache_dir = str(tmp_path / "tier")
        self._warm(run_cli, cache_dir)
        code, out, _err = run_cli(
            "cache", "stats", "--cache-dir", cache_dir, "--json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["path"] == cache_dir
        assert payload["entries"] > 0
        assert payload["bytes"] > 0

    def test_stats_text(self, run_cli, tmp_path):
        cache_dir = str(tmp_path / "tier")
        self._warm(run_cli, cache_dir)
        code, out, _err = run_cli("cache", "stats", "--cache-dir", cache_dir)
        assert code == 0
        assert "entries" in out and "bytes" in out

    def test_gc_enforces_budget(self, run_cli, tmp_path):
        cache_dir = str(tmp_path / "tier")
        self._warm(run_cli, cache_dir)
        code, out, _err = run_cli(
            "cache", "gc", "--cache-dir", cache_dir,
            "--max-entries", "1", "--json",
        )
        assert code == 0
        swept = json.loads(out)
        assert swept["evicted"] > 0
        assert swept["entries"] <= 1
        # the surviving tier still works
        code, out, _err = run_cli(
            "cache", "stats", "--cache-dir", cache_dir, "--json"
        )
        assert code == 0
        assert json.loads(out)["entries"] <= 1

    def test_gc_drops_corrupt_entries(self, run_cli, tmp_path):
        cache_dir = tmp_path / "tier"
        self._warm(run_cli, str(cache_dir))
        entries = sorted(cache_dir.glob("*.json"))
        entries[0].write_text("{torn write")
        code, out, _err = run_cli(
            "cache", "gc", "--cache-dir", str(cache_dir), "--json"
        )
        assert code == 0
        assert json.loads(out)["evicted"] == 1

    def test_clear_empties_the_tier(self, run_cli, tmp_path):
        cache_dir = str(tmp_path / "tier")
        self._warm(run_cli, cache_dir)
        code, out, _err = run_cli(
            "cache", "clear", "--cache-dir", cache_dir, "--json"
        )
        assert code == 0
        assert json.loads(out)["cleared"] > 0
        code, out, _err = run_cli(
            "cache", "stats", "--cache-dir", cache_dir, "--json"
        )
        assert code == 0
        assert json.loads(out)["entries"] == 0

    def test_missing_directory_exits_nonzero(self, run_cli, tmp_path):
        for action in ("stats", "gc", "clear"):
            code, _out, err = run_cli(
                "cache", action, "--cache-dir", str(tmp_path / "nope")
            )
            assert code == 2
            assert "does not exist" in err

    def test_compile_after_gc_recompiles_evicted_passes(self, run_cli, tmp_path):
        cache_dir = str(tmp_path / "tier")
        self._warm(run_cli, cache_dir)
        code, _out, _err = run_cli(
            "cache", "gc", "--cache-dir", cache_dir, "--max-entries", "0"
        )
        assert code == 0
        code, out, _err = run_cli(
            "compile", "hwb=3", "--cache-dir", cache_dir
        )
        assert code == 0
        assert "cached=0" in out  # everything was evicted, so cold


class TestTargetsCommand:
    def test_lists_presets(self, run_cli):
        code, out, _err = run_cli("targets")
        assert code == 0
        for name in ("toffoli", "clifford_t", "ibm_qe5", "qsharp"):
            assert name in out

    def test_shows_canonical_emitters(self, run_cli):
        code, out, _err = run_cli("targets")
        assert code == 0
        assert "emit=qasm2" in out
        assert "emit=projectq" in out


class TestFormatsCommand:
    def test_lists_registered_formats(self, run_cli):
        from repro import emit

        code, out, _err = run_cli("formats")
        assert code == 0
        for name in emit.formats():
            assert name in out
        assert "aka qasm" in out
        assert "round-trip" in out

    def test_names_mode_is_script_friendly(self, run_cli):
        from repro import emit

        code, out, _err = run_cli("formats", "--names")
        assert code == 0
        assert tuple(out.split()) == emit.formats()


class TestBackendsCommand:
    def test_lists_every_builtin_with_availability(self, run_cli):
        from repro.simulator import backends

        code, out, _err = run_cli("backends")
        assert code == 0
        # every builtin appears whether or not its dependency is there
        for cls in (backends.NumpyBackend, backends.NumbaBackend,
                    backends.NumbaParallelBackend):
            assert cls.name in out
        assert "aka np/default" in out
        if not backends.NumbaParallelBackend.available():
            assert "pip install numba" in out

    def test_names_mode_lists_only_usable_backends(self, run_cli):
        from repro.simulator import backends

        code, out, _err = run_cli("backends", "--names")
        assert code == 0
        assert tuple(out.split()) == backends.backends()


class TestEmitMatrix:
    @pytest.mark.parametrize(
        "fmt, marker",
        [
            ("qasm2", "OPENQASM 2.0;"),
            ("qasm3", "OPENQASM 3.0;"),
            ("qsharp", "operation CompiledOperation"),
            ("projectq", "MainEngine()"),
            ("cirq", "cirq.Circuit"),
            ("qir", "__quantum__qis__"),
        ],
    )
    def test_every_builtin_format_emits(self, run_cli, fmt, marker):
        code, out, _err = run_cli(
            "compile", "perm:0,2,3,5,7,1,4,6",
            "--target", "ibm_qe5", "--emit", fmt,
        )
        assert code == 0
        assert marker in out

    def test_unknown_emit_format_exits_with_listing(self, run_cli):
        code, _out, err = run_cli(
            "compile", "hwb=3", "--emit", "verilog"
        )
        assert code == 2
        assert "unknown emission format" in err
        assert "qasm2" in err

    def test_emitted_qasm_parses_back(self, run_cli, tmp_path):
        code, out, _err = run_cli(
            "compile", "perm:0,2,3,5,7,1,4,6",
            "--target", "ibm_qe5", "--emit", "qasm2",
        )
        assert code == 0
        path = tmp_path / "roundtrip.qasm"
        path.write_text(out)
        code, second, _err = run_cli(
            "compile", str(path), "--target", "ibm_qe5", "--emit", "qasm2"
        )
        assert code == 0


class TestModuleInvocation:
    def test_python_dash_m_repro(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "targets"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "clifford_t" in proc.stdout

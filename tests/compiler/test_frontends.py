"""Frontend auto-detection: every workload shape, ambiguity, errors."""

import pytest

from repro.boolean.bdd import Bdd
from repro.boolean.cube import Cube
from repro.boolean.permutation import BitPermutation
from repro.boolean.truth_table import MultiTruthTable, TruthTable
from repro.compiler import Workload, as_truth_table, detect_workload
from repro.compiler.frontends import expression_to_truth_table
from repro.core.circuit import QuantumCircuit
from repro.pipeline import FlowState
from repro.synthesis.reversible import ReversibleCircuit


class TestShapeDetection:
    def test_truth_table(self, paper_f4):
        workload = detect_workload(paper_f4)
        assert workload.kind == "truth_table"
        assert workload.state.function is paper_f4
        assert workload.synthesis == "esop"
        assert workload.needs_synthesis

    def test_permutation(self, paper_pi):
        workload = detect_workload(paper_pi)
        assert workload.kind == "permutation"
        assert workload.state.function is paper_pi
        assert workload.synthesis == "tbs"

    def test_reversible_multi_truth_table(self, paper_pi):
        tables = MultiTruthTable(
            [
                TruthTable.from_function(
                    3, lambda a, b, c, _j=j: bool(
                        (paper_pi(a + 2 * b + 4 * c) >> _j) & 1
                    )
                )
                for j in range(3)
            ]
        )
        workload = detect_workload(tables)
        assert workload.kind == "permutation"
        assert workload.state.function == paper_pi

    def test_predicate(self):
        workload = detect_workload(lambda a, b: a and not b)
        assert workload.kind == "truth_table"
        assert workload.state.function.num_vars == 2

    def test_expression_string(self):
        workload = detect_workload("(a and b) ^ (c and d)")
        assert workload.kind == "truth_table"
        table = workload.state.function
        # variables bind in sorted order: a is bit 0
        expected = TruthTable.from_function(
            4, lambda a, b, c, d: (a and b) ^ (c and d)
        )
        assert table.bits == expected.bits

    def test_generator_spec_string_and_dict(self):
        for spec in ("hwb=4", {"hwb": 4}):
            workload = detect_workload(spec)
            assert workload.kind == "generator"
            assert workload.needs_synthesis
            assert len(workload.prelude) == 1
            assert workload.prelude[0].name == "revgen-hwb"

    def test_generator_spec_with_options(self):
        workload = detect_workload("adder=3,const=2")
        assert workload.prelude[0].signature() == (
            "adder", 3, (("constant", 2),)
        )

    def test_esop_cube_list(self):
        cubes = [
            Cube.from_literals([(0, True), (1, True)]),
            Cube.from_literals([(2, True), (3, True)]),
        ]
        workload = detect_workload(cubes)
        assert workload.kind == "truth_table"
        expected = TruthTable.from_function(
            4, lambda a, b, c, d: (a and b) ^ (c and d)
        )
        assert workload.state.function.bits == expected.bits

    def test_bdd_pair(self):
        manager = Bdd(3)
        table = TruthTable.from_values([0, 1, 0, 1, 0, 0, 1, 1])
        node = manager.from_truth_table(table)
        workload = detect_workload((manager, node))
        assert workload.kind == "truth_table"
        assert workload.synthesis == "bdd"
        assert workload.state.function.bits == table.bits

    def test_circuit_passthrough_skips_synthesis(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        workload = detect_workload(circuit)
        assert workload.kind == "circuit"
        assert not workload.needs_synthesis
        assert workload.state.quantum is circuit

    def test_reversible_passthrough(self):
        cascade = ReversibleCircuit(3).toffoli(0, 1, 2)
        workload = detect_workload(cascade)
        assert workload.kind == "reversible"
        assert not workload.needs_synthesis

    def test_flow_state_passthrough(self, paper_pi):
        state = FlowState(function=paper_pi)
        workload = detect_workload(state)
        assert workload.kind == "state"
        assert workload.needs_synthesis
        assert workload.synthesis == "tbs"

    def test_workload_passthrough_is_identity(self, paper_pi):
        workload = detect_workload(paper_pi)
        assert detect_workload(workload) is workload

    def test_none_is_empty(self):
        workload = detect_workload(None)
        assert workload.kind == "empty"
        assert not workload.needs_synthesis


class TestIntSequences:
    def test_permutation_image(self):
        workload = detect_workload([0, 2, 3, 5, 7, 1, 4, 6])
        assert workload.kind == "permutation"

    def test_value_list(self):
        workload = detect_workload([0, 1, 1, 0, 1, 0, 0, 1])
        assert workload.kind == "truth_table"

    @pytest.mark.parametrize("ambiguous", [[0, 1], [1, 0]])
    def test_ambiguous_sequence_raises_actionable(self, ambiguous):
        with pytest.raises(TypeError) as excinfo:
            detect_workload(ambiguous)
        message = str(excinfo.value)
        assert "ambiguous" in message
        assert "BitPermutation" in message
        assert "TruthTable.from_values" in message

    def test_bad_length_raises_actionable(self):
        with pytest.raises(TypeError, match="power of two"):
            detect_workload([0, 1, 2])

    def test_bad_values_raise_actionable(self):
        with pytest.raises(TypeError, match="neither a permutation"):
            detect_workload([5, 5, 5, 5])


class TestErrors:
    def test_unsupported_type_lists_shapes(self):
        with pytest.raises(TypeError) as excinfo:
            detect_workload(3.14)
        message = str(excinfo.value)
        assert "supported workload shapes" in message
        assert "BitPermutation" in message

    def test_irreversible_multi_truth_table(self):
        tables = MultiTruthTable([TruthTable(2), TruthTable(2)])
        with pytest.raises(TypeError, match="not reversible"):
            detect_workload(tables)

    def test_dict_without_family_key(self):
        with pytest.raises(TypeError, match="generator family"):
            detect_workload({"wat": 4})

    def test_garbage_string(self):
        with pytest.raises(TypeError, match="neither a generator spec"):
            detect_workload("totally: not! valid?")

    def test_expression_without_variables(self):
        with pytest.raises(TypeError, match="no free variables"):
            detect_workload("1")

    def test_expression_strings_are_not_evaluated_as_code(self):
        # string workloads go through the symbolic AST evaluator, so
        # call syntax (the code-execution vector) is rejected outright
        with pytest.raises(TypeError, match="Boolean fragment"):
            detect_workload("a and ().__class__.__base__")
        with pytest.raises(TypeError, match="Boolean fragment"):
            detect_workload("a or print(42)")

    def test_expression_arithmetic_points_to_predicates(self):
        with pytest.raises(TypeError, match="Python predicate"):
            detect_workload("a + b == 1")

    def test_class_workload_rejected(self):
        with pytest.raises(TypeError, match="not an\\s+instance"):
            detect_workload(TruthTable)


class TestHelpers:
    def test_expression_to_truth_table_sorted_binding(self):
        table = expression_to_truth_table("b and not a")
        expected = TruthTable.from_function(
            2, lambda a, b: b and not a
        )
        assert table.bits == expected.bits

    def test_as_truth_table_shapes(self, paper_f4):
        assert as_truth_table(paper_f4) is paper_f4
        assert (
            as_truth_table(lambda a, b: a ^ b).bits
            == TruthTable.from_function(2, lambda a, b: a ^ b).bits
        )
        assert (
            as_truth_table("a ^ b").bits
            == TruthTable.from_function(2, lambda a, b: a ^ b).bits
        )

    def test_as_truth_table_rejects_circuits(self):
        with pytest.raises(TypeError, match="Boolean function"):
            as_truth_table(QuantumCircuit(1).h(0))

    def test_as_truth_table_widens_derived_tables(self):
        # positional workloads honor num_vars by padding don't-cares
        table = as_truth_table("a and b", num_vars=3)
        assert table.num_vars == 3
        expected = TruthTable.from_function(
            3, lambda a, b, _c: a and b
        )
        assert table.bits == expected.bits
        cubes = [Cube.from_literals([(0, True)])]
        assert as_truth_table(cubes, num_vars=2).num_vars == 2

    def test_as_truth_table_num_vars_mismatch_raises(self, paper_f4):
        with pytest.raises(TypeError, match="num_vars=2"):
            as_truth_table(paper_f4, num_vars=2)
        with pytest.raises(TypeError, match="num_vars=1"):
            as_truth_table("a and b", num_vars=1)

    def test_solve_grover_honors_num_vars(self):
        from repro.algorithms.grover import solve_grover

        result = solve_grover("a and b", num_vars=3, seed=3)
        assert result.circuit.num_qubits == 3
        assert result.is_solution

    def test_with_synthesis(self, paper_pi):
        workload = detect_workload(paper_pi)
        derived = workload.with_synthesis("dbs")
        assert derived.synthesis == "dbs"
        assert workload.synthesis == "tbs"
        assert isinstance(derived, Workload)


class TestQasmWorkloads:
    QASM = (
        "OPENQASM 2.0;\n"
        'include "qelib1.inc";\n'
        "qreg q[2];\n"
        "h q[0];\n"
        "cx q[0], q[1];\n"
    )

    def test_source_text_detected_as_circuit(self):
        workload = detect_workload(self.QASM)
        assert workload.kind == "circuit"
        assert not workload.needs_synthesis
        assert len(workload.state.quantum.gates) == 2

    def test_leading_comments_and_blank_lines_allowed(self):
        commented = "// generated by a tool\n\n" + self.QASM
        workload = detect_workload(commented)
        assert workload.kind == "circuit"
        assert len(workload.state.quantum.gates) == 2

    def test_openqasm3_text_rejected_with_hint(self):
        text = "OPENQASM 3.0;\nqubit[2] q;\n"
        with pytest.raises(TypeError, match="OpenQASM 3 import"):
            detect_workload(text)

    def test_openqasm3_behind_comment_rejected_with_hint(self):
        text = "// v3 header below\nOPENQASM 3.0;\nqubit[2] q;\n"
        with pytest.raises(TypeError, match="OpenQASM 3 import"):
            detect_workload(text)

    def test_path_workload_resolves_by_extension(self, tmp_path):
        path = tmp_path / "circ.qasm"
        path.write_text(self.QASM)
        workload = detect_workload(path)
        assert workload.kind == "circuit"
        assert "circ.qasm" in workload.description

    def test_path_without_importer_lists_parseable(self, tmp_path):
        path = tmp_path / "circ.ll"
        path.write_text("; not importable\n")
        with pytest.raises(TypeError, match="no importer"):
            detect_workload(path)

    def test_unknown_extension_lists_known(self, tmp_path):
        path = tmp_path / "circ.v"
        path.write_text("module m; endmodule\n")
        with pytest.raises(TypeError, match="known\\s+extensions"):
            detect_workload(path)

"""Sessions: batched compilation, sweeps, shared and persistent caches."""

import pytest

import repro
from repro.compiler import CompilerSession, targets
from repro.pipeline import PassCache, Pipeline, PipelineError, flows


class TestCompileMany:
    def test_order_preserved(self):
        session = CompilerSession(
            target="toffoli", cache=PassCache(), max_workers=4
        )
        workloads = [{"hwb": n} for n in (3, 4, 5)] * 2
        results = session.compile_many(workloads)
        assert len(results) == 6
        sizes = [r.reversible.num_lines for r in results]
        assert sizes == [3, 4, 5, 3, 4, 5]
        # first and second round are identical objects content-wise
        for first, second in zip(results[:3], results[3:]):
            assert first.reversible.gates == second.reversible.gates

    def test_batch_shares_cache(self):
        cache = PassCache()
        session = CompilerSession(target="toffoli", cache=cache)
        session.compile_many([{"hwb": 4}] * 4)
        stats = session.cache_stats()
        assert stats["hits"] > 0
        # a repeated batch replays everything
        results = session.compile_many([{"hwb": 4}] * 2)
        assert all(
            r.cache_hits == len(r.records) for r in results
        )

    def test_empty_batch(self):
        assert CompilerSession(cache=None).compile_many([]) == []

    def test_invalid_executor(self):
        with pytest.raises(PipelineError, match="unknown executor"):
            CompilerSession(executor="fiber")


class TestSweep:
    def test_sweep_is_deterministic_and_cache_hits_on_repeat(self):
        grid = {
            "hwb": [3, 4],
            "synthesis": ["tbs", "tbs-bidir"],
            "optimization_level": [1, 2],
        }
        # serial execution makes the within-sweep hit pattern exact
        session = CompilerSession(cache=PassCache(), max_workers=1)
        first = session.sweep(grid)
        assert len(first) == 8
        # every repeated sub-flow replays: after the first point of
        # each hwb size, the shared generation stage is a cache hit,
        # and repeated (generate, synthesize) prefixes hit too
        seen_sizes = set()
        for point in first:
            generate = point.result.record("revgen-hwb")
            assert generate.cache_hit == (point.params["hwb"] in seen_sizes)
            seen_sizes.add(point.params["hwb"])
        assert first.cache_hits >= len(first) - len(seen_sizes)
        # a second identical sweep replays every pass of every point
        second = session.sweep(grid)
        assert all(
            point.result.cache_hits == len(point.result.records)
            for point in second
        )
        # determinism: same params, same circuits, same order
        assert [p.params for p in first] == [p.params for p in second]
        for a, b in zip(first, second):
            assert a.result.circuit.gates == b.result.circuit.gates

    def test_threaded_sweep_matches_serial(self):
        grid = {"hwb": [3, 4], "synthesis": ["tbs", "tbs-bidir"]}
        serial = CompilerSession(cache=PassCache(), max_workers=1).sweep(grid)
        threaded = CompilerSession(cache=PassCache(), max_workers=4).sweep(
            grid
        )
        assert [p.params for p in serial] == [p.params for p in threaded]
        for a, b in zip(serial, threaded):
            assert a.result.circuit.gates == b.result.circuit.gates

    def test_sweep_point_translation(self, paper_pi):
        session = CompilerSession(cache=None)
        result = session.sweep(
            {"synthesis": ["tbs", "dbs"]}, base=paper_pi
        )
        assert [p.params["synthesis"] for p in result] == ["tbs", "dbs"]
        assert result.points[0].result.record("tbs")
        assert result.points[1].result.record("dbs")

    def test_sweep_best_and_table(self):
        session = CompilerSession(cache=PassCache())
        result = session.sweep(
            {"hwb": [3, 4], "synthesis": ["tbs", "tbs-bidir"]}
        )
        best = result.best("t_count")
        assert best.params["hwb"] == 3
        assert "t_count=" in result.table("t_count")

    def test_sweep_unknown_key_rejected(self):
        session = CompilerSession(cache=None)
        with pytest.raises(PipelineError, match="unknown sweep parameter"):
            session.sweep({"hwb": [3], "flux_capacitor": [1]})

    def test_sweep_without_workload_rejected(self):
        session = CompilerSession(cache=None)
        with pytest.raises(PipelineError, match="selects no workload"):
            session.sweep({"synthesis": ["tbs"]})

    def test_sweep_rejects_flow_override(self):
        # an explicit flow would bypass per-point target resolution,
        # mislabeling every point with parameters that never applied
        session = CompilerSession(flow="eq5", cache=None)
        with pytest.raises(PipelineError, match="flow= override"):
            session.sweep({"hwb": [3, 4]})

    def test_sweep_target_by_name(self, paper_pi):
        session = CompilerSession(cache=None)
        result = session.sweep(
            {"target": ["toffoli", "qsharp"]}, base=paper_pi
        )
        assert result.points[0].result.circuit is None
        assert result.points[1].result.circuit is not None


class TestPersistentCache:
    def test_disk_cache_reloads_across_instances(self, tmp_path):
        path = tmp_path / "pass-cache"
        first = repro.compile(
            {"hwb": 4}, target="clifford_t", cache=str(path)
        )
        assert first.cache_hits == 0
        assert list(path.glob("*.json"))
        # a brand-new cache instance (fresh process in real life)
        # replays the whole flow from disk
        second = repro.compile(
            {"hwb": 4}, target="clifford_t", cache=str(path)
        )
        assert second.cache_hits == len(second.records)
        assert second.circuit.gates == first.circuit.gates
        assert (
            second.statistics.as_dict() == first.statistics.as_dict()
        )

    def test_disk_cache_through_session(self, tmp_path):
        path = str(tmp_path / "session-cache")
        session = CompilerSession(target="toffoli", cache=path)
        session.compile({"hwb": 4})
        other = CompilerSession(target="toffoli", cache=path)
        result = other.compile({"hwb": 4})
        assert result.cache_hits == len(result.records)
        assert other.cache_stats()["disk_hits"] > 0

    def test_disk_entries_survive_routing_results(self, tmp_path, paper_pi):
        path = str(tmp_path / "routed")
        first = repro.compile(paper_pi, target="ibm_qe5", cache=path)
        second = repro.compile(paper_pi, target="ibm_qe5", cache=path)
        replay = repro.compile(
            paper_pi, target="ibm_qe5", cache=PassCache(path=path)
        )
        assert second.circuit.gates == first.circuit.gates
        assert replay.cache_hits == len(replay.records)
        assert (
            replay.routing.final_layout == first.routing.final_layout
        )

    def test_corrupt_disk_entry_is_ignored(self, tmp_path):
        path = tmp_path / "corrupt"
        repro.compile({"hwb": 3}, target="toffoli", cache=str(path))
        for entry in path.glob("*.json"):
            entry.write_text("{not json")
        result = repro.compile(
            {"hwb": 3}, target="toffoli", cache=str(path)
        )
        assert result.cache_hits == 0
        assert result.reversible is not None

    def test_pass_cache_drop_removes_disk_entry(self, tmp_path):
        cache = PassCache(path=str(tmp_path))
        cache.put("k", {"function": None}, {})
        assert cache.get("k") is not None
        cache.drop("k")
        cache_fresh = PassCache(path=str(tmp_path))
        assert cache_fresh.get("k") is None

    def test_clear_disk(self, tmp_path):
        cache = PassCache(path=str(tmp_path))
        cache.put("k", {"function": None}, {})
        # clear(disk=True) only deletes content-named entry files
        bystander = tmp_path / "user-data.json"
        bystander.write_text("{}")
        cache.clear(disk=True)
        assert list(tmp_path.glob("*.json")) == [bystander]


class TestProcessExecutor:
    def test_in_memory_cache_rejected_upfront(self):
        with pytest.raises(PipelineError, match="in-memory PassCache"):
            CompilerSession(cache=PassCache(), executor="process")

    def test_disk_backed_pass_cache_instance_allowed(self, tmp_path):
        cache = PassCache(
            maxsize=32,
            path=str(tmp_path / "tier"),
            max_entries=64,
            max_bytes=1 << 20,
        )
        session = CompilerSession(
            target="toffoli", cache=cache, executor="process"
        )
        # the worker-side spec rebuilds the disk tier with the same
        # budgets (both tiers), so eviction policy follows the cache
        # across processes
        assert session._cache_spec == {
            "path": cache.path,
            "maxsize": 32,
            "max_entries": 64,
            "max_bytes": 1 << 20,
        }

    def test_process_pool_compiles_spec_workloads(self, tmp_path):
        session = CompilerSession(
            target="toffoli",
            cache=str(tmp_path / "procs"),
            executor="process",
            max_workers=2,
        )
        results = session.compile_many([{"hwb": 3}, {"hwb": 4}])
        assert [r.reversible.num_lines for r in results] == [3, 4]
        # the disk tier now serves a fresh in-process session
        local = CompilerSession(
            target="toffoli", cache=str(tmp_path / "procs")
        )
        replay = local.compile({"hwb": 4})
        assert replay.cache_hits == len(replay.records)


class TestSessionDefaults:
    def test_session_flow_default(self):
        session = CompilerSession(flow="eq5", cache=None)
        result = session.compile(None)
        direct = flows.EQ5.run(pipeline=Pipeline(cache=None))
        assert result.circuit.gates == direct.quantum.gates

    def test_per_call_target_override(self, paper_pi):
        session = CompilerSession(target="toffoli", cache=None)
        mct = session.compile(paper_pi)
        ct = session.compile(paper_pi, target=targets.QSHARP)
        assert mct.circuit is None
        assert ct.circuit is not None

"""Unit tests for circuit statistics (the ps -c command output)."""

from repro.core.circuit import QuantumCircuit
from repro.core.statistics import circuit_statistics


class TestStatistics:
    def test_empty_circuit(self):
        stats = circuit_statistics(QuantumCircuit(2))
        assert stats.num_gates == 0
        assert stats.depth == 0
        assert stats.t_count == 0

    def test_counts(self):
        circ = QuantumCircuit(3)
        circ.h(0).t(0).t(1).tdg(2).cx(0, 1).cx(1, 2).s(0)
        stats = circuit_statistics(circ)
        assert stats.num_qubits == 3
        assert stats.num_gates == 7
        assert stats.t_count == 3
        assert stats.two_qubit_count == 2
        # clifford: h, cx, cx, s
        assert stats.clifford_count == 4

    def test_barriers_and_measures_excluded_from_gates(self):
        circ = QuantumCircuit(1, 1).h(0).barrier().measure(0, 0)
        stats = circuit_statistics(circ)
        assert stats.num_gates == 1
        assert stats.histogram["measure"] == 1

    def test_as_dict_keys(self):
        stats = circuit_statistics(QuantumCircuit(1).t(0))
        data = stats.as_dict()
        for key in ("qubits", "gates", "depth", "t_count", "t_depth"):
            assert key in data

    def test_str_contains_figures(self):
        circ = QuantumCircuit(2).t(0).cx(0, 1)
        text = str(circuit_statistics(circ))
        assert "T: 1" in text
        assert "qubits: 2" in text

"""Unit tests for OpenQASM 2.0 export/import."""

import math

import pytest

from repro.core.circuit import QuantumCircuit
from repro.emit.qasm2 import QasmError, from_qasm, to_qasm
from repro.core.unitary import circuits_equivalent


class TestExport:
    def test_header(self):
        text = to_qasm(QuantumCircuit(3))
        assert text.startswith("OPENQASM 2.0;")
        assert 'include "qelib1.inc";' in text
        assert "qreg q[3];" in text

    def test_basic_gates(self):
        circ = QuantumCircuit(2).h(0).cx(0, 1).t(1).tdg(0)
        text = to_qasm(circ)
        assert "h q[0];" in text
        assert "cx q[0], q[1];" in text
        assert "t q[1];" in text
        assert "tdg q[0];" in text

    def test_measure_and_creg(self):
        circ = QuantumCircuit(1, 1).measure(0, 0)
        text = to_qasm(circ)
        assert "creg c[1];" in text
        assert "measure q[0] -> c[0];" in text

    def test_rotation_pi_formatting(self):
        circ = QuantumCircuit(1).rz(math.pi / 4, 0)
        assert "rz(pi/4) q[0];" in to_qasm(circ)

    def test_negative_angle_formatting(self):
        circ = QuantumCircuit(1).rz(-math.pi / 2, 0)
        assert "rz(-pi/2) q[0];" in to_qasm(circ)

    def test_ccz_expanded(self):
        circ = QuantumCircuit(3).ccz(0, 1, 2)
        text = to_qasm(circ)
        assert "ccx q[0], q[1], q[2];" in text
        assert text.count("h q[2];") == 2

    def test_mcx_rejected(self):
        circ = QuantumCircuit(4).mcx([0, 1, 2], 3)
        with pytest.raises(QasmError):
            to_qasm(circ)


class TestImportRoundTrip:
    def test_round_trip_preserves_semantics(self):
        circ = QuantumCircuit(3)
        circ.h(0).cx(0, 1).t(2).swap(0, 2).sdg(1).rz(0.7, 0)
        circ.ccx(0, 1, 2).x(1).p(math.pi / 8, 2)
        parsed = from_qasm(to_qasm(circ))
        assert parsed.num_qubits == 3
        assert circuits_equivalent(circ, parsed)

    def test_round_trip_with_measurements(self):
        circ = QuantumCircuit(2, 2).h(0).cx(0, 1)
        circ.measure(0, 0).measure(1, 1)
        parsed = from_qasm(to_qasm(circ))
        assert parsed.num_clbits == 2
        assert sum(1 for g in parsed if g.is_measurement) == 2

    def test_comments_and_blank_lines_ignored(self):
        text = """OPENQASM 2.0;
include "qelib1.inc";
// a comment
qreg q[1];

x q[0]; // trailing comment
"""
        parsed = from_qasm(text)
        assert [g.name for g in parsed] == ["x"]

    def test_angle_expressions(self):
        parsed = from_qasm(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[1];\n'
            "rz(3*pi/4) q[0];\n"
        )
        assert parsed.gates[0].params[0] == pytest.approx(3 * math.pi / 4)

    def test_unknown_gate_raises(self):
        with pytest.raises(QasmError):
            from_qasm(
                'OPENQASM 2.0;\nqreg q[1];\nfancy q[0];\n'
            )

    def test_malformed_angle_rejected(self):
        with pytest.raises(QasmError):
            from_qasm(
                'OPENQASM 2.0;\nqreg q[1];\nrz(__import__) q[0];\n'
            )

    def test_barrier_round_trip(self):
        circ = QuantumCircuit(2).h(0).barrier(0, 1).h(1)
        parsed = from_qasm(to_qasm(circ))
        assert [g.name for g in parsed] == ["h", "barrier", "h"]

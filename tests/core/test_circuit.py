"""Unit tests for the QuantumCircuit container."""

import numpy as np
import pytest

from repro.core.circuit import QuantumCircuit
from repro.core.gates import Gate
from repro.core.unitary import circuit_unitary, circuits_equivalent


class TestBuilding:
    def test_empty(self):
        circ = QuantumCircuit(3)
        assert len(circ) == 0
        assert circ.num_qubits == 3
        assert circ.depth() == 0

    def test_builder_methods_chain(self):
        circ = QuantumCircuit(2).h(0).cx(0, 1).t(1)
        assert [g.name for g in circ] == ["h", "cx", "t"]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2).h(2)

    def test_clbit_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2, 1).measure(0, 1)

    def test_mcx_degeneration(self):
        circ = QuantumCircuit(5)
        circ.mcx([], 0)
        circ.mcx([1], 0)
        circ.mcx([1, 2], 0)
        circ.mcx([1, 2, 3], 0)
        assert [g.name for g in circ] == ["x", "cx", "ccx", "mcx"]

    def test_mcz_degeneration(self):
        circ = QuantumCircuit(5)
        circ.mcz([], 0)
        circ.mcz([1], 0)
        circ.mcz([1, 2], 0)
        circ.mcz([1, 2, 3], 0)
        assert [g.name for g in circ] == ["z", "cz", "ccz", "mcz"]

    def test_measure_all_grows_clbits(self):
        circ = QuantumCircuit(3)
        circ.measure_all()
        assert circ.num_clbits == 3
        assert sum(1 for g in circ if g.is_measurement) == 3


class TestStructure:
    def test_compose_identity_mapping(self):
        a = QuantumCircuit(2).h(0)
        b = QuantumCircuit(2).cx(0, 1)
        a.compose(b)
        assert [g.name for g in a] == ["h", "cx"]

    def test_compose_with_mapping(self):
        a = QuantumCircuit(3)
        b = QuantumCircuit(2).cx(0, 1)
        a.compose(b, qubits=[2, 0])
        gate = a.gates[0]
        assert gate.controls == (2,)
        assert gate.targets == (0,)

    def test_compose_width_check(self):
        with pytest.raises(ValueError):
            QuantumCircuit(1).compose(QuantumCircuit(2).h(1))

    def test_dagger_reverses_and_inverts(self):
        circ = QuantumCircuit(2).h(0).t(0).cx(0, 1)
        dag = circ.dagger()
        assert [g.name for g in dag] == ["cx", "tdg", "h"]

    def test_dagger_is_inverse_unitary(self):
        circ = QuantumCircuit(3)
        circ.h(0).cx(0, 1).t(2).ccx(0, 1, 2).s(1)
        composed = circ.copy()
        composed.compose(circ.dagger())
        assert np.allclose(
            circuit_unitary(composed), np.eye(8), atol=1e-9
        )

    def test_power(self):
        circ = QuantumCircuit(1).t(0)
        assert circuits_equivalent(
            circ.power(2), QuantumCircuit(1).s(0)
        )
        assert circuits_equivalent(
            circ.power(-1), QuantumCircuit(1).tdg(0)
        )

    def test_remap(self):
        circ = QuantumCircuit(2).cx(0, 1)
        wide = circ.remap({0: 3, 1: 1}, num_qubits=4)
        assert wide.gates[0].controls == (3,)
        assert wide.gates[0].targets == (1,)

    def test_controlled_promotes_gates(self):
        circ = QuantumCircuit(2).x(0).cx(0, 1)
        controlled = circ.controlled()
        assert [g.name for g in controlled] == ["cx", "ccx"]
        assert controlled.num_qubits == 3
        # control wire is qubit 0
        assert all(0 in g.controls for g in controlled)

    def test_controlled_unitary_semantics(self):
        base = QuantumCircuit(1).x(0)
        controlled = base.controlled()
        reference = QuantumCircuit(2).cx(0, 1)
        assert circuits_equivalent(controlled, reference)


class TestMetrics:
    def test_depth_parallel_gates(self):
        circ = QuantumCircuit(2).h(0).h(1)
        assert circ.depth() == 1

    def test_depth_serial_gates(self):
        circ = QuantumCircuit(2).h(0).cx(0, 1).h(1)
        assert circ.depth() == 3

    def test_barrier_not_counted_in_depth(self):
        circ = QuantumCircuit(2).h(0).barrier().h(0)
        assert circ.depth() == 2

    def test_t_count(self):
        circ = QuantumCircuit(1).t(0).tdg(0).s(0)
        assert circ.t_count() == 2

    def test_t_depth_parallel(self):
        circ = QuantumCircuit(2).t(0).t(1)
        assert circ.t_depth() == 1

    def test_t_depth_serial(self):
        circ = QuantumCircuit(1).t(0).h(0).t(0)
        assert circ.t_depth() == 2

    def test_two_qubit_count(self):
        circ = QuantumCircuit(3).cx(0, 1).swap(1, 2).h(0).ccx(0, 1, 2)
        assert circ.two_qubit_count() == 2

    def test_count_ops(self):
        circ = QuantumCircuit(2).h(0).h(1).cx(0, 1)
        assert circ.count_ops() == {"h": 2, "cx": 1}

    def test_is_clifford_t(self):
        assert QuantumCircuit(2).h(0).t(0).cx(0, 1).is_clifford_t()
        assert not QuantumCircuit(3).ccx(0, 1, 2).is_clifford_t()

    def test_is_clifford(self):
        assert QuantumCircuit(2).h(0).s(0).cx(0, 1).is_clifford()
        assert not QuantumCircuit(1).t(0).is_clifford()

    def test_has_measurements(self):
        circ = QuantumCircuit(1, 1)
        assert not circ.has_measurements()
        circ.measure(0, 0)
        assert circ.has_measurements()


class TestEquality:
    def test_equal_circuits(self):
        a = QuantumCircuit(2).h(0).cx(0, 1)
        b = QuantumCircuit(2).h(0).cx(0, 1)
        assert a == b

    def test_copy_is_independent(self):
        a = QuantumCircuit(2).h(0)
        b = a.copy()
        b.x(1)
        assert len(a) == 1
        assert len(b) == 2

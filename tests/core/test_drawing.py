"""Unit tests for the ASCII circuit drawer."""

from repro.core.circuit import QuantumCircuit
from repro.core.drawing import draw_circuit, draw_reversible
from repro.synthesis.reversible import ReversibleCircuit


class TestDrawCircuit:
    def test_wire_labels(self):
        text = draw_circuit(QuantumCircuit(3).h(0))
        lines = text.splitlines()
        assert lines[0].startswith("q0:")
        assert lines[2].startswith("q2:")

    def test_gate_symbols(self):
        circ = QuantumCircuit(2).h(0).t(1).tdg(0).s(1)
        text = draw_circuit(circ)
        assert "H" in text
        assert "T+" in text
        assert "S" in text

    def test_cnot_rendering(self):
        text = draw_circuit(QuantumCircuit(2).cx(0, 1))
        lines = text.splitlines()
        assert "*" in lines[0]
        assert "(+)" in lines[1]

    def test_vertical_connector_through_middle_wire(self):
        text = draw_circuit(QuantumCircuit(3).cx(0, 2))
        assert "|" in text.splitlines()[1]

    def test_parallel_gates_share_column(self):
        a = draw_circuit(QuantumCircuit(2).h(0).h(1))
        b = draw_circuit(QuantumCircuit(2).h(0).cx(0, 1).h(1))
        assert len(a.splitlines()[0]) < len(b.splitlines()[0])

    def test_rotation_label(self):
        text = draw_circuit(QuantumCircuit(1).rz(0.5, 0))
        assert "Rz(0.5)" in text

    def test_measure_symbol(self):
        circ = QuantumCircuit(1, 1).measure(0, 0)
        assert "M" in draw_circuit(circ)

    def test_swap_symbol(self):
        text = draw_circuit(QuantumCircuit(2).swap(0, 1))
        assert text.count("x") >= 2

    def test_empty_circuit(self):
        text = draw_circuit(QuantumCircuit(2))
        assert len(text.splitlines()) == 2


class TestDrawReversible:
    def test_polarity_symbols(self):
        circ = ReversibleCircuit(3)
        circ.add_gate(2, (0, 1), (True, False))
        text = draw_reversible(circ)
        lines = text.splitlines()
        assert "*" in lines[0]
        assert "o" in lines[1]
        assert "(+)" in lines[2]

    def test_not_gate(self):
        circ = ReversibleCircuit(1).x(0)
        assert "(+)" in draw_reversible(circ)

    def test_line_labels(self):
        circ = ReversibleCircuit(2).cnot(0, 1)
        assert draw_reversible(circ).splitlines()[0].startswith("x0:")

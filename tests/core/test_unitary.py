"""Unit tests for dense unitary construction and equivalence checks."""

import math

import numpy as np
import pytest

from repro.core.circuit import QuantumCircuit
from repro.core.unitary import (
    allclose_up_to_global_phase,
    circuit_unitary,
    circuits_equivalent,
    unitary_as_permutation,
)


class TestCircuitUnitary:
    def test_identity(self):
        assert np.allclose(circuit_unitary(QuantumCircuit(2)), np.eye(4))

    def test_x_on_qubit0_is_lsb(self):
        unitary = circuit_unitary(QuantumCircuit(2).x(0))
        # |00> -> |01>: column 0 maps to row 1
        assert unitary[1, 0] == pytest.approx(1)
        assert unitary[3, 2] == pytest.approx(1)

    def test_x_on_qubit1_is_msb(self):
        unitary = circuit_unitary(QuantumCircuit(2).x(1))
        assert unitary[2, 0] == pytest.approx(1)

    def test_bell_circuit(self):
        unitary = circuit_unitary(QuantumCircuit(2).h(0).cx(0, 1))
        state = unitary[:, 0]
        expected = np.zeros(4, dtype=complex)
        expected[0] = expected[3] = 1 / math.sqrt(2)
        assert np.allclose(state, expected)

    def test_kron_structure_of_parallel_gates(self):
        circ = QuantumCircuit(2).h(0).x(1)
        h = circuit_unitary(QuantumCircuit(1).h(0))
        x = circuit_unitary(QuantumCircuit(1).x(0))
        # qubit 0 = LSB -> rightmost factor in kron
        assert np.allclose(circuit_unitary(circ), np.kron(x, h))

    def test_sequential_is_matrix_product(self):
        a = QuantumCircuit(2).h(0)
        b = QuantumCircuit(2).cx(0, 1)
        ab = a.copy()
        ab.compose(b)
        assert np.allclose(
            circuit_unitary(ab),
            circuit_unitary(b) @ circuit_unitary(a),
        )

    def test_ccx_with_scattered_qubits(self):
        circ = QuantumCircuit(4).ccx(3, 1, 0)
        unitary = circuit_unitary(circ)
        for x in range(16):
            expect = x ^ 1 if (x >> 3) & 1 and (x >> 1) & 1 else x
            assert unitary[expect, x] == pytest.approx(1)

    def test_measurement_rejected(self):
        circ = QuantumCircuit(1, 1).measure(0, 0)
        with pytest.raises(ValueError):
            circuit_unitary(circ)

    def test_width_guard(self):
        with pytest.raises(ValueError):
            circuit_unitary(QuantumCircuit(13))


class TestEquivalence:
    def test_global_phase_tolerated(self):
        a = QuantumCircuit(1).x(0).z(0)
        b = QuantumCircuit(1).y(0)  # Y = iXZ
        assert circuits_equivalent(a, b, up_to_phase=True)
        assert not circuits_equivalent(a, b, up_to_phase=False)

    def test_hzh_equals_x(self):
        a = QuantumCircuit(1).h(0).z(0).h(0)
        b = QuantumCircuit(1).x(0)
        assert circuits_equivalent(a, b)

    def test_different_unitaries_detected(self):
        assert not circuits_equivalent(
            QuantumCircuit(1).x(0), QuantumCircuit(1).z(0)
        )

    def test_width_mismatch(self):
        assert not circuits_equivalent(
            QuantumCircuit(1).x(0), QuantumCircuit(2).x(0)
        )

    def test_phase_helper_rejects_scaled(self):
        a = np.eye(2)
        assert not allclose_up_to_global_phase(a, 2 * a)


class TestPermutationExtraction:
    def test_cnot_permutation(self):
        perm = unitary_as_permutation(
            circuit_unitary(QuantumCircuit(2).cx(0, 1))
        )
        assert perm == [0, 3, 2, 1]

    def test_non_permutation_returns_none(self):
        assert unitary_as_permutation(
            circuit_unitary(QuantumCircuit(1).h(0))
        ) is None

    def test_phase_marked_permutation_accepted(self):
        # Z is diagonal +-1: still a permutation pattern
        perm = unitary_as_permutation(
            circuit_unitary(QuantumCircuit(1).z(0))
        )
        assert perm == [0, 1]

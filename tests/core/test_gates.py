"""Unit tests for the gate library."""

import math

import numpy as np
import pytest

from repro.core.gates import (
    Gate,
    gate_matrix,
    is_clifford_name,
    is_clifford_t_name,
    rotation_matrix,
)


class TestGateConstruction:
    def test_simple_gate(self):
        gate = Gate("h", (0,))
        assert gate.name == "h"
        assert gate.targets == (0,)
        assert gate.controls == ()
        assert gate.num_qubits == 1

    def test_controlled_gate_qubits_order(self):
        gate = Gate("cx", (2,), (5,))
        assert gate.qubits == (5, 2)
        assert gate.num_qubits == 2

    def test_duplicate_qubit_rejected(self):
        with pytest.raises(ValueError):
            Gate("cx", (1,), (1,))

    def test_measurement_flags(self):
        gate = Gate("measure", (0,), cbits=(0,))
        assert gate.is_measurement
        assert not gate.is_unitary

    def test_base_name(self):
        assert Gate("ccx", (2,), (0, 1)).base_name == "x"
        assert Gate("mcz", (3,), (0, 1, 2)).base_name == "z"
        assert Gate("h", (0,)).base_name == "h"


class TestGateMatrices:
    def test_hadamard_unitary(self):
        matrix = gate_matrix(Gate("h", (0,)))
        assert np.allclose(matrix @ matrix.conj().T, np.eye(2))
        assert np.allclose(matrix, matrix.T)

    def test_pauli_algebra(self):
        x = gate_matrix(Gate("x", (0,)))
        y = gate_matrix(Gate("y", (0,)))
        z = gate_matrix(Gate("z", (0,)))
        assert np.allclose(x @ y, 1j * z)
        assert np.allclose(x @ x, np.eye(2))

    def test_t_squared_is_s(self):
        t = gate_matrix(Gate("t", (0,)))
        s = gate_matrix(Gate("s", (0,)))
        assert np.allclose(t @ t, s)

    def test_s_squared_is_z(self):
        s = gate_matrix(Gate("s", (0,)))
        z = gate_matrix(Gate("z", (0,)))
        assert np.allclose(s @ s, z)

    def test_cnot_matrix_is_permutation(self):
        matrix = gate_matrix(Gate("cx", (0,), (1,)))
        expected = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]]
        )
        assert np.allclose(matrix, expected)

    def test_ccx_matrix_block(self):
        matrix = gate_matrix(Gate("ccx", (0,), (1, 2)))
        assert matrix.shape == (8, 8)
        # identity except bottom-right 2x2 block
        assert np.allclose(matrix[:6, :6], np.eye(6))
        assert np.allclose(matrix[6:, 6:], [[0, 1], [1, 0]])

    def test_rotation_gates_unitary(self):
        for name in ("rx", "ry", "rz", "p"):
            for angle in (0.3, -1.2, math.pi):
                matrix = rotation_matrix(name, angle)
                assert np.allclose(
                    matrix @ matrix.conj().T, np.eye(2), atol=1e-12
                )

    def test_rz_2pi_is_minus_identity(self):
        matrix = rotation_matrix("rz", 2 * math.pi)
        assert np.allclose(matrix, -np.eye(2))

    def test_p_pi_is_z(self):
        assert np.allclose(
            rotation_matrix("p", math.pi), gate_matrix(Gate("z", (0,)))
        )

    def test_swap_matrix(self):
        matrix = gate_matrix(Gate("swap", (0, 1)))
        state_01 = np.zeros(4)
        state_01[1] = 1.0
        assert np.allclose(matrix @ state_01, [0, 0, 1, 0])

    def test_non_unitary_has_no_matrix(self):
        with pytest.raises(ValueError):
            gate_matrix(Gate("measure", (0,), cbits=(0,)))


class TestDagger:
    def test_self_inverse(self):
        for name in ("h", "x", "y", "z", "swap"):
            targets = (0, 1) if name == "swap" else (0,)
            gate = Gate(name, targets)
            assert gate.dagger() == gate

    def test_adjoint_pairs(self):
        assert Gate("t", (0,)).dagger().name == "tdg"
        assert Gate("tdg", (0,)).dagger().name == "t"
        assert Gate("s", (0,)).dagger().name == "sdg"
        assert Gate("sx", (0,)).dagger().name == "sxdg"

    def test_rotation_dagger_negates_angle(self):
        gate = Gate("rz", (0,), params=(0.7,))
        assert gate.dagger().params == (-0.7,)

    def test_dagger_matrix_is_adjoint(self):
        for name, targets, controls, params in [
            ("t", (0,), (), ()),
            ("rz", (0,), (), (0.4,)),
            ("crz", (1,), (0,), (1.1,)),
            ("cp", (1,), (0,), (-0.2,)),
        ]:
            gate = Gate(name, targets, controls, params)
            assert np.allclose(
                gate.dagger().matrix(), gate.matrix().conj().T
            )

    def test_measure_cannot_be_inverted(self):
        with pytest.raises(ValueError):
            Gate("measure", (0,), cbits=(0,)).dagger()


class TestRemapAndClassify:
    def test_remap(self):
        gate = Gate("ccx", (2,), (0, 1))
        mapped = gate.remap({0: 5, 1: 6, 2: 7})
        assert mapped.targets == (7,)
        assert mapped.controls == (5, 6)

    def test_clifford_t_membership(self):
        assert is_clifford_t_name("t")
        assert is_clifford_t_name("cx")
        assert not is_clifford_t_name("ccx")
        assert not is_clifford_t_name("mcx")

    def test_clifford_membership(self):
        assert is_clifford_name("h")
        assert is_clifford_name("cx")
        assert not is_clifford_name("t")
        assert is_clifford_name("rz", (math.pi / 2,))
        assert not is_clifford_name("rz", (math.pi / 4,))

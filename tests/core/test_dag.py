"""Unit tests for the gate dependency DAG."""

from repro.core.circuit import QuantumCircuit
from repro.core.dag import CircuitDag


class TestCircuitDag:
    def test_independent_gates_have_no_edges(self):
        circ = QuantumCircuit(2).h(0).h(1)
        dag = CircuitDag(circ)
        assert dag.nodes[0].successors == set()
        assert dag.nodes[1].predecessors == set()
        assert sorted(dag.front_layer()) == [0, 1]

    def test_shared_qubit_creates_edge(self):
        circ = QuantumCircuit(2).h(0).cx(0, 1)
        dag = CircuitDag(circ)
        assert 1 in dag.nodes[0].successors
        assert 0 in dag.nodes[1].predecessors

    def test_layers(self):
        circ = QuantumCircuit(3).h(0).h(1).cx(0, 1).h(2)
        dag = CircuitDag(circ)
        layers = dag.topological_layers()
        assert layers[0] == [0, 1, 3]
        assert layers[1] == [2]

    def test_longest_path(self):
        circ = QuantumCircuit(1).h(0).t(0).h(0)
        assert CircuitDag(circ).longest_path_length() == 3

    def test_classical_bit_dependency(self):
        circ = QuantumCircuit(2, 1)
        circ.measure(0, 0)
        circ.measure(1, 0)  # same clbit -> ordered
        dag = CircuitDag(circ)
        assert 1 in dag.nodes[0].successors

    def test_all_gates_present(self):
        circ = QuantumCircuit(2).h(0).cx(0, 1).h(1).cx(1, 0)
        dag = CircuitDag(circ)
        total = sum(len(layer) for layer in dag.topological_layers())
        assert total == 4

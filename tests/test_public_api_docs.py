"""Docstring audit guard: every re-exported public symbol is documented.

PR 2's docstring audit established that every ``__all__`` symbol of
the ``repro.*`` subpackages carries at least a one-line summary.  This
test keeps that invariant from rotting as the API grows.
"""

import importlib
import inspect

import pytest

SUBPACKAGES = (
    "algorithms",
    "arith",
    "boolean",
    "compiler",
    "core",
    "emit",
    "engines",
    "mapping",
    "optimization",
    "pipeline",
    "resilience",
    "revkit",
    "simulator",
    "synthesis",
    "verify",
    "frameworks.projectq",
)

#: entry points whose docstrings must document arguments and returns.
ENTRY_POINTS = (
    "repro.compile",
    "repro.compiler.detect_workload",
    "repro.compiler.as_truth_table",
    "repro.compiler.Target.flow",
    "repro.compiler.CompilerSession.compile_many",
    "repro.compiler.CompilerSession.sweep",
    "repro.emit.register",
    "repro.emit.unregister",
    "repro.emit.get",
    "repro.emit.emit",
    "repro.emit.parse",
    "repro.emit.emitter_for_path",
    "repro.compiler.CompilationResult.emit",
    "repro.compiler.CompilationResult.simulate",
    "repro.engines.register",
    "repro.engines.unregister",
    "repro.engines.get",
    "repro.engines.run",
    "repro.engines.as_noise_model",
    "repro.engines.NoiseModel.gate_error",
    "repro.engines.DensityMatrix.from_statevector",
    "repro.pipeline.Pipeline.apply",
    "repro.pipeline.Pipeline.run",
    "repro.pipeline.PassCache.probe",
    "repro.resilience.Deadline.after",
    "repro.resilience.RetryPolicy.call",
    "repro.resilience.FaultPlan.mutate",
    "repro.pipeline.Flow.run",
    "repro.pipeline.eq5",
    "repro.pipeline.qsharp",
    "repro.pipeline.device",
    "repro.mapping.map_to_clifford_t",
    "repro.mapping.route_circuit",
    "repro.optimization.simplify_reversible",
    "repro.optimization.cancel_adjacent_gates",
    "repro.optimization.tpar_optimize",
    "repro.optimization.template_optimize",
    "repro.verify.EquivalenceChecker.check_same_unitary",
    "repro.verify.EquivalenceChecker.check_same_permutation",
    "repro.verify.EquivalenceChecker.check_specification",
    "repro.verify.EquivalenceChecker.check_mapped_circuit",
    "repro.verify.EquivalenceChecker.check_routing",
    "repro.verify.as_checker",
    "repro.pipeline.Pass.check",
)


@pytest.mark.parametrize("subpackage", SUBPACKAGES)
def test_all_exports_have_docstrings(subpackage):
    module = importlib.import_module(f"repro.{subpackage}")
    exported = getattr(module, "__all__", ())
    assert exported, f"repro.{subpackage} should declare __all__"
    missing = []
    for name in exported:
        obj = getattr(module, name, None)
        assert obj is not None, f"repro.{subpackage}.{name} is not importable"
        if inspect.ismodule(obj) or not callable(obj):
            continue
        if not inspect.getdoc(obj):
            missing.append(name)
    assert not missing, (
        f"repro.{subpackage} exports without docstrings: {missing}"
    )


@pytest.mark.parametrize("path", ENTRY_POINTS)
def test_entry_points_document_args_and_returns(path):
    module_name, _, rest = path.partition(".")
    obj = importlib.import_module(module_name)
    for part in rest.split("."):
        obj = getattr(obj, part)
    doc = inspect.getdoc(obj)
    assert doc, f"{path} has no docstring"
    assert "Args:" in doc, f"{path} docstring lacks an Args section"
    assert "Returns:" in doc, f"{path} docstring lacks a Returns section"

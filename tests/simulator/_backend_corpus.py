"""Deterministic circuit corpus shared by the backend golden tests.

The golden arrays in ``tests/simulator/golden/kernel_states.npz`` were
captured from the pre-refactor kernel layer (PR 8 tree, before the
array-backend seam existed).  The corpus here regenerates the exact
same circuits, so the NumPy backend can be asserted *identical* — not
merely close — to the historical kernels after any refactor.

Do not change this module without regenerating the goldens.
"""

import random

import numpy as np

from repro.core.circuit import QuantumCircuit

#: (name, num_qubits, seed, gates, fuse) — one golden entry per row.
CASES = (
    ("clifford_t_fused", 5, 11, 60, True),
    ("clifford_t_unfused", 5, 11, 60, False),
    ("rotations_fused", 4, 23, 48, True),
    ("wide_blocks_fused", 7, 37, 90, True),
    ("diag_heavy_fused", 6, 41, 70, True),
)


def corpus_circuit(num_qubits, seed, gates):
    """A deterministic circuit over the full named-gate vocabulary."""
    rng = random.Random(seed)
    circ = QuantumCircuit(num_qubits)
    one_q = ["h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx", "sxdg"]
    rot = ["rx", "ry", "rz", "p"]
    for _ in range(gates):
        r = rng.random()
        if r < 0.30:
            getattr(circ, rng.choice(one_q))(rng.randrange(num_qubits))
        elif r < 0.50:
            getattr(circ, rng.choice(rot))(
                rng.uniform(-3.0, 3.0), rng.randrange(num_qubits)
            )
        elif r < 0.72:
            a, b = rng.sample(range(num_qubits), 2)
            getattr(circ, rng.choice(["cx", "cy", "cz", "ch", "swap"]))(a, b)
        elif r < 0.82:
            a, b = rng.sample(range(num_qubits), 2)
            circ.crz(rng.uniform(-3.0, 3.0), a, b)
        elif r < 0.92 and num_qubits >= 3:
            a, b, c = rng.sample(range(num_qubits), 3)
            circ.ccx(a, b, c)
        elif num_qubits >= 4:
            qs = rng.sample(range(num_qubits), 4)
            circ.mcx(qs[:3], qs[3])
        else:
            circ.h(rng.randrange(num_qubits))
    return circ


def corpus_state(num_qubits, seed):
    """A deterministic normalized random complex initial state."""
    gen = np.random.default_rng(seed)
    data = gen.standard_normal(1 << num_qubits) + 1j * gen.standard_normal(
        1 << num_qubits
    )
    data /= np.linalg.norm(data)
    return data

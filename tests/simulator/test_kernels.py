"""Property tests for the in-place gate kernels and gate fusion.

Every named gate must take the dedicated kernel path, and that path
must agree with the dense tensordot reference (the seed
implementation, still reachable via ``Statevector.use_kernels =
False``) to 1e-12.  Fusion must preserve circuit semantics up to
global phase.
"""

import math
import random

import numpy as np
import pytest

from _helpers import random_clifford_t_circuit

from repro.core.circuit import QuantumCircuit
from repro.core.gates import Gate
from repro.simulator import kernels
from repro.simulator.statevector import Statevector, StatevectorSimulator


def _random_state(num_qubits, seed):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(1 << num_qubits) + 1j * rng.standard_normal(
        1 << num_qubits
    )
    data /= np.linalg.norm(data)
    return data


def _random_gate(num_qubits, rng):
    """A random named gate: 1q, 2q, controlled, or diagonal."""
    kind = rng.choice(["1q", "rot", "2q", "controlled", "diagonal", "multi"])
    if kind == "1q":
        name = rng.choice(["h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx", "sxdg"])
        return Gate(name, (rng.randrange(num_qubits),))
    if kind == "rot":
        name = rng.choice(["rx", "ry", "rz", "p"])
        return Gate(name, (rng.randrange(num_qubits),), params=(rng.uniform(-3, 3),))
    if kind == "2q":
        a, b = rng.sample(range(num_qubits), 2)
        name = rng.choice(["cx", "cy", "cz", "ch", "swap"])
        if name == "swap":
            return Gate("swap", (a, b))
        return Gate(name, (b,), (a,))
    if kind == "controlled":
        k = rng.randint(2, min(4, num_qubits - 1))
        qubits = rng.sample(range(num_qubits), k + 1)
        name = rng.choice(["mcx", "mcz"])
        canonical = {2: {"mcx": "ccx", "mcz": "ccz"}}.get(k, {}).get(name, name)
        return Gate(canonical, (qubits[-1],), tuple(qubits[:-1]))
    if kind == "diagonal":
        a, b = rng.sample(range(num_qubits), 2)
        name = rng.choice(["crz", "cp"])
        return Gate(name, (b,), (a,), params=(rng.uniform(-3, 3),))
    # multi: cswap
    a, b, c = rng.sample(range(num_qubits), 3)
    return Gate("cswap", (b, c), (a,))


@pytest.mark.parametrize("seed", range(30))
def test_kernel_matches_dense_apply_matrix(seed):
    """Kernel path == dense tensordot path for random named gates."""
    rng = random.Random(seed)
    num_qubits = rng.randint(3, 7)
    data = _random_state(num_qubits, seed)

    fast = Statevector(num_qubits, data)
    slow = Statevector(num_qubits, data)
    slow.use_kernels = False
    for _ in range(12):
        gate = _random_gate(num_qubits, rng)
        fast.apply_gate(gate)
        slow.use_kernels = False
        slow.apply_gate(gate)
    assert np.abs(fast.data - slow.data).max() < 1e-12


@pytest.mark.parametrize("seed", range(10))
def test_generic_kernel_matches_dense_for_arbitrary_matrix(seed):
    """The dense fallback kernel handles arbitrary unitary matrices."""
    rng = np.random.default_rng(seed)
    num_qubits = int(rng.integers(3, 8))
    k = int(rng.integers(1, 4))
    qubits = [int(q) for q in rng.choice(num_qubits, size=k, replace=False)]
    matrix = np.linalg.qr(
        rng.standard_normal((1 << k, 1 << k))
        + 1j * rng.standard_normal((1 << k, 1 << k))
    )[0]
    data = _random_state(num_qubits, seed + 100)
    fast = Statevector(num_qubits, data)
    slow = Statevector(num_qubits, data)
    slow.use_kernels = False
    fast.apply_matrix(matrix, qubits)
    slow.apply_matrix(matrix, qubits)
    assert np.abs(fast.data - slow.data).max() < 1e-12


def test_named_gates_take_kernel_path():
    """Every gate in the vocabulary has a dedicated kernel."""
    samples = [
        Gate("h", (0,)),
        Gate("x", (1,)),
        Gate("y", (0,)),
        Gate("z", (2,)),
        Gate("s", (0,)),
        Gate("sdg", (1,)),
        Gate("t", (2,)),
        Gate("tdg", (0,)),
        Gate("sx", (1,)),
        Gate("sxdg", (2,)),
        Gate("rx", (0,), params=(0.3,)),
        Gate("ry", (1,), params=(0.4,)),
        Gate("rz", (2,), params=(0.5,)),
        Gate("p", (0,), params=(0.6,)),
        Gate("cx", (1,), (0,)),
        Gate("cy", (2,), (0,)),
        Gate("cz", (0,), (1,)),
        Gate("ch", (2,), (1,)),
        Gate("crz", (0,), (2,), params=(0.7,)),
        Gate("cp", (1,), (2,), params=(0.8,)),
        Gate("swap", (0, 1)),
        Gate("cswap", (1, 2), (0,)),
        Gate("ccx", (2,), (0, 1)),
        Gate("ccz", (0,), (1, 2)),
        Gate("mcx", (3,), (0, 1, 2)),
        Gate("mcz", (3,), (0, 1, 2)),
        Gate("mcp", (3,), (0, 1), params=(0.9,)),
    ]
    for gate in samples:
        state = _random_state(4, 7)
        assert kernels.apply_gate(state, gate, 4), gate.name


@pytest.mark.parametrize("seed", range(15))
def test_fusion_preserves_clifford_t_equivalence(seed):
    """Fused evolution equals unfused dense evolution on random circuits."""
    rng = random.Random(seed)
    num_qubits = rng.randint(3, 6)
    circ = random_clifford_t_circuit(num_qubits, 60, seed=seed)
    fused = Statevector(num_qubits).evolve(circ, fuse=True)
    dense = Statevector(num_qubits)
    dense.use_kernels = False
    dense.evolve(circ)
    assert fused.equiv(dense, atol=1e-10)
    assert np.abs(fused.data - dense.data).max() < 1e-10


@pytest.mark.parametrize("seed", range(5))
def test_fusion_with_rotations_and_controls(seed):
    """Fusion also holds on circuits mixing rotations/controlled gates."""
    rng = random.Random(seed + 50)
    num_qubits = 5
    circ = QuantumCircuit(num_qubits)
    for _ in range(50):
        circ.append(_random_gate(num_qubits, rng))
    fused = Statevector(num_qubits).evolve(circ, fuse=True)
    unfused = Statevector(num_qubits).evolve(circ.copy(), fuse=False)
    assert np.abs(fused.data - unfused.data).max() < 1e-10


def test_compile_reduces_op_count():
    """Adjacent 1q runs and diagonal runs collapse."""
    circ = QuantumCircuit(2)
    circ.h(0).t(0).h(0).s(1).t(1).z(1)
    ops = kernels.compile_circuit(circ.gates, block_size=0)
    assert len(ops) < len(circ.gates)


def test_identity_products_are_dropped():
    circ = QuantumCircuit(1).h(0).h(0)
    ops = kernels.compile_circuit(circ.gates)
    assert ops == []


def test_diagonal_run_merges_to_single_op():
    circ = QuantumCircuit(3)
    circ.cz(0, 1).t(2).ccz(0, 1, 2).rz(0.3, 1)
    ops = kernels.compile_circuit(circ.gates, block_size=0)
    assert len(ops) == 1
    kind, (qubits, diag) = ops[0]
    assert kind == "diag"
    assert qubits == (2, 1, 0)
    # check against dense evolution
    state = _random_state(3, 3)
    expected = Statevector(3, state)
    expected.use_kernels = False
    for gate in circ.gates:
        expected.apply_gate(gate)
    got = Statevector(3, state).evolve(circ)
    assert np.abs(got.data - expected.data).max() < 1e-12


def test_block_fusion_emits_blocks_on_dense_circuits():
    """An H+CX layered circuit compiles into matmul blocks."""
    circ = QuantumCircuit(8)
    for _ in range(3):
        for q in range(8):
            circ.h(q)
        for q in range(7):
            circ.cx(q, q + 1)
    ops = kernels.compile_circuit(circ.gates)
    kinds = {kind for kind, _ in ops}
    assert "block" in kinds
    assert len(ops) < len(circ.gates) / 2


def test_batched_kernels_match_unbatched():
    """Kernels on a (2^n, b) batch equal per-column application."""
    rng = np.random.default_rng(11)
    num_qubits = 4
    batch = np.stack([_random_state(num_qubits, s) for s in range(3)], axis=1)
    gate = Gate("ch", (2,), (0,))
    expected = batch.copy()
    for col in range(3):
        column = np.ascontiguousarray(expected[:, col])
        kernels.apply_gate(column, gate, num_qubits)
        expected[:, col] = column
    got = np.ascontiguousarray(batch)
    kernels.apply_gate(got, gate, num_qubits)
    assert np.abs(got - expected).max() < 1e-12


def test_sample_counts_matches_loop_reference():
    """Vectorized bit-gather sampling equals the per-shot reference."""
    circ = QuantumCircuit(3).h(0).cx(0, 1).x(2)
    state = Statevector(3).evolve(circ)
    rng = np.random.default_rng(5)
    counts = state.sample_counts(500, rng, qubits=[2, 0])
    # reference: recompute with the same outcome draws
    rng2 = np.random.default_rng(5)
    probs = state.probabilities()
    outcomes = rng2.choice(probs.size, size=500, p=probs / probs.sum())
    expected = {}
    for outcome in outcomes:
        key = ((int(outcome) >> 2) & 1) | (((int(outcome) >> 0) & 1) << 1)
        expected[key] = expected.get(key, 0) + 1
    assert counts == expected


def test_shared_prefix_mid_circuit_run_statistics():
    """Mid-circuit runs share the unitary prefix but stay correct."""
    circ = QuantumCircuit(2, 2)
    circ.h(0).cx(0, 1)  # deterministic prefix
    circ.measure(0, 0)
    circ.x(0)
    circ.measure(0, 1)
    result = StatevectorSimulator(seed=3).run(circ, shots=200)
    assert sum(result.counts.values()) == 200
    for outcome in result.counts:
        first = outcome & 1
        second = (outcome >> 1) & 1
        assert second == first ^ 1
    # both branches of the entangled prefix must appear
    assert len(result.counts) == 2


def test_measure_qubit_matches_probabilities():
    state = Statevector.from_label("+0")
    rng = np.random.default_rng(0)
    outcome = state.measure_qubit(1, rng)  # qubit 1 is '+'
    assert outcome in (0, 1)
    assert state.norm() == pytest.approx(1.0)
    assert state.probability_of(0 if outcome == 0 else 2) == pytest.approx(1.0)

"""Unit tests for the CHP stabilizer simulator."""

import random

import numpy as np
import pytest

from repro.core.circuit import QuantumCircuit
from repro.simulator.stabilizer import (
    StabilizerError,
    StabilizerSimulator,
    StabilizerState,
)
from repro.simulator.statevector import StatevectorSimulator


def random_clifford_circuit(num_qubits, num_gates, seed, measure=True):
    rng = random.Random(seed)
    circ = QuantumCircuit(num_qubits, num_qubits)
    one_qubit = ["h", "s", "sdg", "x", "y", "z", "sx", "sxdg"]
    for _ in range(num_gates):
        if num_qubits >= 2 and rng.random() < 0.4:
            a, b = rng.sample(range(num_qubits), 2)
            choice = rng.random()
            if choice < 0.6:
                circ.cx(a, b)
            elif choice < 0.8:
                circ.cz(a, b)
            else:
                circ.swap(a, b)
        else:
            getattr(circ, rng.choice(one_qubit))(rng.randrange(num_qubits))
    if measure:
        for q in range(num_qubits):
            circ.measure(q, q)
    return circ


class TestTableauBasics:
    def test_initial_stabilizers(self):
        state = StabilizerState(2)
        assert state.stabilizer_strings() == ["+ZI", "+IZ"]

    def test_h_creates_x_stabilizer(self):
        state = StabilizerState(1)
        state.apply_h(0)
        assert state.stabilizer_strings() == ["+X"]

    def test_bell_stabilizers(self):
        state = StabilizerState(2)
        state.apply_h(0)
        state.apply_cx(0, 1)
        strings = set(state.stabilizer_strings())
        assert strings == {"+XX", "+ZZ"}

    def test_x_flips_measurement(self):
        state = StabilizerState(1)
        state.apply_x(0)
        rng = np.random.default_rng(0)
        assert state.measure(0, rng) == 1

    def test_deterministic_measurement(self):
        state = StabilizerState(2)
        state.apply_x(1)
        rng = np.random.default_rng(0)
        assert state.measure(0, rng) == 0
        assert state.measure(1, rng) == 1

    def test_random_measurement_collapses(self):
        rng = np.random.default_rng(5)
        state = StabilizerState(1)
        state.apply_h(0)
        first = state.measure(0, rng)
        # repeated measurement is now deterministic
        assert state.measure(0, rng) == first

    def test_entangled_measurement_correlation(self):
        rng = np.random.default_rng(9)
        for _ in range(20):
            state = StabilizerState(2)
            state.apply_h(0)
            state.apply_cx(0, 1)
            assert state.measure(0, rng) == state.measure(1, rng)

    def test_expectation_z(self):
        state = StabilizerState(1)
        assert state.expectation_z(0) == 0
        state.apply_x(0)
        assert state.expectation_z(0) == 1
        state.apply_h(0)
        assert state.expectation_z(0) is None

    def test_non_clifford_rejected(self):
        state = StabilizerState(1)
        from repro.core.gates import Gate

        with pytest.raises(StabilizerError):
            state.apply_gate(Gate("t", (0,)))


class TestAgainstStatevector:
    @pytest.mark.parametrize("seed", range(8))
    def test_counts_match_statevector(self, seed):
        """Stabilizer and statevector simulators must agree in
        distribution on random Clifford circuits."""
        circ = random_clifford_circuit(3, 25, seed)
        shots = 400
        stab = StabilizerSimulator(seed=seed).run(circ, shots=shots)
        sv = StatevectorSimulator(seed=seed).run(circ, shots=shots).counts
        # supports must agree and frequencies be close
        support_stab = {k for k, v in stab.items() if v > 0}
        support_sv = {k for k, v in sv.items() if v > 0}
        assert support_stab == support_sv
        for key in support_stab:
            p_stab = stab[key] / shots
            p_sv = sv[key] / shots
            assert abs(p_stab - p_sv) < 0.15

    def test_deterministic_circuit_agrees_exactly(self):
        circ = QuantumCircuit(3, 3)
        circ.x(0).cx(0, 1).cx(1, 2).x(1)
        for q in range(3):
            circ.measure(q, q)
        counts = StabilizerSimulator(seed=0).run(circ, shots=10)
        assert counts == {0b101: 10}

    def test_final_state_rejects_measurement(self):
        circ = QuantumCircuit(1, 1).measure(0, 0)
        with pytest.raises(StabilizerError):
            StabilizerSimulator().final_state(circ)

    def test_scalability_smoke(self):
        """Tableau handles widths far beyond statevector reach."""
        circ = QuantumCircuit(64, 64)
        circ.h(0)
        for q in range(63):
            circ.cx(q, q + 1)
        for q in range(64):
            circ.measure(q, q)
        counts = StabilizerSimulator(seed=1).run(circ, shots=5)
        for outcome in counts:
            assert outcome in (0, (1 << 64) - 1)

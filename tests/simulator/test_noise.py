"""Unit tests for the noisy (IBM QE substitute) backend."""

import pytest

from repro.core.circuit import QuantumCircuit
from repro.core.gates import Gate
from repro.engines import NoiseModel
from repro.simulator.noise import NoisyBackend


def bell_measure_circuit():
    circ = QuantumCircuit(2, 2).h(0).cx(0, 1)
    circ.measure(0, 0).measure(1, 1)
    return circ


class TestNoiseModel:
    def test_gate_error_classes(self):
        model = NoiseModel(p1=0.01, p2=0.02, p_meas=0.03, p_multi=0.04)
        assert model.gate_error(Gate("h", (0,))) == 0.01
        assert model.gate_error(Gate("cx", (1,), (0,))) == 0.02
        assert model.gate_error(Gate("ccx", (2,), (0, 1))) == 0.04

    def test_presets(self):
        assert NoiseModel.noiseless().p2 == 0.0
        assert NoiseModel.ibm_qe_2018().p2 > 0.01


class TestNoisyBackend:
    def test_noiseless_matches_ideal(self):
        backend = NoisyBackend(NoiseModel.noiseless(), seed=3)
        result = backend.run(bell_measure_circuit(), shots=200)
        assert set(result.counts) <= {0, 3}
        assert sum(result.counts.values()) == 200

    def test_noise_spreads_outcomes(self):
        backend = NoisyBackend(NoiseModel(p1=0.1, p2=0.2, p_meas=0.1), seed=3)
        result = backend.run(bell_measure_circuit(), shots=400)
        # heavy noise must populate states outside the Bell support
        assert any(k in result.counts for k in (1, 2))

    def test_correct_outcome_still_dominates_at_chip_noise(self):
        backend = NoisyBackend(NoiseModel.ibm_qe_2018(), seed=5)
        circ = QuantumCircuit(2, 2).x(0).measure(0, 0).measure(1, 1)
        result = backend.run(circ, shots=512)
        assert result.most_frequent() == 1
        assert result.probability(1) > 0.7

    def test_seeded_reproducibility(self):
        circ = bell_measure_circuit()
        a = NoisyBackend(seed=7).run(circ, shots=128).counts
        b = NoisyBackend(seed=7).run(circ, shots=128).counts
        assert a == b

    def test_readout_error_only(self):
        model = NoiseModel(p1=0.0, p2=0.0, p_meas=0.5, p_multi=0.0)
        backend = NoisyBackend(model, seed=1)
        circ = QuantumCircuit(1, 1).measure(0, 0)
        result = backend.run(circ, shots=600)
        # ~half the readouts flip
        assert 200 < result.counts.get(1, 0) < 400

    def test_run_repeated_shapes(self):
        backend = NoisyBackend(seed=9)
        mean, std = backend.run_repeated(bell_measure_circuit(), 128, 3)
        assert mean.shape == (4,)
        assert std.shape == (4,)
        assert mean.sum() == pytest.approx(1.0)

    def test_barrier_ignored(self):
        backend = NoisyBackend(NoiseModel.noiseless(), seed=1)
        circ = QuantumCircuit(1, 1).x(0).barrier().measure(0, 0)
        assert backend.run(circ, shots=10).counts == {1: 10}

"""Unit tests for the statevector simulator."""

import math

import numpy as np
import pytest

from repro.core.circuit import QuantumCircuit
from repro.core.unitary import circuit_unitary
from repro.simulator.statevector import (
    SimulationError,
    Statevector,
    StatevectorSimulator,
)

from _helpers import random_clifford_t_circuit


class TestStatevectorBasics:
    def test_initial_state(self):
        state = Statevector(2)
        assert state.probability_of(0) == pytest.approx(1.0)
        assert state.norm() == pytest.approx(1.0)

    def test_from_basis_state(self):
        state = Statevector.from_basis_state(3, 5)
        assert state.probability_of(5) == pytest.approx(1.0)

    def test_from_label(self):
        state = Statevector.from_label("0+")
        # label MSB-first: qubit1='0', qubit0='+'
        assert state.probability_of(0) == pytest.approx(0.5)
        assert state.probability_of(1) == pytest.approx(0.5)
        assert state.probability_of(2) == pytest.approx(0.0)

    def test_minus_label_amplitudes(self):
        state = Statevector.from_label("-")
        assert state.amplitude(0) == pytest.approx(1 / math.sqrt(2))
        assert state.amplitude(1) == pytest.approx(-1 / math.sqrt(2))

    def test_invalid_label(self):
        with pytest.raises(ValueError):
            Statevector.from_label("0x")


class TestEvolution:
    def test_bell_state(self):
        circ = QuantumCircuit(2).h(0).cx(0, 1)
        state = Statevector(2).evolve(circ)
        assert state.probability_of(0) == pytest.approx(0.5)
        assert state.probability_of(3) == pytest.approx(0.5)

    def test_ghz_state(self):
        circ = QuantumCircuit(5).h(0)
        for q in range(4):
            circ.cx(q, q + 1)
        state = Statevector(5).evolve(circ)
        assert state.probability_of(0) == pytest.approx(0.5)
        assert state.probability_of(31) == pytest.approx(0.5)

    def test_matches_dense_unitary(self):
        circ = random_clifford_t_circuit(4, 60, seed=9)
        state = Statevector(4).evolve(circ)
        expected = circuit_unitary(circ)[:, 0]
        assert np.allclose(state.data, expected, atol=1e-9)

    def test_mcx_fast_path_matches_matrix_path(self):
        circ = QuantumCircuit(5).h(0).h(1).h(2).h(3)
        circ.mcx([0, 1, 2, 3], 4)
        fast = Statevector(5).evolve(circ)
        slow = Statevector(5)
        for gate in circ.gates:
            slow.apply_matrix(gate.matrix(), gate.qubits)
        assert np.allclose(fast.data, slow.data)

    def test_mcz_fast_path_matches_matrix_path(self):
        circ = QuantumCircuit(4).h(0).h(1).h(2)
        circ.mcz([0, 1], 3)
        circ.h(3)
        fast = Statevector(4).evolve(circ)
        slow = Statevector(4)
        for gate in circ.gates:
            slow.apply_matrix(gate.matrix(), gate.qubits)
        assert np.allclose(fast.data, slow.data)

    def test_evolve_rejects_measurement(self):
        circ = QuantumCircuit(1, 1).measure(0, 0)
        with pytest.raises(SimulationError):
            Statevector(1).evolve(circ)

    def test_width_mismatch(self):
        with pytest.raises(SimulationError):
            Statevector(1).evolve(QuantumCircuit(2).h(0))

    def test_norm_preserved(self):
        circ = random_clifford_t_circuit(3, 80, seed=4)
        state = Statevector(3).evolve(circ)
        assert state.norm() == pytest.approx(1.0)


class TestMeasurement:
    def test_deterministic_measurement(self):
        rng = np.random.default_rng(0)
        state = Statevector.from_basis_state(2, 2)
        assert state.measure_qubit(0, rng) == 0
        assert state.measure_qubit(1, rng) == 1

    def test_collapse(self):
        rng = np.random.default_rng(1)
        circ = QuantumCircuit(2).h(0).cx(0, 1)
        state = Statevector(2).evolve(circ)
        first = state.measure_qubit(0, rng)
        # entangled: second measurement must agree
        second = state.measure_qubit(1, rng)
        assert first == second

    def test_measurement_statistics(self):
        rng = np.random.default_rng(7)
        ones = 0
        for _ in range(300):
            state = Statevector(1).evolve(QuantumCircuit(1).h(0))
            ones += state.measure_qubit(0, rng)
        assert 100 < ones < 200

    def test_reset(self):
        rng = np.random.default_rng(3)
        state = Statevector.from_basis_state(1, 1)
        state.reset_qubit(0, rng)
        assert state.probability_of(0) == pytest.approx(1.0)

    def test_sample_counts_subset_of_qubits(self):
        rng = np.random.default_rng(5)
        state = Statevector(2).evolve(QuantumCircuit(2).x(1))
        counts = state.sample_counts(50, rng, qubits=[1])
        assert counts == {1: 50}


class TestSimulatorRuns:
    def test_run_counts_sum_to_shots(self):
        circ = QuantumCircuit(2, 2).h(0).cx(0, 1)
        circ.measure(0, 0).measure(1, 1)
        result = StatevectorSimulator(seed=11).run(circ, shots=256)
        assert sum(result.counts.values()) == 256
        assert set(result.counts) <= {0, 3}

    def test_seeded_reproducibility(self):
        circ = QuantumCircuit(1, 1).h(0).measure(0, 0)
        a = StatevectorSimulator(seed=42).run(circ, shots=100).counts
        b = StatevectorSimulator(seed=42).run(circ, shots=100).counts
        assert a == b

    def test_mid_circuit_measurement(self):
        # measure then use the qubit again: forces per-shot path
        circ = QuantumCircuit(1, 2)
        circ.h(0)
        circ.measure(0, 0)
        circ.x(0)
        circ.measure(0, 1)
        result = StatevectorSimulator(seed=2).run(circ, shots=64)
        for outcome in result.counts:
            first = outcome & 1
            second = (outcome >> 1) & 1
            assert second == first ^ 1

    def test_counts_by_bitstring(self):
        circ = QuantumCircuit(2, 2).x(1).measure(0, 0).measure(1, 1)
        result = StatevectorSimulator(seed=0).run(circ, shots=10)
        assert result.counts_by_bitstring() == {"10": 10}

    def test_counts_by_bitstring_all_zero_without_final_state(self):
        """Width must come from the measured clbits, not key.bit_length().

        Regression: an all-zero histogram with no final state used to
        format as a single '0' regardless of the register width.
        """
        from repro.simulator.statevector import SimulationResult

        result = SimulationResult({0: 7}, None, 7, num_clbits=3)
        assert result.counts_by_bitstring() == {"000": 7}

    def test_counts_by_bitstring_width_from_measured_clbits(self):
        """Simulator runs record the measured register width."""
        circ = QuantumCircuit(3, 3)
        for q in range(3):
            circ.measure(q, q)
        result = StatevectorSimulator(seed=1).run(circ, shots=5)
        assert result.num_clbits == 3
        assert result.counts_by_bitstring() == {"000": 5}

    def test_counts_by_bitstring_partial_measurement_keeps_register_width(self):
        """A declared 3-clbit register formats 3 chars wide even when
        only one clbit is measured."""
        circ = QuantumCircuit(3, 3).x(0).measure(0, 0)
        result = StatevectorSimulator(seed=2).run(circ, shots=5)
        assert result.counts_by_bitstring() == {"001": 5}

    def test_counts_by_bitstring_noisy_backend_width(self):
        """NoisyBackend results (no final state) format full-width too."""
        from repro.engines import NoiseModel
        from repro.simulator.noise import NoisyBackend

        circ = QuantumCircuit(3, 3)
        for q in range(3):
            circ.measure(q, q)
        backend = NoisyBackend(NoiseModel.noiseless(), seed=0)
        result = backend.run(circ, shots=4)
        assert result.final_state is None
        assert result.counts_by_bitstring() == {"000": 4}

    def test_most_frequent_requires_counts(self):
        circ = QuantumCircuit(1).h(0)
        result = StatevectorSimulator().run(circ)
        with pytest.raises(SimulationError):
            result.most_frequent()

    def test_statevector_shortcut(self):
        circ = QuantumCircuit(1).x(0)
        state = StatevectorSimulator().statevector(circ)
        assert state.probability_of(1) == pytest.approx(1.0)


class TestStateComparison:
    def test_fidelity_and_equiv(self):
        a = Statevector(1).evolve(QuantumCircuit(1).h(0))
        b = Statevector(1).evolve(QuantumCircuit(1).h(0).z(0).z(0))
        assert a.fidelity(b) == pytest.approx(1.0)
        assert a.equiv(b)

    def test_str_rendering(self):
        state = Statevector(2).evolve(QuantumCircuit(2).x(0))
        assert "|01>" in str(state)

"""Unit tests for the resource-counting backend."""

from repro.core.circuit import QuantumCircuit
from repro.simulator.resources import ResourceCounter


class TestResourceCounter:
    def test_empty(self):
        estimate = ResourceCounter().run(QuantumCircuit(4))
        assert estimate.num_qubits == 4
        assert estimate.total_gates == 0

    def test_gate_classes(self):
        circ = QuantumCircuit(3, 3)
        circ.h(0).t(0).tdg(1).cx(0, 1).cx(1, 2).cz(0, 2).s(2)
        circ.measure(0, 0)
        estimate = ResourceCounter().run(circ)
        assert estimate.total_gates == 7
        assert estimate.t_count == 2
        assert estimate.cnot_count == 2
        assert estimate.two_qubit_count == 3
        assert estimate.measurement_count == 1
        # clifford: h, cx, cx, cz, s
        assert estimate.clifford_count == 5

    def test_depths(self):
        circ = QuantumCircuit(1).t(0).h(0).t(0)
        estimate = ResourceCounter().run(circ)
        assert estimate.depth == 3
        assert estimate.t_depth == 2

    def test_scales_without_simulation(self):
        """Counting must work far beyond simulable widths."""
        circ = QuantumCircuit(200)
        for q in range(199):
            circ.cx(q, q + 1)
        for q in range(200):
            circ.t(q)
        estimate = ResourceCounter().run(circ)
        assert estimate.num_qubits == 200
        assert estimate.cnot_count == 199
        assert estimate.t_count == 200

    def test_as_dict_and_str(self):
        estimate = ResourceCounter().run(QuantumCircuit(1).t(0))
        assert estimate.as_dict()["t_count"] == 1
        assert "T=1" in str(estimate)

"""Packed tableau vs the pre-refactor dense implementation.

PR 10 rewrote :class:`StabilizerState` onto bit-packed uint64 planes
with vectorized popcount rowsums.  These differentials pin the rewrite
to the historical dense implementation
(:mod:`repro.simulator._tableau_reference`), which evolved the tableau
with per-column Python loops:

* every gate of the 12-gate ``TABLEAU_GATES`` vocabulary, applied on
  entangled preludes, must leave a bit-identical tableau;
* ``measure`` must return the same outcomes from the same seeded RNG —
  the packed implementation draws exactly one ``rng.integers(0, 2)``
  per random measurement, in the same order, so seeded shot streams
  are reproducible across the refactor;
* Hypothesis drives random Clifford circuits with interleaved
  measurements over both implementations and compares everything.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import QuantumCircuit
from repro.core.gates import Gate
from repro.simulator._tableau_reference import (
    ReferenceStabilizerSimulator,
    ReferenceStabilizerState,
)
from repro.simulator.stabilizer import StabilizerSimulator, StabilizerState
from repro.verify.tiers import TABLEAU_GATES

# the same entangled preludes the verify-tier vocabulary tests use
_PRELUDES = (
    (),
    (Gate("h", (0,)), Gate("cx", (1,), (0,)), Gate("s", (1,))),
    (
        Gate("h", (2,)),
        Gate("cz", (2,), (0,)),
        Gate("sdg", (0,)),
        Gate("h", (1,)),
        Gate("cx", (2,), (1,)),
    ),
)


def _vocab_gate(name):
    """One concrete Gate exercising ``name`` on a 3-qubit register."""
    if name in ("cx", "cy", "cz"):
        return Gate(name, (2,), (0,))
    if name == "swap":
        return Gate(name, (0, 2))
    return Gate(name, (1,))


def _assert_tableaus_identical(packed, dense):
    """The packed state must unpack to the dense state's exact bits."""
    assert np.array_equal(packed.x, dense.x)
    assert np.array_equal(packed.z, dense.z)
    assert np.array_equal(packed.r.astype(np.uint8), dense.r)


class TestVocabularyAgainstDense:
    @pytest.mark.parametrize("name", sorted(TABLEAU_GATES))
    @pytest.mark.parametrize("prelude", range(len(_PRELUDES)))
    def test_gate_matches_dense_tableau(self, name, prelude):
        packed = StabilizerState(3)
        dense = ReferenceStabilizerState(3)
        for gate in _PRELUDES[prelude] + (_vocab_gate(name),):
            packed.apply_gate(gate)
            dense.apply_gate(gate)
            _assert_tableaus_identical(packed, dense)
        assert packed.stabilizer_strings() == dense.stabilizer_strings()

    @pytest.mark.parametrize("prelude", range(len(_PRELUDES)))
    def test_expectation_and_measure_match(self, prelude):
        packed = StabilizerState(3)
        dense = ReferenceStabilizerState(3)
        for gate in _PRELUDES[prelude]:
            packed.apply_gate(gate)
            dense.apply_gate(gate)
        for q in range(3):
            assert packed.expectation_z(q) == dense.expectation_z(q)
        rng_p = np.random.default_rng(13)
        rng_d = np.random.default_rng(13)
        for q in range(3):
            assert packed.measure(q, rng_p) == dense.measure(q, rng_d)
            _assert_tableaus_identical(packed, dense)

    def test_non_clifford_rejected_without_corruption(self):
        state = StabilizerState(2)
        state.apply_gate(Gate("h", (0,)))
        before = (state.xs.copy(), state.zs.copy(), state.r.copy())
        with pytest.raises(Exception, match="not Clifford"):
            state.apply_gate(Gate("t", (0,)))
        assert np.array_equal(state.xs, before[0])
        assert np.array_equal(state.zs, before[1])
        assert np.array_equal(state.r, before[2])


class TestSeededStreamPinning:
    def _random_clifford_circuit(self, n, num_gates, seed, measure=True):
        rng = np.random.default_rng(seed)
        one_q = ("h", "s", "sdg", "x", "y", "z", "sx", "sxdg")
        two_q = ("cx", "cy", "cz", "swap")
        circ = QuantumCircuit(n, n)
        for _ in range(num_gates):
            if rng.random() < 0.6 or n == 1:
                getattr(circ, one_q[rng.integers(len(one_q))])(
                    int(rng.integers(n))
                )
            else:
                a, b = rng.choice(n, size=2, replace=False)
                getattr(circ, two_q[rng.integers(len(two_q))])(
                    int(a), int(b)
                )
        if measure:
            circ.measure_all()
        return circ

    @pytest.mark.parametrize("seed", (0, 5, 9, 42))
    def test_simulator_counts_pinned_to_reference(self, seed):
        # same seed -> byte-identical counts: the packed rewrite must
        # not perturb the RNG stream of seeded shot runs
        circ = self._random_clifford_circuit(4, 30, seed)
        packed = StabilizerSimulator(seed=seed).run(circ, shots=64)
        dense = ReferenceStabilizerSimulator(seed=seed).run(circ, shots=64)
        assert packed == dense

    def test_reset_stream_pinned_to_reference(self):
        circ = QuantumCircuit(2, 2)
        circ.h(0)
        circ.cx(0, 1)
        circ.measure(0, 0)
        circ.reset(0)
        circ.h(0)
        circ.measure(0, 1)
        for seed in (1, 7):
            packed = StabilizerSimulator(seed=seed).run(circ, shots=40)
            dense = ReferenceStabilizerSimulator(seed=seed).run(
                circ, shots=40
            )
            assert packed == dense

    def test_wide_register_beyond_word_boundary(self):
        # 70 qubits: the packed rows span two uint64 words, and the
        # GHZ outcomes stay all-zeros / all-ones
        n = 70
        circ = QuantumCircuit(n, n)
        circ.h(0)
        for q in range(n - 1):
            circ.cx(q, q + 1)
        circ.measure_all()
        counts = StabilizerSimulator(seed=3).run(circ, shots=6)
        assert set(counts) <= {0, (1 << n) - 1}
        assert sum(counts.values()) == 6


class TestHypothesisDifferential:
    @given(
        seed=st.integers(0, 2**31),
        n=st.integers(1, 8),
        depth=st.integers(1, 40),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_walk_matches_dense(self, seed, n, depth):
        rng = np.random.default_rng(seed)
        packed = StabilizerState(n)
        dense = ReferenceStabilizerState(n)
        rng_p = np.random.default_rng(seed + 1)
        rng_d = np.random.default_rng(seed + 1)
        one_q = ("h", "s", "sdg", "x", "y", "z", "sx", "sxdg")
        two_q = ("cx", "cy", "cz", "swap")
        for _ in range(depth):
            roll = rng.random()
            if roll < 0.55 or n == 1:
                name = one_q[rng.integers(len(one_q))]
                q = int(rng.integers(n))
                getattr(packed, f"apply_{name}")(q)
                getattr(dense, f"apply_{name}")(q)
            elif roll < 0.85:
                name = two_q[rng.integers(len(two_q))]
                a, b = (int(v) for v in rng.choice(n, size=2, replace=False))
                getattr(packed, f"apply_{name}")(a, b)
                getattr(dense, f"apply_{name}")(a, b)
            else:
                q = int(rng.integers(n))
                assert packed.measure(q, rng_p) == dense.measure(q, rng_d)
            _assert_tableaus_identical(packed, dense)
        assert packed.stabilizer_strings() == dense.stabilizer_strings()
        copied = packed.copy()
        _assert_tableaus_identical(copied, dense)

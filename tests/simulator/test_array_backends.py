"""Array-backend layer: registry semantics, dtype contract, goldens.

The golden tests assert the refactored NumPy backend is *identical* —
``np.array_equal``, not ``allclose`` — to the pre-refactor kernel
layer, using states captured before the backend seam existed
(``tests/simulator/golden/kernel_states.npz``).
"""

import warnings

import numpy as np
import pytest

from _backend_corpus import CASES, corpus_circuit, corpus_state
from repro.engines.density_matrix import DensityMatrix
from repro.simulator import backends as B
from repro.simulator import kernels
from repro.simulator.statevector import Statevector

GOLDEN = "tests/simulator/golden/kernel_states.npz"


@pytest.fixture
def clean_default():
    """Run a test with no process default and a pristine env warning."""
    saved_default = B._DEFAULT
    saved_warned = B._ENV_WARNED
    B._DEFAULT = None
    B._ENV_WARNED = False
    yield
    B._DEFAULT = saved_default
    B._ENV_WARNED = saved_warned


# ----------------------------------------------------------------------
# golden identity: the NumPy backend IS the historical kernel layer
# ----------------------------------------------------------------------
class TestGoldenIdentity:
    @pytest.fixture(scope="class")
    def golden(self):
        return np.load(GOLDEN)

    @pytest.mark.parametrize(
        "name,num_qubits,seed,gates,fuse",
        CASES,
        ids=[c[0] for c in CASES],
    )
    def test_statevector_bit_identical(
        self, golden, name, num_qubits, seed, gates, fuse
    ):
        circ = corpus_circuit(num_qubits, seed, gates)
        state = corpus_state(num_qubits, seed + 1)
        ops = kernels.compile_circuit(circ.gates, fuse=fuse)
        kernels.apply_ops(state, ops, num_qubits, backend="numpy")
        assert np.array_equal(state, golden[name])

    def test_density_matrix_bit_identical(self, golden):
        rho = DensityMatrix(4)
        for gate in corpus_circuit(4, 77, 40).gates:
            if gate.name != "barrier":
                rho.apply_gate(gate)
        rho.apply_channel("amplitude_damping", 0.2, 1)
        rho.apply_channel("phase_damping", 0.1, 2)
        rho.apply_channel("depolarizing", 0.05, 0)
        assert np.array_equal(rho.data, golden["density_fused"])


# ----------------------------------------------------------------------
# allocation and the dtype contract
# ----------------------------------------------------------------------
class TestAllocationAndDtype:
    def test_zeros_shape_and_dtype(self):
        backend = B.get("numpy")
        state = backend.zeros(3)
        assert state.shape == (8,)
        assert state.dtype == np.complex128
        assert not state.any()
        batched = backend.zeros(2, batch=(5,))
        assert batched.shape == (4, 5)

    @pytest.mark.parametrize(
        "dtype", [np.float64, np.float32, np.int64, np.int32, bool]
    )
    def test_prepare_upcasts_numeric(self, dtype):
        backend = B.get("numpy")
        out = backend.prepare(np.array([1, 0, 0, 0], dtype=dtype))
        assert out.dtype == np.complex128
        assert out[0] == 1.0 + 0j

    def test_prepare_copies_complex_by_default(self):
        backend = B.get("numpy")
        data = np.array([1.0 + 0j, 0.0])
        out = backend.prepare(data)
        assert out is not data
        assert backend.prepare(data, copy=False) is data

    def test_prepare_rejects_non_numeric(self):
        with pytest.raises(TypeError, match="dtype"):
            B.get("numpy").prepare(np.array(["a", "b"]))

    def test_apply_pauli_rejects_float64(self):
        # regression: apply_pauli(float64_state, "y", 0) used to emit a
        # ComplexWarning and silently zero the state
        state = np.zeros(4, dtype=np.float64)
        state[0] = 1.0
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(TypeError, match="complex"):
                kernels.apply_pauli(state, "y", 0)
        assert state[0] == 1.0  # untouched, not corrupted

    def test_apply_gate_rejects_int64(self):
        # regression: an int64 state through apply_gate(h) used to
        # truncate the amplitudes to integers
        from repro.core.circuit import QuantumCircuit

        circ = QuantumCircuit(1)
        circ.h(0)
        state = np.array([1, 0], dtype=np.int64)
        with pytest.raises(TypeError, match="complex"):
            kernels.apply_gate(state, circ.gates[0], 1)

    def test_apply_matrix_and_apply_ops_reject_real(self):
        matrix = np.eye(2, dtype=complex)
        with pytest.raises(TypeError, match="apply_matrix"):
            kernels.apply_matrix(np.ones(2), matrix, [0], 1)
        with pytest.raises(TypeError, match="apply_ops"):
            kernels.apply_ops(np.ones(2), [], 1)

    def test_statevector_upcasts_real_data_on_ingest(self):
        # the supported route for real input: upcast at construction
        sv = Statevector(1, data=np.array([1.0, 0.0]))
        assert sv.data.dtype == np.complex128
        kernels.apply_pauli(sv.data, "y", 0, 1)
        assert np.allclose(sv.data, [0.0, 1j])


# ----------------------------------------------------------------------
# registry semantics (mirrors the emit / engines registries)
# ----------------------------------------------------------------------
class _ToyBackend(B.NumpyBackend):
    name = "toy"
    description = "test double"
    aliases = ("plaything",)


class TestRegistry:
    def test_builtin_listing(self):
        assert "numpy" in B.backends()
        assert "numpy" in B.describe_backends()

    def test_get_is_case_insensitive_and_alias_aware(self):
        assert B.get("NumPy") is B.get("np")
        assert B.get("default") is B.get("numpy")

    def test_instance_passthrough(self):
        backend = B.NumpyBackend()
        assert B.get(backend) is backend
        assert B.resolve(backend) is backend

    def test_register_unregister_roundtrip(self):
        toy = B.register(_ToyBackend())
        try:
            assert B.get("toy") is toy
            assert B.get("PLAYTHING") is toy
            with pytest.raises(B.BackendError, match="already registered"):
                B.register(_ToyBackend())
            replacement = B.register(_ToyBackend(), overwrite=True)
            assert B.get("toy") is replacement
        finally:
            B.unregister("toy")
        with pytest.raises(B.BackendError, match="unknown array backend"):
            B.get("toy")

    def test_register_validates_interface(self):
        class Bogus:
            name = "bogus"
            description = "missing everything"

        with pytest.raises(B.BackendError, match="missing 'zeros'"):
            B.register(Bogus())

    def test_unknown_name_lists_registered(self):
        with pytest.raises(B.BackendError, match="numpy"):
            B.get("tpu")

    def test_numba_resolution(self):
        # numba is optional: when absent the *name* must still resolve
        # to a clear BackendUnavailable naming the package
        if B.NumbaBackend.available():
            backend = B.get("numba")
            assert backend.name == "numba"
            assert B.get("jit") is backend
        else:
            with pytest.raises(B.BackendUnavailable, match="numba"):
                B.get("numba")
            with pytest.raises(B.BackendUnavailable, match="numba"):
                B.NumbaBackend()

    def test_non_backend_spec_rejected(self):
        with pytest.raises(B.BackendError, match="expected a backend"):
            B.get(3.14)


# ----------------------------------------------------------------------
# the parallel numba tier: registry semantics + threshold + threads env
# ----------------------------------------------------------------------
class TestNumbaParallelRegistry:
    def test_resolution(self):
        # same contract as the serial tier: the name always resolves,
        # to the backend when numba is present and to a clear
        # BackendUnavailable naming the package when it is not
        if B.NumbaParallelBackend.available():
            backend = B.get("numba_parallel")
            assert backend.name == "numba_parallel"
            assert B.get("nbp") is backend
            assert B.get("parallel") is backend
        else:
            for spec in ("numba_parallel", "nbp", "parallel"):
                with pytest.raises(
                    B.BackendUnavailable, match="numba_parallel"
                ):
                    B.get(spec)
            with pytest.raises(B.BackendUnavailable, match="pip install"):
                B.NumbaParallelBackend()

    def test_env_selection_degrades_with_one_warning(
        self, clean_default, monkeypatch
    ):
        if B.NumbaParallelBackend.available():
            pytest.skip("numba installed: env selection succeeds")
        monkeypatch.setenv(B.ENV_VAR, "parallel")
        with pytest.warns(RuntimeWarning, match="numba_parallel"):
            assert B.default_backend().name == "numpy"

    def test_threshold_keeps_small_registers_serial(self):
        # the ≤12-qubit regime must never pay thread fork/join costs
        assert B.NumbaParallelBackend.parallel_threshold > (1 << 12)

    def test_threads_env_invalid_value_warns_once(self, monkeypatch):
        monkeypatch.setenv(B.THREADS_ENV_VAR, "zero-ish")
        monkeypatch.setattr(
            B.NumbaParallelBackend, "_threads_warned", False
        )
        with pytest.warns(RuntimeWarning, match="REPRO_NUM_THREADS"):
            B.NumbaParallelBackend._configure_threads()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second call: no warning
            B.NumbaParallelBackend._configure_threads()

    def test_threads_env_unset_is_a_noop(self, monkeypatch):
        monkeypatch.delenv(B.THREADS_ENV_VAR, raising=False)
        B.NumbaParallelBackend._configure_threads()

    def test_threads_env_bounds_thread_count(self, monkeypatch):
        if not B.NumbaParallelBackend.available():
            pytest.skip("numba not installed")
        import numba

        saved = numba.get_num_threads()
        try:
            monkeypatch.setenv(B.THREADS_ENV_VAR, "1")
            B.NumbaParallelBackend._configure_threads()
            assert numba.get_num_threads() == 1
        finally:
            numba.set_num_threads(saved)

    def test_block_offsets_msb_convention(self):
        # qubits_desc[0] is the MSB of the local index space, matching
        # apply_matrix; offsets are the flat-index contributions
        offsets = B._block_offsets((3, 1))
        assert offsets.tolist() == [0, 2, 8, 10]
        assert B._block_offsets((0,)).tolist() == [0, 1]


# ----------------------------------------------------------------------
# default selection precedence
# ----------------------------------------------------------------------
class TestDefaultSelection:
    def test_plain_default_is_numpy(self, clean_default, monkeypatch):
        monkeypatch.delenv(B.ENV_VAR, raising=False)
        assert B.default_backend().name == "numpy"
        assert B.resolve(None).name == "numpy"

    def test_env_var_selects_backend(self, clean_default, monkeypatch):
        monkeypatch.setenv(B.ENV_VAR, "np")
        assert B.default_backend().name == "numpy"

    def test_env_var_degrades_with_one_warning(
        self, clean_default, monkeypatch
    ):
        monkeypatch.setenv(B.ENV_VAR, "gpu9000")
        with pytest.warns(RuntimeWarning, match="gpu9000"):
            backend = B.default_backend()
        assert backend.name == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second call: no warning
            assert B.default_backend().name == "numpy"

    def test_set_default_beats_env(self, clean_default, monkeypatch):
        monkeypatch.setenv(B.ENV_VAR, "gpu9000")
        toy = B.register(_ToyBackend(), overwrite=True)
        try:
            B.set_default_backend("toy")
            assert B.default_backend() is toy
            assert Statevector(2).backend is toy
        finally:
            B.set_default_backend(None)
            B.unregister("toy")

    def test_explicit_argument_beats_default(self, clean_default):
        toy = B.register(_ToyBackend(), overwrite=True)
        try:
            B.set_default_backend("toy")
            sv = Statevector(2, backend="numpy")
            assert sv.backend.name == "numpy"
            assert sv.copy().backend.name == "numpy"
        finally:
            B.set_default_backend(None)
            B.unregister("toy")


# ----------------------------------------------------------------------
# block-gain extrapolation (block_size > 6 must still fuse)
# ----------------------------------------------------------------------
class TestBlockGainExtrapolation:
    def test_gain_finite_and_monotonic_past_measured_range(self):
        measured_top = max(kernels._BLOCK_GAIN)
        gains = [kernels._block_gain(f) for f in range(1, 13)]
        assert all(np.isfinite(g) for g in gains)
        assert gains[measured_top] > gains[measured_top - 1]  # f=7 > f=6

    @pytest.mark.parametrize("block_size", [7, 8])
    def test_wide_block_sizes_fuse(self, block_size):
        # regression: block_size=7 historically never emitted a block
        # (the gain lookup returned infinity past f=6)
        from repro.core.circuit import QuantumCircuit

        circ = QuantumCircuit(block_size)
        for rep in range(3):
            for q in range(block_size - 1):
                circ.ch(q, q + 1)  # generic-weight two-qubit gates
        ops = kernels.compile_circuit(circ.gates, block_size=block_size)
        widths = [
            len(payload[0]) for kind, payload in ops if kind == "block"
        ]
        assert widths, "no block fused at an oversized block_size"
        assert max(widths) > 6

        # the fused program must still match the unfused reference
        state = corpus_state(block_size, 3)
        reference = state.copy()
        kernels.apply_ops(state, ops, block_size)
        kernels.apply_ops(
            reference,
            kernels.compile_circuit(circ.gates, fuse=False),
            block_size,
        )
        np.testing.assert_allclose(state, reference, atol=1e-12)

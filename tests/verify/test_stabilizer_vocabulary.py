"""The stabilizer tableau's gate vocabulary, pinned gate by gate.

The verifier's stabilizer tier is only sound if every gate the
tableau accepts is applied *correctly* — a wrong derived-gate
decomposition would silently pass buggy Clifford rewrites.  These
tests round-trip every accepted gate against the dense statevector
simulator: after any Clifford prelude, the tableau's stabilizer
generators must stabilize the dense state (``sign * P |psi> = |psi>``
for every generator), which determines the state up to global phase.

Unsupported gates must raise :class:`StabilizerError` and must leave
the tableau untouched, so a failed dispatch can never corrupt a
verification in progress.
"""

import numpy as np
import pytest

from repro.core.circuit import QuantumCircuit
from repro.core.gates import Gate
from repro.simulator.stabilizer import StabilizerError, StabilizerState
from repro.simulator.statevector import Statevector
from repro.verify.tiers import TABLEAU_GATES

_PAULI = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}

#: Clifford preludes driving the tableau into entangled states first,
#: so a wrong gate action cannot hide behind |0..0>'s symmetries.
_PRELUDES = (
    (),
    (Gate("h", (0,)), Gate("cx", (1,), (0,)), Gate("s", (1,))),
    (
        Gate("h", (2,)),
        Gate("cz", (2,), (0,)),
        Gate("sdg", (0,)),
        Gate("h", (1,)),
        Gate("cx", (2,), (1,)),
    ),
)


def _vocab_gate(name, n=3):
    """One concrete Gate exercising ``name`` on a 3-qubit register."""
    if name in ("cx", "cy", "cz"):
        return Gate(name, (2,), (0,))
    if name == "swap":
        return Gate(name, (0, 2))
    return Gate(name, (1,))


def _pauli_operator(string, n):
    """Dense operator for a ``+XZY``-style stabilizer string."""
    sign = 1.0 if string[0] == "+" else -1.0
    # qubit 0 is the least-significant index bit, so qubit j's Pauli
    # enters the Kronecker product last
    op = np.array([[1.0]], dtype=complex)
    for j in reversed(range(n)):
        op = np.kron(op, _PAULI[string[1 + j]])
    return sign * op


def _assert_tableau_matches_dense(tableau, dense):
    """The tableau's generators must stabilize the dense state."""
    psi = dense.data
    for string in tableau.stabilizer_strings():
        op = _pauli_operator(string, tableau.num_qubits)
        assert np.allclose(op @ psi, psi, atol=1e-9), (
            f"dense state is not stabilized by {string}"
        )


class TestAcceptedVocabulary:
    @pytest.mark.parametrize("name", sorted(TABLEAU_GATES))
    @pytest.mark.parametrize("prelude", range(len(_PRELUDES)))
    def test_gate_round_trips_against_dense_simulation(
        self, name, prelude
    ):
        n = 3
        tableau = StabilizerState(n)
        circuit = QuantumCircuit(n)
        for gate in _PRELUDES[prelude] + (_vocab_gate(name, n),):
            tableau.apply_gate(gate)
            circuit.append(gate)
        dense = Statevector(n)
        dense.evolve(circuit)
        _assert_tableau_matches_dense(tableau, dense)

    def test_vocabulary_matches_the_verifier_tier(self):
        # the checker's stabilizer tier promises exactly this set; a
        # gate the tableau cannot dispatch must not be claimed
        state = StabilizerState(2)
        for name in sorted(TABLEAU_GATES):
            state.apply_gate(_vocab_gate(name, 2) if name not in (
                "cx", "cy", "cz", "swap"
            ) else Gate(name, (1,), (0,)) if name != "swap" else Gate(
                "swap", (0, 1)
            ))

    def test_noops_leave_the_tableau_alone(self):
        state = StabilizerState(2)
        state.apply_gate(Gate("h", (0,)))
        snapshot = (state.x.copy(), state.z.copy(), state.r.copy())
        state.apply_gate(Gate("id", (0,)))
        state.apply_gate(Gate("barrier", ()))
        assert np.array_equal(state.x, snapshot[0])
        assert np.array_equal(state.z, snapshot[1])
        assert np.array_equal(state.r, snapshot[2])


class TestRejectedVocabulary:
    @pytest.mark.parametrize(
        "gate",
        [
            Gate("t", (0,)),
            Gate("tdg", (1,)),
            Gate("rz", (0,), (), (0.25,)),
            Gate("rx", (2,), (), (1.5,)),
            Gate("ry", (1,), (), (0.75,)),
            Gate("p", (0,), (), (0.5,)),
            Gate("ccx", (2,), (0, 1)),
            Gate("cswap", (1, 2), (0,)),
        ],
        ids=lambda gate: gate.name,
    )
    def test_unsupported_gate_raises_without_corrupting_state(self, gate):
        state = StabilizerState(3)
        # drive away from the initial tableau first
        state.apply_gate(Gate("h", (0,)))
        state.apply_gate(Gate("cx", (1,), (0,)))
        snapshot = (state.x.copy(), state.z.copy(), state.r.copy())
        with pytest.raises(StabilizerError, match="not Clifford"):
            state.apply_gate(gate)
        assert np.array_equal(state.x, snapshot[0]), "tableau corrupted"
        assert np.array_equal(state.z, snapshot[1]), "tableau corrupted"
        assert np.array_equal(state.r, snapshot[2]), "tableau corrupted"

    def test_measurement_is_not_a_tableau_gate(self):
        state = StabilizerState(1)
        with pytest.raises(StabilizerError):
            state.apply_gate(Gate("measure", (0,), (), (), (0,)))

"""Differential testing: every cheap tier agrees with the dense oracle.

Hypothesis draws random reversible cascades and random Clifford /
Clifford+T circuits at n <= 10 qubits, perturbs them into equivalent
or inequivalent pairs, and checks that the verdict of each sub-dense
tier — permutation tables, stabilizer tableaus, seeded fidelity
probes — matches the dense-unitary oracle in BOTH directions: the
cheap tier accepts exactly when the oracle accepts, and rejects
exactly when it rejects.  The dense tiers are disabled through the
checker's ``max_dense_qubits`` knob so the cheap tier genuinely
produces the verdict under test.

Under ``HYPOTHESIS_PROFILE=ci`` (see ``conftest.py``) the run is
derandomized, so CI failures replay exactly.
"""

import dataclasses

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.circuit import QuantumCircuit
from repro.core.unitary import circuits_equivalent
from repro.synthesis.reversible import MctGate, ReversibleCircuit
from repro.verify import EquivalenceChecker

#: Clifford vocabulary the stabilizer tier claims; the +T extension
#: pushes pairs past the tableau into the probe tier.
CLIFFORD_NAMES = ("h", "s", "sdg", "x", "y", "z", "cx", "cz", "swap")
CLIFFORD_T_NAMES = CLIFFORD_NAMES + ("t", "tdg")

#: gate pairs that compose to the identity, used to build pairs that
#: are equivalent without being syntactically equal
_CANCELING = {
    "h": "h", "x": "x", "y": "y", "z": "z",
    "s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t",
    "cx": "cx", "cz": "cz", "swap": "swap",
}


def _no_dense(**overrides):
    """A checker whose dense tiers can never run."""
    return dataclasses.replace(
        EquivalenceChecker(), max_dense_qubits=0, **overrides
    )


@st.composite
def quantum_pairs(draw, names):
    """Draw ``(a, b)`` with ``b`` an equivalent or corrupted copy."""
    n = draw(st.integers(min_value=2, max_value=6))
    a = QuantumCircuit(n)
    for _ in range(draw(st.integers(min_value=1, max_value=12))):
        name = draw(st.sampled_from(names))
        q1 = draw(st.integers(min_value=0, max_value=n - 1))
        if name in ("cx", "cz", "swap"):
            q2 = draw(st.integers(min_value=0, max_value=n - 2))
            if q2 >= q1:
                q2 += 1
            getattr(a, name)(q1, q2)
        else:
            getattr(a, name)(q1)
    b = a.copy()
    kind = draw(st.sampled_from(("equal", "extra", "drop", "flip")))
    if kind == "equal":
        # splice a canceling pair at a random cut: semantically equal,
        # syntactically different
        cut = draw(st.integers(min_value=0, max_value=len(a.gates)))
        name = draw(st.sampled_from(names))
        q = draw(st.integers(min_value=0, max_value=n - 1))
        probe = QuantumCircuit(n)
        if name in ("cx", "cz", "swap"):
            q2 = (q + 1) % n
            getattr(probe, name)(q, q2)
            getattr(probe, _CANCELING[name])(q, q2)
        else:
            getattr(probe, name)(q)
            getattr(probe, _CANCELING[name])(q)
        b.gates = b.gates[:cut] + probe.gates + b.gates[cut:]
    elif kind == "extra":
        gate = draw(st.sampled_from(("x", "z", "h", "s")))
        getattr(b, gate)(draw(st.integers(min_value=0, max_value=n - 1)))
    elif kind == "drop":
        b.gates = b.gates[:-1]
    else:  # flip: replace the last gate's wires with shifted ones
        gate = b.gates[-1]
        shift = {q: (q + 1) % n for q in range(n)}
        b.gates[-1] = gate.remap(shift)
    return a, b


@st.composite
def reversible_pairs(draw):
    """Draw ``(a, b)`` cascades at up to 10 lines."""
    n = draw(st.integers(min_value=2, max_value=10))
    a = ReversibleCircuit(n)
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        lines = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=1,
                max_size=min(3, n),
                unique=True,
            )
        )
        a.add_gate(lines[0], tuple(lines[1:]))
    b = a.copy()
    target = draw(st.integers(min_value=0, max_value=n - 1))
    if draw(st.booleans()):
        # an involution appended twice preserves the permutation
        b.x(target).x(target)
    else:
        # any single MCT gate composes a non-identity involution onto
        # the cascade, so the permutation always changes
        b.x(target)
    return a, b


def _table(cascade):
    return tuple(cascade.apply(x) for x in range(1 << cascade.num_lines))


class TestPermutationTierAgrees:
    @given(pair=reversible_pairs())
    def test_matches_the_exhaustive_table(self, pair):
        a, b = pair
        verdict = EquivalenceChecker().check_same_permutation(a, b)
        assert not verdict.skipped
        assert verdict.tier == "permutation"
        assert verdict.passed == (_table(a) == _table(b))


class TestStabilizerTierAgrees:
    @given(pair=quantum_pairs(CLIFFORD_NAMES))
    def test_matches_the_dense_oracle(self, pair):
        a, b = pair
        verdict = _no_dense().check_same_unitary(a, b)
        oracle = circuits_equivalent(a, b)
        assert not verdict.skipped
        assert verdict.tier in ("syntactic", "stabilizer")
        assert verdict.passed == oracle


class TestProbeTierAgrees:
    @given(pair=quantum_pairs(CLIFFORD_T_NAMES))
    def test_matches_the_dense_oracle(self, pair):
        a, b = pair
        verdict = _no_dense().check_same_unitary(a, b)
        oracle = circuits_equivalent(a, b)
        assert not verdict.skipped
        # stripped remainders may still be Clifford — the checker is
        # free to answer from the cheaper tableau when they are
        assert verdict.tier in ("syntactic", "stabilizer", "probes")
        assert verdict.passed == oracle

    @given(pair=quantum_pairs(CLIFFORD_T_NAMES))
    def test_probe_acceptance_is_seed_stable(self, pair):
        a, b = pair
        first = _no_dense().check_same_unitary(a, b)
        second = _no_dense().check_same_unitary(a, b)
        assert first.status == second.status
        assert first.tier == second.tier


class TestDenseOracleSelfCheck:
    @given(pair=quantum_pairs(CLIFFORD_T_NAMES))
    def test_full_checker_matches_the_oracle_too(self, pair):
        # the production default (dense enabled) must agree with the
        # raw numpy comparison as well — no tier may flip the verdict
        a, b = pair
        verdict = EquivalenceChecker().check_same_unitary(a, b)
        assert not verdict.skipped
        assert verdict.passed == circuits_equivalent(a, b)

"""Mutation-testing harness for the tiered equivalence checker.

Each mutant wraps a real library pass, runs it for real, then corrupts
its output the way a buggy pass would: a dropped gate, a swapped
control/target, a stray X, a phase flip, an off-by-one rewiring.  A
verifying pipeline must fail the mutated pass, and the error must name
both the pass and the tier that caught it — the point of the harness
is that every tier claiming coverage of a pass kind catches every
mutation in its corpus.

Corpus boundaries are part of the contract and tested too: the
permutation tier checks classical cascades, where a phase flip does
not exist, and the mapped-circuit obligation explicitly allows a
per-input phase ``e^{i phi(x)}`` — so a Z on a data wire of the
Clifford+T mapping legitimately passes and is asserted to.
"""

import dataclasses
import re

import pytest

from repro.core.circuit import QuantumCircuit
from repro.mapping.routing import CouplingMap
from repro.pipeline import (
    CancelPass,
    FlowState,
    GeneratePass,
    MapToCliffordTPass,
    Pipeline,
    RoutePass,
    SimplifyPass,
    SynthesisPass,
    TparPass,
    VerificationError,
)
from repro.synthesis.reversible import MctGate
from repro.verify import EquivalenceChecker


# ----------------------------------------------------------------------
# the mutation corpus
# ----------------------------------------------------------------------
def q_dropped_gate(circuit):
    """Silently lose the last gate (truncated rewrite)."""
    out = circuit.copy()
    assert out.gates, "fixture produced an empty circuit"
    out.gates = out.gates[:-1]
    return out


def q_swapped_control_target(circuit):
    """Exchange control and target of the first controlled gate."""
    out = circuit.copy()
    for i, gate in enumerate(out.gates):
        if len(gate.controls) == 1 and len(gate.targets) == 1:
            out.gates[i] = dataclasses.replace(
                gate, targets=gate.controls, controls=gate.targets
            )
            return out
    raise AssertionError("fixture has no controlled gate to corrupt")


def q_extra_x(circuit):
    """Append a stray X (bit flip on wire 0)."""
    return circuit.copy().x(0)


def q_phase_flip(circuit):
    """Append a stray Z (relative phase flip on wire 0)."""
    return circuit.copy().z(0)


def q_off_by_one_rewiring(circuit):
    """Shift every wire of the last gate by one (indexing bug)."""
    out = circuit.copy()
    gate = out.gates[-1]
    shift = {q: (q + 1) % out.num_qubits for q in range(out.num_qubits)}
    out.gates[-1] = gate.remap(shift)
    return out


def r_dropped_gate(cascade):
    """Silently lose the last MCT gate."""
    out = cascade.copy()
    assert out.gates, "fixture produced an empty cascade"
    out.gates = out.gates[:-1]
    return out


def r_swapped_control_target(cascade):
    """Exchange target and first control of the first controlled MCT."""
    out = cascade.copy()
    for i, gate in enumerate(out.gates):
        if gate.controls:
            out.gates[i] = MctGate(
                gate.controls[0],
                (gate.target,) + gate.controls[1:],
                gate.polarity,
            )
            return out
    raise AssertionError("fixture has no controlled MCT gate to corrupt")


def r_extra_x(cascade):
    """Append a stray NOT on line 0."""
    return cascade.copy().x(0)


def r_off_by_one_rewiring(cascade):
    """Move the last gate's target to the next free line."""
    out = cascade.copy()
    gate = out.gates[-1]
    target = (gate.target + 1) % out.num_lines
    while target in gate.controls:
        target = (target + 1) % out.num_lines
    out.gates[-1] = MctGate(target, gate.controls, gate.polarity)
    return out


#: (mutation name, quantum-circuit mutator, reversible-cascade mutator);
#: the phase flip has no reversible analog — cascades are classical.
MUTATIONS = {
    "dropped-gate": (q_dropped_gate, r_dropped_gate),
    "swapped-control-target": (q_swapped_control_target,
                               r_swapped_control_target),
    "extra-x": (q_extra_x, r_extra_x),
    "phase-flip": (q_phase_flip, None),
    "off-by-one-rewiring": (q_off_by_one_rewiring, r_off_by_one_rewiring),
}

QUANTUM_MUTATIONS = sorted(MUTATIONS)
REVERSIBLE_MUTATIONS = sorted(
    name for name, (_, r) in MUTATIONS.items() if r is not None
)


# ----------------------------------------------------------------------
# the harness
# ----------------------------------------------------------------------
def mutant(pass_cls, field, mutate, *args, **kwargs):
    """Build a pass that runs ``pass_cls`` for real, then corrupts it.

    The wrapper is a distinct subclass (distinct cache identity), runs
    the genuine pass, and applies ``mutate`` to the named store field
    — exactly the shape of a buggy pass implementation.
    """

    class Mutant(pass_cls):
        def run(self, state):
            out = super().run(state)
            if field == "routing":
                mutated = mutate(out.routing.circuit)
                out.routing = dataclasses.replace(
                    out.routing, circuit=mutated
                )
                out.quantum = mutated
            else:
                setattr(out, field, mutate(getattr(out, field)))
            return out

    Mutant.__name__ = f"Mutant{pass_cls.__name__}"
    return Mutant(*args, **kwargs)


def assert_caught(pass_, state, tier):
    """Run under verification and demand a rejection naming pass+tier."""
    pipeline = Pipeline(verify="auto", cache=None)
    pattern = rf"pass '{pass_.name}'.*tier {tier}"
    with pytest.raises(VerificationError, match=pattern) as info:
        pipeline.apply(pass_, state)
    # the message must name BOTH coordinates for actionable triage
    message = str(info.value)
    assert re.search(rf"'{pass_.name}'", message)
    assert re.search(rf"tier {tier}", message)


@pytest.fixture(scope="module")
def hwb_state():
    """hwb(4) specification plus its transformation-based cascade."""
    state = GeneratePass("hwb", 4).run(FlowState())
    return SynthesisPass("tbs").run(state)


# ----------------------------------------------------------------------
# permutation tier: reversible-level passes
# ----------------------------------------------------------------------
class TestPermutationTierCatches:
    @pytest.mark.parametrize("mutation", REVERSIBLE_MUTATIONS)
    def test_simplify_mutations(self, hwb_state, mutation):
        mutate = MUTATIONS[mutation][1]
        assert_caught(
            mutant(SimplifyPass, "reversible", mutate),
            hwb_state,
            "permutation",
        )

    @pytest.mark.parametrize("mutation", REVERSIBLE_MUTATIONS)
    def test_synthesis_mutations(self, hwb_state, mutation):
        mutate = MUTATIONS[mutation][1]
        assert_caught(
            mutant(SynthesisPass, "reversible", mutate, "tbs"),
            FlowState(function=hwb_state.function),
            "permutation",
        )


# ----------------------------------------------------------------------
# stabilizer tier: Clifford-only rewrites
# ----------------------------------------------------------------------
class TestStabilizerTierCatches:
    @pytest.mark.parametrize("mutation", QUANTUM_MUTATIONS)
    def test_cancel_mutations(self, mutation):
        # every mutation keeps the circuit Clifford, so the cheapest
        # sound tier is the stabilizer tableau — including the phase
        # flip, which moves conjugated Pauli generators
        circuit = (
            QuantumCircuit(3)
            .h(0).h(0).cx(0, 1).s(2).sdg(2).cx(1, 2).h(1)
        )
        mutate = MUTATIONS[mutation][0]
        assert_caught(
            mutant(CancelPass, "quantum", mutate),
            FlowState(quantum=circuit),
            "stabilizer",
        )


# ----------------------------------------------------------------------
# dense tier: Clifford+T rewrites at small width
# ----------------------------------------------------------------------
class TestDenseTierCatches:
    @pytest.mark.parametrize("mutation", QUANTUM_MUTATIONS)
    def test_tpar_mutations(self, mutation):
        circuit = (
            QuantumCircuit(3)
            .h(0).t(0).t(0).cx(0, 1).t(1).h(2).t(2).cx(1, 2)
        )
        mutate = MUTATIONS[mutation][0]
        assert_caught(
            mutant(TparPass, "quantum", mutate),
            FlowState(quantum=circuit),
            "dense",
        )

    @pytest.mark.parametrize("mutation", QUANTUM_MUTATIONS)
    def test_route_mutations(self, mutation):
        circuit = QuantumCircuit(3).h(0).cx(0, 2).t(1).cx(1, 2)
        mutate = MUTATIONS[mutation][0]
        assert_caught(
            mutant(RoutePass, "routing", mutate, CouplingMap.line(3)),
            FlowState(quantum=circuit),
            "dense",
        )

    @pytest.mark.parametrize(
        "mutation",
        sorted(set(QUANTUM_MUTATIONS) - {"phase-flip"}),
    )
    def test_mapping_mutations(self, hwb_state, mutation):
        mutate = MUTATIONS[mutation][0]
        assert_caught(
            mutant(MapToCliffordTPass, "quantum", mutate),
            hwb_state,
            "dense",
        )

    def test_mapping_tolerates_per_input_phase(self, hwb_state):
        # the mapped-circuit obligation is |x>|0> -> e^{i phi(x)}|P(x)>|0>,
        # so a Z on a data wire is NOT a bug — the check must accept it
        # (the phase-flip mutation belongs to the unitary tiers above)
        _, record = Pipeline(verify="auto", cache=None).apply(
            mutant(MapToCliffordTPass, "quantum", q_phase_flip), hwb_state
        )
        assert record.verification.passed
        assert record.verification.tier == "dense"


# ----------------------------------------------------------------------
# probes tier: widths past every exact tier
# ----------------------------------------------------------------------
class TestProbesTierCatches:
    def _wide_pair(self, n=12):
        # T.T = S keeps the pair equivalent while a non-Clifford gate
        # on every qubit blocks the stabilizer and (capped) dense tiers
        a = QuantumCircuit(n)
        b = QuantumCircuit(n)
        for q in range(n):
            a.h(q)
            a.t(q)
            a.t(q)
            b.h(q)
            b.s(q)
        return a, b

    @pytest.mark.parametrize("mutation", QUANTUM_MUTATIONS)
    def test_probe_rejections(self, mutation):
        a, b = self._wide_pair()
        if mutation == "swapped-control-target":
            # give both sides a controlled gate, swapped on one side
            a.cx(1, 0)
            b.cx(0, 1)
        else:
            b = MUTATIONS[mutation][0](b)
        checker = dataclasses.replace(
            EquivalenceChecker(), max_dense_qubits=4
        )
        verdict = checker.check_same_unitary(a, b)
        assert verdict.failed
        assert verdict.tier == "probes"
        assert "probe" in verdict.detail

    def test_probe_baseline_accepts_the_unmutated_pair(self):
        # guards the corpus itself: rejections above stem from the
        # mutation, not from a broken fixture pair
        a, b = self._wide_pair()
        checker = dataclasses.replace(
            EquivalenceChecker(), max_dense_qubits=4
        )
        verdict = checker.check_same_unitary(a, b)
        assert verdict.passed and verdict.tier == "probes"

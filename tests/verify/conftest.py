"""Hypothesis profiles for the verification harness.

The CI ``verification`` job runs with ``HYPOTHESIS_PROFILE=ci`` —
derandomized (each property fixes its own seed material, so runs are
reproducible) and with a larger example budget.  Local tier-1 runs use
the quicker ``dev`` profile.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    max_examples=30,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "dev",
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

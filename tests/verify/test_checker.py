"""Tier selection, explicit skips, strict mode, and the VerifyPass.

Covers the tiered :class:`repro.verify.EquivalenceChecker` unit by
unit — which tier runs for which circuit pair, that rejections name
the witnessing input, that skipped checks are always explicit (the
silent-skip regression), strict-mode escalation, and the end-to-end
``repro.compile(..., verify=...)`` surface including a 16-qubit
DEVICE-shaped flow where no dense unitary is feasible.
"""

import dataclasses

import pytest

from repro.boolean.permutation import BitPermutation
from repro.compiler import compile as compile_workload
from repro.core.circuit import QuantumCircuit
from repro.mapping.routing import CouplingMap
from repro.pipeline import (
    FlowState,
    Pipeline,
    PipelineError,
    SimplifyPass,
    SynthesisPass,
    VerificationError,
    flows,
)
from repro.pipeline import verification as legacy
from repro.revkit import generators
from repro.synthesis.reversible import ReversibleCircuit
from repro.verify import EquivalenceChecker, Verdict, VerifyPass, as_checker


def clifford_pair(n=14):
    """Two equivalent Clifford circuits too wide for dense unitaries."""
    a = QuantumCircuit(n)
    for q in range(n):
        a.h(q)
    for q in range(n - 1):
        a.cx(q, q + 1)
    b = a.copy()
    # S then S' is the identity: semantically equal, syntactically not
    b.s(0)
    b.sdg(0)
    return a, b


class TestTierSelection:
    def test_syntactic_tier_for_identical_circuits(self):
        a = QuantumCircuit(3).h(0).cx(0, 1).t(2)
        b = a.copy()
        b.barrier()  # no-ops are ignored by the comparison
        verdict = EquivalenceChecker().check_same_unitary(a, b)
        assert verdict.passed and verdict.tier == "syntactic"

    def test_permutation_tier_enumerates_all_inputs(self):
        a = ReversibleCircuit(3).toffoli(0, 1, 2).cnot(0, 1)
        b = ReversibleCircuit(3).toffoli(0, 1, 2).cnot(0, 1)
        verdict = EquivalenceChecker().check_same_permutation(a, b)
        assert verdict.passed and verdict.tier == "permutation"
        assert verdict.checks == 8

    def test_permutation_tier_names_the_witness_input(self):
        a = ReversibleCircuit(2).cnot(0, 1)
        b = ReversibleCircuit(2).cnot(1, 0)
        verdict = EquivalenceChecker().check_same_permutation(a, b)
        assert verdict.failed and verdict.tier == "permutation"
        assert "input" in verdict.detail

    def test_stabilizer_tier_beyond_dense_widths(self):
        a, b = clifford_pair(14)
        verdict = EquivalenceChecker().check_same_unitary(a, b)
        assert verdict.passed and verdict.tier == "stabilizer"

    def test_stabilizer_tier_rejects_exactly(self):
        a, b = clifford_pair(14)
        b.s(3)  # a single stray phase gate, invisible to magnitudes
        verdict = EquivalenceChecker().check_same_unitary(a, b)
        assert verdict.failed and verdict.tier == "stabilizer"
        assert "generator" in verdict.detail

    def test_stabilizer_tier_translates_quarter_turn_rotations(self):
        import math

        a = QuantumCircuit(12).h(0).s(0)
        b = QuantumCircuit(12).h(0).rz(math.pi / 2, 0)
        verdict = EquivalenceChecker().check_same_unitary(a, b)
        assert verdict.passed and verdict.tier == "stabilizer"

    def test_dense_tier_on_narrow_rewrite_support(self):
        import math

        n = 13
        a = QuantumCircuit(n)
        b = QuantumCircuit(n)
        for q in range(n):
            a.h(q)
            b.h(q)
        a.t(0)
        b.rz(math.pi / 4, 0)  # equal up to global phase, not Clifford
        verdict = EquivalenceChecker().check_same_unitary(a, b)
        assert verdict.passed and verdict.tier == "dense"
        assert "1 qubits" in verdict.detail

    def test_dense_tier_small_width_oracle(self):
        a = QuantumCircuit(2).h(0).t(0).h(0)
        b = QuantumCircuit(2).h(0).tdg(0).h(0)
        verdict = EquivalenceChecker().check_same_unitary(a, b)
        assert verdict.failed and verdict.tier == "dense"

    def test_probe_tier_when_dense_is_infeasible(self):
        n = 12
        a = QuantumCircuit(n)
        b = QuantumCircuit(n)
        for q in range(n):
            a.h(q)
            a.t(q)
            b.t(q)
            b.h(q)  # reordered: genuinely different unitary
        verdict = EquivalenceChecker().check_same_unitary(a, b)
        assert verdict.failed and verdict.tier == "probes"
        assert "probe" in verdict.detail

    def test_probe_tier_accepts_equivalent_wide_circuits(self):
        n = 12
        a = QuantumCircuit(n)
        b = QuantumCircuit(n)
        # T.T = S exactly, so the circuits agree — but the remainders
        # after stripping keep a non-Clifford gate on every qubit, so
        # the rewritten support spans the register and neither the
        # stabilizer nor the (capped) dense tier applies
        for q in range(n):
            a.h(q)
            a.t(q)
            a.t(q)
            b.h(q)
            b.s(q)
        checker = dataclasses.replace(EquivalenceChecker(), max_dense_qubits=4)
        verdict = checker.check_same_unitary(a, b)
        assert verdict.passed and verdict.tier == "probes"
        assert verdict.checks == checker.probes

    def test_probes_are_seeded_and_reproducible(self):
        n = 12
        a = QuantumCircuit(n)
        b = QuantumCircuit(n)
        for q in range(n):
            a.h(q)
            a.t(q)
            b.t(q)
            b.h(q)
        first = EquivalenceChecker().check_same_unitary(a, b)
        second = EquivalenceChecker().check_same_unitary(a, b)
        assert (first.status, first.tier, first.detail, first.checks) == (
            second.status, second.tier, second.detail, second.checks
        )

    def test_width_change_is_a_rejection_not_a_crash(self):
        verdict = EquivalenceChecker().check_same_unitary(
            QuantumCircuit(2).h(0), QuantumCircuit(3).h(0)
        )
        assert verdict.failed and "width" in verdict.detail


class TestExplicitSkips:
    def test_beyond_probe_limit_is_skipped_not_passed(self):
        n = 22
        a = QuantumCircuit(n)
        b = QuantumCircuit(n)
        for q in range(n):
            a.t(q)
            a.h(q)
            b.h(q)
            b.t(q)
        verdict = EquivalenceChecker().check_same_unitary(a, b)
        assert verdict.skipped and not verdict.passed
        assert verdict.tier == "probes"
        assert "22" in verdict.detail

    def test_legacy_helper_reports_skip_distinctly(self):
        """Regression: the old helper returned None both for passed
        and for skipped-above-the-width-limit."""
        rev = ReversibleCircuit(18)
        for q in range(17):
            rev.cnot(q, q + 1)
        quantum = rev.to_quantum_circuit()
        verdict = legacy.check_mapped_circuit(quantum, rev)
        assert isinstance(verdict, Verdict)
        # 18 data lines exceed the exhaustive-table limit, but the
        # outcome is an explicit skip, never a silent pass
        assert verdict.skipped and not verdict.passed

    def test_non_permutation_specification_skips_explicitly(self):
        rev = ReversibleCircuit(3).cnot(0, 1)
        verdict = EquivalenceChecker().check_specification(rev, object())
        assert verdict.skipped and verdict.tier == "none"

    def test_pipeline_never_reports_verified_for_skipped_pass(self):
        """The verified flag must be False when any check skipped."""
        n = 22
        wide = QuantumCircuit(n)
        for q in range(n):
            wide.t(q)
            wide.h(q)

        class WidePass(SimplifyPass):
            name = "wide-rewrite"
            reads = ("quantum",)
            writes = ("quantum",)

            def run(self, state):
                out = state.copy(skip=("quantum",))
                rewritten = QuantumCircuit(n)
                for q in range(n):
                    rewritten.h(q)
                    rewritten.t(q)
                out.quantum = rewritten
                return out

            def _tiered_check(self, checker, before, after):
                return checker.check_same_unitary(
                    before.quantum, after.quantum
                )

        pipeline = Pipeline(verify="auto", cache=None)
        state, record = pipeline.apply(WidePass(), FlowState(quantum=wide))
        assert record.verification is not None
        assert record.verification.skipped
        from repro.pipeline.runner import PipelineResult

        assert not PipelineResult(state=state, records=[record]).verified

    def test_skipped_check_never_marks_cache_entry_verified(self):
        """A skipped check must stay re-checkable on later replays."""
        from repro.pipeline import PassCache

        n = 22
        wide = QuantumCircuit(n)
        for q in range(n):
            wide.t(q)
            wide.h(q)

        class WidePass(SimplifyPass):
            name = "wide-rewrite"
            reads = ("quantum",)
            writes = ("quantum",)

            def run(self, state):
                out = state.copy(skip=("quantum",))
                rewritten = QuantumCircuit(n)
                for q in range(n):
                    rewritten.h(q)
                    rewritten.t(q)
                out.quantum = rewritten
                return out

            def _tiered_check(self, checker, before, after):
                return checker.check_same_unitary(
                    before.quantum, after.quantum
                )

        cache = PassCache()
        pipeline = Pipeline(verify="auto", cache=cache)
        pipeline.apply(WidePass(), FlowState(quantum=wide))
        _, record = pipeline.apply(WidePass(), FlowState(quantum=wide))
        assert record.cache_hit
        # the replay re-ran the (skipping) check instead of trusting a
        # verified flag the skip must never have set
        assert record.verification.skipped
        assert record.verification.tier != "cache"


class TestStrictMode:
    def test_strict_escalates_skips_to_errors(self):
        n = 22
        wide = QuantumCircuit(n)
        for q in range(n):
            wide.t(q)
            wide.h(q)

        class WidePass(SimplifyPass):
            name = "wide-rewrite"
            reads = ("quantum",)
            writes = ("quantum",)

            def run(self, state):
                out = state.copy(skip=("quantum",))
                rewritten = QuantumCircuit(n)
                for q in range(n):
                    rewritten.h(q)
                    rewritten.t(q)
                out.quantum = rewritten
                return out

            def _tiered_check(self, checker, before, after):
                return checker.check_same_unitary(
                    before.quantum, after.quantum
                )

        with pytest.raises(VerificationError, match="strict"):
            Pipeline(verify="strict", cache=None).apply(
                WidePass(), FlowState(quantum=wide)
            )

    def test_auto_tolerates_the_same_skip(self):
        n = 22
        wide = QuantumCircuit(n)
        for q in range(n):
            wide.t(q)
            wide.h(q)

        class WidePass(SimplifyPass):
            name = "wide-rewrite"
            reads = ("quantum",)
            writes = ("quantum",)

            def run(self, state):
                out = state.copy(skip=("quantum",))
                rewritten = QuantumCircuit(n)
                for q in range(n):
                    rewritten.h(q)
                    rewritten.t(q)
                out.quantum = rewritten
                return out

            def _tiered_check(self, checker, before, after):
                return checker.check_same_unitary(
                    before.quantum, after.quantum
                )

        _, record = Pipeline(verify="auto", cache=None).apply(
            WidePass(), FlowState(quantum=wide)
        )
        assert record.verification.skipped


class TestCheckerResolution:
    def test_as_checker_modes(self):
        assert as_checker(None) is None
        assert as_checker(False) is None
        assert as_checker("off") is None
        assert as_checker(True).mode == "auto"
        assert as_checker("auto").mode == "auto"
        assert as_checker("strict").strict
        custom = EquivalenceChecker(probes=3)
        assert as_checker(custom) is custom

    def test_as_checker_rejects_unknown_modes(self):
        with pytest.raises(ValueError, match="paranoid"):
            as_checker("paranoid")
        with pytest.raises(ValueError):
            as_checker(3.14)

    def test_checker_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            EquivalenceChecker(mode="bogus")

    def test_target_validates_verify_field(self):
        from repro.compiler import Target

        with pytest.raises(PipelineError):
            Target(name="t", verify="bogus")
        assert Target(name="t", verify="strict").verify == "strict"

    def test_signature_covers_every_field(self):
        checker = EquivalenceChecker()
        fields = {f.name for f in dataclasses.fields(EquivalenceChecker)}
        assert len(checker.signature()) == len(fields)
        assert checker.signature() != dataclasses.replace(
            checker, probes=checker.probes + 1
        ).signature()


class TestVerifyPass:
    def test_verifies_specification_and_records_tier(self):
        perm = generators.hwb(4)
        state = SynthesisPass("tbs").run(FlowState(function=perm))
        out = VerifyPass().run(state)
        verdict = out.artifacts["verification"]
        assert verdict.passed and verdict.tier == "permutation"

    def test_rejects_broken_cascade(self):
        perm = generators.hwb(4)
        state = SynthesisPass("tbs").run(FlowState(function=perm))
        broken = ReversibleCircuit(state.reversible.num_lines)
        broken.extend(state.reversible.gates[:-1])
        state.reversible = broken
        with pytest.raises(VerificationError, match="tier permutation"):
            VerifyPass().run(state)

    def test_empty_store_is_an_explicit_skip(self):
        out = VerifyPass().run(FlowState())
        assert out.artifacts["verification"].skipped

    def test_strict_checker_raises_on_empty_store(self):
        with pytest.raises(VerificationError, match="strict"):
            VerifyPass("strict").run(FlowState())

    def test_composes_with_pipeline_and_cache_key(self):
        perm = generators.hwb(4)
        state = SynthesisPass("tbs").run(FlowState(function=perm))
        pipeline = Pipeline(cache=None)
        _, record = pipeline.apply(VerifyPass(), state)
        assert record.name == "verify"
        assert record.details["tier"] == "permutation"
        assert (
            VerifyPass().signature()
            != VerifyPass(EquivalenceChecker(probes=3)).signature()
        )


class TestCompileFacade:
    def test_compile_verify_auto_records_every_tier(self, tmp_path):
        result = compile_workload(
            {"hwb": 4}, verify="auto", cache=None
        )
        assert result.verified
        assert all(
            record.verification is not None for record in result.records
        )
        report = result.verification_report()
        assert "tier" in report

    def test_compile_verify_off_by_default(self):
        result = compile_workload({"hwb": 4}, cache=None)
        assert not result.verified
        assert all(
            record.verification is None for record in result.records
        )
        assert "unverified" in result.verification_report()

    def test_target_verify_field_applies_when_arg_omitted(self):
        from repro.compiler import Target, targets

        target = targets.CLIFFORD_T.with_(verify="auto")
        assert isinstance(target, Target)
        result = compile_workload({"hwb": 4}, target=target, cache=None)
        assert result.verified

    def test_explicit_arg_overrides_target_field(self):
        from repro.compiler import targets

        target = targets.CLIFFORD_T.with_(verify="auto")
        result = compile_workload(
            {"hwb": 4}, target=target, verify="off", cache=None
        )
        assert not result.verified

    def test_sixteen_qubit_device_flow_verifies_end_to_end(self):
        """The acceptance bar: a 16-qubit DEVICE-shaped compile under
        verify='auto' where dense unitaries are impossible, with every
        pass record naming the tier that vouched for it."""
        n = 16
        circuit = QuantumCircuit(n)
        for q in range(n):
            circuit.h(q)
        for q in range(0, n - 1, 2):
            circuit.cz(q, q + 1)
        circuit.ccz(0, 1, 2)
        circuit.ccz(5, 6, 7)
        for q in range(n):
            circuit.h(q)
        flow = flows.device(coupling=CouplingMap.line(n))
        result = compile_workload(
            circuit, flow=flow, verify="auto", cache=None
        )
        assert result.verified
        tiers_used = {
            record.name: record.verification.tier
            for record in result.records
        }
        assert set(tiers_used) == {"cancel", "rptm", "tpar", "route"}
        for name, tier in tiers_used.items():
            assert tier in (
                "syntactic", "permutation", "stabilizer", "dense", "probes"
            ), f"pass {name} has no tier"
        # no dense-unitary oracle exists at this width: the wide
        # passes must have been vouched for by a scalable tier
        assert tiers_used["route"] == "probes"
        report = result.verification_report()
        for name in tiers_used:
            assert name in report

    def test_verification_failure_names_pass_and_tier(self):
        perm = BitPermutation([0, 2, 1, 3])

        class Broken(SimplifyPass):
            name = "broken-simp"

            def run(self, state):
                out = state.copy()
                pruned = ReversibleCircuit(state.reversible.num_lines)
                pruned.extend(state.reversible.gates[:-1])
                out.reversible = pruned
                return out

        state = SynthesisPass("tbs").run(FlowState(function=perm))
        with pytest.raises(
            VerificationError,
            match=r"'broken-simp'.*tier permutation",
        ):
            Pipeline(verify="auto", cache=None).apply(Broken(), state)

"""Preset flows must equal the hand-wired sequences gate-for-gate."""

from repro.boolean.permutation import BitPermutation
from repro.core.statistics import circuit_statistics
from repro.mapping.barenco import map_to_clifford_t
from repro.mapping.routing import CouplingMap, route_circuit
from repro.optimization.simplify import cancel_adjacent_gates, simplify_reversible
from repro.optimization.tpar import tpar_optimize
from repro.pipeline import FlowState, Pipeline, flows
from repro.revkit import RevKitShell, generators
from repro.synthesis.transformation import transformation_based_synthesis

PAPER_PI = BitPermutation([0, 2, 3, 5, 7, 1, 4, 6])


def hand_wired_eq5(n=4):
    """The pre-refactor Eq. (5) path: direct entry-point calls."""
    perm = generators.hwb(n)
    reversible = simplify_reversible(transformation_based_synthesis(perm))
    mapped = map_to_clifford_t(reversible, relative_phase=True)
    optimized = cancel_adjacent_gates(
        tpar_optimize(cancel_adjacent_gates(mapped))
    )
    return perm, reversible, mapped, optimized


class TestEq5Preset:
    def test_matches_hand_wired_gate_for_gate(self):
        perm, reversible, mapped, optimized = hand_wired_eq5()
        result = flows.EQ5.run(pipeline=Pipeline(cache=None))
        assert result.state.function == perm
        assert result.reversible.gates == reversible.gates
        assert result.quantum.gates == optimized.gates
        assert result.record("rptm").after["t_count"] == mapped.t_count()

    def test_shell_script_identical_stage_statistics(self):
        """The Eq. (5) script through the pass manager reproduces the
        pre-refactor per-stage outputs exactly."""
        perm, reversible, mapped, optimized = hand_wired_eq5()
        shell = RevKitShell(pipeline=Pipeline(cache=None))
        outputs = shell.run("revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c")
        tbs_count = len(transformation_based_synthesis(perm))
        assert outputs[0] == "generated BitPermutation"
        assert outputs[1] == f"{tbs_count} gates"
        assert outputs[2] == f"{tbs_count} -> {len(reversible)} gates"
        assert outputs[3] == (
            f"{len(mapped)} gates, T={mapped.t_count()}, "
            f"{mapped.num_qubits} qubits"
        )
        assert outputs[4] == f"T: {mapped.t_count()} -> {optimized.t_count()}"
        assert outputs[5] == str(circuit_statistics(optimized))
        assert shell.quantum.gates == optimized.gates

    def test_shell_cached_rerun_identical_outputs(self):
        """A cached re-run of the same script prints the same stages."""
        pipeline = Pipeline(cache="shared")
        script = "revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c"
        first = RevKitShell(pipeline=Pipeline(cache=pipeline.cache)).run(script)
        second = RevKitShell(pipeline=Pipeline(cache=pipeline.cache)).run(script)
        assert first == second

    def test_preset_timing_report_available(self):
        result = flows.EQ5.run(pipeline=Pipeline(cache=None))
        report = result.report()
        assert "rptm" in report and "ms" in report


class TestQsharpPreset:
    def test_matches_hand_wired_gate_for_gate(self):
        reversible = simplify_reversible(
            transformation_based_synthesis(PAPER_PI)
        )
        expected = cancel_adjacent_gates(map_to_clifford_t(reversible))
        result = flows.QSHARP.run(
            FlowState(function=PAPER_PI), pipeline=Pipeline(cache=None)
        )
        assert result.quantum.gates == expected.gates


class TestDevicePreset:
    def test_matches_hand_wired_gate_for_gate(self):
        reversible = transformation_based_synthesis(generators.hwb(3))
        circuit = reversible.to_quantum_circuit()
        work = cancel_adjacent_gates(circuit)
        work = map_to_clifford_t(work)
        work = cancel_adjacent_gates(tpar_optimize(work))
        expected = route_circuit(work, CouplingMap.line(work.num_qubits))
        flow = flows.device(CouplingMap.line(work.num_qubits))
        result = flow.run(
            FlowState(quantum=circuit), pipeline=Pipeline(cache=None)
        )
        assert result.quantum.gates == expected.circuit.gates
        assert result.routing.swap_count == expected.swap_count

    def test_default_preset_targets_bowtie_chip(self):
        route = flows.DEVICE.passes[-1]
        assert route.name == "route"
        assert route.coupling.num_qubits == 5

    def test_chained_after_eq5_keeps_optimized_quantum(self):
        """Feeding an EQ5 result into the device flow must lower the
        *current* quantum circuit on need — not re-map the stale
        cascade still sitting in the store."""
        eq5_result = flows.eq5(hwb=4).run(pipeline=Pipeline(cache=None))
        width = eq5_result.quantum.num_qubits
        result = flows.device(CouplingMap.line(width)).run(
            eq5_result.state, pipeline=Pipeline(cache=None, verify=True)
        )
        rptm = result.record("rptm")
        assert rptm.delta("gates") == 0  # nothing lowerable -> untouched
        assert rptm.after["qubits"] == width


class TestFlowRunArguments:
    def test_pipeline_and_options_conflict(self):
        import pytest

        from repro.pipeline import PipelineError

        # the error names the flow and every conflicting kwarg
        with pytest.raises(PipelineError, match=r"pipeline= and verify="):
            flows.EQ5.run(pipeline=Pipeline(cache=None), verify=True)
        with pytest.raises(
            PipelineError, match=r"cache=, verify="
        ) as excinfo:
            flows.EQ5.run(
                pipeline=Pipeline(cache=None), verify=True, cache=None
            )
        assert flows.EQ5.name in str(excinfo.value)

    def test_unknown_pipeline_option_named(self):
        import pytest

        from repro.pipeline import PipelineError

        with pytest.raises(
            PipelineError, match=r"unknown pipeline option\(s\) verbose="
        ):
            flows.EQ5.run(verbose=True)

    def test_eq5_name_shows_synthesis_variant(self):
        assert "synthesis=dbs" in flows.eq5(hwb=4, synthesis="dbs").name
        assert "synthesis" not in flows.eq5(hwb=4).name

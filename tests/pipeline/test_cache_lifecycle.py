"""Disk-tier lifecycle: LRU ordering, budgets, stamps, statistics."""

import json
import os
import time

import repro
from repro.pipeline import PassCache
from repro.pipeline.cache import DISK_FORMAT


def _fill(cache, count, prefix="key"):
    for index in range(count):
        cache.put(f"{prefix}{index}", {"function": None}, {"i": index})


class TestGcOrdering:
    def test_least_recently_accessed_evicted_first(self, tmp_path):
        cache = PassCache(path=str(tmp_path))
        _fill(cache, 4)
        # age the files apart, then touch key0 via a disk hit from a
        # fresh instance (the memory tier of `cache` would mask it)
        now = time.time()
        for index in range(4):
            entry = cache._entry_path(f"key{index}")
            os.utime(entry, (now - 100 + index, now - 100 + index))
        reader = PassCache(path=str(tmp_path))
        assert reader.get("key0") is not None  # bumps the access stamp
        swept = cache.gc(max_entries=2)
        assert swept["evicted"] == 2
        survivors = {
            json.loads(f.read_text())["key"]
            for f in tmp_path.glob("*.json")
        }
        assert survivors == {"key0", "key3"}

    def test_byte_budget(self, tmp_path):
        cache = PassCache(path=str(tmp_path))
        _fill(cache, 6)
        entry_bytes = sum(
            f.stat().st_size for f in tmp_path.glob("*.json")
        ) // 6
        swept = cache.gc(max_bytes=entry_bytes * 3)
        assert swept["bytes"] <= entry_bytes * 3
        assert swept["evicted"] >= 3

    def test_gc_without_budgets_keeps_entries(self, tmp_path):
        cache = PassCache(path=str(tmp_path))
        _fill(cache, 3)
        assert cache.gc()["evicted"] == 0
        assert len(list(tmp_path.glob("*.json"))) == 3

    def test_gc_on_memory_only_cache_is_a_noop(self):
        cache = PassCache()
        _fill(cache, 3)
        assert cache.gc(max_entries=0) == {
            "scanned": 0,
            "evicted": 0,
            "quarantined": 0,
            "pinned": 0,
            "entries": 0,
            "bytes": 0,
        }

    def test_validate_drops_foreign_and_corrupt_files(self, tmp_path):
        cache = PassCache(path=str(tmp_path))
        _fill(cache, 2)
        victim = next(iter(tmp_path.glob("*.json")))
        victim.write_text('{"format": 999}')
        bystander = tmp_path / "notes.json"  # not a content-named file
        bystander.write_text("{}")
        swept = cache.gc(validate=True)
        assert swept["evicted"] == 1
        assert bystander.exists()


class TestAutoGc:
    def test_put_keeps_disk_tier_within_budget(self, tmp_path):
        cache = PassCache(path=str(tmp_path), max_entries=3)
        _fill(cache, 10)
        assert len(list(tmp_path.glob("*.json"))) <= 3
        assert cache.disk_evictions >= 7

    def test_evicted_entry_recompiles_cleanly(self, tmp_path):
        bounded = PassCache(path=str(tmp_path), max_entries=2)
        first = repro.compile(
            {"hwb": 3}, target="clifford_t", cache=bounded
        )
        assert bounded.stats()["disk_evictions"] > 0
        # a fresh instance sees only the surviving entries; the flow
        # must recompute the evicted ones and still agree exactly
        again = repro.compile(
            {"hwb": 3},
            target="clifford_t",
            cache=PassCache(path=str(tmp_path)),
        )
        assert again.circuit.gates == first.circuit.gates


class TestStampsAndStats:
    def test_entries_carry_generation_stamps(self, tmp_path):
        cache = PassCache(path=str(tmp_path))
        cache.put("a", {"function": None}, {})
        cache.put("a", {"function": None}, {"rewrite": True})
        payload = json.loads(
            next(iter(tmp_path.glob("*.json"))).read_text()
        )
        assert payload["format"] == DISK_FORMAT
        pid, counter = payload["gen"]
        assert pid == os.getpid()
        assert counter > 0

    def test_stats_schema(self, tmp_path):
        cache = PassCache(maxsize=2, path=str(tmp_path))
        _fill(cache, 3)
        cache.get("key2")
        cache.get("missing")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["memory_evictions"] == 1  # maxsize=2, 3 puts
        assert stats["evictions"] == stats["memory_evictions"] + stats[
            "disk_evictions"
        ]
        assert stats["disk_entries"] == 3
        assert stats["disk_bytes"] > 0

    def test_compilation_result_surfaces_cache_stats(self):
        cache = PassCache()
        result = repro.compile({"hwb": 3}, target="toffoli", cache=cache)
        assert result.cache_stats is not None
        assert result.cache_stats["entries"] == len(cache)
        assert set(result.cache_stats) >= {
            "hits", "misses", "evictions", "disk_bytes",
        }
        uncached = repro.compile({"hwb": 3}, target="toffoli", cache=None)
        assert uncached.cache_stats is None

    def test_clear_resets_eviction_counters(self, tmp_path):
        cache = PassCache(maxsize=1, path=str(tmp_path), max_entries=1)
        _fill(cache, 3)
        assert cache.stats()["evictions"] > 0
        cache.clear(disk=True)
        stats = cache.stats()
        assert stats["evictions"] == 0
        assert stats["disk_entries"] == 0

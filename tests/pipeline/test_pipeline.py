"""Unit tests for the pass-manager runner, cache and verification."""

import pytest

from repro.boolean.permutation import BitPermutation
from repro.pipeline import (
    CancelPass,
    FlowState,
    GeneratePass,
    MapToCliffordTPass,
    PassCache,
    Pipeline,
    PipelineError,
    SimplifyPass,
    SynthesisPass,
    TparPass,
    VerificationError,
    flows,
    state_key,
    state_token,
)
from repro.revkit import generators
from repro.synthesis.reversible import ReversibleCircuit


class CountingSimplify(SimplifyPass):
    """SimplifyPass that counts how often run() actually executes."""

    calls = 0

    def run(self, state):
        type(self).calls += 1
        return super().run(state)


class BrokenSimplify(SimplifyPass):
    """A deliberately wrong pass: drops the last gate of the cascade."""

    name = "broken-simp"

    def run(self, state):
        out = state.copy()
        pruned = ReversibleCircuit(state.reversible.num_lines)
        pruned.extend(state.reversible.gates[:-1])
        out.reversible = pruned
        return out


class BrokenTpar(TparPass):
    """A deliberately wrong pass: appends a stray X to the circuit."""

    name = "broken-tpar"

    def run(self, state):
        out = super().run(state)
        out.quantum.x(0)
        return out


def hwb4_state():
    perm = generators.hwb(4)
    return FlowState(
        function=perm,
        reversible=SynthesisPass("tbs").run(FlowState(function=perm)).reversible,
    )


class TestStateFingerprint:
    def test_token_distinguishes_content(self):
        a = BitPermutation([0, 1, 2, 3])
        b = BitPermutation([0, 1, 3, 2])
        assert state_token(a) != state_token(b)
        assert state_token(a) == state_token(BitPermutation([0, 1, 2, 3]))

    def test_key_depends_on_selected_fields_only(self):
        state = hwb4_state()
        other = FlowState(function=state.function)
        assert state_key(state, ("function",)) == state_key(other, ("function",))
        assert state_key(state, ("function", "reversible")) != state_key(
            other, ("function", "reversible")
        )

    def test_circuit_token_sees_gate_order(self):
        a = ReversibleCircuit(2).cnot(0, 1).x(0)
        b = ReversibleCircuit(2).x(0).cnot(0, 1)
        assert state_token(a) != state_token(b)


class TestPipelineRecords:
    def test_records_time_and_deltas(self):
        result = flows.eq5(hwb=4).run(pipeline=Pipeline(cache=None))
        assert [r.name for r in result.records] == [
            "revgen-hwb", "tbs", "revsimp", "rptm", "tpar", "ps",
        ]
        assert all(r.seconds >= 0 for r in result.records)
        tpar = result.record("tpar")
        assert tpar.delta("t_count") < 0
        assert "T " in tpar.summary()
        assert "statistics" in result.state.artifacts

    def test_report_mentions_every_pass(self):
        pipeline = Pipeline(cache=None)
        flows.eq5(hwb=4).run(pipeline=pipeline)
        text = pipeline.report()
        for name in ("revgen-hwb", "tbs", "revsimp", "rptm", "tpar"):
            assert name in text

    def test_missing_store_raises(self):
        with pytest.raises(PipelineError):
            Pipeline(cache=None).apply(SimplifyPass(), FlowState())

    def test_unknown_generator_rejected(self):
        with pytest.raises(PipelineError):
            GeneratePass("nope", 3)

    def test_irrelevant_generator_options_ignored(self):
        """The shell historically tolerated stray options
        (``revgen --hwb 4 --seed 3`` ignored the seed)."""
        state = GeneratePass("hwb", 4, seed=3).run(FlowState())
        assert state.function == generators.hwb(4)

    def test_unknown_synthesis_rejected(self):
        with pytest.raises(PipelineError):
            SynthesisPass("nope")


class TestCache:
    def test_cache_hit_skips_execution(self):
        CountingSimplify.calls = 0
        pipeline = Pipeline(cache=PassCache())
        state = hwb4_state()
        _, first = pipeline.apply(CountingSimplify(), state)
        _, second = pipeline.apply(CountingSimplify(), state)
        assert CountingSimplify.calls == 1
        assert not first.cache_hit
        assert second.cache_hit
        assert second.after == first.after

    def test_cache_key_sees_input_content(self):
        CountingSimplify.calls = 0
        pipeline = Pipeline(cache=PassCache())
        pipeline.apply(CountingSimplify(), hwb4_state())
        other = FlowState(
            function=generators.hwb(3),
            reversible=SynthesisPass("tbs")
            .run(FlowState(function=generators.hwb(3)))
            .reversible,
        )
        _, record = pipeline.apply(CountingSimplify(), other)
        assert CountingSimplify.calls == 2
        assert not record.cache_hit

    def test_cache_key_sees_pass_parameters(self):
        pipeline = Pipeline(cache=PassCache())
        state = hwb4_state()
        pipeline.apply(SimplifyPass(max_rounds=10), state)
        _, record = pipeline.apply(SimplifyPass(max_rounds=1), state)
        assert not record.cache_hit

    def test_mutating_result_does_not_corrupt_cache(self):
        pipeline = Pipeline(cache=PassCache())
        perm = generators.hwb(4)
        state = FlowState(function=perm)
        state, _ = pipeline.apply(SynthesisPass("tbs"), state)
        mapped, _ = pipeline.apply(MapToCliffordTPass(), state)
        mapped.quantum.x(0)  # caller corrupts its copy
        replay, record = pipeline.apply(MapToCliffordTPass(), state)
        assert record.cache_hit
        assert replay.quantum.gates != mapped.quantum.gates

    def test_lru_eviction(self):
        cache = PassCache(maxsize=2)
        cache.put("a", {}, {})
        cache.put("b", {}, {})
        cache.put("c", {}, {})
        assert len(cache) == 2
        assert cache.get("a") is None

    def test_shared_cache_reused_across_pipelines(self):
        cache = PassCache()
        state = hwb4_state()
        Pipeline(cache=cache).apply(SimplifyPass(), state)
        _, record = Pipeline(cache=cache).apply(SimplifyPass(), state)
        assert record.cache_hit

    def test_same_qualname_closures_do_not_collide(self):
        """Opaque callables opt out of caching: two closures sharing a
        qualname must not replay each other's results."""
        from repro.synthesis.transformation import (
            bidirectional_synthesis,
            transformation_based_synthesis,
        )

        def make_synth(backend):
            def synth(perm):
                return backend(perm)
            return synth

        pipeline = Pipeline(cache=PassCache())
        state = FlowState(function=generators.hwb(4))
        pipeline.apply(
            SynthesisPass(make_synth(transformation_based_synthesis)), state
        )
        result, record = pipeline.apply(
            SynthesisPass(make_synth(bidirectional_synthesis)), state
        )
        assert not record.cache_hit
        assert result.reversible.gates == bidirectional_synthesis(
            generators.hwb(4)
        ).gates

    def test_named_callable_still_cacheable(self):
        from repro.synthesis.transformation import bidirectional_synthesis

        pipeline = Pipeline(cache=PassCache())
        state = FlowState(function=generators.hwb(4))
        _, cold = pipeline.apply(SynthesisPass(bidirectional_synthesis), state)
        _, warm = pipeline.apply(SynthesisPass(bidirectional_synthesis), state)
        assert not cold.cache_hit
        assert warm.cache_hit


class TestVerification:
    def test_broken_reversible_pass_caught(self):
        pipeline = Pipeline(cache=None, verify=True)
        with pytest.raises(VerificationError, match="broken-simp"):
            pipeline.apply(BrokenSimplify(), hwb4_state())

    def test_broken_quantum_pass_caught(self):
        state = hwb4_state()
        state, _ = Pipeline(cache=None).apply(MapToCliffordTPass(), state)
        pipeline = Pipeline(cache=None, verify=True)
        with pytest.raises(VerificationError, match="broken-tpar"):
            pipeline.apply(BrokenTpar(), state)

    def test_honest_passes_verify_clean(self):
        result = flows.eq5(hwb=4).run(pipeline=Pipeline(cache=None, verify=True))
        assert result.quantum.is_clifford_t()

    def test_verification_off_lets_broken_pass_through(self):
        pipeline = Pipeline(cache=None, verify=False)
        state, _ = pipeline.apply(BrokenSimplify(), hwb4_state())
        assert state.reversible is not None

    def test_failed_verification_never_poisons_cache(self):
        """A pass that fails verify=True must leave nothing behind: a
        later verify=False pipeline on the same cache must re-run the
        pass, not replay the broken output."""
        cache = PassCache()
        state = hwb4_state()
        with pytest.raises(VerificationError):
            Pipeline(cache=cache, verify=True).apply(BrokenSimplify(), state)
        assert len(cache) == 0
        _, record = Pipeline(cache=cache, verify=False).apply(
            BrokenSimplify(), state
        )
        assert not record.cache_hit

    def test_cache_hit_skips_reverification(self):
        """Entries stored by a verifying pipeline are flagged, so a
        warm verify=True run does not redo the dense checks."""

        class CountingVerify(SimplifyPass):
            verify_calls = 0

            def verify(self, before, after):
                type(self).verify_calls += 1
                return super().verify(before, after)

        CountingVerify.verify_calls = 0
        cache = PassCache()
        state = hwb4_state()
        pipeline = Pipeline(cache=cache, verify=True)
        pipeline.apply(CountingVerify(), state)
        _, warm = pipeline.apply(CountingVerify(), state)
        assert warm.cache_hit
        assert CountingVerify.verify_calls == 1

    def test_unverified_entry_verified_on_first_hit(self):
        """An entry stored by a verify=False pipeline is checked (once)
        when a verifying pipeline replays it."""
        cache = PassCache()
        state = hwb4_state()
        Pipeline(cache=cache, verify=False).apply(SimplifyPass(), state)
        verifier = Pipeline(cache=cache, verify=True)
        _, first = verifier.apply(SimplifyPass(), state)
        assert first.cache_hit

    def test_broken_cached_entry_dropped_on_verified_hit(self):
        """A broken entry cached by a verify=False run is caught and
        evicted the first time a verifying pipeline replays it."""
        cache = PassCache()
        state = hwb4_state()
        Pipeline(cache=cache, verify=False).apply(BrokenSimplify(), state)
        assert len(cache) == 1
        with pytest.raises(VerificationError):
            Pipeline(cache=cache, verify=True).apply(BrokenSimplify(), state)
        assert len(cache) == 0

    def test_widened_quantum_lowering_is_verified(self):
        """Mapping a quantum circuit may append clean ancillae; the
        verifier must still check it (extended-unitary), and must
        catch a corrupted widened mapping."""
        from repro.core.circuit import QuantumCircuit

        class BrokenMap(MapToCliffordTPass):
            def __init__(self, **options):
                super().__init__(**options)
                self.name = "broken-map"

            def run(self, state):
                out = super().run(state)
                out.quantum.z(0)
                return out

        circuit = QuantumCircuit(4).h(0).mcx((0, 1, 2), 3)
        state = FlowState(quantum=circuit)
        good = Pipeline(cache=None, verify=True)
        result, _ = good.apply(
            MapToCliffordTPass(only_if_needed=True), state
        )
        assert result.quantum.num_qubits > 4  # really widened
        with pytest.raises(VerificationError, match="broken-map"):
            Pipeline(cache=None, verify=True).apply(
                BrokenMap(only_if_needed=True), state
            )

    def test_cache_key_sees_circuit_name(self):
        """Replayed outputs carry name-derived metadata, so identical
        gates under different names must not share a cache entry."""
        from repro.core.circuit import QuantumCircuit

        def named(name):
            return FlowState(
                quantum=QuantumCircuit(2, name=name).h(0).h(0).cx(0, 1)
            )

        pipeline = Pipeline(cache=PassCache())
        pipeline.apply(CancelPass(), named("alpha"))
        state, record = pipeline.apply(CancelPass(), named("beta"))
        assert not record.cache_hit
        assert "alpha" not in state.quantum.name

    def test_flow_error_context_names_flow_and_pass_index(self):
        """A PipelineError mid-flow must say which preset step failed:
        flow name, 1-based pass index, pass name and stage."""
        flow = flows.Flow(
            name="demo-flow",
            description="generate, then simplify nothing",
            passes=(SimplifyPass(),),  # no reversible store yet
        )
        with pytest.raises(PipelineError) as info:
            flow.run(pipeline=Pipeline(cache=None))
        message = str(info.value)
        assert "flow 'demo-flow'" in message
        assert "pass 1/1" in message
        assert "'revsimp'" in message

    def test_verification_error_context_keeps_type_and_position(self):
        flow = flows.Flow(
            name="broken-demo",
            description="a deliberately wrong simplify mid-flow",
            passes=(
                GeneratePass("hwb", 4),
                SynthesisPass("tbs"),
                BrokenSimplify(),
            ),
        )
        with pytest.raises(VerificationError) as info:
            flow.run(pipeline=Pipeline(cache=None, verify=True))
        message = str(info.value)
        assert "flow 'broken-demo'" in message
        assert "pass 3/3" in message
        assert "broken-simp" in message

    def test_foreign_exception_keeps_type_and_gains_note(self):
        """A non-pipeline exception keeps its type (except clauses
        still match) and gains a traceback note with the position."""

        class ExplodingPass(SimplifyPass):
            name = "kaboom"

            def run(self, state):
                raise ValueError("wires crossed")

        flow = flows.Flow(
            name="exploding",
            description="a pass that raises a foreign error",
            passes=(GeneratePass("hwb", 3), SynthesisPass("tbs"),
                    ExplodingPass()),
        )
        with pytest.raises(ValueError, match="wires crossed") as info:
            flow.run(pipeline=Pipeline(cache=None))
        notes = getattr(info.value, "__notes__", [])
        assert any(
            "flow 'exploding'" in note and "pass 3/3" in note
            for note in notes
        )

    def test_pipeline_run_context_without_flow_name(self):
        with pytest.raises(PipelineError) as info:
            Pipeline(cache=None).run([SimplifyPass()])
        message = str(info.value)
        assert "pass 1/1" in message
        assert "flow" not in message

    def test_route_verify_guard_uses_device_width(self):
        """The dense routing check builds device-width unitaries, so a
        narrow circuit on a wide coupling map must skip it (not try to
        allocate 2^device_width matrices)."""
        from repro.core.circuit import QuantumCircuit
        from repro.mapping.routing import CouplingMap
        from repro.pipeline import RoutePass

        circuit = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        pipeline = Pipeline(cache=None, verify=True)
        state, record = pipeline.apply(
            RoutePass(CouplingMap.line(12)), FlowState(quantum=circuit)
        )
        assert state.routing.circuit.num_qubits == 12
        assert record.details["swaps"] == state.routing.swap_count

"""Integration tests reproducing the paper's end-to-end flows.

Each test mirrors one artifact of the paper: the Fig. 4 program, the
Fig. 5 circuit structure, the Fig. 6 noisy-chip run, the Fig. 7
Maiorana–McFarland program, the Eq. (5) RevKit pipeline, and the
Fig. 9/10 Q# interop.
"""

import pytest

from repro.boolean.bent import HiddenShiftInstance, MaioranaMcFarland
from repro.boolean.permutation import BitPermutation
from repro.boolean.truth_table import TruthTable
from repro.frameworks.projectq import (
    All,
    Compute,
    Dagger,
    H,
    IBMBackend,
    MainEngine,
    Measure,
    PermutationOracle,
    PhaseOracle,
    Uncompute,
    X,
)
from repro.frameworks.qsharp import (
    hidden_shift_program,
    parse_operation_body,
    permutation_oracle_operation,
    validate_program,
)
from repro.revkit import RevKitShell, dbs
from repro.simulator.statevector import StatevectorSimulator


def paper_f(a, b, c, d):
    return (a and b) ^ (c and d)


def run_fig4_program(backend=None, seed=0):
    """The paper's Fig. 4 listing (PhaseOracle outside Compute, as in
    the actual ProjectQ revkit sample and the Fig. 5 circuit)."""
    eng = MainEngine(backend=backend, seed=seed)
    x1, x2, x3, x4 = qubits = eng.allocate_qureg(4)

    with Compute(eng):
        All(H) | qubits
        X | x1
    PhaseOracle(paper_f) | qubits
    Uncompute(eng)

    PhaseOracle(paper_f) | qubits
    All(H) | qubits
    Measure | qubits

    eng.flush()
    shift = 8 * int(x4) + 4 * int(x3) + 2 * int(x2) + int(x1)
    return shift, eng


class TestFig4Flow:
    def test_shift_is_one(self):
        shift, _eng = run_fig4_program()
        assert shift == 1

    def test_program_deterministic_across_seeds(self):
        for seed in range(5):
            shift, _eng = run_fig4_program(seed=seed)
            assert shift == 1

    def test_fig5_circuit_structure(self):
        """Fig. 5: three H layers, two X (shift), two phase oracles of
        two CZ cubes each, then measurement."""
        _shift, eng = run_fig4_program()
        ops = eng.circuit.count_ops()
        assert ops["h"] == 12     # 4 qubits x 3 layers
        assert ops["x"] == 2      # X^s twice (compute + uncompute)
        assert ops["cz"] == 4     # two cubes per oracle, two oracles
        assert ops["measure"] == 4

    def test_f_equals_its_dual(self):
        """Sec. VII: 'It can be shown that f = f~'."""
        from repro.boolean.spectral import dual_bent

        table = TruthTable.from_function(4, paper_f)
        assert dual_bent(table) == table

    def test_all_shifts_recovered(self):
        """Beyond the paper's s = 1: the same program structure finds
        every shift when the X layer encodes it."""
        table = TruthTable.from_function(4, paper_f)
        mm_like = HiddenShiftInstance(
            MaioranaMcFarland(BitPermutation.identity(2), TruthTable(2)),
            0,
        )
        from repro.algorithms.hidden_shift import solve_hidden_shift

        for shift in range(16):
            instance = HiddenShiftInstance(mm_like.function, shift)
            result = solve_hidden_shift(instance)
            assert result.measured_shift == shift


class TestFig6NoisyRun:
    def test_histogram_shape(self):
        """3 x 1024 shots on the noisy backend: the correct shift is
        the clear mode with probability well below 1 (paper: ~0.63)."""
        backend = IBMBackend(shots=1024, seed=2018)
        shift, eng = run_fig4_program(backend=backend)
        assert shift == 1  # modal outcome is the correct shift
        histogram = backend.histogram()
        p_correct = histogram.get(1, 0.0)
        assert 0.35 < p_correct < 0.95
        assert p_correct < 0.999  # noise visibly present
        # every other outcome is individually less likely
        for outcome, p in histogram.items():
            if outcome != 1:
                assert p < p_correct


class TestFig7Flow:
    def test_mm_program(self, paper_pi):
        """The Fig. 7 listing with pi = [0,2,3,5,7,1,4,6], s = 5."""

        def f6(a, b, c, d, e, f):
            return (a and b) ^ (c and d) ^ (e and f)

        eng = MainEngine(seed=7)
        qubits = eng.allocate_qureg(6)
        x = qubits[::2]
        y = qubits[1::2]

        with Compute(eng):
            All(H) | qubits
            All(X) | [x[0], x[1]]
            PermutationOracle(paper_pi) | y
        PhaseOracle(f6) | qubits
        Uncompute(eng)

        with Compute(eng):
            with Dagger(eng):
                PermutationOracle(paper_pi, synth=dbs) | x
        PhaseOracle(f6) | qubits
        Uncompute(eng)

        All(H) | qubits
        Measure | qubits
        eng.flush()

        shift = sum(int(q) << i for i, q in enumerate(qubits))
        assert shift == 5

    def test_fig8_subcircuit_count(self, paper_pi):
        """Fig. 8: four permutation subcircuits (pi or its inverse)."""
        from repro.frameworks.projectq.backends import CircuitCollector

        eng = MainEngine(backend=CircuitCollector())
        qubits = eng.allocate_qureg(6)
        y = qubits[1::2]
        with Compute(eng):
            PermutationOracle(paper_pi) | y
        Uncompute(eng)
        with Compute(eng):
            with Dagger(eng):
                PermutationOracle(paper_pi, synth=dbs) | qubits[::2]
        Uncompute(eng)
        eng.flush()
        # the four dashed boxes exist as gate blocks; just check the
        # full sequence is unitary-trivial (each pair cancels)
        state = StatevectorSimulator().statevector(eng.backend.circuit)
        assert state.probability_of(0) == pytest.approx(1.0)


class TestEq5Pipeline:
    def test_full_pipeline_statistics(self):
        shell = RevKitShell()
        outputs = shell.run(
            "revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c"
        )
        # synthesized circuit realizes hwb4
        assert shell.quantum is not None
        stats = outputs[-1]
        assert "T:" in stats
        # pipeline ends in a Clifford+T circuit
        assert shell.quantum.is_clifford_t()

    def test_pipeline_preserves_function(self):
        """After tbs + revsimp the reversible circuit still computes
        hwb4 (simulate command cross-checks)."""
        shell = RevKitShell()
        shell.run("revgen --hwb 4; tbs; revsimp")
        assert "matches specification: True" in shell.execute("simulate")


class TestQSharpFlow:
    def test_fig10_oracle_generation(self, paper_pi):
        """RevKit as Q# pre-processor: the emitted operation uses only
        Q# primitives and computes pi on the data qubits."""
        operation = permutation_oracle_operation(paper_pi)
        assert validate_program(operation.code)
        for line in operation.code.splitlines():
            stripped = line.strip()
            if stripped.endswith(");") and "(" in stripped:
                assert any(
                    stripped.startswith(name)
                    for name in (
                        "H(", "X(", "Y(", "Z(", "S(", "T(", "CNOT(",
                        "CZ(", "CCNOT(", "SWAP(", "(Adjoint",
                    )
                )

    def test_fig9_program_and_native_simulation(self, paper_pi):
        program = hidden_shift_program(paper_pi, 3)
        assert validate_program(program)
        # the permutation oracle inside the program is re-parsed and
        # must act as pi on the data qubits
        operation = permutation_oracle_operation(paper_pi)
        parsed = parse_operation_body(
            operation.code, operation.circuit.num_qubits
        )
        from repro.core.unitary import circuit_unitary
        import numpy as np

        unitary = circuit_unitary(parsed)
        for value in range(8):
            column = unitary[:, value]
            assert int(np.argmax(np.abs(column))) == paper_pi(value)


class TestCrossMethodConsistency:
    @pytest.mark.parametrize("seed", range(4))
    def test_tt_and_mm_methods_agree(self, seed):
        from repro.algorithms.hidden_shift import solve_hidden_shift

        instance = HiddenShiftInstance.random(2, seed=seed + 50)
        a = solve_hidden_shift(instance, method="truth_table")
        b = solve_hidden_shift(instance, method="mm")
        assert a.measured_shift == b.measured_shift == instance.shift

"""Chaos tests for the session layer: job timeouts, dispatch retries.

The obligations, per ISSUE 6: a hung or failing job surfaces as a
typed error within its budget (the worker is abandoned, never joined),
transient dispatch failures are retried to success, and a batch run
with all resilience wrappers enabled produces gate-identical circuits
to a plain run.
"""

import asyncio
import time

import pytest

import repro
from repro.compiler import CompilerSession
from repro.pipeline import Pipeline, PipelineError
from repro.resilience import DeadlineExceeded, RetriesExhausted

#: How long a deliberately stalled worker sleeps — must comfortably
#: exceed every job_timeout+grace used below.
STALL = 2.0


def reference(n, target="toffoli"):
    """Compile one hwb instance with no resilience wrappers at all."""
    return repro.compile({"hwb": n}, target=target, cache=None)


class TestCompileDeadline:
    def test_deadline_expiry_names_the_flow_position(self, chaos):
        chaos([{"site": "pipeline.pass.run.*", "action": "delay",
                "seconds": 0.2, "times": 1}])
        with pytest.raises(DeadlineExceeded) as info:
            repro.compile({"hwb": 3}, cache=None, deadline=0.05)
        message = str(info.value)
        assert "deadline of 0.05s exceeded" in message
        assert "pass " in message  # flow position survived wrapping

    def test_retry_recovers_an_injected_pass_fault(self, chaos):
        chaos([{"site": "pipeline.pass.run.tbs", "times": 1,
                "error": "fault"}])
        result = repro.compile(
            {"hwb": 3}, target="toffoli", cache=None,
            retry=2, on_error="retry",
        )
        expected = reference(3)
        assert result.reversible.gates == expected.reversible.gates

    def test_explicit_pipeline_conflicts_with_resilience_kwargs(self):
        pipeline = Pipeline(cache=None)
        with pytest.raises(PipelineError, match="conflicts"):
            repro.compile({"hwb": 3}, pipeline=pipeline, deadline=5)
        with pytest.raises(PipelineError, match="conflicts"):
            repro.compile({"hwb": 3}, pipeline=pipeline, retry=2)
        with pytest.raises(PipelineError, match="conflicts"):
            repro.compile(
                {"hwb": 3}, pipeline=pipeline, on_error="retry"
            )

    def test_session_rejects_non_positive_job_timeout(self):
        with pytest.raises(PipelineError, match="job_timeout"):
            CompilerSession(job_timeout=0)
        with pytest.raises(PipelineError, match="job_timeout"):
            CompilerSession(job_timeout=-1)


class TestJobTimeoutBackstop:
    def test_hung_job_is_abandoned_within_budget(self, chaos):
        chaos([{"site": "session.dispatch", "action": "delay",
                "seconds": STALL, "times": None}])
        session = CompilerSession(
            target="toffoli", cache=None, max_workers=2
        )
        started = time.monotonic()
        with pytest.raises(DeadlineExceeded) as info:
            session.compile_many(
                [{"hwb": 3}, {"hwb": 3}], job_timeout=0.1
            )
        elapsed = time.monotonic() - started
        message = str(info.value)
        assert "session.job[" in message
        assert "0.1s job timeout" in message
        assert "worker abandoned" in message
        # the caller got its typed error promptly — it never waited
        # for the stalled worker's full sleep
        assert elapsed < STALL

    def test_session_default_job_timeout_applies(self, chaos):
        chaos([{"site": "session.dispatch", "action": "delay",
                "seconds": STALL, "times": None}])
        session = CompilerSession(
            target="toffoli", cache=None, max_workers=2,
            job_timeout=0.1,
        )
        with pytest.raises(DeadlineExceeded, match="job timeout"):
            session.compile_many([{"hwb": 3}, {"hwb": 3}])

    def test_cooperative_deadline_fires_inside_the_worker(self, chaos):
        # the in-worker deadline (exact flow position) must fire at
        # the first checkpoint after the stalled pass — the backstop
        # exists only for workers that never come back at all
        chaos([{"site": "pipeline.pass.run.*", "action": "delay",
                "seconds": 0.3, "times": 1}])
        session = CompilerSession(target="toffoli", cache=None)
        with pytest.raises(DeadlineExceeded) as info:
            session._compile_job(({"hwb": 3}, None, None), 0.1, None)
        message = str(info.value)
        assert "deadline of 0.1s exceeded" in message
        assert "pass " in message  # cooperative: flow position known

    def test_async_hung_job_is_abandoned_within_budget(self, chaos):
        chaos([{"site": "session.dispatch", "action": "delay",
                "seconds": STALL, "times": None}])
        session = CompilerSession(
            target="toffoli", cache=None, max_workers=2
        )
        started = time.monotonic()
        with pytest.raises(DeadlineExceeded, match="worker abandoned"):
            asyncio.run(
                session.compile_many_async(
                    [{"hwb": 3}, {"hwb": 3}], job_timeout=0.1
                )
            )
        assert time.monotonic() - started < STALL


class TestDispatchRetry:
    def test_transient_dispatch_fault_is_retried_to_success(
        self, chaos
    ):
        chaos([{"site": "session.dispatch", "times": 1,
                "error": "fault"}])
        session = CompilerSession(target="toffoli", cache=None)
        (result,) = session.compile_many([{"hwb": 3}], retry=2)
        expected = reference(3)
        assert result.reversible.gates == expected.reversible.gates

    def test_exhausted_dispatch_retries_raise_typed_error(self, chaos):
        chaos([{"site": "session.dispatch", "times": None,
                "error": "fault"}])
        session = CompilerSession(target="toffoli", cache=None)
        with pytest.raises(RetriesExhausted) as info:
            session.compile_many([{"hwb": 3}], retry=2)
        assert "session.dispatch" in str(info.value)
        assert "2 attempt(s)" in str(info.value)

    def test_batch_under_faults_stays_gate_identical(self, chaos):
        # one injected fault per task, everything retried: the batch
        # must still produce exactly the fault-free circuits
        chaos([{"site": "session.dispatch", "times": 2,
                "error": "fault"}])
        session = CompilerSession(
            target="toffoli", cache=None, max_workers=2
        )
        results = session.compile_many(
            [{"hwb": 3}, {"hwb": 4}], retry=3
        )
        for n, result in zip((3, 4), results):
            assert result.reversible.gates == reference(n).reversible.gates


class TestWrappersAreTransparent:
    def test_batch_with_all_wrappers_matches_plain_run(self):
        # no faults installed: deadline+retry wrappers on a healthy
        # run must be behaviorally invisible (the <2% bench obligation
        # is the perf half of this same contract)
        session = CompilerSession(
            target="toffoli", cache=None, max_workers=2,
            job_timeout=60, retry=2,
        )
        results = session.compile_many([{"hwb": 3}, {"hwb": 4}])
        for n, result in zip((3, 4), results):
            assert result.reversible.gates == reference(n).reversible.gates

    def test_sweep_with_wrappers_matches_plain_sweep(self):
        wrapped = CompilerSession(
            target="clifford_t", cache=None, max_workers=2
        ).sweep({"hwb": [3, 4]}, job_timeout=60, retry=2)
        plain = CompilerSession(
            target="clifford_t", cache=None, max_workers=2
        ).sweep({"hwb": [3, 4]})
        assert len(wrapped) == len(plain) == 2
        for w, p in zip(wrapped.points, plain.points):
            assert w.params == p.params
            assert w.result.circuit.gates == p.result.circuit.gates

    def test_async_sweep_with_wrappers_matches(self):
        session = CompilerSession(
            target="toffoli", cache=None, max_workers=2
        )
        swept = asyncio.run(
            session.sweep_async(
                {"hwb": [3, 4]}, job_timeout=60, retry=2
            )
        )
        for point in swept.points:
            n = point.params["hwb"]
            expected = reference(n)
            assert (
                point.result.reversible.gates
                == expected.reversible.gates
            )

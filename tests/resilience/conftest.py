"""Chaos-suite fixtures: fault plans, hypothesis profiles, reporting.

The CI chaos job runs this suite with ``HYPOTHESIS_PROFILE=ci`` and
``REPRO_FAULTS_REPORT=FAULTS_report.json``: every plan activated
through the :func:`chaos` fixture contributes its exercised-site
accounting to that artifact, so the job's log shows exactly which
injection sites each run covered.
"""

import json
import os

import pytest
from hypothesis import HealthCheck, settings

from repro.resilience import FaultPlan, install

settings.register_profile(
    "ci",
    max_examples=30,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "dev",
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

#: Fixed seed for every plan the suite activates — chaos runs are
#: deterministic, in CI and locally.
PLAN_SEED = 1701

_REPORTS = []


@pytest.fixture
def chaos(request):
    """Yield an activator installing a ``FaultPlan`` for one test.

    Call it with a list of spec dicts (``site``/``action``/``times``/
    ``skip``/``seconds``/``error``); the plan is installed process-wide
    until the test ends, then released (unblocking any pending hangs),
    uninstalled, and its report queued for the ``FAULTS_report.json``
    artifact.
    """
    installed = []

    def activate(specs, seed=PLAN_SEED, name=None):
        plan = FaultPlan(specs, seed=seed, name=name or request.node.name)
        installed.append((plan, install(plan)))
        return plan

    yield activate
    for plan, previous in reversed(installed):
        plan.release()
        install(previous)
        _REPORTS.append(plan.report())


def pytest_sessionfinish(session, exitstatus):
    """Write the aggregated fault report when the env asks for one."""
    target = os.environ.get("REPRO_FAULTS_REPORT")
    if target and _REPORTS:
        with open(target, "w") as stream:
            json.dump(
                {"seed": PLAN_SEED, "plans": _REPORTS},
                stream,
                indent=2,
                sort_keys=True,
            )

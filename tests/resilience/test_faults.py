"""Unit tests for the fault-injection harness itself."""

import time

import pytest

from repro.resilience import (
    ACTIONS,
    KNOWN_SITES,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    InjectedOSError,
    InjectedTimeout,
    active_plan,
    fault_point,
    install,
    is_injected,
    mutate_payload,
    plan_from_env,
)


class TestFaultSpec:
    def test_validates_action_and_error(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec(site="x", action="explode")
        with pytest.raises(ValueError, match="unknown fault error"):
            FaultSpec(site="x", error="kaboom")

    def test_matches_exact_and_glob(self):
        exact = FaultSpec(site="cache.spill.write")
        assert exact.matches("cache.spill.write")
        assert not exact.matches("cache.load.read")
        glob = FaultSpec(site="pipeline.pass.run.*")
        assert glob.matches("pipeline.pass.run.tbs")
        assert glob.matches("pipeline.pass.run.revsimp")
        assert not glob.matches("pipeline.apply.claim")

    def test_known_sites_cover_all_layers(self):
        prefixes = {site.split(".")[0] for site in KNOWN_SITES}
        assert prefixes == {"cache", "pipeline", "session"}
        assert set(ACTIONS) == {"raise", "delay", "hang", "torn"}


class TestFaultPlan:
    def test_raise_fires_exactly_times_then_goes_dormant(self, chaos):
        chaos([{"site": "cache.store", "times": 2}])
        with pytest.raises(InjectedOSError):
            fault_point("cache.store")
        with pytest.raises(InjectedOSError):
            fault_point("cache.store")
        fault_point("cache.store")  # dormant now
        fault_point("cache.store")

    def test_skip_lets_early_hits_through(self, chaos):
        chaos([{"site": "cache.load.read", "skip": 2, "times": 1}])
        fault_point("cache.load.read")
        fault_point("cache.load.read")
        with pytest.raises(InjectedOSError):
            fault_point("cache.load.read")
        fault_point("cache.load.read")

    def test_times_none_fires_forever(self, chaos):
        chaos([{"site": "session.dispatch", "times": None,
                "error": "timeout"}])
        for _ in range(5):
            with pytest.raises(InjectedTimeout):
                fault_point("session.dispatch")

    def test_error_kinds_and_is_injected(self, chaos):
        chaos([
            {"site": "a", "error": "oserror"},
            {"site": "b", "error": "fault"},
            {"site": "c", "error": "timeout"},
        ])
        with pytest.raises(InjectedOSError) as os_info:
            fault_point("a")
        with pytest.raises(InjectedFault) as fault_info:
            fault_point("b")
        with pytest.raises(InjectedTimeout) as timeout_info:
            fault_point("c")
        for info in (os_info, fault_info, timeout_info):
            assert is_injected(info.value)
        assert isinstance(os_info.value, OSError)
        assert fault_info.value.transient
        assert isinstance(timeout_info.value, TimeoutError)
        assert not is_injected(OSError("real"))

    def test_delay_blocks_for_roughly_seconds(self, chaos):
        chaos([{"site": "pipeline.apply.wait", "action": "delay",
                "seconds": 0.05}])
        start = time.monotonic()
        fault_point("pipeline.apply.wait")
        assert time.monotonic() - start >= 0.04

    def test_release_unblocks_a_pending_hang(self, chaos):
        plan = chaos([{"site": "pipeline.apply.claim", "action": "hang",
                       "seconds": 30}])
        plan.release()
        start = time.monotonic()
        fault_point("pipeline.apply.claim")  # released: returns at once
        assert time.monotonic() - start < 1.0

    def test_torn_truncation_is_seed_deterministic(self):
        payload = "x" * 256

        def torn_with(seed):
            """Run one torn mutation under a fresh plan with ``seed``."""
            plan = FaultPlan([{"site": "cache.spill.write",
                               "action": "torn"}], seed=seed)
            with plan.active():
                return mutate_payload("cache.spill.write", payload)

        first, second = torn_with(42), torn_with(42)
        assert first == second
        assert 0 < len(first) < len(payload)
        assert payload.startswith(first)
        assert torn_with(43) != first  # different seed, different cut

    def test_mutate_handles_raise_specs_too(self, chaos):
        chaos([{"site": "cache.spill.write", "action": "raise"}])
        with pytest.raises(InjectedOSError):
            mutate_payload("cache.spill.write", "payload")
        assert mutate_payload("cache.spill.write", "payload") == "payload"

    def test_report_accounts_hits_and_outcomes(self, chaos):
        plan = chaos([{"site": "cache.store", "times": 1}])
        with pytest.raises(InjectedOSError):
            fault_point("cache.store")
        fault_point("cache.store")
        fault_point("cache.load.read")  # unmatched site still counted
        report = plan.report()
        assert report["seed"] == 1701
        assert report["sites"] == {"cache.store": 2, "cache.load.read": 1}
        assert report["outcomes"] == {"cache.store": {"raise": 1}}
        assert report["specs"][0]["triggered"] == 1

    def test_active_context_manager_restores_previous_plan(self):
        outer = FaultPlan([], name="outer")
        previous = install(outer)
        try:
            inner = FaultPlan([{"site": "cache.store"}], name="inner")
            with inner.active() as active:
                assert active is inner
                assert active_plan() is inner
            assert active_plan() is outer
        finally:
            install(previous)

    def test_no_plan_means_no_ops(self):
        previous = install(None)
        try:
            fault_point("cache.spill.write")
            assert mutate_payload("cache.spill.write", "data") == "data"
        finally:
            install(previous)


class TestPlanFromEnv:
    def test_unset_or_empty_returns_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert plan_from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "   ")
        assert plan_from_env() is None

    def test_parses_segments_and_seed(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "cache.spill.write:raise:2;"
            "pipeline.pass.run.*:delay:*:0.2;"
            "cache.load.read:raise:1::timeout;"
            "seed=99",
        )
        plan = plan_from_env()
        assert plan.seed == 99
        assert plan.name == "env:REPRO_FAULTS"
        first, second, third = plan.specs
        assert (first.site, first.action, first.times) == (
            "cache.spill.write", "raise", 2)
        assert (second.times, second.seconds) == (None, 0.2)
        assert (third.times, third.error) == (1, "timeout")

    def test_malformed_segment_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "just-a-site")
        with pytest.raises(ValueError, match="malformed"):
            plan_from_env()

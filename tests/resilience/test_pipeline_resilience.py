"""Chaos tests for the pipeline layer: deadlines, retries, fallbacks.

Every scenario must end in either a correct result or a *typed* error
(`DeadlineExceeded`, `RetriesExhausted`, an injected error) carrying
its flow position — never a hang and never a silently wrong circuit.
"""

import threading
import time

import pytest

from repro.pipeline import (
    FlowState,
    PassCache,
    Pipeline,
    PipelineError,
    SynthesisPass,
)
from repro.pipeline.passes import Pass
from repro.pipeline.runner import _default_follower_timeout
from repro.resilience import (
    Deadline,
    DeadlineExceeded,
    InjectedOSError,
    RetriesExhausted,
    RetryPolicy,
)
from repro.revkit import generators

#: A retry policy that never sleeps — chaos tests should be fast.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


class FlakyPass(Pass):
    """A pass failing ``failures`` times before succeeding."""

    stage = "transform"
    writes = ("artifacts",)
    cacheable = False  # stateful by design — must never be cached

    def __init__(self, failures=0, error=OSError, name="flaky"):
        """Configure the failure budget and the error type."""
        self.failures = failures
        self.error = error
        self.name = name
        self.calls = 0

    def run(self, state):
        """Fail until the budget is spent, then record the call count."""
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error(f"{self.name} failure #{self.calls}")
        result = state.copy()
        result.artifacts[self.name] = self.calls
        return result


class SleepPass(Pass):
    """A pass spending real wall-clock time."""

    name = "sleepy"
    stage = "transform"
    writes = ("artifacts",)
    cacheable = False

    def __init__(self, seconds):
        """Store how long each run sleeps."""
        self.seconds = seconds

    def run(self, state):
        """Sleep, then pass the store through."""
        time.sleep(self.seconds)
        return state.copy()


class TestDeadlines:
    def test_expired_budget_names_the_flow_position(self):
        pipeline = Pipeline(cache=None)
        with pytest.raises(DeadlineExceeded) as info:
            pipeline.run(
                [SleepPass(0.1), SleepPass(0.1)],
                flow_name="chaos",
                deadline=0.02,
            )
        message = str(info.value)
        # the second pass's checkpoint trips: the error carries the
        # flow name, the 1-based position, and the budget
        assert "flow 'chaos'" in message
        assert "pass 2/2" in message
        assert "deadline of 0.02s exceeded" in message

    def test_deadline_fires_between_passes_never_mid_pass(self):
        flaky = FlakyPass(name="witness")
        pipeline = Pipeline(cache=None)
        result = pipeline.run(
            [SleepPass(0.05), flaky], deadline=60
        )
        assert flaky.calls == 1  # ample budget: everything ran
        assert result.state.artifacts["witness"] == 1

    def test_pipeline_default_deadline_applies(self):
        pipeline = Pipeline(cache=None, deadline=0.01)
        with pytest.raises(DeadlineExceeded):
            pipeline.run([SleepPass(0.05), SleepPass(0.05)])

    def test_per_call_deadline_overrides_pipeline_default(self):
        pipeline = Pipeline(cache=None, deadline=0.01)
        result = pipeline.run(
            [SleepPass(0.05), FlakyPass()], deadline=60
        )
        assert len(result.records) == 2

    def test_shared_deadline_object_spans_layers(self):
        deadline = Deadline.after(60)
        pipeline = Pipeline(cache=None)
        pipeline.run([FlakyPass()], deadline=deadline)
        assert not deadline.expired()  # same budget, not restarted


class TestRetryPolicyOnPasses:
    def test_transient_pass_failures_are_retried(self):
        flaky = FlakyPass(failures=2, error=OSError)
        pipeline = Pipeline(
            cache=None, on_error="retry", retry=FAST_RETRY
        )
        result = pipeline.run([flaky])
        assert flaky.calls == 3
        assert result.state.artifacts["flaky"] == 3

    def test_exhausted_retries_raise_typed_error_with_context(self):
        flaky = FlakyPass(failures=99, error=OSError)
        pipeline = Pipeline(
            cache=None, on_error="retry", retry=FAST_RETRY
        )
        with pytest.raises(RetriesExhausted) as info:
            pipeline.run([flaky], flow_name="chaos")
        assert flaky.calls == FAST_RETRY.max_attempts
        message = str(info.value)
        assert "flow 'chaos'" in message
        assert "pipeline.pass.run.flaky" in message

    def test_non_transient_failures_are_not_retried(self):
        flaky = FlakyPass(failures=99, error=ValueError)
        pipeline = Pipeline(
            cache=None, on_error="retry", retry=FAST_RETRY
        )
        with pytest.raises(ValueError):
            pipeline.run([flaky])
        assert flaky.calls == 1

    def test_retry_count_shorthand(self):
        flaky = FlakyPass(failures=1, error=OSError)
        pipeline = Pipeline(cache=None, on_error="retry", retry=2)
        pipeline.run([flaky])
        assert flaky.calls == 2


class TestFallbacks:
    def test_failing_pass_switches_to_its_fallback(self):
        alternate = FlakyPass(name="plan-b")
        broken = FlakyPass(
            failures=99, error=RuntimeError, name="plan-a"
        ).with_fallback(alternate)
        pipeline = Pipeline(cache=None, on_error="fallback")
        result = pipeline.run([broken])
        record = result.records[0]
        assert record.name == "plan-b"
        assert record.details["fallback_for"] == "plan-a"
        assert result.state.artifacts["plan-b"] == 1

    def test_pass_without_fallback_raises_under_fallback_policy(self):
        broken = FlakyPass(failures=99, error=RuntimeError)
        pipeline = Pipeline(cache=None, on_error="fallback")
        with pytest.raises(RuntimeError):
            pipeline.run([broken])

    def test_deadline_exceeded_never_triggers_a_fallback(self):
        alternate = FlakyPass(name="plan-b")
        broken = FlakyPass(
            failures=99, error=DeadlineExceeded, name="plan-a"
        ).with_fallback(alternate)
        pipeline = Pipeline(cache=None, on_error="fallback")
        with pytest.raises(DeadlineExceeded):
            pipeline.run([broken])
        assert alternate.calls == 0  # no budget left for plan B either

    def test_per_pass_policy_dict(self):
        retried = FlakyPass(failures=1, error=OSError, name="retried")
        covered = FlakyPass(
            failures=99, error=RuntimeError, name="covered"
        ).with_fallback(FlakyPass(name="cover"))
        pipeline = Pipeline(
            cache=None,
            retry=FAST_RETRY,
            on_error={"retried": "retry", "covered": "fallback"},
        )
        result = pipeline.run([retried, covered])
        assert retried.calls == 2
        assert result.records[1].details["fallback_for"] == "covered"

    def test_unknown_policy_is_rejected(self):
        with pytest.raises(PipelineError, match="unknown on_error"):
            Pipeline(on_error="explode")
        with pytest.raises(PipelineError, match="unknown on_error"):
            Pipeline(on_error={"tbs": "explode"})


class TestInjectedPassFaults:
    def seed(self, n=3):
        """Return a flow store carrying an hwb specification."""
        return FlowState(function=generators.hwb(n))

    def test_injected_transient_fault_is_retried_to_success(self, chaos):
        chaos([{"site": "pipeline.pass.run.tbs", "times": 1,
                "error": "fault"}])
        pipeline = Pipeline(
            cache=None, on_error="retry", retry=FAST_RETRY
        )
        state, record = pipeline.apply(SynthesisPass("tbs"), self.seed())
        reference = SynthesisPass("tbs").run(self.seed())
        assert state.reversible.gates == reference.reversible.gates
        assert not record.cache_hit

    def test_claim_site_fault_surfaces_typed_not_hung(self, chaos):
        chaos([{"site": "pipeline.apply.claim", "times": 1}])
        pipeline = Pipeline(cache=PassCache())
        with pytest.raises(InjectedOSError):
            pipeline.apply(SynthesisPass("tbs"), self.seed())
        # the fault is spent: the same apply now succeeds
        state, _record = pipeline.apply(SynthesisPass("tbs"), self.seed())
        assert state.reversible is not None


class TestSingleFlightTimeout:
    def seed(self):
        """Return a flow store carrying an hwb specification."""
        return FlowState(function=generators.hwb(3))

    def hung_leader(self, cache, seed):
        """Claim the tbs key as a leader that never finishes."""
        key = Pipeline(cache=cache)._cache_key(SynthesisPass("tbs"), seed)
        role, _event = cache.begin_compute(key)
        assert role == "leader"
        return key

    def run_follower(self, pipeline, seed):
        """Run one follower apply in a thread; return its outcome."""
        outcome = {}

        def follower():
            """Apply the pass and record gates/hit (or the error)."""
            try:
                state, record = pipeline.apply(SynthesisPass("tbs"), seed)
            except PipelineError as exc:
                outcome["error"] = exc
            else:
                outcome["gates"] = state.reversible.gates
                outcome["hit"] = record.cache_hit
        thread = threading.Thread(target=follower)
        thread.start()
        thread.join(timeout=30)
        assert not thread.is_alive(), "follower hung"
        return outcome

    def test_follower_recomputes_past_constructor_timeout(self):
        cache = PassCache()
        seed = self.seed()
        key = self.hung_leader(cache, seed)
        try:
            outcome = self.run_follower(
                Pipeline(cache=cache, follower_timeout=0.05), seed
            )
        finally:
            cache.end_compute(key)
        assert outcome["hit"] is False  # recomputed, not replayed
        reference = SynthesisPass("tbs").run(self.seed())
        assert outcome["gates"] == reference.reversible.gates

    def test_env_variable_overrides_the_default_timeout(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SINGLE_FLIGHT_TIMEOUT", "0.05")
        assert _default_follower_timeout() == 0.05
        cache = PassCache()
        seed = self.seed()
        key = self.hung_leader(cache, seed)
        try:
            started = time.monotonic()
            outcome = self.run_follower(Pipeline(cache=cache), seed)
            elapsed = time.monotonic() - started
        finally:
            cache.end_compute(key)
        assert outcome["hit"] is False
        assert elapsed < 10  # nowhere near the 60s default

    def test_invalid_env_value_falls_back_to_the_constant(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SINGLE_FLIGHT_TIMEOUT", "soon-ish")
        from repro.pipeline.runner import SINGLE_FLIGHT_TIMEOUT

        assert _default_follower_timeout() == SINGLE_FLIGHT_TIMEOUT

    def test_deadline_bounds_the_follower_wait(self):
        cache = PassCache()
        seed = self.seed()
        key = self.hung_leader(cache, seed)
        # the deadline, not the 60s follower timeout, must win
        pipeline = Pipeline(cache=cache, follower_timeout=60.0)
        outcome = {}

        def follower():
            """Wait on the hung leader under a tiny deadline."""
            try:
                pipeline.apply(SynthesisPass("tbs"), seed, deadline=0.1)
            except DeadlineExceeded as exc:
                outcome["error"] = exc

        try:
            started = time.monotonic()
            thread = threading.Thread(target=follower)
            thread.start()
            thread.join(timeout=30)
            assert not thread.is_alive(), "follower hung"
            elapsed = time.monotonic() - started
        finally:
            cache.end_compute(key)
        assert isinstance(outcome.get("error"), DeadlineExceeded)
        assert "pipeline.apply.wait(tbs)" in str(outcome["error"])
        assert elapsed < 10

"""Unit tests for the resilience vocabulary: Deadline and RetryPolicy."""

import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pipeline import PipelineError
from repro.resilience import (
    Deadline,
    DeadlineExceeded,
    ResilienceError,
    RetriesExhausted,
    RetryPolicy,
    as_deadline,
    as_retry,
)


class Flaky:
    """Callable failing ``failures`` times before returning ``value``."""

    def __init__(self, failures, error=OSError, value="ok"):
        self.failures = failures
        self.error = error
        self.value = value
        self.calls = 0

    def __call__(self):
        """Fail until the budgeted failures are used up."""
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error(f"flaky failure #{self.calls}")
        return self.value


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
class TestDeadline:
    def test_after_rejects_non_positive_budgets(self):
        for bad in (0, -1, -0.5):
            with pytest.raises(ValueError):
                Deadline.after(bad)

    def test_fresh_deadline_is_not_expired(self):
        deadline = Deadline.after(60)
        assert not deadline.expired()
        assert 0 < deadline.remaining() <= 60
        deadline.check(site="test")  # must not raise

    def test_expired_deadline_raises_with_site_in_message(self):
        deadline = Deadline(expires_at=time.monotonic() - 1.0, budget=0.5)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded) as info:
            deadline.check(site="pipeline.apply(tbs)")
        assert "pipeline.apply(tbs)" in str(info.value)
        assert "0.5s" in str(info.value)
        assert info.value.site == "pipeline.apply(tbs)"

    def test_check_without_site_uses_generic_label(self):
        deadline = Deadline(expires_at=time.monotonic() - 1.0, budget=1.0)
        with pytest.raises(DeadlineExceeded, match="deadline:"):
            deadline.check()

    def test_bound_clamps_timeouts(self):
        deadline = Deadline.after(10)
        assert deadline.bound(0.5) == 0.5
        assert deadline.bound(None) == pytest.approx(10, abs=1.0)
        assert deadline.bound(99) <= 10

    def test_bound_floors_at_zero_once_expired(self):
        deadline = Deadline(expires_at=time.monotonic() - 5.0, budget=1.0)
        assert deadline.bound(3.0) == 0.0
        assert deadline.bound(None) == 0.0

    def test_deadline_errors_are_pipeline_errors(self):
        assert issubclass(DeadlineExceeded, ResilienceError)
        assert issubclass(ResilienceError, PipelineError)

    def test_as_deadline_coercion(self):
        assert as_deadline(None) is None
        existing = Deadline.after(5)
        assert as_deadline(existing) is existing
        made = as_deadline(2.5)
        assert isinstance(made, Deadline)
        assert made.budget == 2.5


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)

    def test_success_needs_no_retry(self):
        flaky = Flaky(failures=0)
        policy = RetryPolicy(max_attempts=3)
        assert policy.call(flaky, sleep=lambda _s: None) == "ok"
        assert flaky.calls == 1

    def test_transient_failures_are_retried_until_success(self):
        flaky = Flaky(failures=2, error=OSError)
        sleeps = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.01)
        assert policy.call(flaky, sleep=sleeps.append) == "ok"
        assert flaky.calls == 3
        assert len(sleeps) == 2
        assert sleeps[0] < sleeps[1]  # exponential growth

    def test_non_transient_failures_raise_immediately(self):
        flaky = Flaky(failures=5, error=ValueError)
        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(ValueError):
            policy.call(flaky, sleep=lambda _s: None)
        assert flaky.calls == 1

    def test_exhaustion_raises_typed_error_with_cause(self):
        flaky = Flaky(failures=99, error=TimeoutError)
        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(RetriesExhausted) as info:
            policy.call(flaky, site="session.dispatch",
                        sleep=lambda _s: None)
        assert flaky.calls == 3
        assert "session.dispatch" in str(info.value)
        assert "3 attempt(s)" in str(info.value)
        assert isinstance(info.value.__cause__, TimeoutError)
        assert info.value.site == "session.dispatch"

    def test_transient_attribute_marks_custom_errors(self):
        class Custom(RuntimeError):
            transient = True

        flaky = Flaky(failures=1, error=Custom)
        policy = RetryPolicy(max_attempts=2)
        assert policy.call(flaky, sleep=lambda _s: None) == "ok"

    def test_custom_classifier_overrides_default(self):
        policy = RetryPolicy(
            max_attempts=2, classifier=lambda e: isinstance(e, KeyError)
        )
        assert policy.call(Flaky(1, error=KeyError),
                           sleep=lambda _s: None) == "ok"
        with pytest.raises(OSError):
            policy.call(Flaky(1, error=OSError), sleep=lambda _s: None)

    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=2.0,
                             max_delay=0.05, jitter=0.25, seed=7)
        again = RetryPolicy(base_delay=0.01, multiplier=2.0,
                            max_delay=0.05, jitter=0.25, seed=7)
        for attempt in range(6):
            delay = policy.backoff(attempt)
            assert delay == again.backoff(attempt)
            assert 0.0 <= delay <= 0.05 * 1.25

    def test_backoff_without_jitter_is_pure_exponential(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=2.0,
                             max_delay=10.0, jitter=0.0)
        assert policy.backoff(0) == pytest.approx(0.01)
        assert policy.backoff(1) == pytest.approx(0.02)
        assert policy.backoff(2) == pytest.approx(0.04)

    def test_deadline_checked_before_attempts(self):
        expired = Deadline(expires_at=time.monotonic() - 1.0, budget=1.0)
        flaky = Flaky(failures=0)
        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(DeadlineExceeded):
            policy.call(flaky, site="cache.spill.write", deadline=expired,
                        sleep=lambda _s: None)
        assert flaky.calls == 0  # never even attempted

    def test_deadline_bounds_sleeps(self):
        deadline = Deadline.after(60)
        sleeps = []
        policy = RetryPolicy(max_attempts=2, base_delay=120.0, jitter=0.0)
        policy.call(Flaky(1, error=OSError), deadline=deadline,
                    sleep=sleeps.append)
        assert sleeps and sleeps[0] <= 60

    def test_as_retry_coercion(self):
        assert as_retry(None) is None
        existing = RetryPolicy(max_attempts=5)
        assert as_retry(existing) is existing
        made = as_retry(4)
        assert isinstance(made, RetryPolicy)
        assert made.max_attempts == 4

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=2 ** 31))
    def test_retry_attempt_count_matches_policy(self, attempts, seed):
        """Property: a permanently failing op runs exactly max_attempts."""
        flaky = Flaky(failures=10 ** 9, error=OSError)
        policy = RetryPolicy(max_attempts=attempts, seed=seed)
        with pytest.raises(RetriesExhausted):
            policy.call(flaky, sleep=lambda _s: None)
        assert flaky.calls == attempts

"""Chaos tests for the disk cache tier: retries, quarantine, degradation.

Every scenario injects faults at the cache's named sites and asserts
the tier ends in a *typed* state: counted errors, quarantined files,
or memory-only degraded mode — never an unhandled exception, a hang,
or a silently corrupt entry served back to a pipeline.
"""

import json
import os

import pytest

from repro.__main__ import main as cli_main
from repro.pipeline.cache import (
    DISK_RETRY,
    QUARANTINE_DIR,
    PassCache,
)
from repro.resilience import DegradedCache

KEY = "pass=tbs|sig=chaos|state=deadbeef"


def entry_files(path):
    """Return the content-named entry files under ``path``."""
    return sorted(
        name for name in os.listdir(path) if name.endswith(".json")
    )


def quarantine_files(path):
    """Return the file names sitting in ``path``'s quarantine dir."""
    quarantine = os.path.join(path, QUARANTINE_DIR)
    if not os.path.isdir(quarantine):
        return []
    return sorted(os.listdir(quarantine))


def put_one(cache, key=KEY, value=42):
    """Insert one spillable entry and return its outputs dict."""
    outputs = {"value": value, "label": f"entry-{value}"}
    cache.put(key, outputs, {"runtime": 0.0}, verified=True)
    return outputs


class TestSpillRetry:
    def test_transient_write_failures_are_retried(self, tmp_path, chaos):
        chaos([{"site": "cache.spill.write", "times": 2}])
        cache = PassCache(path=str(tmp_path))
        put_one(cache)
        # two injected failures, third attempt lands the file
        assert len(entry_files(tmp_path)) == 1
        stats = cache.stats()
        assert stats["retries"] == 2
        assert stats["disk_io_errors"] == 0
        assert stats["degraded"] == 0
        # a fresh instance can read it back — the spill was complete
        fresh = PassCache(path=str(tmp_path))
        outputs, _details, verified = fresh.get(KEY)
        assert outputs["value"] == 42
        assert verified

    def test_persistent_write_failure_is_counted_not_raised(
        self, tmp_path, chaos
    ):
        chaos([{"site": "cache.spill.write",
                "times": DISK_RETRY.max_attempts}])
        cache = PassCache(path=str(tmp_path))
        put_one(cache)  # must not raise — spill is best effort
        assert entry_files(tmp_path) == []
        stats = cache.stats()
        assert stats["disk_io_errors"] == 1
        assert stats["io_errors"] == 1
        assert stats["retries"] == DISK_RETRY.max_attempts - 1
        # the memory tier is untouched
        outputs, _details, _verified = cache.get(KEY)
        assert outputs["value"] == 42

    def test_no_leaked_tmp_files_after_failed_spill(self, tmp_path, chaos):
        chaos([{"site": "cache.spill.write",
                "times": DISK_RETRY.max_attempts}])
        cache = PassCache(path=str(tmp_path))
        put_one(cache)
        leftovers = [
            name for name in os.listdir(tmp_path) if ".tmp." in name
        ]
        assert leftovers == []


class TestLoadRetry:
    def test_transient_read_failures_are_retried(self, tmp_path, chaos):
        writer = PassCache(path=str(tmp_path))
        put_one(writer)
        chaos([{"site": "cache.load.read", "times": 2}])
        reader = PassCache(path=str(tmp_path))
        outputs, _details, verified = reader.get(KEY)
        assert outputs["value"] == 42
        assert verified
        stats = reader.stats()
        assert stats["retries"] == 2
        assert stats["disk_hits"] == 1

    def test_persistent_read_failure_is_a_counted_miss(
        self, tmp_path, chaos
    ):
        writer = PassCache(path=str(tmp_path))
        put_one(writer)
        chaos([{"site": "cache.load.read", "times": None}])
        reader = PassCache(path=str(tmp_path))
        assert reader.get(KEY) is None
        stats = reader.stats()
        assert stats["disk_io_errors"] >= 1
        assert stats["misses"] == 1
        # the entry file survives — a dead disk must not eat data
        assert len(entry_files(tmp_path)) == 1


class TestTornWriteQuarantine:
    def test_torn_spill_is_quarantined_on_load(self, tmp_path, chaos):
        chaos([{"site": "cache.spill.write", "action": "torn"}])
        writer = PassCache(path=str(tmp_path))
        put_one(writer)
        (torn_name,) = entry_files(tmp_path)
        reader = PassCache(path=str(tmp_path))
        assert reader.get(KEY) is None  # typed miss, not a crash
        assert entry_files(tmp_path) == []
        # the corrupt file moved aside under its original name
        assert quarantine_files(tmp_path) == [torn_name]
        assert reader.stats()["quarantined"] == 1

    def test_quarantined_entries_never_resurrect(self, tmp_path, chaos):
        chaos([{"site": "cache.spill.write", "action": "torn"}])
        writer = PassCache(path=str(tmp_path))
        put_one(writer)
        reader = PassCache(path=str(tmp_path))
        assert reader.get(KEY) is None
        for _ in range(3):
            assert reader.get(KEY) is None  # stays a miss forever
        assert reader.stats()["quarantined"] == 1  # moved exactly once

    def test_foreign_format_entry_is_quarantined(self, tmp_path):
        cache = PassCache(path=str(tmp_path))
        entry_path = cache._entry_path(KEY)
        with open(entry_path, "w") as stream:
            json.dump({"format": 99, "key": KEY, "outputs": {}}, stream)
        assert cache.get(KEY) is None
        assert quarantine_files(tmp_path) == [
            os.path.basename(entry_path)
        ]


class TestDegradedMode:
    def degraded_cache(self, tmp_path, chaos):
        """Return a cache tripped into degraded mode by spill faults."""
        chaos([{"site": "cache.spill.write", "times": None}])
        cache = PassCache(
            path=str(tmp_path), retry=None, degrade_after=3
        )
        for index in range(3):
            put_one(cache, key=f"{KEY}:{index}", value=index)
        return cache

    def test_consecutive_failures_trip_memory_only_mode(
        self, tmp_path, chaos
    ):
        cache = self.degraded_cache(tmp_path, chaos)
        assert cache.degraded
        stats = cache.stats()
        assert stats["degraded"] == 1
        assert stats["disk_io_errors"] == 3

    def test_degraded_cache_still_serves_compilations(
        self, tmp_path, chaos
    ):
        cache = self.degraded_cache(tmp_path, chaos)
        # memory tier keeps working: inserts and hits succeed
        put_one(cache, key=f"{KEY}:fresh", value=99)
        outputs, _details, _verified = cache.get(f"{KEY}:fresh")
        assert outputs["value"] == 99
        # and the disk is left alone entirely (no new error counts)
        errors_before = cache.stats()["disk_io_errors"]
        put_one(cache, key=f"{KEY}:more", value=7)
        assert cache.get(f"{KEY}:missing-on-purpose") is None
        assert cache.stats()["disk_io_errors"] == errors_before

    def test_probe_recovers_the_tier_once_the_disk_heals(
        self, tmp_path, chaos
    ):
        cache = self.degraded_cache(tmp_path, chaos)
        # the plan is exhausted-per-site only for spills; the real
        # disk is fine, so a probe round-trips and un-degrades
        chaos([])  # install a no-fault plan over the failing one
        assert cache.probe() is True
        assert not cache.degraded
        assert cache.stats()["degraded"] == 0
        put_one(cache, key=f"{KEY}:after", value=1)
        assert len(entry_files(tmp_path)) == 1  # spills resumed

    def test_probe_strict_raises_typed_error_while_broken(self, tmp_path):
        cache = PassCache(path=str(tmp_path))
        # break the tier for real: replace the directory with a file
        os.rmdir(tmp_path)
        with open(tmp_path, "w") as stream:
            stream.write("not a directory")
        try:
            assert cache.probe() is False
            with pytest.raises(DegradedCache) as info:
                cache.probe(strict=True)
            assert "cache.probe" in str(info.value)
            assert info.value.site == "cache.probe"
        finally:
            os.unlink(tmp_path)

    def test_advisory_touch_failures_never_trip_degradation(
        self, tmp_path, chaos
    ):
        cache = PassCache(
            path=str(tmp_path), retry=None, degrade_after=1
        )
        put_one(cache)
        # break only the LRU access stamp: the entry file vanishes, so
        # every memory hit's utime touch fails with FileNotFoundError
        os.unlink(cache._entry_path(KEY))
        for _ in range(5):
            outputs, _details, _verified = cache.get(KEY)
            assert outputs["value"] == 42  # memory hit keeps serving
        assert not cache.degraded
        assert cache.stats()["disk_io_errors"] == 0


class TestStoreFaults:
    def test_memory_insert_fault_is_tolerated(self, tmp_path, chaos):
        chaos([{"site": "cache.store", "times": 1}])
        cache = PassCache(path=str(tmp_path))
        put_one(cache)  # must not raise
        stats = cache.stats()
        assert stats["memory_io_errors"] == 1
        assert stats["io_errors"] == 1
        assert len(cache) == 0  # the insert was dropped...
        put_one(cache)  # ...but the next one lands
        assert len(cache) == 1


class TestGcChaos:
    def fill(self, path, count=4):
        """Spill ``count`` distinct entries and return the cache."""
        cache = PassCache(path=str(path))
        for index in range(count):
            put_one(cache, key=f"{KEY}:{index}", value=index)
        return cache

    def test_gc_validate_quarantines_corrupt_entries(self, tmp_path):
        cache = self.fill(tmp_path, count=3)
        (victim, *_rest) = entry_files(tmp_path)
        victim_path = os.path.join(tmp_path, victim)
        with open(victim_path, "w") as stream:
            stream.write('{"format": 2, "key": "x"')  # torn JSON
        swept = cache.gc(validate=True)
        assert swept["scanned"] == 3
        assert swept["quarantined"] == 1
        assert swept["evicted"] == 1
        assert swept["entries"] == 2
        assert quarantine_files(tmp_path) == [victim]
        assert len(entry_files(tmp_path)) == 2

    def test_gc_scan_fault_aborts_sweep_without_eviction(
        self, tmp_path, chaos
    ):
        cache = self.fill(tmp_path, count=3)
        chaos([{"site": "cache.gc.scan", "times": 1}])
        swept = cache.gc(max_entries=1)
        assert swept == {
            "scanned": 0,
            "evicted": 0,
            "quarantined": 0,
            "pinned": 0,
            "entries": 0,
            "bytes": 0,
        }
        assert len(entry_files(tmp_path)) == 3  # tier intact
        assert cache.stats()["disk_io_errors"] == 1
        # and the next sweep (fault spent) works normally
        assert cache.gc(max_entries=1)["evicted"] == 2

    def test_gc_unlink_fault_skips_entry_and_counts(
        self, tmp_path, chaos
    ):
        cache = self.fill(tmp_path, count=3)
        chaos([{"site": "cache.gc.unlink", "times": 1}])
        swept = cache.gc(max_entries=0)
        # one unlink failed (counted), the others went through
        assert swept["evicted"] == 2
        assert cache.stats()["disk_io_errors"] == 1
        assert len(entry_files(tmp_path)) == 1

    def test_clear_disk_preserves_the_quarantine(self, tmp_path, chaos):
        chaos([{"site": "cache.spill.write", "action": "torn"}])
        writer = PassCache(path=str(tmp_path))
        put_one(writer)
        reader = PassCache(path=str(tmp_path))
        assert reader.get(KEY) is None  # quarantines the torn file
        (quarantined,) = quarantine_files(tmp_path)
        put_one(reader, key=f"{KEY}:good", value=1)
        reader.clear(disk=True)
        assert entry_files(tmp_path) == []  # entries wiped
        # quarantined evidence survives for the operator
        assert quarantine_files(tmp_path) == [quarantined]


class TestCacheCli:
    def run_cli(self, capsys, *argv):
        """Invoke ``python -m repro`` in-process, return (code, out)."""
        code = cli_main(list(argv))
        return code, capsys.readouterr().out

    def test_stats_reports_resilience_counters(self, tmp_path, capsys):
        cache = PassCache(path=str(tmp_path))
        put_one(cache)
        code, out = self.run_cli(
            capsys, "cache", "stats", "--cache-dir", str(tmp_path),
            "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["entries"] == 1
        for counter in ("io_errors", "memory_io_errors",
                        "disk_io_errors", "retries", "degraded"):
            assert payload[counter] == 0
        assert payload["quarantined"] == 0

    def test_stats_counts_quarantined_files(
        self, tmp_path, capsys, chaos
    ):
        chaos([{"site": "cache.spill.write", "action": "torn"}])
        writer = PassCache(path=str(tmp_path))
        put_one(writer)
        reader = PassCache(path=str(tmp_path))
        assert reader.get(KEY) is None
        code, out = self.run_cli(
            capsys, "cache", "stats", "--cache-dir", str(tmp_path),
            "--json",
        )
        assert code == 0
        assert json.loads(out)["quarantined"] == 1

    def test_gc_reports_quarantined_count(self, tmp_path, capsys):
        cache = PassCache(path=str(tmp_path))
        put_one(cache)
        entry_path = cache._entry_path(f"{KEY}:corrupt")
        with open(entry_path, "w") as stream:
            stream.write("not json at all")
        code, out = self.run_cli(
            capsys, "cache", "gc", "--cache-dir", str(tmp_path),
            "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["quarantined"] == 1
        assert payload["entries"] == 1  # the healthy entry survived

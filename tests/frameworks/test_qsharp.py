"""Unit tests for Q# code generation."""

import pytest

from repro.boolean.permutation import BitPermutation
from repro.core.circuit import QuantumCircuit
from repro.core.unitary import circuit_unitary, circuits_equivalent
from repro.frameworks.qsharp import (
    QSharpError,
    _operation_from_circuit as operation_from_circuit,
    gate_to_qsharp,
    hidden_shift_program,
    parse_operation_body,
    permutation_oracle_operation,
    validate_program,
)
from repro.synthesis.decomposition import decomposition_based_synthesis

import numpy as np


class TestGateTranslation:
    def test_primitive_names(self):
        circ = QuantumCircuit(3).h(0).cx(0, 1).t(2).tdg(1).s(0).sdg(2)
        statements = [gate_to_qsharp(g) for g in circ.gates]
        assert statements[0] == "H(qubits[0]);"
        assert statements[1] == "CNOT(qubits[0], qubits[1]);"
        assert statements[2] == "T(qubits[2]);"
        assert statements[3] == "(Adjoint T)(qubits[1]);"
        assert statements[4] == "S(qubits[0]);"
        assert statements[5] == "(Adjoint S)(qubits[2]);"

    def test_ccnot(self):
        circ = QuantumCircuit(3).ccx(0, 1, 2)
        assert gate_to_qsharp(circ.gates[0]) == "CCNOT(qubits[0], qubits[1], qubits[2]);"

    def test_unsupported_gate_raises(self):
        circ = QuantumCircuit(1).rx(0.3, 0)
        with pytest.raises(QSharpError):
            gate_to_qsharp(circ.gates[0])


class TestOperationGeneration:
    def test_structure_mirrors_fig10(self):
        circ = QuantumCircuit(2).h(0).cx(0, 1)
        op = operation_from_circuit("MyOracle", circ)
        assert "operation MyOracle" in op.code
        assert "adjoint auto" in op.code
        assert "controlled auto" in op.code
        assert "controlled adjoint auto" in op.code
        assert validate_program(op.code)

    def test_round_trip_parse(self):
        circ = QuantumCircuit(3)
        circ.h(0).t(1).cx(1, 2).tdg(0).swap(0, 2).s(1).ccx(0, 1, 2)
        op = operation_from_circuit("RT", circ)
        parsed = parse_operation_body(op.code, 3)
        assert circuits_equivalent(parsed, circ)


class TestPermutationOracleGeneration:
    @pytest.mark.parametrize("seed", range(5))
    def test_generated_code_is_semantically_correct(self, seed):
        """The emitted Q# gate list must realize the permutation on the
        data qubits (re-parsed and simulated natively)."""
        perm = BitPermutation.random(3, seed=seed)
        op = permutation_oracle_operation(perm)
        parsed = parse_operation_body(op.code, op.circuit.num_qubits)
        assert circuits_equivalent(parsed, op.circuit)
        unitary = circuit_unitary(op.circuit)
        for x in range(8):
            column = unitary[:, x]
            idx = int(np.argmax(np.abs(column)))
            assert idx == perm(x)

    def test_clifford_t_only(self, paper_pi):
        op = permutation_oracle_operation(paper_pi)
        assert op.circuit.is_clifford_t()

    def test_custom_synthesis(self, paper_pi):
        from repro.compiler import targets

        op = permutation_oracle_operation(
            paper_pi,
            target=targets.QSHARP.with_(
                synthesis=decomposition_based_synthesis
            ),
        )
        assert validate_program(op.code)

    def test_synth_kwarg_deprecated_but_equivalent(self, paper_pi):
        import pytest

        with pytest.warns(DeprecationWarning, match="synth=.*deprecated"):
            legacy = permutation_oracle_operation(
                paper_pi, synth=decomposition_based_synthesis
            )
        from repro.compiler import targets

        modern = permutation_oracle_operation(
            paper_pi,
            target=targets.QSHARP.with_(
                synthesis=decomposition_based_synthesis
            ),
        )
        assert legacy.circuit.gates == modern.circuit.gates


class TestFullProgram:
    def test_hidden_shift_program_synth_deprecated(self, paper_pi):
        import warnings

        import pytest

        from repro.compiler import targets

        with pytest.warns(DeprecationWarning, match="synth=.*deprecated"):
            legacy = hidden_shift_program(
                paper_pi, 3, synth=decomposition_based_synthesis
            )
        with warnings.catch_warnings():
            # the modern spelling stays silent
            warnings.simplefilter("error")
            modern = hidden_shift_program(
                paper_pi,
                3,
                target=targets.QSHARP.with_(
                    synthesis=decomposition_based_synthesis
                ),
            )
        assert legacy == modern

    def test_hidden_shift_program_structure(self, paper_pi):
        program = hidden_shift_program(paper_pi, 3)
        assert validate_program(program)
        assert "operation HiddenShift" in program
        assert "operation PermutationOracle" in program
        assert "operation BentFunctionImpl" in program
        assert "ApplyToEach(H, qubits);" in program
        assert "MResetZ" in program
        assert "(Adjoint PermutationOracle)(ys);" in program

    def test_brace_balance_detector(self):
        assert not validate_program("namespace X { operation Y {")

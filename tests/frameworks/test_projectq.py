"""Unit tests for the ProjectQ-style engine and ops."""

import pytest

from repro.frameworks.projectq import (
    CNOT,
    CZ,
    All,
    Compute,
    Control,
    Dagger,
    EngineError,
    H,
    MainEngine,
    Measure,
    Rz,
    S,
    Swap,
    T,
    Toffoli,
    Uncompute,
    X,
    Z,
)
from repro.frameworks.projectq.backends import Simulator


class TestEngineBasics:
    def test_allocation(self):
        eng = MainEngine()
        qubits = eng.allocate_qureg(3)
        assert [q.index for q in qubits] == [0, 1, 2]
        assert eng.circuit.num_qubits == 3

    def test_gate_recording(self):
        eng = MainEngine()
        q = eng.allocate_qubit()
        H | q
        T | q
        assert [g.name for g in eng.circuit] == ["h", "t"]

    def test_two_qubit_syntax(self):
        eng = MainEngine()
        a, b = eng.allocate_qureg(2)
        CNOT | (a, b)
        gate = eng.circuit.gates[0]
        assert gate.name == "cx"
        assert gate.controls == (a.index,)
        assert gate.targets == (b.index,)

    def test_toffoli_and_swap(self):
        eng = MainEngine()
        a, b, c = eng.allocate_qureg(3)
        Toffoli | (a, b, c)
        Swap | (a, c)
        names = [g.name for g in eng.circuit]
        assert names == ["ccx", "swap"]

    def test_all_broadcast(self):
        eng = MainEngine()
        qubits = eng.allocate_qureg(4)
        All(H) | qubits
        assert eng.circuit.count_ops() == {"h": 4}

    def test_wrong_qubit_count_rejected(self):
        eng = MainEngine()
        q = eng.allocate_qubit()
        with pytest.raises(EngineError):
            CNOT | (q,)

    def test_cross_engine_rejected(self):
        a = MainEngine().allocate_qubit()
        b = MainEngine().allocate_qubit()
        with pytest.raises(EngineError):
            CNOT | (a, b)

    def test_rz_parameter(self):
        eng = MainEngine()
        q = eng.allocate_qubit()
        Rz(0.5) | q
        assert eng.circuit.gates[0].params == (0.5,)


class TestMeasurementFlow:
    def test_deterministic_readout(self):
        eng = MainEngine(seed=0)
        q = eng.allocate_qubit()
        X | q
        Measure | q
        eng.flush()
        assert int(q) == 1
        assert bool(q)

    def test_unmeasured_read_raises(self):
        eng = MainEngine()
        q = eng.allocate_qubit()
        with pytest.raises(EngineError):
            int(q)

    def test_register_measurement(self):
        eng = MainEngine(seed=1)
        qubits = eng.allocate_qureg(3)
        X | qubits[1]
        Measure | qubits
        eng.flush()
        assert [int(q) for q in qubits] == [0, 1, 0]

    def test_entangled_measurement_consistent(self):
        eng = MainEngine(seed=5)
        a, b = eng.allocate_qureg(2)
        H | a
        CNOT | (a, b)
        Measure | (a, b)
        eng.flush()
        assert int(a) == int(b)

    def test_context_manager_flushes(self):
        with MainEngine(seed=2) as eng:
            q = eng.allocate_qubit()
            X | q
            Measure | q
        assert int(q) == 1


class TestMetaContexts:
    def test_compute_uncompute_restores_identity(self):
        eng = MainEngine(seed=3)
        qubits = eng.allocate_qureg(2)
        with Compute(eng):
            All(H) | qubits
            CNOT | (qubits[0], qubits[1])
        Uncompute(eng)
        Measure | qubits
        eng.flush()
        assert [int(q) for q in qubits] == [0, 0]

    def test_uncompute_without_compute_raises(self):
        eng = MainEngine()
        eng.allocate_qubit()
        with pytest.raises(EngineError):
            Uncompute(eng)

    def test_uncompute_inverts_order_and_gates(self):
        eng = MainEngine()
        q = eng.allocate_qubit()
        with Compute(eng):
            T | q
            H | q
        Uncompute(eng)
        names = [g.name for g in eng.circuit]
        assert names == ["t", "h", "h", "tdg"]

    def test_dagger(self):
        eng = MainEngine()
        q = eng.allocate_qubit()
        with Dagger(eng):
            T | q
            S | q
        names = [g.name for g in eng.circuit]
        assert names == ["sdg", "tdg"]

    def test_nested_dagger_cancels(self):
        eng = MainEngine()
        q = eng.allocate_qubit()
        with Dagger(eng):
            with Dagger(eng):
                T | q
        assert [g.name for g in eng.circuit] == ["t"]

    def test_control_adds_controls(self):
        eng = MainEngine()
        a, b, c = eng.allocate_qureg(3)
        with Control(eng, a):
            X | b
            CNOT | (b, c)
        names = [g.name for g in eng.circuit]
        assert names == ["cx", "ccx"]
        assert eng.circuit.gates[0].controls == (a.index,)

    def test_control_with_compute(self):
        eng = MainEngine(seed=0)
        a, b = eng.allocate_qureg(2)
        X | a
        with Compute(eng):
            with Control(eng, a):
                X | b
        Uncompute(eng)
        Measure | (a, b)
        eng.flush()
        assert int(b) == 0  # computed then uncomputed

    def test_flush_inside_open_frame_rejected(self):
        eng = MainEngine()
        q = eng.allocate_qubit()
        compute = Compute(eng)
        compute.__enter__()
        X | q
        with pytest.raises(EngineError):
            eng.flush()
        compute.__exit__(None, None, None)


class TestSimulatorBackend:
    def test_probabilities_exposed(self):
        eng = MainEngine()
        q = eng.allocate_qubit()
        H | q
        eng.flush()
        probs = eng.backend.probabilities()
        assert probs[0] == pytest.approx(0.5)
        assert probs[1] == pytest.approx(0.5)

    def test_seeded_backend_reproducible(self):
        def run():
            eng = MainEngine(backend=Simulator(seed=9))
            q = eng.allocate_qubit()
            H | q
            Measure | q
            eng.flush()
            return int(q)

        assert run() == run()

"""Unit tests for the compiler-chain backend."""

import pytest

from repro.frameworks.projectq import (
    All,
    CNOT,
    CompilerBackend,
    Compute,
    H,
    MainEngine,
    Measure,
    PermutationOracle,
    PhaseOracle,
    Toffoli,
    Uncompute,
    X,
)
from repro.mapping.routing import CouplingMap


class TestCompilerBackend:
    def test_trivial_program(self):
        eng = MainEngine(backend=CompilerBackend())
        q = eng.allocate_qubit()
        X | q
        Measure | q
        eng.flush()
        assert int(q) == 1

    def test_toffoli_lowered_to_clifford_t(self):
        backend = CompilerBackend()
        eng = MainEngine(backend=backend)
        a, b, c = eng.allocate_qureg(3)
        X | a
        X | b
        Toffoli | (a, b, c)
        Measure | (a, b, c)
        eng.flush()
        assert int(c) == 1
        assert backend.compiled_circuit.is_clifford_t()

    def test_mcz_oracle_lowered(self):
        backend = CompilerBackend()
        eng = MainEngine(backend=backend)
        qubits = eng.allocate_qureg(4)
        All(H) | qubits
        PhaseOracle(lambda a, b, c, d: a and b and c and d) | qubits
        All(H) | qubits
        Measure | qubits
        eng.flush()
        assert backend.compiled_circuit.is_clifford_t()

    def test_routing_to_line_topology(self):
        backend = CompilerBackend(coupling=CouplingMap.line(8))
        eng = MainEngine(backend=backend)
        a, b, c = eng.allocate_qureg(3)
        X | a
        CNOT | (a, c)  # distant on the line
        Measure | (a, b, c)
        eng.flush()
        assert int(c) == 1
        assert int(a) == 1
        cmap = CouplingMap.line(8)
        for gate in backend.compiled_circuit.gates:
            if gate.is_unitary and gate.num_qubits == 2:
                assert cmap.connected(*gate.qubits)

    def test_fig4_on_chip_topology(self):
        """The quickstart program, fully compiled for ibmqx2."""
        def f(a, b, c, d):
            return (a and b) ^ (c and d)

        backend = CompilerBackend(coupling=CouplingMap.ibm_qx2())
        eng = MainEngine(backend=backend)
        x1, x2, x3, x4 = qubits = eng.allocate_qureg(4)
        with Compute(eng):
            All(H) | qubits
            X | x1
        PhaseOracle(f) | qubits
        Uncompute(eng)
        PhaseOracle(f) | qubits
        All(H) | qubits
        Measure | qubits
        eng.flush()
        shift = 8 * int(x4) + 4 * int(x3) + 2 * int(x2) + int(x1)
        assert shift == 1
        assert backend.report.routed

    def test_permutation_oracle_through_chain(self, paper_pi):
        backend = CompilerBackend(coupling=CouplingMap.line(6))
        eng = MainEngine(backend=backend)
        qubits = eng.allocate_qureg(3)
        X | qubits[0]  # input |001> = 1
        PermutationOracle(paper_pi) | qubits
        Measure | qubits
        eng.flush()
        value = sum(int(q) << i for i, q in enumerate(qubits))
        assert value == paper_pi(1)

    def test_report_statistics(self):
        backend = CompilerBackend()
        eng = MainEngine(backend=backend)
        q = eng.allocate_qubit()
        H | q
        H | q  # cancels
        X | q
        Measure | q
        eng.flush()
        report = backend.report
        assert report.source_stats.num_gates == 3
        assert report.compiled_stats.num_gates == 1
        assert "compiled_gates" in report.as_dict()

    def test_optimization_can_be_disabled(self):
        from repro.compiler import targets

        backend = CompilerBackend(
            compile_target=targets.PROJECTQ.with_(optimization_level=1)
        )
        eng = MainEngine(backend=backend)
        q = eng.allocate_qubit()
        from repro.frameworks.projectq import T

        T | q
        T | q  # would merge to S under tpar
        eng.flush()
        names = [g.name for g in backend.compiled_circuit]
        assert names == ["t", "t"]

    def test_optimize_kwarg_deprecated_but_equivalent(self):
        import pytest

        with pytest.warns(DeprecationWarning, match="optimize=.*deprecated"):
            backend = CompilerBackend(optimize=False)
        eng = MainEngine(backend=backend)
        q = eng.allocate_qubit()
        from repro.frameworks.projectq import T

        T | q
        T | q
        eng.flush()
        assert [g.name for g in backend.compiled_circuit] == ["t", "t"]

    def test_t_count_never_increases(self):
        backend = CompilerBackend()
        eng = MainEngine(backend=backend)
        qubits = eng.allocate_qureg(3)
        Toffoli | (qubits[0], qubits[1], qubits[2])
        Toffoli | (qubits[0], qubits[1], qubits[2])
        eng.flush()
        # two identical Toffolis cancel entirely in the chain
        assert backend.compiled_circuit.t_count() == 0

"""Unit tests for the engine backends."""

import pytest

from repro.frameworks.projectq import (
    All,
    CNOT,
    H,
    MainEngine,
    Measure,
    X,
)
from repro.frameworks.projectq.backends import (
    CircuitCollector,
    IBMBackend,
    ResourceCounterBackend,
    Simulator,
)
from repro.engines import NoiseModel


class TestSimulatorBackend:
    def test_final_state_available(self):
        eng = MainEngine(backend=Simulator())
        q = eng.allocate_qubit()
        X | q
        eng.flush()
        assert eng.backend.final_state.probability_of(1) == pytest.approx(1)


class TestIBMBackend:
    def test_histogram_normalized(self):
        backend = IBMBackend(shots=256, seed=4)
        eng = MainEngine(backend=backend)
        qubits = eng.allocate_qureg(2)
        All(H) | qubits
        Measure | qubits
        eng.flush()
        hist = backend.histogram()
        assert sum(hist.values()) == pytest.approx(1.0)

    def test_modal_outcome_loaded_into_qubits(self):
        backend = IBMBackend(shots=512, seed=7)
        eng = MainEngine(backend=backend)
        q = eng.allocate_qubit()
        X | q
        Measure | q
        eng.flush()
        assert int(q) == 1  # despite noise, mode is the right answer

    def test_noiseless_model(self):
        backend = IBMBackend(
            shots=64, noise_model=NoiseModel.noiseless(), seed=3
        )
        eng = MainEngine(backend=backend)
        a, b = eng.allocate_qureg(2)
        H | a
        CNOT | (a, b)
        Measure | (a, b)
        eng.flush()
        assert set(backend.last_counts) <= {0, 3}


class TestResourceCounterBackend:
    def test_estimate_collected(self):
        backend = ResourceCounterBackend()
        eng = MainEngine(backend=backend)
        qubits = eng.allocate_qureg(3)
        All(H) | qubits
        CNOT | (qubits[0], qubits[1])
        Measure | qubits
        eng.flush()
        estimate = backend.estimate
        assert estimate.num_qubits == 3
        assert estimate.gate_counts["h"] == 3
        assert estimate.cnot_count == 1
        assert estimate.measurement_count == 3

    def test_measured_qubits_read_zero(self):
        eng = MainEngine(backend=ResourceCounterBackend())
        q = eng.allocate_qubit()
        X | q
        Measure | q
        eng.flush()
        assert int(q) == 0  # counts, not simulation


class TestCircuitCollector:
    def test_collects_copy(self):
        backend = CircuitCollector()
        eng = MainEngine(backend=backend)
        q = eng.allocate_qubit()
        H | q
        eng.flush()
        assert [g.name for g in backend.circuit] == ["h"]
        # later edits to the engine circuit don't leak in
        X | q
        assert [g.name for g in backend.circuit] == ["h"]

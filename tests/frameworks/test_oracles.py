"""Unit tests for PhaseOracle and PermutationOracle."""

import numpy as np
import pytest

from repro.boolean.permutation import BitPermutation
from repro.boolean.truth_table import TruthTable
from repro.core.circuit import QuantumCircuit
from repro.core.unitary import circuit_unitary
from repro.frameworks.projectq import (
    All,
    EngineError,
    H,
    MainEngine,
    Measure,
    PermutationOracle,
    PhaseOracle,
)
from repro.frameworks.projectq.backends import CircuitCollector
from repro.synthesis.decomposition import decomposition_based_synthesis


def built_circuit(apply_fn, num_qubits):
    """Run apply_fn(eng, qubits) and return the collected circuit."""
    eng = MainEngine(backend=CircuitCollector())
    qubits = eng.allocate_qureg(num_qubits)
    apply_fn(eng, qubits)
    eng.flush()
    return eng.backend.circuit


class TestPhaseOracle:
    def diagonal_signs(self, circuit):
        unitary = circuit_unitary(circuit)
        assert np.allclose(
            np.abs(unitary), np.eye(unitary.shape[0]), atol=1e-9
        ), "phase oracle must be diagonal"
        return np.diag(unitary)

    @pytest.mark.parametrize("seed", range(8))
    def test_diagonal_matches_function(self, seed):
        import random

        rng = random.Random(seed)
        n = rng.randint(1, 4)
        table = TruthTable(n, rng.getrandbits(1 << n))

        circ = built_circuit(
            lambda eng, qs: PhaseOracle(table).__or__(qs), n
        )
        signs = self.diagonal_signs(circ)
        reference = np.array(
            [(-1.0) ** table(x) for x in range(1 << n)]
        )
        # global phase allowed
        ratio = signs / reference
        assert np.allclose(ratio, ratio[0], atol=1e-9)

    def test_python_predicate(self):
        def f(a, b):
            return a and b

        circ = built_circuit(
            lambda eng, qs: PhaseOracle(f).__or__(qs), 2
        )
        signs = self.diagonal_signs(circ)
        assert signs[3] / signs[0] == pytest.approx(-1)

    def test_arity_mismatch_rejected(self):
        table = TruthTable(3)
        with pytest.raises(EngineError):
            built_circuit(
                lambda eng, qs: PhaseOracle(table).__or__(qs), 2
            )

    def test_zero_function_emits_nothing(self):
        circ = built_circuit(
            lambda eng, qs: PhaseOracle(TruthTable(2)).__or__(qs), 2
        )
        assert len(circ) == 0

    def test_constant_one_is_global_minus(self):
        circ = built_circuit(
            lambda eng, qs: PhaseOracle(TruthTable.constant(2, True)).__or__(qs),
            2,
        )
        unitary = circuit_unitary(circ)
        assert np.allclose(unitary, -np.eye(4), atol=1e-9)


class TestPermutationOracle:
    @pytest.mark.parametrize("seed", range(6))
    def test_default_synthesis(self, seed):
        perm = BitPermutation.random(3, seed=seed)
        circ = built_circuit(
            lambda eng, qs: PermutationOracle(perm).__or__(qs), 3
        )
        unitary = circuit_unitary(circ)
        for x in range(8):
            assert unitary[perm(x), x] == pytest.approx(1)

    def test_plain_list_accepted(self):
        circ = built_circuit(
            lambda eng, qs: PermutationOracle([0, 2, 3, 1]).__or__(qs), 2
        )
        unitary = circuit_unitary(circ)
        assert unitary[2, 1] == pytest.approx(1)

    def test_custom_synthesis_function(self, paper_pi):
        circ = built_circuit(
            lambda eng, qs: PermutationOracle(
                paper_pi, synth=decomposition_based_synthesis
            ).__or__(qs),
            3,
        )
        unitary = circuit_unitary(circ)
        for x in range(8):
            assert unitary[paper_pi(x), x] == pytest.approx(1)

    def test_width_mismatch_rejected(self, paper_pi):
        with pytest.raises(EngineError):
            built_circuit(
                lambda eng, qs: PermutationOracle(paper_pi).__or__(qs), 4
            )

    def test_oracle_on_subregister(self, paper_pi):
        """Fig. 7 applies the oracle to the interleaved y qubits."""
        def apply(eng, qubits):
            y = qubits[1::2]
            PermutationOracle(paper_pi) | y

        circ = built_circuit(apply, 6)
        unitary = circuit_unitary(circ)
        # acting on qubits 1,3,5: basis y-bits permute, x-bits fixed
        for y in range(8):
            src = ((y & 1) << 1) | (((y >> 1) & 1) << 3) | (((y >> 2) & 1) << 5)
            out = paper_pi(y)
            dst = ((out & 1) << 1) | (((out >> 1) & 1) << 3) | (((out >> 2) & 1) << 5)
            assert unitary[dst, src] == pytest.approx(1)

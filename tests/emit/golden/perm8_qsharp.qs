namespace Repro.Quantum.PermOracle {
    open Microsoft.Quantum.Primitive;

    operation CompiledOperation
        (qubits : Qubit[]) :
        () {
        body {
            CNOT(qubits[2], qubits[1]);
            H(qubits[2]);
            CNOT(qubits[1], qubits[2]);
            (Adjoint T)(qubits[2]);
            CNOT(qubits[0], qubits[2]);
            T(qubits[2]);
            CNOT(qubits[1], qubits[2]);
            (Adjoint T)(qubits[2]);
            CNOT(qubits[0], qubits[2]);
            T(qubits[1]);
            T(qubits[2]);
            H(qubits[2]);
            CNOT(qubits[0], qubits[1]);
            T(qubits[0]);
            (Adjoint T)(qubits[1]);
            CNOT(qubits[1], qubits[0]);
        }
        adjoint auto
        controlled auto
        controlled adjoint auto
    }
}
"""Unit tests for the repro.emit registry."""

import pytest

from repro import emit
from repro.compiler import Target
from repro.core.circuit import QuantumCircuit
from repro.pipeline.state import PipelineError

#: The six formats the ISSUE's acceptance criteria require.
EXPECTED_FORMATS = ("qasm2", "qasm3", "qsharp", "projectq", "cirq", "qir")


class DummyEmitter:
    """Minimal protocol-satisfying backend used by registration tests."""

    name = "dummy"
    description = "test backend"
    file_extension = ".dummy"
    aliases = ("dmy",)

    def emit(self, circuit, **opts):
        return f"dummy({circuit.num_qubits})"


@pytest.fixture
def dummy():
    emitter = emit.register(DummyEmitter())
    try:
        yield emitter
    finally:
        emit.unregister("dummy")


class TestFormats:
    def test_builtin_formats_registered(self):
        formats = emit.formats()
        assert len(formats) >= 6
        for name in EXPECTED_FORMATS:
            assert name in formats

    def test_get_resolves_aliases_case_insensitively(self):
        assert emit.get("qasm").name == "qasm2"
        assert emit.get("QASM2").name == "qasm2"
        assert emit.get("qs").name == "qsharp"
        assert emit.get("openqasm3").name == "qasm3"

    def test_get_passes_emitter_instances_through(self):
        emitter = emit.get("qir")
        assert emit.get(emitter) is emitter

    def test_unknown_format_lists_registered(self):
        with pytest.raises(emit.EmitterError, match="unknown emission"):
            emit.get("verilog")
        with pytest.raises(emit.EmitterError, match="qasm2 \\(aka qasm"):
            emit.get("verilog")

    def test_protocol_runtime_checkable(self):
        for name in EXPECTED_FORMATS:
            assert isinstance(emit.get(name), emit.Emitter)

    def test_parseable_formats(self):
        parseable = emit.parseable_formats()
        assert "qasm2" in parseable
        assert "qir" not in parseable

    def test_parse_rejects_emit_only_formats(self):
        with pytest.raises(emit.EmitterError, match="no importer"):
            emit.parse("anything", "qir")


class TestRegistration:
    def test_register_and_dispatch(self, dummy):
        assert "dummy" in emit.formats()
        circuit = QuantumCircuit(3)
        assert emit.emit(circuit, "dummy") == "dummy(3)"
        assert emit.get("dmy") is dummy

    def test_collision_requires_overwrite(self, dummy):
        with pytest.raises(emit.EmitterError, match="already registered"):
            emit.register(DummyEmitter())
        replacement = DummyEmitter()
        assert emit.register(replacement, overwrite=True) is replacement
        assert emit.get("dummy") is replacement

    def test_alias_collision_detected(self, dummy):
        class Clash(DummyEmitter):
            name = "clash"
            aliases = ("dummy",)

        with pytest.raises(emit.EmitterError, match="already registered"):
            emit.register(Clash())

    def test_incomplete_backend_rejected(self):
        class NotAnEmitter:
            name = "nope"

        with pytest.raises(emit.EmitterError, match="missing"):
            emit.register(NotAnEmitter())

    def test_backend_without_aliases_registers_and_resolves(self):
        class Minimal:
            name = "minimal"
            description = "no aliases attribute at all"
            file_extension = ".min"

            def emit(self, circuit, **opts):
                return "minimal"

        instance = Minimal()
        emit.register(instance)
        try:
            assert emit.get("minimal") is instance
            # instances pass through get() like named lookups do
            assert emit.get(instance) is instance
        finally:
            emit.unregister("minimal")

    def test_overwrite_with_builtin_alias_takes_the_name_over(self):
        """overwrite=True on an alias name must not leave a stale alias."""
        qasm2 = emit.get("qasm2")

        class Usurper(DummyEmitter):
            name = "qasm"
            aliases = ()

        usurper = emit.register(Usurper(), overwrite=True)
        try:
            assert emit.get("qasm") is usurper
            assert emit.get("qasm2") is qasm2
        finally:
            emit.unregister("qasm")
            # restore the historical alias for the rest of the suite
            emit.register(qasm2, overwrite=True)
        assert emit.get("qasm") is qasm2

    def test_overwrite_shadowing_alias_evicts_shadowed_backend(self):
        """An alias capturing an existing canonical name evicts it."""
        victim = emit.register(DummyEmitter())

        class Shadow(DummyEmitter):
            name = "shadow"
            aliases = ("dummy",)

        shadow = emit.register(Shadow(), overwrite=True)
        try:
            assert emit.get("dummy") is shadow
            assert "dummy" not in emit.formats()
            assert victim.name not in emit.formats()
        finally:
            emit.unregister("shadow")

    def test_describe_formats_reflects_live_aliases(self):
        """After an overwrite steals an alias, listings follow suit."""
        qasm2 = emit.get("qasm2")

        class Thief(DummyEmitter):
            name = "thief"
            aliases = ("qasm",)

        emit.register(Thief(), overwrite=True)
        try:
            described = emit.describe_formats()
            assert "thief (aka qasm)" in described
            assert "qasm2 (aka openqasm2)" in described
        finally:
            emit.unregister("thief")
            emit.register(qasm2, overwrite=True)
        assert "qasm2 (aka qasm, openqasm2)" in emit.describe_formats()

    def test_overwrite_keeps_position_when_alias_evicts_earlier_entry(self):
        """Re-inserting must account for entries the eviction removed."""
        qasm2 = emit.get("qasm2")
        qsharp = emit.get("qsharp")
        before = emit.formats()
        assert before.index("qsharp") < before.index("projectq")

        class Usurper(DummyEmitter):
            name = "qsharp"
            aliases = ("qasm2",)

        emit.register(Usurper(), overwrite=True)
        try:
            order = emit.formats()
            assert order.index("qsharp") < order.index("projectq")
            assert "qasm2" not in order
        finally:
            emit.unregister("qsharp")
            emit.register(qasm2, overwrite=True)
            emit.register(qsharp, overwrite=True)
        assert set(emit.formats()) == set(before)

    def test_overwrite_keeps_formats_position(self):
        order = emit.formats()

        class Qasm2Replacement(DummyEmitter):
            name = "qasm2"
            aliases = ("qasm", "openqasm2")
            file_extension = ".qasm"

        original = emit.get("qasm2")
        emit.register(Qasm2Replacement(), overwrite=True)
        try:
            assert emit.formats() == order
        finally:
            emit.register(original, overwrite=True)
        assert emit.formats() == order
        assert emit.get("qasm") is original

    def test_unregister_unknown_raises(self):
        with pytest.raises(emit.EmitterError, match="unknown emission"):
            emit.unregister("never-registered")

    def test_custom_format_resolves_in_target(self, dummy):
        target = Target(name="custom", emitter="dmy")
        assert target.emitter == "dummy"

    def test_custom_format_emits_from_result(self, dummy, paper_pi):
        import repro

        result = repro.compile(paper_pi, target="qsharp", cache=None)
        assert result.emit("dummy") == f"dummy({result.circuit.num_qubits})"


class TestTargetEmitterResolution:
    def test_presets_are_canonical(self):
        from repro.compiler import targets

        assert targets.IBM_QE5.emitter == "qasm2"
        assert targets.QSHARP.emitter == "qsharp"
        assert targets.PROJECTQ.emitter == "projectq"

    def test_alias_canonicalized_at_construction(self):
        assert Target(name="t", emitter="qasm").emitter == "qasm2"
        assert Target(name="t", emitter="QS").emitter == "qsharp"

    def test_unknown_emitter_raises_with_list(self):
        with pytest.raises(PipelineError, match="registered formats"):
            Target(name="t", emitter="verilog")
        with pytest.raises(PipelineError, match="qasm2"):
            Target(name="t", emitter="verilog")

    def test_with_revalidates(self):
        target = Target(name="t")
        assert target.with_(emitter="qasm").emitter == "qasm2"
        with pytest.raises(PipelineError, match="registered formats"):
            target.with_(emitter="verilog")


class TestPathResolution:
    def test_extension_lookup(self):
        assert emit.emitter_for_path("x.qasm").name == "qasm2"
        assert emit.emitter_for_path("x.qasm3").name == "qasm3"
        assert emit.emitter_for_path("x.qs").name == "qsharp"
        assert emit.emitter_for_path("x.ll").name == "qir"

    def test_unknown_extension_lists_known(self):
        with pytest.raises(emit.EmitterError, match="known\\s+extensions"):
            emit.emitter_for_path("x.v")

"""The legacy emission entry points stay importable and warn once."""

import importlib
import sys
import warnings

import pytest

from repro.core.circuit import QuantumCircuit


class TestCoreQasmShim:
    def test_import_warns_once_then_caches(self):
        sys.modules.pop("repro.core.qasm", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            import repro.core.qasm  # noqa: F401
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.emit" in str(deprecations[0].message)
        # the module object is cached: a second import is silent
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            import repro.core.qasm  # noqa: F401
        assert not caught

    def test_shim_forwards_to_registry_backend(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            sys.modules.pop("repro.core.qasm", None)
            shim = importlib.import_module("repro.core.qasm")
        import repro.emit.qasm2 as qasm2

        assert shim.to_qasm is qasm2.to_qasm
        assert shim.from_qasm is qasm2.from_qasm
        assert shim.QasmError is qasm2.QasmError
        circ = QuantumCircuit(2).h(0).cx(0, 1)
        assert shim.to_qasm(circ) == qasm2.EMITTER.emit(circ)

    def test_package_reexports_do_not_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            from repro.core import from_qasm, to_qasm  # noqa: F401
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]


class TestOperationFromCircuitShim:
    @pytest.fixture
    def fresh_shim(self):
        from repro.frameworks import qsharp

        before = qsharp._OPERATION_SHIM_WARNED
        qsharp._OPERATION_SHIM_WARNED = False
        try:
            yield qsharp
        finally:
            qsharp._OPERATION_SHIM_WARNED = before

    def test_warns_once_and_forwards(self, fresh_shim):
        circ = QuantumCircuit(2).h(0).cx(0, 1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            op = fresh_shim.operation_from_circuit("Legacy", circ)
            fresh_shim.operation_from_circuit("Legacy", circ)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.emit" in str(deprecations[0].message)
        from repro import emit

        assert op.code == emit.emit(circ, "qsharp", name="Legacy")
        assert op.circuit.gates == circ.gates

    def test_internal_paths_do_not_warn(self, fresh_shim, paper_pi):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fresh_shim.permutation_oracle_operation(paper_pi)
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

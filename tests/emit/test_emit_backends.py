"""Unit tests for the individual emission backends."""

import math

import pytest

from repro import emit
from repro.core.circuit import QuantumCircuit


@pytest.fixture
def clifford_t_circuit():
    circ = QuantumCircuit(3, 2, name="bench")
    circ.h(0).cx(0, 1).t(2).tdg(1).s(0).sdg(2).swap(0, 2)
    circ.measure(0, 0).measure(1, 1)
    return circ


class TestQasm3:
    def test_header_and_registers(self, clifford_t_circuit):
        text = emit.emit(clifford_t_circuit, "qasm3")
        lines = text.splitlines()
        assert lines[0] == "OPENQASM 3.0;"
        assert lines[1] == 'include "stdgates.inc";'
        assert "qubit[3] q;" in lines
        assert "bit[2] c;" in lines

    def test_measure_assignment_syntax(self, clifford_t_circuit):
        text = emit.emit(clifford_t_circuit, "qasm3")
        assert "c[0] = measure q[0];" in text
        assert "c[1] = measure q[1];" in text

    def test_p_gate_is_native_not_u1(self):
        circ = QuantumCircuit(1).p(math.pi / 4, 0)
        text = emit.emit(circ, "qasm3")
        assert "p(pi/4) q[0];" in text
        assert "u1" not in text

    def test_mct_uses_ctrl_modifier(self):
        circ = QuantumCircuit(4).mcx([0, 1, 2], 3)
        text = emit.emit(circ, "qasm3")
        assert "ctrl(3) @ x q[0], q[1], q[2], q[3];" in text

    def test_ccz_and_sxdg_modifier_forms(self):
        circ = QuantumCircuit(3).ccz(0, 1, 2).sxdg(0)
        text = emit.emit(circ, "qasm3")
        assert "ctrl(2) @ z q[0], q[1], q[2];" in text
        assert "inv @ sx q[0];" in text

    def test_empty_circuit_keeps_one_qubit_register(self):
        assert "qubit[1] q;" in emit.emit(QuantumCircuit(0), "qasm3")

    def test_unexpected_controls_raise_not_dropped(self):
        from repro.core.gates import Gate

        circ = QuantumCircuit(2)
        circ.append(Gate("x", (1,), (0,)))
        with pytest.raises(emit.EmitterError, match="controls"):
            emit.emit(circ, "qasm3")
        circ = QuantumCircuit(3)
        circ.append(Gate("cx", (2,), (0, 1)))
        with pytest.raises(emit.EmitterError, match="controls"):
            emit.emit(circ, "qasm3")


class TestCirq:
    def test_script_is_valid_python(self, clifford_t_circuit):
        text = emit.emit(clifford_t_circuit, "cirq")
        compile(text, "<generated cirq>", "exec")

    def test_gate_vocabulary(self, clifford_t_circuit):
        text = emit.emit(clifford_t_circuit, "cirq")
        assert "q = cirq.LineQubit.range(3)" in text
        assert "cirq.H(q[0])," in text
        assert "cirq.CNOT(q[0], q[1])," in text
        assert "cirq.T(q[1]) ** -1," in text
        assert "cirq.measure(q[0], key='c0')," in text

    def test_rotations_use_math_pi(self):
        circ = QuantumCircuit(1).rz(math.pi / 2, 0)
        text = emit.emit(circ, "cirq")
        assert "import math" in text
        assert "cirq.rz(math.pi/2)(q[0])," in text
        compile(text, "<generated cirq>", "exec")

    def test_mcx_controlled_by(self):
        circ = QuantumCircuit(4).mcx([0, 1, 2], 3)
        text = emit.emit(circ, "cirq")
        assert "cirq.X(q[3]).controlled_by(q[0], q[1], q[2])," in text

    def test_barrier_dropped(self):
        circ = QuantumCircuit(2).h(0).barrier(0, 1).h(1)
        text = emit.emit(circ, "cirq")
        assert "barrier" not in text
        assert text.count("cirq.H") == 2

    def test_unexpected_controls_raise_not_dropped(self):
        from repro.core.gates import Gate

        for name in ("sdg", "sx", "s", "h"):
            circ = QuantumCircuit(2)
            circ.append(Gate(name, (1,), (0,)))
            with pytest.raises(emit.EmitterError, match="controls"):
                emit.emit(circ, "cirq")
        circ = QuantumCircuit(2)
        circ.append(Gate("p", (1,), (0,), (0.5,)))
        with pytest.raises(emit.EmitterError, match="controls"):
            emit.emit(circ, "cirq")


class TestQasm2ExternalFiles:
    def test_named_register_imports(self):
        from repro.emit.qasm2 import from_qasm

        circ = from_qasm(
            "OPENQASM 2.0;\n"
            'include "qelib1.inc";\n'
            "qreg r[2];\n"
            "cx r[0], r[1];\n"
            "x r[1];\n"
        )
        assert circ.num_qubits == 2
        assert circ.gates[0].controls == (0,)
        assert circ.gates[0].targets == (1,)
        assert circ.gates[1].targets == (1,)

    def test_multiple_registers_flatten_in_order(self):
        from repro.emit.qasm2 import from_qasm

        circ = from_qasm(
            "OPENQASM 2.0;\n"
            "qreg a[2];\n"
            "qreg b[2];\n"
            "creg m[1];\n"
            "cx a[1], b[0];\n"
            "measure b[1] -> m[0];\n"
        )
        assert circ.num_qubits == 4 and circ.num_clbits == 1
        assert circ.gates[0].controls == (1,)
        assert circ.gates[0].targets == (2,)
        assert circ.gates[1].targets == (3,)
        assert circ.gates[1].cbits == (0,)

    def test_undeclared_register_raises(self):
        from repro.emit.qasm2 import QasmError, from_qasm

        with pytest.raises(QasmError, match="unknown quantum register"):
            from_qasm("OPENQASM 2.0;\nqreg q[2];\nx r[0];\n")

    def test_out_of_range_index_raises(self):
        from repro.emit.qasm2 import QasmError, from_qasm

        with pytest.raises(QasmError, match="outside the register"):
            from_qasm("OPENQASM 2.0;\nqreg q[2];\nx q[2];\n")

    def test_openqasm3_header_rejected_by_the_parser_itself(self):
        # the version hint comes from from_qasm, so every entry point
        # (registry parse, CLI, frontends) reports the same message
        from repro.emit.qasm2 import QasmError

        with pytest.raises(QasmError, match="OpenQASM 3 import"):
            emit.parse("OPENQASM 3.0;\nqubit[2] q;\n", "qasm2")


class TestQir:
    def test_structure(self, clifford_t_circuit):
        text = emit.emit(clifford_t_circuit, "qir")
        assert "%Qubit = type opaque" in text
        assert "define void @main() #0 {" in text
        assert text.rstrip().endswith("}")
        assert '"num_required_qubits"="3"' in text
        assert '"num_required_results"="2"' in text

    def test_intrinsic_calls_and_declares(self, clifford_t_circuit):
        text = emit.emit(clifford_t_circuit, "qir")
        call = (
            "call void @__quantum__qis__cnot__body("
            "%Qubit* inttoptr (i64 0 to %Qubit*), "
            "%Qubit* inttoptr (i64 1 to %Qubit*))"
        )
        assert call in text
        assert "declare void @__quantum__qis__cnot__body(%Qubit*, %Qubit*)" in text
        assert "call void @__quantum__qis__t__adj" in text
        assert "declare void @__quantum__qis__mz__body(%Qubit*, %Result*)" in text

    def test_each_intrinsic_declared_once(self):
        circ = QuantumCircuit(2).h(0).h(1).h(0)
        text = emit.emit(circ, "qir")
        assert text.count("declare void @__quantum__qis__h__body") == 1
        assert text.count("call void @__quantum__qis__h__body") == 3

    def test_rotations_carry_double_argument(self):
        circ = QuantumCircuit(1).rz(0.5, 0).p(0.25, 0)
        text = emit.emit(circ, "qir")
        assert "call void @__quantum__qis__rz__body(double 0.5, " in text
        assert "call void @__quantum__qis__r1__body(double 0.25, " in text

    def test_unmapped_gate_rejected(self):
        circ = QuantumCircuit(4).mcx([0, 1, 2], 3)
        with pytest.raises(emit.EmitterError, match="map to"):
            emit.emit(circ, "qir")

    def test_unexpected_controls_raise_not_dropped(self):
        from repro.core.gates import Gate

        circ = QuantumCircuit(2)
        circ.append(Gate("x", (1,), (0,)))
        with pytest.raises(emit.EmitterError, match="controls"):
            emit.emit(circ, "qir")
        circ = QuantumCircuit(2)
        circ.append(Gate("rz", (1,), (0,), (0.5,)))
        with pytest.raises(emit.EmitterError, match="controls"):
            emit.emit(circ, "qir")


class TestQsharpBackend:
    def test_matches_legacy_generator(self, clifford_t_circuit):
        from repro.frameworks.qsharp import _operation_from_circuit

        circ = QuantumCircuit(2).h(0).cx(0, 1)
        op = _operation_from_circuit("MyOp", circ)
        assert emit.emit(circ, "qsharp", name="MyOp") == op.code

    def test_parse_infers_width(self):
        circ = QuantumCircuit(3).h(0).cx(0, 1).ccx(0, 1, 2)
        code = emit.emit(circ, "qsharp")
        parsed = emit.parse(code, "qsharp")
        assert parsed.num_qubits == 3
        assert parsed.gates == circ.gates

    def test_parse_width_override_for_idle_top_wires(self):
        # inference undercounts when the last wire is idle; the
        # num_qubits= option restores the true register width
        circ = QuantumCircuit(3).h(0).cx(0, 1)
        code = emit.emit(circ, "qsharp")
        assert emit.parse(code, "qsharp").num_qubits == 2
        parsed = emit.parse(code, "qsharp", num_qubits=3)
        assert parsed.num_qubits == 3
        assert parsed.gates == circ.gates


class TestProjectQBackend:
    def test_matches_legacy_result_method(self, paper_pi):
        import repro

        result = repro.compile(paper_pi, target="projectq", cache=None)
        assert emit.emit(result.circuit, "projectq") == result.to_projectq()

    def test_script_replays(self, clifford_t_circuit):
        text = emit.emit(clifford_t_circuit, "projectq")
        namespace = {}
        exec(text, namespace)  # noqa: S102 - generated by us
        replayed = namespace["eng"].circuit
        expected = [g for g in clifford_t_circuit.gates if g.name != "barrier"]
        assert replayed.gates == expected


class TestOptionsValidation:
    @pytest.mark.parametrize("fmt", ["qasm2", "qasm3", "projectq", "cirq", "qir"])
    def test_unexpected_options_rejected(self, fmt):
        with pytest.raises(emit.EmitterError, match="no options"):
            emit.emit(QuantumCircuit(1), fmt, bogus=1)

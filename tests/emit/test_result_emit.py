"""CompilationResult.emit as a thin registry dispatcher."""

import pytest

import repro
from repro import emit
from repro.compiler import EmissionError
from repro.pipeline import flows


@pytest.fixture
def result(paper_pi):
    return repro.compile(paper_pi, target="qsharp", cache=None)


class TestDispatch:
    def test_every_registered_format_emits(self, result):
        for name in emit.formats():
            text = result.emit(name)
            assert isinstance(text, str) and text

    def test_memoized_per_format_and_opts(self, result):
        assert result.emit("cirq") is result.emit("cirq")
        assert result.emit("qir") is result.emit("qir")
        named = result.emit("qsharp", name="A")
        assert named is result.emit("qsharp", name="A")
        assert named != result.emit("qsharp", name="B")

    def test_alias_hits_the_same_memo_entry(self, result):
        assert result.emit("qasm") is result.emit("qasm2")
        assert result.to_qasm() is result.emit("qasm")

    def test_default_name_shares_emit_memo_slot(self, result):
        # to_qsharp() with the default name must not duplicate the
        # text emit("qsharp") already cached
        assert result.to_qsharp() is result.emit("qsharp")
        assert result.emit() is result.to_qsharp()

    def test_qsharp_unknown_option_raises_emission_error(self, result):
        with pytest.raises(EmissionError, match="name=/namespace="):
            result.emit("qsharp", bogus=1)

    def test_qsharp_unexportable_gate_raises_emission_error(self, paper_pi):
        from repro.compiler import detect_workload
        from repro.compiler.result import CompilationResult

        measured = repro.compile(paper_pi, target="qsharp", cache=None)
        circuit = measured.circuit.copy()
        circuit.num_clbits = 1
        circuit.measure(0, 0)
        workload = detect_workload(circuit)
        bundle = CompilationResult(
            workload=workload,
            target=None,
            flow=flows.QSHARP,
            state=workload.state,
            records=[],
        )
        with pytest.raises(EmissionError, match="no Q# primitive"):
            bundle.emit("qsharp")

    def test_qasm2_round_trips_through_registry(self, result):
        parsed = emit.parse(result.emit("qasm2"))
        assert parsed.gates == result.circuit.gates


class TestErrorPaths:
    def test_unknown_format_lists_registered(self, result):
        with pytest.raises(EmissionError, match="unknown emission format"):
            result.emit("verilog")
        with pytest.raises(EmissionError, match="qasm2 \\(aka qasm"):
            result.emit("verilog")
        with pytest.raises(EmissionError, match="qir"):
            result.emit("verilog")

    def test_no_default_emitter_lists_registered(self, paper_pi):
        bare = repro.compile(paper_pi, target="clifford_t", cache=None)
        with pytest.raises(EmissionError, match="no emission format"):
            bare.emit()
        with pytest.raises(EmissionError, match="registered formats"):
            bare.emit()
        with pytest.raises(EmissionError, match="qasm2"):
            bare.emit()

    def test_errors_are_both_pipeline_and_emitter_errors(self, result):
        from repro.pipeline.state import PipelineError

        with pytest.raises(PipelineError):
            result.emit("verilog")
        with pytest.raises(emit.EmitterError):
            result.emit("verilog")

    def test_backend_failure_translated(self, paper_pi):
        mct = repro.compile(paper_pi, target="toffoli", cache=None)
        with pytest.raises(EmissionError, match="no\\s+quantum circuit"):
            mct.emit("qir")


class TestFlowDefaultEmitter:
    def test_flow_presets_carry_emitters(self):
        assert flows.EQ5.emitter == "qasm2"
        assert flows.QSHARP.emitter == "qsharp"
        assert flows.DEVICE.emitter == "qasm2"

    def test_flow_only_compilation_uses_flow_emitter(self, paper_pi):
        result = repro.compile(paper_pi, flow=flows.QSHARP, cache=None)
        # the default target carries no emitter; the flow's kicks in
        assert result.target.emitter is None
        assert result.emit() == result.emit("qsharp")

    def test_target_emitter_wins_over_flow(self, paper_pi):
        result = repro.compile(paper_pi, target="projectq", cache=None)
        assert result.emit() is result.emit("projectq")

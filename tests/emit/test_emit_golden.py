"""Golden-file guard: legacy emission output is byte-identical.

The files under ``tests/emit/golden/`` were captured from the
pre-refactor code (PR 4 state), where QASM lived in ``core/qasm.py``,
Q# generation in ``frameworks/qsharp.py`` and the ProjectQ line
assembly inline in ``CompilationResult.to_projectq``.  The refactor
onto the ``repro.emit`` registry must not change a single byte of
what ``to_qasm`` / ``to_qsharp`` / ``to_projectq`` produce.
"""

import pathlib

import pytest

import repro
from repro.boolean.permutation import BitPermutation

GOLDEN = pathlib.Path(__file__).parent / "golden"
PERM = [0, 2, 3, 5, 7, 1, 4, 6]


@pytest.fixture(scope="module")
def perm():
    return BitPermutation(PERM)


def _golden(name):
    return GOLDEN.joinpath(name).read_text()


class TestByteIdentical:
    def test_qasm_via_ibm_qe5(self, perm):
        result = repro.compile(perm, target="ibm_qe5", cache=None)
        assert result.to_qasm() == _golden("perm8_ibm_qe5.qasm")

    def test_qasm_via_emit_default(self, perm):
        result = repro.compile(perm, target="ibm_qe5", cache=None)
        assert result.emit() == _golden("perm8_ibm_qe5.qasm")

    def test_qsharp_default_name(self, perm):
        result = repro.compile(perm, target="qsharp", cache=None)
        assert result.to_qsharp() == _golden("perm8_qsharp.qs")

    def test_qsharp_custom_name(self, perm):
        result = repro.compile(perm, target="qsharp", cache=None)
        assert result.to_qsharp(name="GoldenOracle") == _golden(
            "perm8_qsharp_named.qs"
        )

    def test_projectq(self, perm):
        result = repro.compile(perm, target="projectq", cache=None)
        assert result.to_projectq() == _golden("perm8_projectq.py.txt")

    def test_qasm_via_eq5_generator(self):
        result = repro.compile({"hwb": 4}, target="clifford_t", cache=None)
        assert result.to_qasm() == _golden("hwb4_clifford_t.qasm")

    def test_legacy_alias_matches_canonical(self, perm):
        result = repro.compile(perm, target="ibm_qe5", cache=None)
        assert result.emit("qasm") == result.emit("qasm2")

"""Unit tests for the repro.engines registry."""

import pytest

from repro import engines
from repro.core.circuit import QuantumCircuit
from repro.simulator.statevector import SimulationResult

#: The four built-in engines, in canonical listing order.
EXPECTED_ENGINES = (
    "statevector", "stabilizer", "density_matrix", "monte_carlo",
)


class DummyEngine:
    """Minimal protocol-satisfying backend used by registration tests."""

    name = "dummy"
    description = "test engine"
    aliases = ("dmy",)
    capabilities = engines.EngineCapabilities(max_qubits=4)

    def run(self, circuit, *, shots=1024, noise=None, seed=None, **opts):
        return SimulationResult({0: shots}, None, shots, circuit.num_qubits)


@pytest.fixture
def dummy():
    engine = engines.register(DummyEngine())
    try:
        yield engine
    finally:
        engines.unregister("dummy")


class TestBuiltins:
    def test_builtin_engines_registered(self):
        assert engines.engines() == EXPECTED_ENGINES

    def test_get_resolves_aliases_case_insensitively(self):
        assert engines.get("sv").name == "statevector"
        assert engines.get("SV").name == "statevector"
        assert engines.get("DM").name == "density_matrix"
        assert engines.get("rho").name == "density_matrix"
        assert engines.get("chp").name == "stabilizer"
        assert engines.get("noisy").name == "monte_carlo"

    def test_get_passes_engine_instances_through(self):
        engine = engines.get("density_matrix")
        assert engines.get(engine) is engine

    def test_unknown_engine_lists_registered(self):
        with pytest.raises(engines.EngineError, match="unknown engine"):
            engines.get("qft_only")
        with pytest.raises(
            engines.EngineError, match=r"statevector \(aka sv"
        ):
            engines.get("qft_only")

    def test_protocol_runtime_checkable(self):
        for name in EXPECTED_ENGINES:
            assert isinstance(engines.get(name), engines.Engine)

    def test_capabilities_match_design(self):
        assert engines.get("statevector").capabilities.noise is False
        assert engines.get("stabilizer").capabilities.max_qubits is None
        assert engines.get("stabilizer").capabilities.gate_set == "clifford"
        dm = engines.get("density_matrix").capabilities
        assert dm.noise and dm.exact and dm.max_qubits == 12
        mc = engines.get("monte_carlo").capabilities
        assert mc.noise and not mc.exact

    def test_describe_engines_mentions_aliases(self):
        described = engines.describe_engines()
        assert "density_matrix (aka dm, rho)" in described
        assert "monte_carlo (aka mc, noisy)" in described


class TestRegistration:
    def test_register_and_dispatch(self, dummy):
        assert "dummy" in engines.engines()
        circuit = QuantumCircuit(3)
        result = engines.run("dummy", circuit, shots=16)
        assert result.counts == {0: 16}
        assert engines.get("dmy") is dummy

    def test_collision_requires_overwrite(self, dummy):
        with pytest.raises(engines.EngineError, match="already registered"):
            engines.register(DummyEngine())
        replacement = DummyEngine()
        assert engines.register(replacement, overwrite=True) is replacement
        assert engines.get("dummy") is replacement

    def test_alias_collision_detected(self, dummy):
        class Clash(DummyEngine):
            name = "clash"
            aliases = ("dummy",)

        with pytest.raises(engines.EngineError, match="already registered"):
            engines.register(Clash())

    def test_incomplete_backend_rejected(self):
        class NotAnEngine:
            name = "nope"

        with pytest.raises(engines.EngineError, match="missing"):
            engines.register(NotAnEngine())

    def test_backend_without_aliases_registers_and_resolves(self):
        class Minimal:
            name = "minimal"
            description = "no aliases attribute at all"
            capabilities = engines.EngineCapabilities()

            def run(self, circuit, *, shots=1024, noise=None, seed=None,
                    **opts):
                return SimulationResult({}, None, shots)

        instance = Minimal()
        engines.register(instance)
        try:
            assert engines.get("minimal") is instance
            assert engines.get(instance) is instance
        finally:
            engines.unregister("minimal")

    def test_overwrite_keeps_listing_position(self):
        order = engines.engines()

        class Replacement(DummyEngine):
            name = "stabilizer"
            aliases = ("chp", "tableau")

        original = engines.get("stabilizer")
        engines.register(Replacement(), overwrite=True)
        try:
            assert engines.engines() == order
        finally:
            engines.register(original, overwrite=True)
        assert engines.engines() == order
        assert engines.get("chp") is original

    def test_overwrite_shadowing_alias_evicts_shadowed_backend(self, dummy):
        class Shadow(DummyEngine):
            name = "shadow"
            aliases = ("dummy",)

        shadow = engines.register(Shadow(), overwrite=True)
        try:
            assert engines.get("dummy") is shadow
            assert "dummy" not in engines.engines()
        finally:
            engines.unregister("shadow")
            # the fixture's unregister("dummy") must still find a body
            engines.register(DummyEngine())

    def test_unregister_unknown_raises(self):
        with pytest.raises(engines.EngineError, match="unknown engine"):
            engines.unregister("never-registered")

    def test_run_resolves_noise_specs(self, dummy):
        captured = {}

        class Probe(DummyEngine):
            name = "probe"
            aliases = ()

            def run(self, circuit, *, shots=1024, noise=None, seed=None,
                    **opts):
                captured["noise"] = noise
                return SimulationResult({}, None, shots)

        engines.register(Probe())
        try:
            engines.run("probe", QuantumCircuit(1), noise="qe5")
            assert captured["noise"] == engines.QE5_NOISE
            engines.run("probe", QuantumCircuit(1), noise="p1=0.5")
            assert captured["noise"].p1 == 0.5
        finally:
            engines.unregister("probe")

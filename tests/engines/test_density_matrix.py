"""The exact density-matrix engine: PTM algebra, evolution, channels."""

import math

import numpy as np
import pytest

from repro import engines
from repro.core.circuit import QuantumCircuit
from repro.core.gates import Gate
from repro.engines import ptm
from repro.engines.density_matrix import (
    MAX_QUBITS,
    DensityMatrix,
    DensityMatrixResult,
    _conjugate_gate,
)
from repro.engines.noise import NoiseModel
from repro.simulator.statevector import StatevectorSimulator


class TestPTM:
    def test_identity_unitary_is_identity_ptm(self):
        assert np.allclose(ptm.unitary_ptm(np.eye(2)), np.eye(4))

    def test_hadamard_ptm_swaps_x_and_z(self):
        h = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
        r = ptm.unitary_ptm(h)
        expected = np.zeros((4, 4))
        expected[0, 0] = 1.0
        expected[1, 3] = expected[3, 1] = 1.0
        expected[2, 2] = -1.0
        assert np.allclose(r, expected)

    def test_kraus_ptm_matches_unitary_ptm(self):
        s = np.diag([1.0, 1j])
        assert np.allclose(ptm.kraus_ptm([s]), ptm.unitary_ptm(s))

    def test_amplitude_damping_from_kraus(self):
        gamma = 0.3
        k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]])
        k1 = np.array([[0, math.sqrt(gamma)], [0, 0]])
        assert np.allclose(
            ptm.kraus_ptm([k0, k1]), ptm.amplitude_damping_ptm(gamma)
        )

    def test_phase_damping_from_kraus(self):
        lam = 0.4
        k0 = np.array([[1, 0], [0, math.sqrt(1 - lam)]])
        k1 = np.array([[0, 0], [0, math.sqrt(lam)]])
        assert np.allclose(
            ptm.kraus_ptm([k0, k1]), ptm.phase_damping_ptm(lam)
        )

    def test_depolarizing_is_monte_carlo_convention(self):
        # probability p: one of X/Y/Z uniformly -> fidelity 1 - 4p/3
        p = 0.09
        r = ptm.depolarizing_ptm(p)
        fidelity = 1 - 4 * p / 3
        assert np.allclose(np.diag(r), [1.0, fidelity, fidelity, fidelity])
        assert np.allclose(r, np.diag(np.diag(r)))

    def test_trace_preservation_and_unitality(self):
        assert ptm.is_trace_preserving(ptm.amplitude_damping_ptm(0.5))
        assert not ptm.is_unital(ptm.amplitude_damping_ptm(0.5))
        assert ptm.is_unital(ptm.phase_damping_ptm(0.5))
        assert ptm.is_unital(ptm.depolarizing_ptm(0.5))

    def test_compose_order_first_acts_first(self):
        x = ptm.unitary_ptm(np.array([[0, 1], [1, 0]]))
        damp = ptm.amplitude_damping_ptm(1.0)
        # X then full damping: everything lands on |0>
        composed = ptm.compose_ptms(x, damp)
        assert np.allclose(composed, damp @ x)

    def test_superoperator_roundtrip(self):
        r = ptm.amplitude_damping_ptm(0.37)
        s = ptm.ptm_to_superoperator(r)
        assert np.allclose(ptm.superoperator_to_ptm(s), r)

    def test_superoperator_acts_on_vec_rho(self):
        # damping the excited state: rho = |1><1| -> diag(g, 1-g)
        gamma = 0.25
        s = ptm.ptm_to_superoperator(ptm.amplitude_damping_ptm(gamma))
        rho = np.array([0, 0, 0, 1.0], dtype=complex)  # vec(|1><1|)
        out = (s @ rho).reshape(2, 2)
        assert np.allclose(out, np.diag([gamma, 1 - gamma]))

    def test_channel_superoperator_cached_and_readonly(self):
        a = ptm.channel_superoperator("depolarizing", 0.1)
        b = ptm.channel_superoperator("depolarizing", 0.1)
        assert a is b
        with pytest.raises(ValueError):
            a[0, 0] = 2.0

    def test_rates_validated(self):
        for build in (
            ptm.amplitude_damping_ptm,
            ptm.phase_damping_ptm,
            ptm.depolarizing_ptm,
            ptm.readout_assignment,
        ):
            with pytest.raises(ValueError, match="not in"):
                build(1.5)

    def test_readout_assignment_is_stochastic(self):
        m = ptm.readout_assignment(0.04)
        assert np.allclose(m.sum(axis=0), [1.0, 1.0])


class TestConjugateGate:
    def _assert_conjugate(self, gate: Gate):
        conj = _conjugate_gate(gate)
        assert conj is not None
        assert np.allclose(conj.matrix(), np.conj(gate.matrix()))

    def test_real_gates_are_self_conjugate(self):
        for gate in (
            Gate("h", (0,)),
            Gate("x", (0,)),
            Gate("cx", (1,), (0,)),
            Gate("swap", (0, 1)),
            Gate("ccx", (2,), (0, 1)),
            Gate("ry", (0,), params=(0.7,)),
        ):
            assert _conjugate_gate(gate) is gate

    def test_adjoint_pairs_swap(self):
        self._assert_conjugate(Gate("s", (0,)))
        self._assert_conjugate(Gate("tdg", (0,)))
        self._assert_conjugate(Gate("sx", (0,)))

    def test_rotations_negate_angle(self):
        self._assert_conjugate(Gate("rx", (0,), params=(0.3,)))
        self._assert_conjugate(Gate("rz", (0,), params=(-1.1,)))
        self._assert_conjugate(Gate("p", (0,), params=(0.5,)))
        self._assert_conjugate(Gate("cp", (1,), (0,), params=(0.5,)))

    def test_y_has_no_named_conjugate(self):
        # conj(Y) = -Y: same adjoint, opposite sign — must NOT reuse y
        assert _conjugate_gate(Gate("y", (0,))) is None
        assert _conjugate_gate(Gate("cy", (1,), (0,))) is None


class TestDensityMatrix:
    def test_initial_state(self):
        rho = DensityMatrix(2)
        assert np.allclose(rho.matrix(), np.diag([1.0, 0, 0, 0]))
        assert rho.trace() == pytest.approx(1.0)
        assert rho.purity() == pytest.approx(1.0)

    def test_width_cap(self):
        with pytest.raises(engines.EngineError, match="caps at"):
            DensityMatrix(MAX_QUBITS + 1)

    def test_pure_evolution_matches_statevector(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.t(1)
        circuit.y(2)
        circuit.cx(0, 1)
        circuit.sdg(2)
        circuit.cz(1, 2)
        circuit.sx(0)
        circuit.rx(0.4, 1)
        circuit.rz(-0.9, 2)
        circuit.swap(0, 2)
        circuit.ccx(0, 1, 2)
        circuit.cy(0, 2)
        state = StatevectorSimulator().run(circuit, shots=0).final_state
        rho = DensityMatrix(3)
        for gate in circuit.gates:
            rho.apply_gate(gate)
        expected = np.outer(state.data, state.data.conj())
        assert np.max(np.abs(rho.matrix() - expected)) < 1e-10
        assert rho.purity() == pytest.approx(1.0)

    def test_apply_unitary_dense_path(self):
        theta = 0.8
        matrix = np.array(
            [
                [math.cos(theta / 2), -1j * math.sin(theta / 2)],
                [-1j * math.sin(theta / 2), math.cos(theta / 2)],
            ]
        )
        direct = DensityMatrix(2)
        direct.apply_gate(Gate("rx", (1,), params=(theta,)))
        dense = DensityMatrix(2)
        dense.apply_unitary(matrix, [1])
        assert np.allclose(direct.matrix(), dense.matrix())

    def test_depolarizing_mixes_toward_identity(self):
        rho = DensityMatrix(1)
        rho.apply_gate(Gate("h", (0,)))
        rho.apply_channel("depolarizing", 0.75, 0)  # fidelity 0
        assert np.allclose(rho.matrix(), np.eye(2) / 2)
        assert rho.purity() == pytest.approx(0.5)

    def test_amplitude_damping_relaxes_to_ground(self):
        rho = DensityMatrix(1)
        rho.apply_gate(Gate("x", (0,)))
        rho.apply_channel("amplitude_damping", 0.3, 0)
        assert np.allclose(rho.matrix(), np.diag([0.3, 0.7]))
        assert rho.trace() == pytest.approx(1.0)

    def test_phase_damping_kills_coherence_not_populations(self):
        rho = DensityMatrix(1)
        rho.apply_gate(Gate("h", (0,)))
        rho.apply_channel("phase_damping", 1.0, 0)
        assert np.allclose(rho.matrix(), np.eye(2) / 2)

    def test_reset_is_full_damping(self):
        rho = DensityMatrix(2)
        rho.apply_gate(Gate("h", (0,)))
        rho.apply_gate(Gate("cx", (1,), (0,)))
        rho.reset_qubit(1)
        probs = rho.probabilities()
        # qubit 1 back in |0>, qubit 0 keeps its mixed marginal
        assert probs[0] == pytest.approx(0.5)
        assert probs[1] == pytest.approx(0.5)
        assert probs[2] == pytest.approx(0.0)
        assert probs[3] == pytest.approx(0.0)

    def test_from_statevector(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        state = StatevectorSimulator().run(circuit, shots=0).final_state
        rho = DensityMatrix.from_statevector(state)
        assert rho.purity() == pytest.approx(1.0)
        assert np.allclose(
            rho.probabilities(), state.probabilities()
        )


class TestDensityMatrixEngine:
    def test_bell_counts_and_exact_probabilities(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        result = engines.run("density_matrix", circuit, shots=4096, seed=5)
        assert isinstance(result, DensityMatrixResult)
        assert set(result.counts) == {0, 3}
        assert sum(result.counts.values()) == 4096
        assert result.probability(0) == pytest.approx(0.5, abs=1e-12)
        assert result.probability(3) == pytest.approx(0.5, abs=1e-12)
        assert result.probability(1) == pytest.approx(0.0, abs=1e-12)
        assert result.probability(99) == 0.0

    def test_sampling_is_seeded(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0)
        circuit.measure(0, 0)
        a = engines.run("dm", circuit, shots=100, seed=9).counts
        b = engines.run("dm", circuit, shots=100, seed=9).counts
        assert a == b

    def test_partial_measurement_marginalizes(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(1, 0)
        result = engines.run("density_matrix", circuit, shots=0)
        assert result.exact_probabilities.shape == (2,)
        assert result.probability(0) == pytest.approx(0.5)
        assert result.probability(1) == pytest.approx(0.5)

    def test_no_measurements_reports_full_diagonal(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        result = engines.run("density_matrix", circuit, shots=16)
        assert result.counts == {}
        assert result.exact_probabilities.shape == (4,)
        assert result.probability(0) == pytest.approx(0.5)

    def test_readout_error_mixes_measured_bits_only(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0)
        circuit.measure(0, 0)
        model = NoiseModel(
            p1=0.0, p2=0.0, p_meas=0.1, p_multi=0.0
        )
        result = engines.run("density_matrix", circuit, noise=model, shots=0)
        assert result.probability(1) == pytest.approx(0.9)
        assert result.probability(0) == pytest.approx(0.1)

    def test_gate_noise_uses_gate_class_rates(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0)
        circuit.measure(0, 0)
        # full depolarizing after the single X: uniform outcome
        model = NoiseModel(p1=0.75, p2=0.0, p_meas=0.0, p_multi=0.0)
        result = engines.run("density_matrix", circuit, noise=model, shots=0)
        assert result.probability(0) == pytest.approx(0.5)

    def test_mid_circuit_measurement_rejected(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        circuit.h(0)
        with pytest.raises(engines.EngineError, match="terminal"):
            engines.run("density_matrix", circuit)

    def test_unknown_option_rejected(self):
        with pytest.raises(engines.EngineError, match="unknown option"):
            engines.run("density_matrix", QuantumCircuit(1), fusion=False)

    def test_negative_shots_rejected(self):
        with pytest.raises(engines.EngineError, match="non-negative"):
            engines.run("density_matrix", QuantumCircuit(1), shots=-1)

    def test_width_cap_enforced(self):
        with pytest.raises(engines.EngineError, match="caps at"):
            engines.run("density_matrix", QuantumCircuit(MAX_QUBITS + 1))

    def test_reset_instruction(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0)
        circuit.reset(0)
        circuit.measure(0, 0)
        result = engines.run("density_matrix", circuit, shots=0)
        assert result.probability(0) == pytest.approx(1.0)

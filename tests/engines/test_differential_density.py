"""Differential tests: exact tier vs pure states and vs Monte-Carlo.

Three cross-checks pin the density-matrix engine to the rest of the
stack:

* zero noise: ``rho`` equals the statevector's ``|psi><psi|`` to
  1e-10 on random Clifford+T circuits (Hypothesis);
* depolarizing + readout noise: exact probabilities sit inside the
  Monte-Carlo sampler's sampling error (the exact engine is the
  trajectory average of the sampler, channel-for-channel);
* the paper's Fig. 6 run: hidden-shift recovery under the IBM QE5
  calibration lands at ~0.63, read deterministically off ``rho``.
"""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import engines
from repro.core.circuit import QuantumCircuit
from repro.engines import NoiseModel, QE5_NOISE
from repro.engines.density_matrix import DensityMatrix
from repro.simulator.statevector import StatevectorSimulator

#: gate vocabulary for random circuits: (name, arity, has_param)
_ONE_QUBIT = ("h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx")
_TWO_QUBIT = ("cx", "cz", "cy", "swap")


@st.composite
def random_circuits(draw, max_qubits=4, max_gates=24):
    """A random universal circuit (no measurements)."""
    n = draw(st.integers(min_value=2, max_value=max_qubits))
    circuit = QuantumCircuit(n, n)
    for _ in range(draw(st.integers(min_value=1, max_value=max_gates))):
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 0:
            name = draw(st.sampled_from(_ONE_QUBIT))
            getattr(circuit, name)(draw(st.integers(0, n - 1)))
        elif kind == 1:
            name = draw(st.sampled_from(_TWO_QUBIT))
            a = draw(st.integers(0, n - 1))
            b = draw(st.integers(0, n - 2))
            if b >= a:
                b += 1
            getattr(circuit, name)(a, b)
        elif kind == 2:
            angle = draw(
                st.floats(-math.pi, math.pi, allow_nan=False)
            )
            name = draw(st.sampled_from(("rx", "ry", "rz", "p")))
            getattr(circuit, name)(angle, draw(st.integers(0, n - 1)))
        else:
            if n >= 3:
                wires = draw(
                    st.permutations(range(n)).map(lambda p: p[:3])
                )
                circuit.ccx(*wires)
    return circuit


class TestZeroNoiseAgreement:
    @given(random_circuits())
    def test_rho_is_statevector_outer_product(self, circuit):
        state = StatevectorSimulator(fusion=False).run(
            circuit, shots=0
        ).final_state
        rho = DensityMatrix(circuit.num_qubits)
        for gate in circuit.gates:
            rho.apply_gate(gate)
        expected = np.outer(state.data, state.data.conj())
        assert np.max(np.abs(rho.matrix() - expected)) < 1e-10

    @given(random_circuits(max_qubits=3, max_gates=12))
    def test_engine_probabilities_match_statevector(self, circuit):
        circuit.measure_all()
        exact = engines.run("density_matrix", circuit, shots=0)
        state = StatevectorSimulator(fusion=True).run(
            circuit, shots=0
        ).final_state
        assert np.allclose(
            exact.exact_probabilities,
            state.probabilities(),
            atol=1e-10,
        )


class TestMonteCarloAgreement:
    def test_depolarizing_and_readout_within_sampling_tolerance(
        self, fig6_circuit
    ):
        """Exact probabilities sit in the sampler's confidence band."""
        circuit = fig6_circuit
        shots = 8192
        exact = engines.run(
            "density_matrix", circuit, noise=QE5_NOISE, shots=0
        )
        sampled = engines.run(
            "monte_carlo", circuit, noise=QE5_NOISE, shots=shots, seed=20180308
        )
        for outcome in range(16):
            p = exact.probability(outcome)
            estimate = sampled.counts.get(outcome, 0) / shots
            # 5 sigma of the binomial estimator
            sigma = math.sqrt(max(p * (1 - p), 1e-6) / shots)
            assert abs(estimate - p) < 5 * sigma + 1e-9

    def test_pure_depolarizing_single_qubit_closed_form(self):
        """One X + depolarizing p: P(0) = 2p/3 exactly, both tiers."""
        p = 0.3
        model = NoiseModel(p1=p, p2=0.0, p_meas=0.0, p_multi=0.0)
        circuit = QuantumCircuit(1, 1)
        circuit.x(0)
        circuit.measure(0, 0)
        exact = engines.run("density_matrix", circuit, noise=model, shots=0)
        assert exact.probability(0) == pytest.approx(2 * p / 3)
        shots = 20000
        sampled = engines.run(
            "monte_carlo", circuit, noise=model, shots=shots, seed=77
        )
        estimate = sampled.counts.get(0, 0) / shots
        assert estimate == pytest.approx(2 * p / 3, abs=0.02)


class TestFig6Recovery:
    def test_ideal_run_returns_shift_deterministically(self, fig6_circuit):
        result = engines.run("density_matrix", fig6_circuit, shots=0)
        assert result.most_frequent() == 1  # s = 0001
        assert result.probability(1) == pytest.approx(1.0, abs=1e-10)

    def test_qe5_recovery_matches_paper(self, fig6_circuit):
        """Fig. 6: the shift survives with probability ~0.63."""
        result = engines.run(
            "density_matrix", fig6_circuit, noise="qe5", shots=0
        )
        recovery = result.probability(1)
        assert 0.55 < recovery < 0.72
        assert result.most_frequent() == 1
        # deterministic: no shots were sampled, rerunning is exact
        again = engines.run(
            "density_matrix", fig6_circuit, noise="qe5", shots=0
        )
        assert again.probability(1) == recovery

    def test_trace_preserved_under_noise(self, fig6_circuit):
        result = engines.run(
            "density_matrix", fig6_circuit, noise="qe5", shots=0
        )
        assert result.density.trace() == pytest.approx(1.0, abs=1e-9)
        assert result.density.purity() < 1.0

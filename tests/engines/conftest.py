"""Hypothesis profiles + shared circuits for the engine tests.

The CI ``engines`` job runs with ``HYPOTHESIS_PROFILE=ci`` —
derandomized (the seed is fixed by each test's code, so runs are
reproducible) and with a larger example budget.  Local tier-1 runs use
the quicker ``dev`` profile.
"""

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.core.circuit import QuantumCircuit

settings.register_profile(
    "ci",
    max_examples=30,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "dev",
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def fig6_hidden_shift_circuit() -> QuantumCircuit:
    """The paper's Fig. 6 run: 4-qubit hidden shift, s = 1.

    f(x) = x1x2 XOR x3x4 (the Fig. 4 bent function), shifted by
    s = 0001; the Fourier-sandwich circuit returns |s> on an ideal
    device and recovers it with probability ~0.63 under the IBM QE5
    calibration.
    """
    circuit = QuantumCircuit(4, 4, name="hidden-shift-fig6")
    for q in range(4):
        circuit.h(q)
    circuit.x(0)
    circuit.cz(0, 1)
    circuit.cz(2, 3)
    circuit.x(0)
    for q in range(4):
        circuit.h(q)
    circuit.cz(0, 1)
    circuit.cz(2, 3)
    for q in range(4):
        circuit.h(q)
    for q in range(4):
        circuit.measure(q, q)
    return circuit


@pytest.fixture
def fig6_circuit() -> QuantumCircuit:
    return fig6_hidden_shift_circuit()

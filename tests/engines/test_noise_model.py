"""The shared NoiseModel: one home for the rates, spec parsing, shim."""

import importlib
import warnings

import pytest

from repro.engines import noise as engines_noise
from repro.engines import (
    EngineError,
    NOISE_PRESETS,
    NoiseModel,
    QE5_NOISE,
    as_noise_model,
)


class TestNoiseModel:
    def test_qe5_rates_match_paper_calibration(self):
        assert QE5_NOISE.p1 == 0.0015
        assert QE5_NOISE.p2 == 0.035
        assert QE5_NOISE.p_meas == 0.04
        assert QE5_NOISE.p_multi == 0.06
        assert QE5_NOISE.amplitude_damping == 0.0
        assert QE5_NOISE.phase_damping == 0.0

    def test_damping_fields_default_to_zero(self):
        # pre-PR-8 call sites construct the identical model
        assert NoiseModel(p1=0.1, p2=0.2, p_meas=0.3, p_multi=0.4) == \
            NoiseModel(0.1, 0.2, 0.3, 0.4, 0.0, 0.0)

    def test_rates_validated(self):
        with pytest.raises(ValueError, match="p1"):
            NoiseModel(p1=1.5)
        with pytest.raises(ValueError, match="amplitude_damping"):
            NoiseModel(amplitude_damping=-0.1)

    def test_is_noiseless(self):
        assert NoiseModel.noiseless().is_noiseless
        assert not QE5_NOISE.is_noiseless
        assert not NoiseModel(
            p1=0, p2=0, p_meas=0, p_multi=0, phase_damping=0.1
        ).is_noiseless

    def test_scaled_clips_and_covers_damping(self):
        model = NoiseModel(
            p1=0.4, p2=0.6, p_meas=0.0, p_multi=0.0, amplitude_damping=0.3
        )
        doubled = model.scaled(2.0)
        assert doubled.p1 == 0.8
        assert doubled.p2 == 1.0  # clipped
        assert doubled.amplitude_damping == 0.6


class TestAsNoiseModel:
    def test_passthrough(self):
        assert as_noise_model(None) is None
        assert as_noise_model(QE5_NOISE) is QE5_NOISE

    def test_presets_case_insensitive(self):
        assert as_noise_model("qe5") == QE5_NOISE
        assert as_noise_model("QE5") == QE5_NOISE
        assert as_noise_model("ibm_qe_2018") == QE5_NOISE
        assert as_noise_model("none").is_noiseless
        assert set(NOISE_PRESETS) >= {"qe5", "none", "ideal", "noiseless"}

    def test_rate_list(self):
        model = as_noise_model("p1=0.001, p2=0.03")
        assert model.p1 == 0.001
        assert model.p2 == 0.03
        assert model.p_meas == NoiseModel().p_meas  # untouched fields default
        assert as_noise_model("amplitude_damping=0.25").amplitude_damping \
            == 0.25

    def test_duplicate_rate_field_rejected(self):
        # regression: "p1=0.1,p1=0.2" used to silently keep the last
        # value; each field may appear at most once
        with pytest.raises(EngineError, match="duplicate noise rate 'p1'"):
            as_noise_model("p1=0.1,p1=0.2")
        with pytest.raises(EngineError, match="duplicate noise rate"):
            as_noise_model("p_meas=0.01, p2=0.03, p_meas=0.02")

    def test_unknown_preset_lists_presets(self):
        with pytest.raises(EngineError, match="qe5"):
            as_noise_model("chernobyl")

    def test_unknown_rate_field(self):
        with pytest.raises(EngineError, match="unknown noise rate"):
            as_noise_model("p9=0.1")

    def test_malformed_rate_value(self):
        with pytest.raises(EngineError, match="needs a number"):
            as_noise_model("p1=lots")

    def test_out_of_range_rate_wrapped(self):
        with pytest.raises(EngineError, match="not in"):
            as_noise_model("p1=2.0")

    def test_non_string_rejected(self):
        with pytest.raises(EngineError, match="expected a NoiseModel"):
            as_noise_model(0.5)


class TestDeprecationShim:
    """repro.simulator.noise.NoiseModel moved to repro.engines.noise."""

    def test_shim_returns_canonical_class(self):
        import repro.simulator.noise as legacy

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy._DEPRECATED_WARNED = False
            assert legacy.NoiseModel is engines_noise.NoiseModel

    def test_shim_warns_exactly_once(self):
        import repro.simulator.noise as legacy

        legacy._DEPRECATED_WARNED = False
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            getattr(legacy, "NoiseModel")
            getattr(legacy, "NoiseModel")
        relevant = [
            w for w in caught
            if issubclass(w.category, DeprecationWarning)
            and "repro.engines" in str(w.message)
        ]
        assert len(relevant) == 1

    def test_shim_unknown_attribute_still_raises(self):
        import repro.simulator.noise as legacy

        with pytest.raises(AttributeError):
            legacy.NoSuchThing

    def test_simulator_package_reexport_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            import repro.simulator

            importlib.reload(repro.simulator)
            assert repro.simulator.NoiseModel is engines_noise.NoiseModel

    def test_noisy_backend_consumes_shared_model(self):
        from repro.core.circuit import QuantumCircuit
        from repro.simulator.noise import NoisyBackend

        circuit = QuantumCircuit(1, 1)
        circuit.x(0)
        circuit.measure(0, 0)
        backend = NoisyBackend(NoiseModel.noiseless(), seed=11)
        result = backend.run(circuit, shots=64)
        assert result.counts == {1: 64}

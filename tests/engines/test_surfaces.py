"""The four engine-selection surfaces: API, Target, CLI, RevKit shell."""

import pytest

import repro
from repro.__main__ import main
from repro.compiler import Target, targets
from repro.engines import NoiseModel, QE5_NOISE
from repro.engines.density_matrix import DensityMatrixResult
from repro.pipeline.state import PipelineError
from repro.revkit.shell import RevKitShell, ShellError
from repro.simulator.statevector import SimulationResult


class TestTargetEngineField:
    def test_alias_canonicalized_at_construction(self):
        assert Target(name="t", engine="dm").engine == "density_matrix"
        assert Target(name="t", engine="SV").engine == "statevector"

    def test_noise_spec_canonicalized(self):
        target = Target(name="t", noise="qe5")
        assert target.noise == QE5_NOISE
        assert Target(name="t", noise="p1=0.002").noise.p1 == 0.002

    def test_unknown_engine_raises_with_list(self):
        with pytest.raises(PipelineError, match="registered engines"):
            Target(name="t", engine="verilog")

    def test_unknown_noise_raises(self):
        with pytest.raises(PipelineError, match="presets"):
            Target(name="t", noise="chernobyl")

    def test_with_revalidates(self):
        target = Target(name="t")
        assert target.with_(engine="rho").engine == "density_matrix"
        with pytest.raises(PipelineError, match="registered engines"):
            target.with_(engine="nope")

    def test_ibm_qe5_preset_defaults(self):
        assert targets.IBM_QE5.engine == "density_matrix"
        assert targets.IBM_QE5.noise == QE5_NOISE

    def test_other_presets_have_no_engine_default(self):
        assert targets.CLIFFORD_T.engine is None
        assert targets.CLIFFORD_T.noise is None


class TestSimulatePrecedence:
    def test_default_engine_is_statevector(self, paper_pi):
        result = repro.compile(paper_pi, target="clifford_t", cache=None)
        sim = result.simulate(shots=32, seed=1)
        assert type(sim) is SimulationResult

    def test_target_engine_applies(self, paper_pi):
        result = repro.compile(paper_pi, target="ibm_qe5", cache=None)
        sim = result.simulate(shots=32, seed=1)
        assert isinstance(sim, DensityMatrixResult)

    def test_compile_engine_overrides_target(self, paper_pi):
        result = repro.compile(
            paper_pi, target="ibm_qe5", engine="sv", cache=None
        )
        assert result.engine == "statevector"
        sim = result.simulate(shots=32, seed=1)
        assert type(sim) is SimulationResult

    def test_argument_overrides_everything(self, paper_pi):
        result = repro.compile(
            paper_pi, target="ibm_qe5", engine="sv", cache=None
        )
        sim = result.simulate(engine="dm", shots=32, seed=1)
        assert isinstance(sim, DensityMatrixResult)

    def test_target_noise_applied_by_noise_capable_engine(self, paper_pi):
        result = repro.compile(paper_pi, target="ibm_qe5", cache=None)
        noisy = result.simulate(shots=0)
        ideal = result.simulate(shots=0, noise="none")
        best = noisy.most_frequent()
        assert noisy.probability(best) < ideal.probability(best)

    def test_target_noise_silently_skipped_for_noiseless_engine(
        self, paper_pi
    ):
        # engine="sv" on a noisy target must not raise: the target's
        # noise is a soft default, not a demand
        result = repro.compile(
            paper_pi, target="ibm_qe5", engine="sv", cache=None
        )
        sim = result.simulate(shots=16, seed=2)
        assert sum(sim.counts.values()) == 16

    def test_explicit_noise_on_noiseless_engine_still_raises(
        self, paper_pi
    ):
        result = repro.compile(
            paper_pi, target="ibm_qe5", engine="sv", cache=None
        )
        with pytest.raises(repro.engines.EngineError, match="density_matrix"):
            result.simulate(noise="qe5")

    def test_unknown_engine_at_compile_time(self, paper_pi):
        with pytest.raises(PipelineError, match="registered engines"):
            repro.compile(paper_pi, engine="nope", cache=None)

    def test_measureless_circuit_gets_measure_all_copy(self, paper_pi):
        result = repro.compile(paper_pi, target="clifford_t", cache=None)
        assert not result.circuit.has_measurements()
        sim = result.simulate(shots=16, seed=0)
        assert sum(sim.counts.values()) == 16
        # the stored circuit was not mutated
        assert not result.circuit.has_measurements()

    def test_reversible_target_cannot_simulate(self, paper_pi):
        result = repro.compile(paper_pi, target="toffoli", cache=None)
        assert result.circuit is None
        with pytest.raises(PipelineError, match="no quantum circuit"):
            result.simulate()


class TestCLI:
    def test_engines_subcommand_lists_builtins(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "density_matrix" in out
        assert "aka dm/rho" in out

    def test_engines_names_flag(self, capsys):
        assert main(["engines", "--names"]) == 0
        names = capsys.readouterr().out.split()
        assert names == [
            "statevector", "stabilizer", "density_matrix", "monte_carlo",
        ]

    def test_compile_simulate_prints_counts_table(self, capsys):
        code = main(
            [
                "compile", "x1 & x2", "--target", "ibm_qe5",
                "--shots", "512", "--seed", "7",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "exact=" in out  # density-matrix runs show exact column

    def test_compile_engine_flag(self, capsys):
        code = main(
            [
                "compile", "x1 & x2", "--engine", "sv",
                "--simulate", "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "exact=" not in out  # statevector has no exact column

    def test_compile_unknown_engine_fails_cleanly(self, capsys):
        code = main(["compile", "x1 & x2", "--engine", "bogus"])
        assert code == 2
        assert "registered engines" in capsys.readouterr().err

    def test_compile_bad_noise_fails_cleanly(self, capsys):
        code = main(
            ["compile", "x1 & x2", "--simulate", "--noise", "chernobyl"]
        )
        assert code == 2
        assert "presets" in capsys.readouterr().err


class TestShell:
    @pytest.fixture
    def shell(self):
        sh = RevKitShell()
        sh.run("revgen --hwb 3; tbs; rptm")
        return sh

    def test_sim_statevector(self, shell):
        out = shell.execute("sim_statevector --seed 5")
        assert out.startswith("statevector (1024 shots)")
        assert "|000> 1.000" in out

    def test_sim_alias_and_noise_options(self, shell):
        out = shell.execute("sim_dm --noise qe5 --shots 2048 --seed 7")
        assert out.startswith("density_matrix (2048 shots)")

    def test_python_method_form(self, shell):
        out = shell.sim("monte_carlo", shots=128, noise="qe5", seed=2)
        assert out.startswith("monte_carlo (128 shots)")

    def test_unknown_engine(self, shell):
        with pytest.raises(ShellError, match="registered engines"):
            shell.execute("sim_bogus")

    def test_unknown_option(self, shell):
        with pytest.raises(ShellError, match="unknown options"):
            shell.execute("sim_dm --frobnicate 1")

    def test_backend_refusal_becomes_shell_error(self, shell):
        # the hwb3 mapped circuit carries T gates
        with pytest.raises(ShellError, match="not Clifford"):
            shell.execute("sim_stabilizer")

    def test_needs_quantum_circuit(self):
        sh = RevKitShell()
        with pytest.raises(ShellError, match="no quantum circuit"):
            sh.execute("sim_statevector")

"""Golden tests: registry adapters are identical to the direct paths.

The statevector/stabilizer/Monte-Carlo engines are adapters over the
pre-existing simulators; for a fixed seed their output must be
*identical* to calling those simulators directly — the registry adds
dispatch, never behavior.
"""

import pytest

from repro import engines
from repro.core.circuit import QuantumCircuit
from repro.engines import NoiseModel
from repro.simulator.noise import NoisyBackend
from repro.simulator.stabilizer import StabilizerError, StabilizerSimulator
from repro.simulator.statevector import StatevectorSimulator


def _universal_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(3, 3)
    circuit.h(0)
    circuit.t(1)
    circuit.cx(0, 1)
    circuit.rx(0.3, 2)
    circuit.ccx(0, 1, 2)
    circuit.measure(0, 0)
    circuit.measure(1, 1)
    circuit.measure(2, 2)
    return circuit


def _clifford_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(3, 3)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.s(2)
    circuit.cz(1, 2)
    circuit.measure(0, 0)
    circuit.measure(1, 1)
    circuit.measure(2, 2)
    return circuit


class TestStatevectorAdapter:
    def test_counts_identical_to_direct_path(self):
        circuit = _universal_circuit()
        for seed in (0, 7, 12345):
            direct = StatevectorSimulator(seed=seed).run(circuit, shots=256)
            via = engines.run("statevector", circuit, shots=256, seed=seed)
            assert via.counts == direct.counts
            assert via.num_clbits == direct.num_clbits
            assert via.shots == direct.shots

    def test_fusion_opt_forwarded(self):
        circuit = _universal_circuit()
        direct = StatevectorSimulator(seed=3, fusion=False).run(
            circuit, shots=64
        )
        via = engines.run(
            "statevector", circuit, shots=64, seed=3, fusion=False
        )
        assert via.counts == direct.counts

    def test_noise_rejected_with_alternatives(self):
        with pytest.raises(engines.EngineError, match="density_matrix"):
            engines.run(
                "statevector", _universal_circuit(), noise="qe5"
            )

    def test_noiseless_model_accepted(self):
        result = engines.run(
            "statevector", _universal_circuit(), shots=8, seed=1,
            noise="none",
        )
        assert sum(result.counts.values()) == 8

    def test_unknown_opt_rejected(self):
        with pytest.raises(engines.EngineError, match="unknown option"):
            engines.run("statevector", _universal_circuit(), frobnicate=1)


class TestStabilizerAdapter:
    def test_counts_identical_to_direct_path(self):
        circuit = _clifford_circuit()
        for seed in (0, 11, 999):
            direct = StabilizerSimulator(seed=seed).run(circuit, shots=128)
            via = engines.run("stabilizer", circuit, shots=128, seed=seed)
            assert via.counts == direct
            assert via.num_clbits == 3

    def test_non_clifford_error_propagates(self):
        circuit = QuantumCircuit(1, 1)
        circuit.t(0)
        circuit.measure(0, 0)
        with pytest.raises(StabilizerError, match="not Clifford"):
            engines.run("stabilizer", circuit, shots=1)

    def test_noise_rejected(self):
        with pytest.raises(engines.EngineError, match="does not support"):
            engines.run("stabilizer", _clifford_circuit(), noise="qe5")


class TestMonteCarloAdapter:
    def test_counts_identical_to_direct_path(self):
        # batched=False pins the historical per-shot loop and its RNG
        # stream (the default now routes through run_batched)
        circuit = _universal_circuit()
        model = NoiseModel.ibm_qe_2018()
        for seed in (0, 42):
            direct = NoisyBackend(model, seed=seed).run(circuit, shots=200)
            via = engines.run(
                "monte_carlo", circuit, shots=200, noise=model, seed=seed,
                batched=False,
            )
            assert via.counts == direct.counts

    def test_default_routes_through_batched_sweep(self):
        # trajectory-safe model within the memory guard: the default
        # (batched=None) must reproduce the batched sweep's stream
        circuit = _universal_circuit()
        model = NoiseModel.ibm_qe_2018()
        for seed in (0, 42):
            batched = NoisyBackend(model, seed=seed).run_batched(
                circuit, shots=200
            )
            via = engines.run(
                "monte_carlo", circuit, shots=200, noise=model, seed=seed
            )
            assert via.counts == batched.counts

    def test_memory_guard_falls_back_to_loop(self):
        # an oversized shots x 2**n batch must fall back to the
        # per-shot loop without the caller asking
        circuit = _universal_circuit()
        model = NoiseModel.ibm_qe_2018()
        engine = engines.get("monte_carlo")
        guard = engine.max_batch_bytes
        try:
            engine.max_batch_bytes = 0
            via = engines.run(
                "monte_carlo", circuit, shots=50, noise=model, seed=7
            )
        finally:
            engine.max_batch_bytes = guard
        direct = NoisyBackend(model, seed=7).run(circuit, shots=50)
        assert via.counts == direct.counts

    def test_none_noise_means_noiseless(self):
        # unlike raw NoisyBackend (which defaults to QE5), the engine
        # treats noise=None as the all-zero model for cross-engine
        # consistency
        circuit = QuantumCircuit(1, 1)
        circuit.x(0)
        circuit.measure(0, 0)
        result = engines.run("monte_carlo", circuit, shots=128, seed=0)
        assert result.counts == {1: 128}

    def test_damping_rates_need_exact_engine(self):
        model = NoiseModel(amplitude_damping=0.1)
        with pytest.raises(engines.EngineError, match="density_matrix"):
            engines.run("monte_carlo", _universal_circuit(), noise=model)

"""Property-based tests (hypothesis) on core invariants.

These encode the paper's correctness obligations as universally
quantified properties: synthesis realizes its specification, mapping
and optimization preserve semantics, oracles are diagonal, duals
invert, Compute/Uncompute restores state.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.boolean.bent import HiddenShiftInstance, MaioranaMcFarland
from repro.boolean.cube import esop_to_truth_table
from repro.boolean.esop import exorcism, minimize_esop, minterm_cover, pprm
from repro.boolean.permutation import BitPermutation
from repro.boolean.spectral import dual_bent, is_bent, walsh_spectrum
from repro.boolean.truth_table import TruthTable
from repro.core.circuit import QuantumCircuit
from repro.core.unitary import circuit_unitary, circuits_equivalent
from repro.optimization.simplify import (
    cancel_adjacent_gates,
    simplify_reversible,
)
from repro.optimization.tpar import tpar_optimize
from repro.synthesis.decomposition import decomposition_based_synthesis
from repro.synthesis.esop_based import esop_synthesis, verify_esop_circuit
from repro.synthesis.reversible import MctGate, ReversibleCircuit
from repro.synthesis.transformation import (
    bidirectional_synthesis,
    transformation_based_synthesis,
)

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
def truth_tables(max_vars=5):
    return st.integers(1, max_vars).flatmap(
        lambda n: st.builds(
            TruthTable, st.just(n), st.integers(0, (1 << (1 << n)) - 1)
        )
    )


def permutations(max_bits=4):
    return st.integers(1, max_bits).flatmap(
        lambda n: st.permutations(list(range(1 << n))).map(BitPermutation)
    )


def mct_circuits(num_lines=3, max_gates=12):
    gate = st.tuples(
        st.integers(0, num_lines - 1),
        st.lists(
            st.integers(0, num_lines - 1), unique=True, max_size=num_lines - 1
        ),
        st.randoms(),
    ).map(_build_gate)
    return st.lists(gate, max_size=max_gates).map(
        lambda gates: _build_circuit(num_lines, gates)
    )


def _build_gate(args):
    target, controls, rnd = args
    controls = tuple(c for c in controls if c != target)
    polarity = tuple(rnd.random() < 0.7 for _ in controls)
    return MctGate(target, controls, polarity)


def _build_circuit(num_lines, gates):
    circuit = ReversibleCircuit(num_lines)
    circuit.extend(gates)
    return circuit


def clifford_t_circuits(num_qubits=3, max_gates=30):
    def build(choices):
        circuit = QuantumCircuit(num_qubits)
        for kind, a, b in choices:
            if kind == "cx" and a != b:
                circuit.cx(a, b)
            elif kind == "cz" and a != b:
                circuit.cz(a, b)
            elif kind not in ("cx", "cz"):
                getattr(circuit, kind)(a)
        return circuit

    gate = st.tuples(
        st.sampled_from(
            ["h", "x", "z", "s", "sdg", "t", "tdg", "cx", "cz"]
        ),
        st.integers(0, num_qubits - 1),
        st.integers(0, num_qubits - 1),
    )
    return st.lists(gate, max_size=max_gates).map(build)


# ----------------------------------------------------------------------
# ESOP properties
# ----------------------------------------------------------------------
@given(truth_tables())
@settings(max_examples=60, deadline=None)
def test_pprm_cover_exact(table):
    assert esop_to_truth_table(pprm(table), table.num_vars) == table


@given(truth_tables())
@settings(max_examples=40, deadline=None)
def test_minimize_esop_cover_exact(table):
    cubes = minimize_esop(table)
    assert esop_to_truth_table(cubes, table.num_vars) == table


@given(truth_tables(max_vars=4))
@settings(max_examples=40, deadline=None)
def test_exorcism_never_increases_cost(table):
    minterms = minterm_cover(table)
    reduced = exorcism(minterms)
    assert len(reduced) <= len(minterms)
    assert esop_to_truth_table(reduced, table.num_vars) == table


# ----------------------------------------------------------------------
# synthesis properties
# ----------------------------------------------------------------------
@given(permutations())
@settings(max_examples=40, deadline=None)
def test_tbs_realizes_specification(perm):
    assert transformation_based_synthesis(perm).permutation() == perm


@given(permutations())
@settings(max_examples=40, deadline=None)
def test_bidirectional_realizes_specification(perm):
    assert bidirectional_synthesis(perm).permutation() == perm


@given(permutations())
@settings(max_examples=25, deadline=None)
def test_dbs_realizes_specification(perm):
    assert decomposition_based_synthesis(perm).permutation() == perm


@given(truth_tables(max_vars=4))
@settings(max_examples=25, deadline=None)
def test_esop_synthesis_is_bennett_oracle(table):
    circuit = esop_synthesis(table)
    assert verify_esop_circuit(circuit, table)


@given(mct_circuits())
@settings(max_examples=50, deadline=None)
def test_reversible_dagger_is_inverse(circuit):
    composed = circuit.copy()
    composed.compose(circuit.dagger())
    assert composed.permutation().is_identity()


@given(mct_circuits())
@settings(max_examples=50, deadline=None)
def test_revsimp_preserves_permutation(circuit):
    simplified = simplify_reversible(circuit)
    assert simplified.permutation() == circuit.permutation()
    assert len(simplified) <= len(circuit)


# ----------------------------------------------------------------------
# spectral properties
# ----------------------------------------------------------------------
@given(truth_tables(max_vars=4))
@settings(max_examples=50, deadline=None)
def test_parseval_identity(table):
    spectrum = walsh_spectrum(table).astype(object)
    assert int(np.sum(spectrum ** 2)) == table.size ** 2


@given(st.integers(1, 2).flatmap(
    lambda n: st.tuples(
        st.permutations(list(range(1 << n))),
        st.integers(0, (1 << (1 << n)) - 1),
        st.just(n),
    )
))
@settings(max_examples=30, deadline=None)
def test_mm_construction_always_bent(args):
    image, h_bits, n = args
    mm = MaioranaMcFarland(BitPermutation(list(image)), TruthTable(n, h_bits))
    table = mm.truth_table()
    assert is_bent(table)
    assert mm.dual().truth_table() == dual_bent(table)
    assert dual_bent(dual_bent(table)) == table


# ----------------------------------------------------------------------
# quantum circuit properties
# ----------------------------------------------------------------------
@given(clifford_t_circuits())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.data_too_large],
)
def test_cancellation_preserves_unitary(circuit):
    out = cancel_adjacent_gates(circuit)
    assert circuits_equivalent(circuit, out)


@given(clifford_t_circuits())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.data_too_large],
)
def test_tpar_preserves_unitary_and_t(circuit):
    out = tpar_optimize(circuit)
    assert circuits_equivalent(circuit, out)
    assert out.t_count() <= circuit.t_count()


@given(clifford_t_circuits(num_qubits=2, max_gates=15))
@settings(max_examples=30, deadline=None)
def test_circuit_dagger_unitary_inverse(circuit):
    unitary = circuit_unitary(circuit)
    inverse = circuit_unitary(circuit.dagger())
    assert np.allclose(unitary @ inverse, np.eye(4), atol=1e-9)


# ----------------------------------------------------------------------
# algorithm-level property: hidden shift always succeeds
# ----------------------------------------------------------------------
@given(
    st.permutations([0, 1, 2, 3]),
    st.integers(0, 15),
    st.integers(0, 15),
)
@settings(max_examples=25, deadline=None)
def test_hidden_shift_always_deterministic(image, h_bits, shift):
    from repro.algorithms.hidden_shift import solve_hidden_shift

    mm = MaioranaMcFarland(
        BitPermutation(list(image)), TruthTable(2, h_bits)
    )
    instance = HiddenShiftInstance(mm, shift)
    result = solve_hidden_shift(instance)
    assert result.success
    assert abs(result.probability - 1.0) < 1e-9

"""Property-based tests for routing, linear synthesis, templates, arith."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import constant_adder, cuccaro_adder, modular_constant_adder
from repro.core.circuit import QuantumCircuit
from repro.mapping.routing import CouplingMap, route_circuit, verify_routing
from repro.optimization.templates import template_optimize
from repro.synthesis.linear import (
    Gf2Matrix,
    cnot_circuit_to_matrix,
    gaussian_synthesis,
    pmh_synthesis,
)
from repro.synthesis.reversible import MctGate, ReversibleCircuit


# ----------------------------------------------------------------------
# linear synthesis: round trip over random invertible matrices
# ----------------------------------------------------------------------
@given(st.integers(1, 7), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_linear_synthesis_round_trip(size, seed):
    matrix = Gf2Matrix.random_invertible(size, seed=seed)
    for synthesize in (gaussian_synthesis, pmh_synthesis):
        circuit = synthesize(matrix)
        assert cnot_circuit_to_matrix(circuit) == matrix


@given(st.integers(1, 6), st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_linear_inverse_is_matrix_inverse(size, seed):
    matrix = Gf2Matrix.random_invertible(size, seed=seed)
    circuit = gaussian_synthesis(matrix)
    inverse_matrix = cnot_circuit_to_matrix(circuit.dagger())
    assert matrix.multiply(inverse_matrix).is_identity()


# ----------------------------------------------------------------------
# routing: two-qubit legality + semantics on random circuits
# ----------------------------------------------------------------------
def _circuit_from_plan(num_qubits, plan):
    circuit = QuantumCircuit(num_qubits)
    for kind, a, b in plan:
        if kind == "cx" and a != b:
            circuit.cx(a, b)
        elif kind == "cz" and a != b:
            circuit.cz(a, b)
        elif kind not in ("cx", "cz"):
            getattr(circuit, kind)(a)
    return circuit


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["h", "t", "x", "cx", "cz"]),
            st.integers(0, 3),
            st.integers(0, 3),
        ),
        max_size=15,
    ),
    st.sampled_from(["line", "ring", "qx2"]),
)
@settings(max_examples=30, deadline=None)
def test_routing_properties(plan, topology):
    circuit = _circuit_from_plan(4, plan)
    coupling = {
        "line": CouplingMap.line(5),
        "ring": CouplingMap.ring(5),
        "qx2": CouplingMap.ibm_qx2(),
    }[topology]
    result = route_circuit(circuit, coupling)
    for gate in result.circuit.gates:
        if gate.is_unitary and gate.num_qubits == 2:
            assert coupling.connected(*gate.qubits)
    assert verify_routing(circuit, result)


# ----------------------------------------------------------------------
# template optimization: never breaks semantics, never grows
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.integers(0, 3),
            st.lists(st.integers(0, 3), unique=True, max_size=3),
            st.randoms(use_true_random=False),
        ),
        max_size=14,
    )
)
@settings(max_examples=40, deadline=None)
def test_template_optimize_properties(gate_plan):
    circuit = ReversibleCircuit(4)
    for target, controls, rnd in gate_plan:
        controls = tuple(c for c in controls if c != target)
        polarity = tuple(rnd.random() < 0.6 for _ in controls)
        circuit.append(MctGate(target, controls, polarity))
    optimized = template_optimize(circuit)
    assert optimized.permutation() == circuit.permutation()
    assert len(optimized) <= len(circuit)


# ----------------------------------------------------------------------
# arithmetic: adders agree with integer arithmetic
# ----------------------------------------------------------------------
@given(st.integers(1, 3), st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_cuccaro_is_integer_addition(num_bits, salt):
    perm = cuccaro_adder(num_bits).permutation()
    mask = (1 << num_bits) - 1
    a = salt % (1 << num_bits)
    for b in range(1 << num_bits):
        out = perm(a | (b << num_bits))
        assert (out >> num_bits) & mask == (a + b) & mask
        assert out & mask == a


@given(st.integers(1, 4), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_constant_adder_group_law(num_bits, constant):
    size = 1 << num_bits
    forward = constant_adder(num_bits, constant % size).permutation()
    backward = constant_adder(num_bits, (-constant) % size).permutation()
    assert forward.compose(backward).is_identity()


@given(st.integers(2, 4), st.integers(1, 15), st.integers(0, 20))
@settings(max_examples=25, deadline=None)
def test_modular_adder_in_range(num_bits, modulus, constant):
    modulus = modulus % ((1 << num_bits)) or 1
    perm = modular_constant_adder(
        num_bits, constant % modulus, modulus
    ).permutation()
    for x in range(modulus):
        out = perm(x)
        assert out & ((1 << num_bits) - 1) == (x + constant) % modulus
        assert (out >> num_bits) & 1 == 0

"""Unit tests for template-based MCT optimization."""

import random

import pytest

from repro.boolean.permutation import BitPermutation
from repro.optimization.templates import (
    _merge_pair,
    optimization_ladder,
    template_optimize,
)
from repro.synthesis.reversible import MctGate, ReversibleCircuit
from repro.synthesis.transformation import transformation_based_synthesis


class TestMergePair:
    def test_control_merge_rule(self):
        # T({c0, c1}, t) . T({c0}, t) = T({c0, !c1}, t)
        wide = MctGate(2, (0, 1), (True, True))
        narrow = MctGate(2, (0,), (True,))
        merged = _merge_pair(wide, narrow)
        assert merged == MctGate(2, (0, 1), (True, False))

    def test_control_merge_rule_symmetric(self):
        wide = MctGate(2, (0, 1), (True, True))
        narrow = MctGate(2, (0,), (True,))
        assert _merge_pair(narrow, wide) == _merge_pair(wide, narrow)

    def test_polarity_rule(self):
        a = MctGate(2, (0, 1), (True, True))
        b = MctGate(2, (0, 1), (True, False))
        merged = _merge_pair(a, b)
        assert merged == MctGate(2, (0,), (True,))

    def test_polarity_rule_to_not(self):
        a = MctGate(1, (0,), (True,))
        b = MctGate(1, (0,), (False,))
        assert _merge_pair(a, b) == MctGate(1)

    def test_different_targets_never_merge(self):
        assert _merge_pair(MctGate(0, (1,)), MctGate(1, (0,))) is None

    def test_mismatched_shared_polarity_rejected(self):
        wide = MctGate(2, (0, 1), (False, True))
        narrow = MctGate(2, (0,), (True,))
        assert _merge_pair(wide, narrow) is None

    def test_two_control_difference_rejected(self):
        wide = MctGate(3, (0, 1, 2))
        narrow = MctGate(3, (0,))
        assert _merge_pair(wide, narrow) is None

    @pytest.mark.parametrize("seed", range(15))
    def test_merge_preserves_semantics(self, seed):
        """Whenever a merge fires, the merged gate equals the pair."""
        rng = random.Random(seed)
        n = 4
        target = rng.randrange(n)
        others = [l for l in range(n) if l != target]
        ca = tuple(rng.sample(others, rng.randint(0, 3)))
        cb = tuple(rng.sample(others, rng.randint(0, 3)))
        a = MctGate(target, ca, tuple(rng.random() < 0.5 for _ in ca))
        b = MctGate(target, cb, tuple(rng.random() < 0.5 for _ in cb))
        merged = _merge_pair(a, b)
        if merged is None:
            return
        for x in range(1 << n):
            assert merged.apply(x) == a.apply(b.apply(x))


class TestTemplateOptimize:
    def test_merges_adjacent_pair(self):
        circ = ReversibleCircuit(3)
        circ.add_gate(2, (0, 1))
        circ.add_gate(2, (0,))
        out = template_optimize(circ)
        assert len(out) == 1
        assert out.permutation() == circ.permutation()

    def test_merge_through_commuting_gate(self):
        circ = ReversibleCircuit(4)
        circ.add_gate(2, (0, 1))
        circ.x(3)  # disjoint
        circ.add_gate(2, (0,))
        out = template_optimize(circ)
        assert len(out) == 2
        assert out.permutation() == circ.permutation()

    def test_cascaded_rules(self):
        # two merges then a cancellation
        circ = ReversibleCircuit(3)
        circ.add_gate(2, (0, 1), (True, True))
        circ.add_gate(2, (0, 1), (True, False))  # -> T({0})
        circ.add_gate(2, (0,))                   # cancels
        out = template_optimize(circ)
        assert len(out) == 0

    @pytest.mark.parametrize("seed", range(25))
    def test_random_circuits_semantics(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 4)
        circ = ReversibleCircuit(n)
        for _ in range(18):
            target = rng.randrange(n)
            others = [l for l in range(n) if l != target]
            k = rng.randint(0, min(2, len(others)))
            controls = tuple(rng.sample(others, k))
            circ.add_gate(
                target, controls,
                tuple(rng.random() < 0.6 for _ in controls),
            )
        out = template_optimize(circ)
        assert out.permutation() == circ.permutation()
        assert len(out) <= len(circ)

    @pytest.mark.parametrize("seed", range(8))
    def test_on_synthesis_output(self, seed):
        perm = BitPermutation.random(4, seed=seed)
        circ = transformation_based_synthesis(perm)
        out = template_optimize(circ)
        assert out.permutation() == perm
        assert len(out) <= len(circ)

    def test_ladder_reports_monotone_counts(self):
        perm = BitPermutation.hidden_weighted_bit(4)
        circ = transformation_based_synthesis(perm)
        # pad with a cancellable pair to exercise every stage
        circ.toffoli(0, 1, 2)
        circ.toffoli(0, 1, 2)
        stages = optimization_ladder(circ)
        counts = [count for _name, count in stages]
        assert counts[0] >= counts[1] >= counts[2]

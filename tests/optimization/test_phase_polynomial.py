"""Unit tests for phase-polynomial analysis and folding."""

import math
import random

import pytest

from repro.core.circuit import QuantumCircuit
from repro.core.gates import Gate
from repro.core.unitary import circuits_equivalent
from repro.optimization.phase_polynomial import (
    PhaseRegion,
    fold_region,
    greedy_t_layers,
    is_region_gate,
)


def region_of(circuit):
    return PhaseRegion(circuit.num_qubits, list(circuit.gates))


class TestPhaseRegionAnalysis:
    def test_single_t(self):
        circ = QuantumCircuit(1).t(0)
        region = region_of(circ)
        assert region.t_count() == 1
        terms = region.nontrivial_terms()
        assert len(terms) == 1
        assert terms[0].mask == 0b1
        assert terms[0].steps == 1

    def test_t_t_merges_to_s(self):
        circ = QuantumCircuit(1).t(0).t(0)
        region = region_of(circ)
        assert region.t_count() == 0  # steps=2 is S, no T needed
        assert region.nontrivial_terms()[0].steps == 2

    def test_t_tdg_cancels(self):
        circ = QuantumCircuit(1).t(0).tdg(0)
        region = region_of(circ)
        assert region.nontrivial_terms() == []

    def test_parity_tracking_through_cnot(self):
        # T on (x0 ^ x1) via CNOT conjugation
        circ = QuantumCircuit(2).cx(0, 1).t(1).cx(0, 1)
        region = region_of(circ)
        terms = region.nontrivial_terms()
        assert len(terms) == 1
        assert terms[0].mask == 0b11

    def test_same_parity_different_wires_merge(self):
        # t(q1) after cx gives parity x0^x1; building the same parity
        # again later merges
        circ = QuantumCircuit(2)
        circ.cx(0, 1).t(1).cx(0, 1)
        circ.cx(0, 1).t(1).cx(0, 1)
        region = region_of(circ)
        assert region.t_count() == 0  # merged into S on x0^x1
        assert region.nontrivial_terms()[0].steps == 2

    def test_x_flips_phase_sign(self):
        # X t X = phase on NOT(x): records as -1 steps (= 7 mod 8)
        circ = QuantumCircuit(1).x(0).t(0).x(0)
        region = region_of(circ)
        terms = region.nontrivial_terms()
        assert terms[0].steps == 7

    def test_swap_tracking(self):
        circ = QuantumCircuit(2).swap(0, 1).t(0)
        region = region_of(circ)
        assert region.nontrivial_terms()[0].mask == 0b10

    def test_rz_accumulates_angle(self):
        circ = QuantumCircuit(1).rz(0.3, 0).rz(0.2, 0)
        region = region_of(circ)
        assert region.nontrivial_terms()[0].angle == pytest.approx(0.5)

    def test_region_gate_predicate(self):
        assert is_region_gate(Gate("cx", (1,), (0,)))
        assert is_region_gate(Gate("t", (0,)))
        assert is_region_gate(Gate("rz", (0,), params=(0.1,)))
        assert not is_region_gate(Gate("h", (0,)))
        assert not is_region_gate(Gate("ccx", (2,), (0, 1)))


class TestFoldRegion:
    def check_fold(self, circ):
        folded_gates = fold_region(circ.num_qubits, list(circ.gates))
        folded = QuantumCircuit(circ.num_qubits)
        folded.extend(folded_gates)
        assert circuits_equivalent(circ, folded), "folding broke unitary"
        return folded

    def test_merge_reduces_t(self):
        circ = QuantumCircuit(2)
        circ.cx(0, 1).t(1).cx(0, 1)
        circ.cx(0, 1).t(1).cx(0, 1)
        folded = self.check_fold(circ)
        assert folded.t_count() == 0
        assert folded.count_ops().get("s", 0) == 1

    def test_fold_preserves_linear_part(self):
        circ = QuantumCircuit(3)
        circ.cx(0, 1).cx(1, 2).t(2).x(0).cx(0, 2)
        folded = self.check_fold(circ)
        assert folded.count_ops()["cx"] == 3

    @pytest.mark.parametrize("seed", range(20))
    def test_random_regions_fold_correctly(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 4)
        circ = QuantumCircuit(n)
        for _ in range(25):
            r = rng.random()
            if r < 0.4 and n >= 2:
                a, b = rng.sample(range(n), 2)
                circ.cx(a, b)
            elif r < 0.5:
                circ.x(rng.randrange(n))
            elif r < 0.6 and n >= 2:
                a, b = rng.sample(range(n), 2)
                circ.swap(a, b)
            elif r < 0.9:
                getattr(circ, rng.choice(["t", "tdg", "s", "sdg", "z"]))(
                    rng.randrange(n)
                )
            else:
                circ.rz(rng.uniform(-1, 1), rng.randrange(n))
        folded = self.check_fold(circ)
        assert folded.t_count() <= circ.t_count()

    def test_steps_emitted_canonically(self):
        # 3 T gates on the same wire = S then T
        circ = QuantumCircuit(1).t(0).t(0).t(0)
        folded = self.check_fold(circ)
        names = sorted(g.name for g in folded)
        assert names == ["s", "t"]

    def test_negative_parity_emission(self):
        circ = QuantumCircuit(1).x(0).t(0).x(0)
        folded = self.check_fold(circ)
        # phase stays attached to the negated interval; unitary equal
        assert folded.t_count() <= 1


class TestGreedyTLayers:
    def test_independent_masks_share_layer(self):
        layers = greedy_t_layers([0b01, 0b10, 0b11], 2)
        # 0b11 depends on the first two: needs its own layer
        assert len(layers) == 2

    def test_duplicate_masks_need_new_layers(self):
        layers = greedy_t_layers([0b01, 0b01, 0b01], 2)
        assert len(layers) == 3

    def test_layer_count_bounded_by_terms(self):
        masks = [0b001, 0b010, 0b100, 0b111, 0b011]
        layers = greedy_t_layers(masks, 3)
        assert 1 <= len(layers) <= len(masks)
        assert sum(len(l) for l in layers) == len(masks)

"""Unit tests for circuit simplification (revsimp + gate cancellation)."""

import random

import pytest

from repro.boolean.permutation import BitPermutation
from repro.core.circuit import QuantumCircuit
from repro.core.unitary import circuits_equivalent
from repro.optimization.simplify import (
    cancel_adjacent_gates,
    simplify_reversible,
)
from repro.synthesis.reversible import MctGate, ReversibleCircuit
from repro.synthesis.transformation import transformation_based_synthesis

from _helpers import random_clifford_t_circuit


class TestReversibleSimplify:
    def test_adjacent_pair_cancels(self):
        circ = ReversibleCircuit(3)
        circ.toffoli(0, 1, 2).toffoli(0, 1, 2)
        assert len(simplify_reversible(circ)) == 0

    def test_pair_through_commuting_gate(self):
        circ = ReversibleCircuit(3)
        circ.toffoli(0, 1, 2)
        circ.cnot(0, 1)  # shares target with nothing of the toffoli? no:
        # cnot target 1 is a control of the toffoli -> does NOT commute
        circ.toffoli(0, 1, 2)
        # must NOT cancel through a non-commuting gate
        assert len(simplify_reversible(circ)) == 3

    def test_pair_through_disjoint_gate(self):
        circ = ReversibleCircuit(4)
        circ.toffoli(0, 1, 2)
        circ.x(3)
        circ.toffoli(0, 1, 2)
        simplified = simplify_reversible(circ)
        assert len(simplified) == 1
        assert simplified.gates[0] == MctGate(3)

    def test_same_target_gates_commute(self):
        circ = ReversibleCircuit(3)
        circ.cnot(0, 2)
        circ.cnot(1, 2)
        circ.cnot(0, 2)
        simplified = simplify_reversible(circ)
        assert len(simplified) == 1

    def test_not_absorption_flips_polarity(self):
        circ = ReversibleCircuit(2)
        circ.x(0)
        circ.cnot(0, 1)
        circ.x(0)
        simplified = simplify_reversible(circ)
        assert len(simplified) == 1
        gate = simplified.gates[0]
        assert gate.polarity == (False,)
        assert simplified.permutation() == circ.permutation()

    @pytest.mark.parametrize("seed", range(20))
    def test_semantics_preserved(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 4)
        circ = ReversibleCircuit(n)
        for _ in range(15):
            target = rng.randrange(n)
            others = [l for l in range(n) if l != target]
            k = rng.randint(0, min(2, len(others)))
            controls = tuple(rng.sample(others, k))
            polarity = tuple(rng.random() < 0.7 for _ in controls)
            circ.add_gate(target, controls, polarity)
        simplified = simplify_reversible(circ)
        assert simplified.permutation() == circ.permutation()
        assert len(simplified) <= len(circ)

    def test_synthesis_output_shrinks_or_stays(self):
        perm = BitPermutation.hidden_weighted_bit(4)
        circ = transformation_based_synthesis(perm)
        simplified = simplify_reversible(circ)
        assert simplified.permutation() == perm
        assert len(simplified) <= len(circ)


class TestQuantumCancellation:
    def test_self_inverse_pair(self):
        circ = QuantumCircuit(1).h(0).h(0)
        assert len(cancel_adjacent_gates(circ)) == 0

    def test_adjoint_pair(self):
        circ = QuantumCircuit(1).t(0).tdg(0)
        assert len(cancel_adjacent_gates(circ)) == 0

    def test_rotation_merge(self):
        circ = QuantumCircuit(1).rz(0.3, 0).rz(0.4, 0)
        out = cancel_adjacent_gates(circ)
        assert len(out) == 1
        assert out.gates[0].params[0] == pytest.approx(0.7)

    def test_opposite_rotations_vanish(self):
        circ = QuantumCircuit(1).rz(0.3, 0).rz(-0.3, 0)
        assert len(cancel_adjacent_gates(circ)) == 0

    def test_cancellation_through_disjoint_gates(self):
        circ = QuantumCircuit(3).h(0).x(1).cx(1, 2).h(0)
        out = cancel_adjacent_gates(circ)
        assert [g.name for g in out] == ["x", "cx"]

    def test_no_cancellation_through_blocking_gate(self):
        circ = QuantumCircuit(2).h(0).cx(0, 1).h(0)
        out = cancel_adjacent_gates(circ)
        assert len(out) == 3

    def test_measurement_blocks(self):
        circ = QuantumCircuit(1, 1).h(0).measure(0, 0)
        circ.h(0)
        out = cancel_adjacent_gates(circ)
        assert len(out) == 3

    def test_cascading_cancellation(self):
        circ = QuantumCircuit(1).h(0).x(0).x(0).h(0)
        assert len(cancel_adjacent_gates(circ)) == 0

    @pytest.mark.parametrize("seed", range(15))
    def test_unitary_preserved(self, seed):
        circ = random_clifford_t_circuit(3, 40, seed=seed)
        out = cancel_adjacent_gates(circ)
        assert circuits_equivalent(circ, out)
        assert len(out) <= len(circ)

    def test_identity_gates_dropped(self):
        circ = QuantumCircuit(1).i(0).h(0).i(0)
        assert len(cancel_adjacent_gates(circ)) == 1

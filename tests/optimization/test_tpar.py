"""Unit tests for the tpar optimization pass."""

import random

import pytest

from repro.boolean.permutation import BitPermutation
from repro.core.circuit import QuantumCircuit
from repro.core.unitary import circuits_equivalent
from repro.mapping.barenco import map_to_clifford_t
from repro.optimization.simplify import cancel_adjacent_gates
from repro.optimization.tpar import (
    region_statistics,
    t_count_before_after,
    t_depth_estimate,
    tpar_optimize,
)
from repro.synthesis.transformation import transformation_based_synthesis

from _helpers import random_clifford_t_circuit


class TestTparOptimize:
    def test_regions_split_at_hadamard(self):
        circ = QuantumCircuit(1).t(0).h(0).t(0)
        out = tpar_optimize(circ)
        # H prevents merging: both T gates stay
        assert out.t_count() == 2

    def test_merge_within_region(self):
        circ = QuantumCircuit(2)
        circ.t(0).cx(0, 1).t(1).cx(0, 1).t(0)
        # t(0) twice on mask x0 -> merges to S; t on x0^x1 stays
        out = tpar_optimize(circ)
        assert out.t_count() == 1
        assert circuits_equivalent(circ, out)

    def test_measurements_pass_through(self):
        circ = QuantumCircuit(1, 1).t(0).measure(0, 0)
        out = tpar_optimize(circ)
        assert out.has_measurements()

    @pytest.mark.parametrize("seed", range(15))
    def test_unitary_preserved_on_random_circuits(self, seed):
        circ = random_clifford_t_circuit(3, 50, seed=seed + 100)
        out = tpar_optimize(circ)
        assert circuits_equivalent(circ, out)
        assert out.t_count() <= circ.t_count()

    @pytest.mark.parametrize("seed", range(6))
    def test_mapped_synthesis_circuits(self, seed):
        """End-to-end: tbs -> rptm -> tpar preserves semantics."""
        perm = BitPermutation.random(3, seed=seed)
        mapped = map_to_clifford_t(transformation_based_synthesis(perm))
        out = tpar_optimize(cancel_adjacent_gates(mapped))
        assert circuits_equivalent(mapped, out)
        assert out.t_count() <= mapped.t_count()

    def test_hwb_pipeline_t_reduction(self):
        """The Eq. (5) pipeline must show a strict T-count win."""
        perm = BitPermutation.hidden_weighted_bit(4)
        mapped = map_to_clifford_t(transformation_based_synthesis(perm))
        before = mapped.t_count()
        out = cancel_adjacent_gates(tpar_optimize(cancel_adjacent_gates(mapped)))
        assert out.t_count() < before


class TestDiagnostics:
    def test_before_after_helper(self):
        circ = QuantumCircuit(1).t(0).t(0)
        before, after = t_count_before_after(circ)
        assert before == 2
        assert after == 0  # merged to S

    def test_region_statistics_shape(self):
        circ = QuantumCircuit(2).t(0).h(0).t(1).cx(0, 1).t(1)
        stats = region_statistics(circ)
        assert len(stats) == 2
        for before, after, layers in stats:
            assert after <= before or before == 0
            assert layers <= after or after == 0

    def test_t_depth_estimate_le_naive(self):
        circ = QuantumCircuit(2).t(0).t(1).cx(0, 1).t(1)
        estimate = t_depth_estimate(circ)
        assert estimate <= circ.t_depth() + 1
        assert estimate >= 1

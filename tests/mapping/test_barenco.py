"""Unit tests for the full MCT-to-Clifford+T mapping pass."""

import random

import numpy as np
import pytest

from repro.boolean.permutation import BitPermutation
from repro.core.circuit import QuantumCircuit
from repro.core.unitary import allclose_up_to_global_phase, circuit_unitary
from repro.mapping.barenco import (
    MappingError,
    map_to_clifford_t,
    mcx_clean_ancilla,
    mcx_dirty_ancilla,
)
from repro.synthesis.reversible import ReversibleCircuit
from repro.synthesis.transformation import transformation_based_synthesis


def assert_action_on_clean_ancillae(circuit, num_data, permutation):
    """Check the circuit maps |x>|0> to e^{i phi}|perm(x)>|0>."""
    unitary = circuit_unitary(circuit)
    for x in range(1 << num_data):
        column = unitary[:, x]
        idx = int(np.argmax(np.abs(column)))
        assert abs(abs(column[idx]) - 1.0) < 1e-9
        assert np.abs(column).sum() - abs(column[idx]) < 1e-9
        assert idx == permutation(x)


class TestCleanLadder:
    @pytest.mark.parametrize("k", [3, 4, 5])
    @pytest.mark.parametrize("relative_phase", [True, False])
    def test_subspace_action(self, k, relative_phase):
        n = k + 1 + (k - 2)
        circ = mcx_clean_ancilla(
            list(range(k)), k, list(range(k + 1, n)), n,
            relative_phase=relative_phase,
        )
        perm = BitPermutation(
            [
                x ^ (1 << k) if (x & ((1 << k) - 1)) == (1 << k) - 1 else x
                for x in range(1 << (k + 1))
            ]
        )
        assert_action_on_clean_ancillae(circ, k + 1, perm)

    def test_relative_phase_t_savings(self):
        k = 5
        n = 2 * k - 1
        cheap = mcx_clean_ancilla(
            list(range(k)), k, list(range(k + 1, n)), n, relative_phase=True
        )
        full = mcx_clean_ancilla(
            list(range(k)), k, list(range(k + 1, n)), n, relative_phase=False
        )
        assert cheap.t_count() == 8 * (k - 2) + 7
        assert full.t_count() == 14 * (k - 2) + 7

    def test_needs_enough_ancillae(self):
        with pytest.raises(ValueError):
            mcx_clean_ancilla([0, 1, 2, 3], 4, [5], 7)

    def test_minimum_controls(self):
        with pytest.raises(ValueError):
            mcx_clean_ancilla([0, 1], 2, [3], 4)


class TestDirtyChain:
    @pytest.mark.parametrize("k", [3, 4])
    def test_full_unitary_equivalence(self, k):
        """Dirty chains are correct for *any* ancilla state."""
        n = k + 1 + (k - 2)
        circ = mcx_dirty_ancilla(
            list(range(k)), k, list(range(k + 1, n)), n
        )
        reference = QuantumCircuit(n).mcx(list(range(k)), k)
        assert allclose_up_to_global_phase(
            circuit_unitary(circ), circuit_unitary(reference)
        )

    def test_toffoli_count(self):
        k = 4
        n = 2 * k - 1
        circ = mcx_dirty_ancilla(list(range(k)), k, list(range(k + 1, n)), n)
        assert circ.t_count() == 7 * 4 * (k - 2)


class TestFullMappingPass:
    @pytest.mark.parametrize("seed", range(8))
    def test_synthesized_circuits_map_correctly(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 4)
        perm = BitPermutation.random(n, seed=seed * 3)
        reversible = transformation_based_synthesis(perm)
        mapped = map_to_clifford_t(reversible)
        assert mapped.is_clifford_t()
        assert_action_on_clean_ancillae(mapped, n, perm)

    def test_dirty_path_used_when_clean_disallowed(self):
        circ = ReversibleCircuit(6)
        circ.add_gate(5, (0, 1, 2))  # 3 controls; lines 3,4 idle
        mapped = map_to_clifford_t(
            circ, prefer_clean=False, allow_extra_lines=False
        )
        assert mapped.num_qubits == 6
        reference = QuantumCircuit(6).mcx([0, 1, 2], 5)
        assert allclose_up_to_global_phase(
            circuit_unitary(mapped), circuit_unitary(reference)
        )

    def test_extra_lines_needed_and_forbidden(self):
        circ = ReversibleCircuit(4)
        circ.add_gate(3, (0, 1, 2))  # no idle lines at all
        with pytest.raises(MappingError):
            map_to_clifford_t(
                circ, prefer_clean=False, allow_extra_lines=False
            )

    def test_mcz_lowered_via_h_conjugation(self):
        qc = QuantumCircuit(4).mcz([0, 1, 2], 3)
        mapped = map_to_clifford_t(qc)
        assert mapped.is_clifford_t()
        reference = circuit_unitary(QuantumCircuit(4).mcz([0, 1, 2], 3))
        # compare on the data subspace (clean ancillae added)
        full = circuit_unitary(mapped)
        for x in range(16):
            col = full[:, x]
            idx = int(np.argmax(np.abs(col)))
            assert idx == x  # mcz is diagonal
        # diagonal signs must match
        diag = np.array([full[x, x] for x in range(16)])
        ref_diag = np.diag(reference)
        assert allclose_up_to_global_phase(
            np.diag(diag), np.diag(ref_diag)
        )

    def test_plain_gates_pass_through(self):
        qc = QuantumCircuit(2, 2).h(0).cx(0, 1).measure(0, 0)
        mapped = map_to_clifford_t(qc)
        assert [g.name for g in mapped] == ["h", "cx", "measure"]

    def test_rotation_gate_rejected(self):
        qc = QuantumCircuit(1).rx(0.5, 0)
        with pytest.raises(MappingError):
            map_to_clifford_t(qc)

    def test_relative_phase_reduces_t_count(self):
        perm = BitPermutation.hidden_weighted_bit(4)
        reversible = transformation_based_synthesis(perm)
        cheap = map_to_clifford_t(reversible, relative_phase=True)
        full = map_to_clifford_t(reversible, relative_phase=False)
        assert cheap.t_count() < full.t_count()

"""Unit tests for device-topology routing."""

import random

import pytest

from repro.core.circuit import QuantumCircuit
from repro.mapping.routing import (
    CouplingMap,
    RoutingError,
    route_circuit,
    verify_routing,
)


def random_two_qubit_circuit(num_qubits, num_gates, seed):
    rng = random.Random(seed)
    circ = QuantumCircuit(num_qubits)
    for _ in range(num_gates):
        if rng.random() < 0.55 and num_qubits >= 2:
            a, b = rng.sample(range(num_qubits), 2)
            circ.cx(a, b)
        else:
            getattr(circ, rng.choice(["h", "t", "s", "x"]))(
                rng.randrange(num_qubits)
            )
    return circ


class TestCouplingMap:
    def test_ibm_qx2_shape(self):
        cmap = CouplingMap.ibm_qx2()
        assert cmap.num_qubits == 5
        assert cmap.connected(0, 1)
        assert cmap.connected(2, 4)
        assert not cmap.connected(0, 4)

    def test_line_distances(self):
        cmap = CouplingMap.line(6)
        assert cmap.distance(0, 5) == 5
        assert cmap.distance(2, 2) == 0

    def test_ring_shortcut(self):
        cmap = CouplingMap.ring(6)
        assert cmap.distance(0, 5) == 1

    def test_grid(self):
        cmap = CouplingMap.grid(3, 3)
        assert cmap.num_qubits == 9
        assert cmap.distance(0, 8) == 4

    def test_full_connectivity(self):
        cmap = CouplingMap.full(4)
        assert all(
            cmap.connected(a, b)
            for a in range(4)
            for b in range(4)
            if a != b
        )

    def test_shortest_path_endpoints(self):
        cmap = CouplingMap.line(5)
        path = cmap.shortest_path(0, 4)
        assert path[0] == 0 and path[-1] == 4
        assert len(path) == 5

    def test_disconnected_detected(self):
        cmap = CouplingMap(4, [(0, 1), (2, 3)])
        with pytest.raises(RoutingError):
            cmap.distance(0, 3)

    def test_bad_edge_rejected(self):
        with pytest.raises(RoutingError):
            CouplingMap(2, [(0, 0)])


class TestRouting:
    def test_adjacent_gates_unchanged(self):
        circ = QuantumCircuit(3).cx(0, 1).cx(1, 2)
        result = route_circuit(circ, CouplingMap.line(3))
        assert result.swap_count == 0
        assert [g.name for g in result.circuit] == ["cx", "cx"]

    def test_distant_gate_inserts_swaps(self):
        circ = QuantumCircuit(3).cx(0, 2)
        result = route_circuit(circ, CouplingMap.line(3))
        assert result.swap_count >= 1
        for gate in result.circuit.gates:
            if gate.is_unitary and gate.num_qubits == 2:
                assert CouplingMap.line(3).connected(*gate.qubits)

    def test_full_connectivity_never_swaps(self):
        circ = random_two_qubit_circuit(5, 30, seed=2)
        result = route_circuit(circ, CouplingMap.full(5))
        assert result.swap_count == 0

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize(
        "factory",
        [CouplingMap.ibm_qx2, CouplingMap.ibm_qx4, lambda: CouplingMap.line(5)],
    )
    def test_routing_preserves_semantics(self, seed, factory):
        circ = random_two_qubit_circuit(4, 20, seed=seed)
        result = route_circuit(circ, factory())
        cmap = factory()
        for gate in result.circuit.gates:
            if gate.is_unitary and gate.num_qubits == 2:
                assert cmap.connected(*gate.qubits)
        assert verify_routing(circ, result)

    def test_custom_initial_layout(self):
        circ = QuantumCircuit(2).cx(0, 1)
        result = route_circuit(
            circ, CouplingMap.line(4), initial_layout=[3, 2]
        )
        gate = result.circuit.gates[0]
        assert set(gate.qubits) == {2, 3}
        assert verify_routing(circ, result)

    def test_bad_layout_rejected(self):
        circ = QuantumCircuit(2).cx(0, 1)
        with pytest.raises(RoutingError):
            route_circuit(circ, CouplingMap.line(4), initial_layout=[1, 1])

    def test_too_wide_rejected(self):
        with pytest.raises(RoutingError):
            route_circuit(QuantumCircuit(6), CouplingMap.line(3))

    def test_three_qubit_gate_rejected(self):
        circ = QuantumCircuit(3).ccx(0, 1, 2)
        with pytest.raises(RoutingError):
            route_circuit(circ, CouplingMap.line(3))

    def test_measurements_routed_to_physical(self):
        circ = QuantumCircuit(3, 3).cx(0, 2).measure(0, 0)
        result = route_circuit(circ, CouplingMap.line(3))
        measure = [g for g in result.circuit.gates if g.is_measurement][0]
        # the measured physical wire is wherever logical 0 ended up
        assert measure.targets[0] == result.final_layout[0]

    def test_fig4_circuit_on_ibm_qx2(self):
        """The paper's chip run: the compiled Fig. 4/5 circuit must be
        routable onto the 5-qubit bowtie without semantic change."""
        from repro.algorithms.hidden_shift import phase_oracle_circuit
        from repro.boolean.truth_table import TruthTable

        table = TruthTable.from_function(
            4, lambda a, b, c, d: (a and b) ^ (c and d)
        )
        circ = QuantumCircuit(4)
        for q in range(4):
            circ.h(q)
        circ.x(0)
        circ.compose(phase_oracle_circuit(table, 4))
        circ.x(0)
        for q in range(4):
            circ.h(q)
        result = route_circuit(circ, CouplingMap.ibm_qx2())
        assert verify_routing(circ, result)

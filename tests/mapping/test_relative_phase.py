"""Unit tests for relative-phase Toffoli gates."""

import numpy as np
import pytest

from repro.core.circuit import QuantumCircuit
from repro.core.unitary import allclose_up_to_global_phase, circuit_unitary
from repro.mapping.relative_phase import rccx, rccx_dagger


class TestRccx:
    def test_t_count_is_four(self):
        assert rccx(0, 1, 2, 3).t_count() == 4

    def test_permutation_pattern_matches_ccx(self):
        """|RCCX| equals the CCX permutation matrix entrywise."""
        reference = np.abs(circuit_unitary(QuantumCircuit(3).ccx(0, 1, 2)))
        actual = np.abs(circuit_unitary(rccx(0, 1, 2, 3)))
        assert np.allclose(actual, reference, atol=1e-9)

    def test_diagonal_relative_phase(self):
        """RCCX . CCX^-1 must be diagonal (the defining property)."""
        ccx = circuit_unitary(QuantumCircuit(3).ccx(0, 1, 2))
        r = circuit_unitary(rccx(0, 1, 2, 3))
        residue = r @ ccx.conj().T
        off_diagonal = residue - np.diag(np.diag(residue))
        assert np.allclose(off_diagonal, 0, atol=1e-9)

    def test_not_exactly_ccx(self):
        """It must differ from CCX by a *nontrivial* phase — otherwise
        the 4-T construction would beat the proven 7-T lower bound."""
        ccx = circuit_unitary(QuantumCircuit(3).ccx(0, 1, 2))
        r = circuit_unitary(rccx(0, 1, 2, 3))
        assert not allclose_up_to_global_phase(r, ccx)

    def test_dagger_cancels_exactly(self):
        circ = rccx(0, 1, 2, 3)
        circ.compose(rccx_dagger(0, 1, 2, 3))
        assert allclose_up_to_global_phase(
            circuit_unitary(circ), np.eye(8)
        )

    def test_compute_uncompute_sandwich_acts_like_ccx(self):
        """RCCX a, (diagonal-commuting center), RCCX^dagger == CCX
        sandwich — the property the rptm mapping relies on."""
        # center: CNOT controlled on the RCCX target (diagonal on it? no
        # -- controlled on target is fine: phases on control commute)
        sandwich = rccx(0, 1, 2, 4)
        sandwich.cx(2, 3)
        sandwich.compose(rccx_dagger(0, 1, 2, 4))

        reference = QuantumCircuit(4).ccx(0, 1, 2)
        reference.cx(2, 3)
        reference.ccx(0, 1, 2)
        assert allclose_up_to_global_phase(
            circuit_unitary(sandwich), circuit_unitary(reference)
        )

"""Unit tests for the Clifford+T building blocks."""

import numpy as np
import pytest

from repro.core.circuit import QuantumCircuit
from repro.core.unitary import allclose_up_to_global_phase, circuit_unitary
from repro.mapping.clifford_t import (
    ccx_clifford_t,
    ccz_clifford_t,
    cz_from_cx,
    swap_from_cx,
)


class TestCcx:
    def test_unitary_exact(self):
        reference = circuit_unitary(QuantumCircuit(3).ccx(0, 1, 2))
        decomposed = circuit_unitary(ccx_clifford_t(0, 1, 2, 3))
        assert allclose_up_to_global_phase(decomposed, reference)

    def test_t_count_is_seven(self):
        assert ccx_clifford_t(0, 1, 2, 3).t_count() == 7

    def test_t_depth_bound(self):
        assert ccx_clifford_t(0, 1, 2, 3).t_depth() <= 4

    def test_is_clifford_t(self):
        assert ccx_clifford_t(0, 1, 2, 3).is_clifford_t()

    def test_arbitrary_wire_assignment(self):
        reference = circuit_unitary(QuantumCircuit(4).ccx(3, 0, 2))
        decomposed = circuit_unitary(ccx_clifford_t(3, 0, 2, 4))
        assert allclose_up_to_global_phase(decomposed, reference)


class TestCcz:
    def test_unitary_exact(self):
        reference = circuit_unitary(QuantumCircuit(3).ccz(0, 1, 2))
        decomposed = circuit_unitary(ccz_clifford_t(0, 1, 2, 3))
        assert allclose_up_to_global_phase(decomposed, reference)

    def test_symmetric_in_all_three_qubits(self):
        """CCZ is invariant under any qubit role exchange."""
        base = circuit_unitary(ccz_clifford_t(0, 1, 2, 3))
        for roles in [(1, 0, 2), (2, 1, 0), (0, 2, 1)]:
            other = circuit_unitary(ccz_clifford_t(*roles, 3))
            assert allclose_up_to_global_phase(base, other)


class TestHelpers:
    def test_cz_from_cx(self):
        reference = circuit_unitary(QuantumCircuit(2).cz(0, 1))
        assert allclose_up_to_global_phase(
            circuit_unitary(cz_from_cx(0, 1, 2)), reference
        )

    def test_swap_from_cx(self):
        reference = circuit_unitary(QuantumCircuit(2).swap(0, 1))
        assert allclose_up_to_global_phase(
            circuit_unitary(swap_from_cx(0, 1, 2)), reference
        )

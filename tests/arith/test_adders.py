"""Unit tests for reversible arithmetic blocks.

Every block is checked by exhaustive permutation simulation against
its integer specification — the verification discipline Sec. IX of the
paper calls for.
"""

import pytest

from repro.arith import (
    comparator,
    constant_adder,
    controlled_increment,
    cuccaro_adder,
    modular_constant_adder,
)


class TestControlledIncrement:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_plain_increment(self, n):
        circuit = controlled_increment(n, list(range(n)))
        perm = circuit.permutation()
        for x in range(1 << n):
            assert perm(x) == (x + 1) % (1 << n)

    def test_controlled(self):
        circuit = controlled_increment(4, [0, 1, 2], controls=[3])
        perm = circuit.permutation()
        for x in range(8):
            assert perm(x) == x
            assert perm(x | 8) == ((x + 1) % 8) | 8

    def test_gate_count_linear(self):
        circuit = controlled_increment(6, list(range(6)))
        assert len(circuit) == 6

    def test_overlapping_registers_rejected(self):
        with pytest.raises(ValueError):
            controlled_increment(3, [0, 1], controls=[1])


class TestCuccaroAdder:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_addition(self, n):
        perm = cuccaro_adder(n).permutation()
        mask = (1 << n) - 1
        for a in range(1 << n):
            for b in range(1 << n):
                out = perm(a | (b << n))
                assert out & mask == a
                assert (out >> n) & mask == (a + b) % (1 << n)
                assert (out >> (2 * n)) & 1 == 0  # ancilla restored

    def test_carry_out(self):
        n = 3
        perm = cuccaro_adder(n, carry_out=2 * n + 1).permutation()
        for a in range(8):
            for b in range(8):
                out = perm(a | (b << n))
                assert (out >> (2 * n + 1)) & 1 == ((a + b) >> n) & 1

    def test_subtraction_via_dagger(self):
        n = 3
        adder = cuccaro_adder(n)
        perm = adder.dagger().permutation()
        mask = (1 << n) - 1
        for a in range(8):
            for s in range(8):
                out = perm(a | (s << n))
                assert (out >> n) & mask == (s - a) % 8

    def test_only_cnot_and_toffoli(self):
        circuit = cuccaro_adder(4)
        assert all(g.num_controls <= 2 for g in circuit)

    def test_custom_layout(self):
        perm = cuccaro_adder(
            2, a_lines=[4, 3], b_lines=[1, 0], ancilla=2
        ).permutation()
        # a bit0 on line 4, bit1 on 3; b bit0 on line 1, bit1 on 0
        a, b = 1, 2  # a = 01, b = 10
        inp = (1 << 4) | (1 << 0)
        out = perm(inp)
        total = (a + b) % 4
        assert (out >> 1) & 1 == total & 1
        assert (out >> 0) & 1 == (total >> 1) & 1


class TestConstantAdder:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_all_constants(self, n):
        for constant in range(1 << n):
            perm = constant_adder(n, constant).permutation()
            for x in range(1 << n):
                assert perm(x) == (x + constant) % (1 << n)

    def test_controlled_variant(self):
        perm = constant_adder(3, 5, controls=(3,), num_lines=4).permutation()
        for x in range(8):
            assert perm(x) == x
            assert perm(x | 8) == ((x + 5) % 8) | 8

    def test_zero_constant_is_identity(self):
        assert constant_adder(4, 0).permutation().is_identity()

    def test_wraparound(self):
        perm = constant_adder(3, 9).permutation()  # 9 mod 8 = 1
        assert perm(0) == 1


class TestComparator:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_less_than_flag(self, n):
        perm = comparator(n).permutation()
        mask = (1 << (2 * n)) - 1
        for a in range(1 << n):
            for b in range(1 << n):
                inp = a | (b << n)
                out = perm(inp)
                assert out & mask == inp  # a, b preserved
                assert (out >> (2 * n + 1)) & 1 == int(a < b)
                assert (out >> (2 * n)) & 1 == 0

    def test_self_inverse_on_flag(self):
        n = 2
        circuit = comparator(n)
        double = circuit.copy()
        double.compose(circuit)
        assert double.permutation().is_identity()


class TestModularAdder:
    @pytest.mark.parametrize(
        "n,modulus", [(2, 3), (3, 5), (3, 7), (3, 8), (4, 11), (4, 13)]
    )
    def test_modular_addition(self, n, modulus):
        for constant in range(modulus):
            perm = modular_constant_adder(n, constant, modulus).permutation()
            for x in range(modulus):
                out = perm(x)
                assert out & ((1 << n) - 1) == (x + constant) % modulus
                assert (out >> n) & 1 == 0  # flag uncomputed

    def test_reversibility_on_full_domain(self):
        # even don't-care inputs must map bijectively (constructor of
        # BitPermutation inside .permutation() enforces it)
        modular_constant_adder(3, 2, 5).permutation()

    def test_bad_modulus_rejected(self):
        with pytest.raises(ValueError):
            modular_constant_adder(2, 1, 9)

    def test_composition_is_group_action(self):
        """Adding c1 then c2 equals adding c1+c2 (mod N) on x < N."""
        n, modulus = 3, 5
        first = modular_constant_adder(n, 2, modulus)
        second = modular_constant_adder(n, 4, modulus)
        combined = modular_constant_adder(n, 6 % modulus, modulus)
        composed = first.copy()
        composed.compose(second)
        pa = composed.permutation()
        pb = combined.permutation()
        for x in range(modulus):
            assert pa(x) == pb(x)

"""Differential harness for the array-backend layer.

Property: whichever :class:`ArrayBackend` executes the kernels —
NumPy, numba (when installed), fused or unfused, batched or looped —
the amplitudes must agree to 1e-12.  The numba legs skip cleanly when
numba is absent (the CI backend-matrix job runs one leg with numba and
one without, so both paths stay exercised).
"""

from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import QuantumCircuit
from repro.engines.density_matrix import DensityMatrix
from repro.engines.noise import NoiseModel
from repro.simulator import backends as B
from repro.simulator import kernels
from repro.simulator.noise import NoisyBackend
from repro.simulator.statevector import StatevectorSimulator, evolve_batch

needs_numba = pytest.mark.skipif(
    not B.NumbaBackend.available(), reason="numba not installed"
)
needs_numba_parallel = pytest.mark.skipif(
    not B.NumbaParallelBackend.available(), reason="numba not installed"
)

ATOL = 1e-12


# ----------------------------------------------------------------------
# strategies: random circuits over the full named-gate vocabulary
# ----------------------------------------------------------------------
@st.composite
def circuits(draw, min_qubits=2, max_qubits=5):
    n = draw(st.integers(min_qubits, max_qubits))
    depth = draw(st.integers(1, 25))
    rng_seed = draw(st.integers(0, 2**31))
    import random

    rng = random.Random(rng_seed)
    circ = QuantumCircuit(n)
    one_q = ["h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx"]
    for _ in range(depth):
        r = rng.random()
        if r < 0.35:
            getattr(circ, rng.choice(one_q))(rng.randrange(n))
        elif r < 0.55:
            getattr(circ, rng.choice(["rx", "ry", "rz", "p"]))(
                rng.uniform(-3.0, 3.0), rng.randrange(n)
            )
        elif r < 0.80:
            a, b = rng.sample(range(n), 2)
            getattr(circ, rng.choice(["cx", "cz", "ch", "swap"]))(a, b)
        elif r < 0.90 and n >= 3:
            a, b, c = rng.sample(range(n), 3)
            circ.ccx(a, b, c)
        else:
            a, b = rng.sample(range(n), 2)
            circ.crz(rng.uniform(-3.0, 3.0), a, b)
    return circ


def random_state(num_qubits, seed, batch=()):
    gen = np.random.default_rng(seed)
    shape = (1 << num_qubits,) + batch
    data = gen.standard_normal(shape) + 1j * gen.standard_normal(shape)
    data /= np.linalg.norm(data, axis=0)
    return data


def evolve_on(circ, state, backend, fuse=True):
    out = np.array(state, dtype=complex)
    ops = kernels.compile_circuit(circ.gates, fuse=fuse)
    kernels.apply_ops(out, ops, circ.num_qubits, backend=backend)
    return out


# ----------------------------------------------------------------------
# NumPy-only properties (always run)
# ----------------------------------------------------------------------
class TestNumpyProperties:
    @given(circuits())
    @settings(max_examples=25)
    def test_fused_matches_unfused(self, circ):
        state = random_state(circ.num_qubits, 7)
        fused = evolve_on(circ, state, "numpy", fuse=True)
        unfused = evolve_on(circ, state, "numpy", fuse=False)
        np.testing.assert_allclose(fused, unfused, atol=ATOL)

    @given(circuits())
    @settings(max_examples=15)
    def test_evolve_batch_matches_column_loop(self, circ):
        n = circ.num_qubits
        batch = random_state(n, 13, batch=(4,))
        looped = batch.copy()
        for col in range(4):
            column = np.ascontiguousarray(looped[:, col])
            kernels.apply_ops(
                column, kernels.compile_circuit(circ.gates), n
            )
            looped[:, col] = column
        batched = batch.copy()
        evolve_batch(circ, batched)
        np.testing.assert_allclose(batched, looped, atol=ATOL)

    def test_run_batched_noiseless_matches_exact_distribution(self):
        bell = QuantumCircuit(2, 2)
        bell.h(0)
        bell.cx(0, 1)
        bell.measure(0, 0)
        bell.measure(1, 1)
        result = NoisyBackend(NoiseModel.noiseless(), seed=5).run_batched(
            bell, shots=4000
        )
        assert set(result.counts) == {0, 3}
        assert sum(result.counts.values()) == 4000
        assert abs(result.counts[0] / 4000 - 0.5) < 0.05

    def test_run_batched_noisy_keeps_bell_dominant(self):
        bell = QuantumCircuit(2, 2)
        bell.h(0)
        bell.cx(0, 1)
        bell.measure(0, 0)
        bell.measure(1, 1)
        result = NoisyBackend(NoiseModel.ibm_qe_2018(), seed=5).run_batched(
            bell, shots=4000
        )
        assert sum(result.counts.values()) == 4000
        dominant = (result.counts.get(0, 0) + result.counts.get(3, 0)) / 4000
        assert dominant > 0.75  # QE5 rates: correct pair dominates

    def test_run_batched_handles_reset_and_midcircuit_measure(self):
        circ = QuantumCircuit(2, 2)
        circ.h(0)
        circ.measure(0, 0)
        circ.reset(0)
        circ.x(0)
        circ.measure(0, 1)
        result = NoisyBackend(NoiseModel.noiseless(), seed=2).run_batched(
            circ, shots=600
        )
        # bit 1 is always 1 after reset + x; bit 0 is a fair coin
        assert set(result.counts) <= {0b10, 0b11}
        assert sum(result.counts.values()) == 600


# ----------------------------------------------------------------------
# numba-vs-NumPy differential (skips without numba)
# ----------------------------------------------------------------------
@needs_numba
class TestNumbaDifferential:
    @given(circuits())
    @settings(max_examples=20, deadline=None)
    def test_gate_vocabulary_matches(self, circ):
        state = random_state(circ.num_qubits, 3)
        np.testing.assert_allclose(
            evolve_on(circ, state, "numba", fuse=False),
            evolve_on(circ, state, "numpy", fuse=False),
            atol=ATOL,
        )

    @given(circuits())
    @settings(max_examples=20, deadline=None)
    def test_fused_ops_match(self, circ):
        state = random_state(circ.num_qubits, 9)
        np.testing.assert_allclose(
            evolve_on(circ, state, "numba", fuse=True),
            evolve_on(circ, state, "numpy", fuse=True),
            atol=ATOL,
        )

    @given(circuits(max_qubits=4))
    @settings(max_examples=10, deadline=None)
    def test_batched_states_match(self, circ):
        n = circ.num_qubits
        batch = random_state(n, 21, batch=(3,))
        out_nb = batch.copy()
        out_np = batch.copy()
        evolve_batch(circ, out_nb, backend="numba")
        evolve_batch(circ, out_np, backend="numpy")
        np.testing.assert_allclose(out_nb, out_np, atol=ATOL)

    @given(circuits(max_qubits=3))
    @settings(max_examples=10, deadline=None)
    def test_density_matrix_evolution_matches(self, circ):
        rhos = {}
        for name in ("numba", "numpy"):
            rho = DensityMatrix(circ.num_qubits, backend=name)
            for gate in circ.gates:
                if gate.name != "barrier":
                    rho.apply_gate(gate)
            rho.apply_channel("amplitude_damping", 0.15, 0)
            rho.apply_channel("depolarizing", 0.05, 1)
            rhos[name] = rho.data
        np.testing.assert_allclose(rhos["numba"], rhos["numpy"], atol=ATOL)

    def test_simulator_counts_identical_across_backends(self):
        # sampling consumes the RNG identically, so a shared seed must
        # give byte-identical counts whichever backend evolved the state
        circ = QuantumCircuit(3, 3)
        circ.h(0)
        circ.cx(0, 1)
        circ.ccx(0, 1, 2)
        circ.measure_all()
        res_np = StatevectorSimulator(seed=11, backend="numpy").run(
            circ, shots=512
        )
        res_nb = StatevectorSimulator(seed=11, backend="numba").run(
            circ, shots=512
        )
        assert res_np.counts == res_nb.counts


# ----------------------------------------------------------------------
# numba_parallel-vs-NumPy differential (skips without numba)
# ----------------------------------------------------------------------
@contextmanager
def forced_parallel(threshold=1):
    """Drop the prange size threshold so small states hit the kernels.

    Without this, every Hypothesis-sized state (< 2**17 amplitudes)
    would delegate to the serial tier and the parallel kernels would
    never be differentially exercised.
    """
    saved = B.NumbaParallelBackend.parallel_threshold
    B.NumbaParallelBackend.parallel_threshold = threshold
    try:
        yield
    finally:
        B.NumbaParallelBackend.parallel_threshold = saved


@needs_numba_parallel
class TestNumbaParallelDifferential:
    @given(circuits())
    @settings(max_examples=20, deadline=None)
    def test_gate_vocabulary_matches(self, circ):
        state = random_state(circ.num_qubits, 3)
        with forced_parallel():
            out = evolve_on(circ, state, "numba_parallel", fuse=False)
        np.testing.assert_allclose(
            out, evolve_on(circ, state, "numpy", fuse=False), atol=ATOL
        )

    @given(circuits())
    @settings(max_examples=20, deadline=None)
    def test_fused_blocks_match(self, circ):
        # fuse=True routes through apply_block — the prange
        # gather/matmul/scatter kernel, new for the numba tiers
        state = random_state(circ.num_qubits, 9)
        with forced_parallel():
            out = evolve_on(circ, state, "numba_parallel", fuse=True)
        np.testing.assert_allclose(
            out, evolve_on(circ, state, "numpy", fuse=True), atol=ATOL
        )

    @given(circuits(max_qubits=4))
    @settings(max_examples=10, deadline=None)
    def test_batched_states_match(self, circ):
        # batched input must delegate to the NumPy paths untouched
        n = circ.num_qubits
        batch = random_state(n, 21, batch=(3,))
        out_nbp = batch.copy()
        out_np = batch.copy()
        with forced_parallel():
            evolve_batch(circ, out_nbp, backend="numba_parallel")
        evolve_batch(circ, out_np, backend="numpy")
        np.testing.assert_allclose(out_nbp, out_np, atol=ATOL)

    @given(circuits(max_qubits=4))
    @settings(max_examples=10, deadline=None)
    def test_single_thread_leg_matches(self, circ):
        # threads=1 exercises the prange machinery without concurrency
        import numba

        state = random_state(circ.num_qubits, 17)
        saved = numba.get_num_threads()
        try:
            numba.set_num_threads(1)
            with forced_parallel():
                out = evolve_on(circ, state, "numba_parallel", fuse=True)
        finally:
            numba.set_num_threads(saved)
        np.testing.assert_allclose(
            out, evolve_on(circ, state, "numpy", fuse=True), atol=ATOL
        )

    def test_wide_state_crosses_real_threshold(self):
        # 17 qubits = 2**17 amplitudes: at the default threshold this
        # genuinely runs the parallel kernels, no monkeypatching
        n = 17
        assert (1 << n) >= B.NumbaParallelBackend.parallel_threshold
        circ = QuantumCircuit(n)
        for q in range(n):
            circ.h(q)
        for q in range(n - 1):
            circ.cx(q, q + 1)
        circ.rz(0.37, 5)
        circ.swap(2, 11)
        circ.ccx(0, 8, 16)
        state = random_state(n, 29)
        np.testing.assert_allclose(
            evolve_on(circ, state, "numba_parallel", fuse=True),
            evolve_on(circ, state, "numpy", fuse=True),
            atol=ATOL,
        )

    def test_below_threshold_delegates_to_serial_tier(self):
        # the fallback rule itself: narrow states never hit prange
        backend = B.get("numba_parallel")
        state = random_state(8, 5)
        assert not backend._parallel(np.array(state, dtype=complex))

    def test_simulator_counts_identical_across_backends(self):
        circ = QuantumCircuit(3, 3)
        circ.h(0)
        circ.cx(0, 1)
        circ.ccx(0, 1, 2)
        circ.measure_all()
        with forced_parallel():
            res_nbp = StatevectorSimulator(
                seed=11, backend="numba_parallel"
            ).run(circ, shots=512)
        res_np = StatevectorSimulator(seed=11, backend="numpy").run(
            circ, shots=512
        )
        assert res_np.counts == res_nbp.counts

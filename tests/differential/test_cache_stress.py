"""Concurrency stress tests for the disk-backed pass cache.

Many threads plus a process-pool session hammer one disk-backed
:class:`~repro.pipeline.PassCache` under a deliberately tiny byte
budget, so spills and eviction sweeps race with lookups the whole
time.  The obligations: every compilation still produces the correct
circuit, every entry file that survives parses as a complete
generation-stamped entry (no torn writes), the budget holds once the
dust settles, and ``gc()`` never evicts an entry that is in flight.
"""

import json
import threading
import time

import pytest

import repro
from repro.compiler import CompilerSession
from repro.pipeline import FlowState, PassCache, Pipeline, SimplifyPass
from repro.pipeline.cache import DISK_FORMAT
from repro.revkit import generators

BYTE_BUDGET = 4096


def _reference(n, target="clifford_t"):
    return repro.compile({"hwb": n}, target=target, cache=None)


class TestThreadStress:
    def test_hammered_bounded_cache_stays_correct(self, tmp_path):
        cache = PassCache(
            maxsize=4, path=str(tmp_path), max_bytes=BYTE_BUDGET
        )
        session = CompilerSession(
            target="clifford_t", cache=cache, max_workers=8
        )
        reference = {n: _reference(n) for n in (3, 4)}
        workloads = [{"hwb": n} for n in (3, 4)] * 8
        results = session.compile_many(workloads)
        for workload, result in zip(workloads, results):
            expected = reference[workload["hwb"]]
            assert result.circuit.gates == expected.circuit.gates

        # no corrupted entries: every surviving file is a complete,
        # generation-stamped entry (atomic replace ⇒ no torn reads)
        survivors = list(tmp_path.glob("*.json"))
        for entry in survivors:
            payload = json.loads(entry.read_text())
            assert payload["format"] == DISK_FORMAT
            assert "key" in payload and "outputs" in payload
            assert len(payload["gen"]) == 2

        # in-flight pins may leave the tier transiently over budget;
        # with nothing in flight anymore a sweep must restore it, and
        # the auto-sweeps must actually have evicted along the way
        assert cache.stats()["disk_evictions"] > 0
        swept = cache.gc()
        assert swept["pinned"] == 0
        assert swept["bytes"] <= BYTE_BUDGET
        assert cache.stats()["disk_bytes"] <= BYTE_BUDGET

        # no lost updates: the tier still serves a fresh process-shape
        # consumer correctly after all that churn
        replay = repro.compile(
            {"hwb": 4}, target="clifford_t", cache=str(tmp_path)
        )
        assert replay.circuit.gates == reference[4].circuit.gates

    def test_threads_and_process_pool_share_one_tier(self, tmp_path):
        path = str(tmp_path)
        reference = {n: _reference(n, "toffoli") for n in (3, 4)}
        thread_session = CompilerSession(
            target="toffoli",
            cache=PassCache(path=path, max_bytes=BYTE_BUDGET),
            max_workers=4,
        )
        process_session = CompilerSession(
            target="toffoli",
            cache=PassCache(path=path, max_bytes=BYTE_BUDGET),
            executor="process",
            max_workers=2,
        )
        outcome = {}

        def hammer_processes():
            outcome["process"] = process_session.compile_many(
                [{"hwb": 3}, {"hwb": 4}] * 2
            )

        worker = threading.Thread(target=hammer_processes)
        worker.start()
        outcome["thread"] = thread_session.compile_many(
            [{"hwb": n} for n in (3, 4)] * 4
        )
        worker.join(timeout=300)
        assert not worker.is_alive()

        for results in (outcome["thread"], outcome["process"]):
            for result in results:
                n = result.reversible.num_lines
                expected = reference[n]
                assert result.reversible.gates == expected.reversible.gates
        for entry in tmp_path.glob("*.json"):
            payload = json.loads(entry.read_text())
            assert payload["format"] == DISK_FORMAT


class TestInFlightProtection:
    def test_gc_never_evicts_inflight_entry(self, tmp_path):
        cache = PassCache(path=str(tmp_path))
        cache.put("busy", {"function": None}, {})
        cache.put("idle", {"function": None}, {})
        role, _event = cache.begin_compute("busy")
        assert role == "leader"
        try:
            swept = cache.gc(max_entries=0)
            assert swept["pinned"] == 1
            remaining = {
                json.loads(f.read_text())["key"]
                for f in tmp_path.glob("*.json")
            }
            assert remaining == {"busy"}
        finally:
            cache.end_compute("busy")
        # once released, the same sweep may take it
        assert cache.gc(max_entries=0)["evicted"] == 1

    def test_full_pinned_tier_never_drops_a_fresh_insert(self):
        """With every LRU candidate pinned, put() must keep the new
        entry (transient overflow) rather than evict it — otherwise
        an unpinned insert silently becomes a no-op."""
        cache = PassCache(maxsize=4)
        for index in range(4):
            key = f"pinned{index}"
            cache.put(key, {"function": None}, {})
            cache.pin(key)
        try:
            cache.put("fresh", {"function": None}, {})
            assert cache.get("fresh") is not None
            assert len(cache) == 5  # over budget, by design
        finally:
            for index in range(4):
                cache.unpin(f"pinned{index}")

    def test_memory_lru_skips_pinned_entries(self):
        cache = PassCache(maxsize=1)
        cache.put("hot", {"function": None}, {})
        cache.pin("hot")
        try:
            cache.put("other", {"function": None}, {})
            cache.put("another", {"function": None}, {})
            assert cache.get("hot") is not None
        finally:
            cache.unpin("hot")

    def test_single_flight_runs_concurrent_identical_passes_once(self):
        class SlowSimplify(SimplifyPass):
            calls = 0
            _lock = threading.Lock()

            def run(self, state):
                with SlowSimplify._lock:
                    SlowSimplify.calls += 1
                time.sleep(0.05)
                return super().run(state)

        SlowSimplify.calls = 0
        perm = generators.hwb(4)
        from repro.pipeline import SynthesisPass

        seed = FlowState(function=perm)
        seed = SynthesisPass("tbs").run(seed)
        cache = PassCache()
        outputs = []

        def worker():
            pipeline = Pipeline(cache=cache)
            state, record = pipeline.apply(SlowSimplify(), seed)
            outputs.append((state.reversible.gates, record.cache_hit))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(outputs) == 4
        # the leader computed once; every follower replayed its entry
        assert SlowSimplify.calls == 1
        gates = {tuple(g for g in gates_) for gates_, _hit in outputs}
        assert len(gates) == 1
        assert sum(1 for _g, hit in outputs if hit) == 3
        # counter accounting: one logical miss (the leader's compute),
        # one hit per replayed follower — a follower's wait must not
        # log a spurious miss-then-hit pair
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 3

    def test_nested_apply_on_shared_cache_does_not_deadlock(self):
        """A pass whose run() itself drives the same cache (a nested
        flow) must not deadlock on the single-flight registry."""
        cache = PassCache()
        perm = generators.hwb(4)
        from repro.pipeline import SynthesisPass

        class NestingSynthesis(SynthesisPass):
            def run(self, state):
                inner = Pipeline(cache=cache)
                inner.apply(SynthesisPass("tbs"), state)
                return super().run(state)

        pipeline = Pipeline(cache=cache)
        state, record = pipeline.apply(
            NestingSynthesis("tbs"), FlowState(function=perm)
        )
        assert state.reversible is not None
        assert not record.cache_hit

    def test_follower_timeout_falls_back_to_computing(self, monkeypatch):
        """If the leader stalls past the single-flight timeout, the
        follower computes the pass itself instead of hanging."""
        from repro.pipeline import SynthesisPass, runner

        monkeypatch.setattr(runner, "SINGLE_FLIGHT_TIMEOUT", 0.01)
        cache = PassCache()
        seed = FlowState(function=generators.hwb(3))
        pipeline = Pipeline(cache=cache)
        key = pipeline._cache_key(SynthesisPass("tbs"), seed)
        role, _event = cache.begin_compute(key)
        assert role == "leader"

        stalled_result = {}

        def follower():
            state, record = Pipeline(cache=cache).apply(
                SynthesisPass("tbs"), seed
            )
            stalled_result["gates"] = state.reversible.gates
            stalled_result["hit"] = record.cache_hit

        thread = threading.Thread(target=follower)
        thread.start()
        thread.join(timeout=30)
        assert not thread.is_alive()
        cache.end_compute(key)
        assert not stalled_result["hit"]
        assert stalled_result["gates"]


class TestConcurrentWriters:
    def test_racing_spills_leave_whole_entries(self, tmp_path):
        """Many threads rewriting the same keys: the atomic replace +
        generation stamp must leave only complete entry files."""
        cache = PassCache(path=str(tmp_path))

        def writer(worker_id):
            for round_ in range(20):
                key = f"key-{round_ % 5}"
                cache.put(key, {"function": None}, {"worker": worker_id})
                cache.get(key)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        entries = list(tmp_path.glob("*.json"))
        assert len(entries) == 5
        generations = set()
        for entry in entries:
            payload = json.loads(entry.read_text())
            assert payload["format"] == DISK_FORMAT
            generations.add(tuple(payload["gen"]))
        assert len(generations) == 5  # every survivor a distinct stamp
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_racing_spills_keep_disk_tally_accurate(self, tmp_path):
        """Two spills racing on the same new key must not both count
        it: the running tally has to match the real directory."""
        # a (non-binding) budget makes the budget check seed the tally
        cache = PassCache(path=str(tmp_path), max_entries=10**6)

        def writer(worker_id):
            for index in range(50):
                cache.put(
                    f"key-{index}", {"function": None}, {"w": worker_id}
                )

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        real_entries = list(tmp_path.glob("*.json"))
        stats = cache.stats()
        assert stats["disk_entries"] == len(real_entries) == 50
        assert stats["disk_bytes"] == sum(
            f.stat().st_size for f in real_entries
        )

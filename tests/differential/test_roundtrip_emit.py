"""Property-based round-trip harness for the emitter subsystem.

The round-trip soundness property: for any circuit the compiler can
produce, ``emit(qasm2)`` → ``parse`` → ``emit(qasm2)`` is a fixed
point — the text emitted from the re-imported circuit is byte-equal
to the first emission, and the re-imported gate list matches the
original.  Runs under the same Hypothesis profiles (``dev``/``ci``)
as the differential compile harness.
"""

import math

from hypothesis import given
from hypothesis import strategies as st

import repro
from repro import emit
from repro.boolean.permutation import BitPermutation
from repro.core.circuit import QuantumCircuit

#: Clifford+T vocabulary: (name, qubits used, parametric).
_CLIFFORD_T_GATES = (
    ("h", 1),
    ("x", 1),
    ("y", 1),
    ("z", 1),
    ("s", 1),
    ("sdg", 1),
    ("t", 1),
    ("tdg", 1),
    ("cx", 2),
    ("cz", 2),
    ("swap", 2),
)

_ANGLES = tuple(
    sign * num * math.pi / denom
    for sign in (1, -1)
    for num in (1, 3)
    for denom in (2, 4, 8)
)


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def clifford_t_circuits(draw):
    """Random Clifford+T circuits with a few rotations and measures."""
    num_qubits = draw(st.integers(2, 5))
    circuit = QuantumCircuit(num_qubits, num_qubits, name="prop")
    wires = st.lists(
        st.integers(0, num_qubits - 1),
        min_size=2,
        max_size=2,
        unique=True,
    )
    for _ in range(draw(st.integers(0, 24))):
        kind = draw(st.sampled_from(("fixed", "rotation")))
        if kind == "rotation":
            name = draw(st.sampled_from(("rx", "ry", "rz", "p")))
            angle = draw(st.sampled_from(_ANGLES))
            circuit._add(name, (draw(st.integers(0, num_qubits - 1)),),
                         params=(angle,))
            continue
        name, arity = draw(st.sampled_from(_CLIFFORD_T_GATES))
        if arity == 1:
            circuit._add(name, (draw(st.integers(0, num_qubits - 1)),))
        elif name == "swap":
            circuit._add(name, tuple(draw(wires)))
        else:
            control, target = draw(wires)
            circuit._add(name, (target,), (control,))
    if draw(st.booleans()):
        circuit.measure(0, 0)
    return circuit


@st.composite
def toffoli_circuits(draw):
    """Random Toffoli-level circuits (x / cx / ccx cascades)."""
    num_qubits = draw(st.integers(3, 5))
    circuit = QuantumCircuit(num_qubits, name="toffoli")
    for _ in range(draw(st.integers(1, 16))):
        qubits = draw(
            st.lists(
                st.integers(0, num_qubits - 1),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        name = {1: "x", 2: "cx", 3: "ccx"}[len(qubits)]
        circuit._add(name, (qubits[-1],), tuple(qubits[:-1]))
    return circuit


def assert_fixed_point(circuit):
    """emit(qasm2) → parse → emit(qasm2) must be a fixed point."""
    first = emit.emit(circuit, "qasm2")
    reimported = emit.parse(first, "qasm2")
    assert reimported.gates == circuit.gates
    assert emit.emit(reimported, "qasm2") == first


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
@given(clifford_t_circuits())
def test_clifford_t_emit_parse_emit_fixed_point(circuit):
    assert_fixed_point(circuit)


@given(toffoli_circuits())
def test_toffoli_emit_parse_emit_fixed_point(circuit):
    assert_fixed_point(circuit)


@given(st.permutations(tuple(range(8))))
def test_compiled_permutation_round_trips_as_workload(image):
    """Emitted output re-enters the front door as a QASM workload."""
    from repro.compiler import detect_workload

    reference = repro.compile(
        BitPermutation(list(image)), target="clifford_t", cache=None
    )
    text = reference.to_qasm()
    workload = detect_workload(text)
    assert workload.kind == "circuit"
    assert not workload.needs_synthesis
    assert workload.state.quantum.gates == reference.circuit.gates
    assert emit.emit(workload.state.quantum, "qasm2") == text


@given(clifford_t_circuits())
def test_qsharp_round_trip_on_its_vocabulary(circuit):
    """The Q# backend round-trips circuits inside its primitive set."""
    supported = {"h", "x", "y", "z", "s", "sdg", "t", "tdg", "cx", "cz",
                 "swap", "ccx"}
    pruned = QuantumCircuit(circuit.num_qubits, name="qs")
    for gate in circuit.gates:
        if gate.name in supported:
            pruned.append(gate)
    if not pruned.gates:
        return
    code = emit.emit(pruned, "qsharp")
    reimported = emit.parse(code, "qsharp")
    assert reimported.gates == pruned.gates
    assert emit.emit(reimported, "qsharp") == code

"""Property-based differential compilation harness.

The concurrency/eviction soundness property: for any workload, every
execution path through the facade — plain synchronous compilation,
async batched compilation, a cold disk-backed cache, a warm cache
after an eviction sweep, and a pure disk replay — must produce
gate-for-gate identical circuits.  Caching, concurrency and GC are
allowed to change *when* work happens, never *what* comes out.
"""

import asyncio
import shutil
import tempfile

from hypothesis import given
from hypothesis import strategies as st

import repro
from repro.boolean.permutation import BitPermutation
from repro.boolean.truth_table import TruthTable
from repro.compiler import CompilerSession
from repro.pipeline import PassCache


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def permutations(draw):
    n = draw(st.integers(2, 3))
    image = draw(st.permutations(tuple(range(1 << n))))
    return BitPermutation(list(image))


@st.composite
def truth_tables(draw):
    n = draw(st.integers(2, 3))
    bits = draw(st.integers(0, (1 << (1 << n)) - 1))
    return TruthTable(n, bits)


def _gates(result):
    """Canonical gate-for-gate signature of a compilation result."""
    if result.circuit is not None:
        return ("quantum", result.circuit.gates)
    return ("reversible", result.reversible.gates)


def assert_paths_agree(workload, target):
    """Compile one workload through every execution path and compare.

    Paths: (1) sync and uncached — the reference; (2) async batched
    over a shared in-memory cache, twice in one batch so the second
    job replays; (3) cold disk-backed cache; (4) warm cache after a
    gc() sweep evicted most disk entries; (5) pure disk replay in a
    fresh cache instance.
    """
    reference = _gates(repro.compile(workload, target=target, cache=None))

    session = CompilerSession(
        target=target, cache=PassCache(), max_workers=4
    )
    first, second = asyncio.run(
        session.compile_many_async([workload, workload])
    )
    assert _gates(first) == reference
    assert _gates(second) == reference

    tmp = tempfile.mkdtemp(prefix="repro-differential-")
    try:
        cold = repro.compile(workload, target=target, cache=tmp)
        assert _gates(cold) == reference

        survivor = PassCache(path=tmp)
        swept = survivor.gc(max_entries=1)
        assert swept["entries"] <= 1
        after_gc = repro.compile(workload, target=target, cache=survivor)
        assert _gates(after_gc) == reference

        replayed = repro.compile(
            workload, target=target, cache=PassCache(path=tmp)
        )
        assert _gates(replayed) == reference
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


# ----------------------------------------------------------------------
# the differential properties
# ----------------------------------------------------------------------
@given(permutations())
def test_permutations_to_clifford_t(perm):
    assert_paths_agree(perm, "clifford_t")


@given(permutations())
def test_permutations_to_toffoli(perm):
    assert_paths_agree(perm, "toffoli")


@given(truth_tables())
def test_truth_tables_to_clifford_t(table):
    assert_paths_agree(table, "clifford_t")


@given(st.lists(permutations(), min_size=1, max_size=4))
def test_async_batch_order_is_deterministic(perms):
    """Async results must follow input order, not completion order."""
    session = CompilerSession(
        target="clifford_t", cache=PassCache(), max_workers=4
    )
    sync = [session.compile(perm) for perm in perms]
    batched = asyncio.run(session.compile_many_async(perms))
    assert [_gates(r) for r in batched] == [_gates(r) for r in sync]

"""Shared non-fixture test helpers (importable as a plain module).

Kept outside ``conftest.py`` so test modules can import it absolutely:
pytest inserts ``tests/`` into ``sys.path`` (rootdir conftest, prepend
import mode), and a uniquely-named module avoids the clash between
``tests/conftest.py`` and ``benchmarks/conftest.py`` when the whole
repository is collected in one run.
"""

import random

import numpy as np

from repro.core.circuit import QuantumCircuit


def random_clifford_t_circuit(num_qubits, num_gates, seed=0):
    """A random circuit over the Clifford+T basis (no measurement)."""
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits)
    one_qubit = ["h", "x", "y", "z", "s", "sdg", "t", "tdg"]
    for _ in range(num_gates):
        if num_qubits >= 2 and rng.random() < 0.35:
            a, b = rng.sample(range(num_qubits), 2)
            if rng.random() < 0.8:
                circuit.cx(a, b)
            else:
                circuit.cz(a, b)
        else:
            getattr(circuit, rng.choice(one_qubit))(
                rng.randrange(num_qubits)
            )
    return circuit


def assert_states_equal(state_a, state_b, atol=1e-9):
    assert state_a.num_qubits == state_b.num_qubits
    fidelity = abs(np.vdot(state_a.data, state_b.data)) ** 2
    assert fidelity > 1 - atol, f"states differ (fidelity {fidelity})"

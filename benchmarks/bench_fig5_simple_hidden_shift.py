"""FIG4/5 — the simple hidden shift instance (Sec. VII).

Paper artifact: the Fig. 4 ProjectQ program for f = x1x2 ^ x3x4 with
s = 1, compiled into the Fig. 5 circuit, which on a noiseless
simulator prints "Shift is 1" deterministically.

Reproduced rows: the measured shift, the determinism of the outcome,
and the Fig. 5 gate census (12 H, 2 X, 4 CZ, 4 measurements).
"""

from conftest import report

from repro.frameworks.projectq import (
    All,
    Compute,
    H,
    MainEngine,
    Measure,
    PhaseOracle,
    Uncompute,
    X,
)


def paper_f(a, b, c, d):
    return (a and b) ^ (c and d)


def run_program(seed=0):
    eng = MainEngine(seed=seed)
    x1, x2, x3, x4 = qubits = eng.allocate_qureg(4)
    with Compute(eng):
        All(H) | qubits
        X | x1
    PhaseOracle(paper_f) | qubits
    Uncompute(eng)
    PhaseOracle(paper_f) | qubits
    All(H) | qubits
    Measure | qubits
    eng.flush()
    shift = 8 * int(x4) + 4 * int(x3) + 2 * int(x2) + int(x1)
    return shift, eng.circuit


def test_fig5_shift_recovery(benchmark):
    shift, circuit = benchmark(run_program)
    ops = circuit.count_ops()
    report(
        "FIG4/5: simple hidden shift (f = x1x2 ^ x3x4, s = 1)",
        [
            ("paper: shift", 1),
            ("measured: shift", shift),
            ("paper: outcome", "deterministic (noiseless)"),
            (
                "measured: outcomes over 10 seeds",
                sorted({run_program(seed)[0] for seed in range(10)}),
            ),
            ("paper Fig.5: H gates", 12),
            ("measured: H gates", ops.get("h", 0)),
            ("paper Fig.5: X gates (shift)", 2),
            ("measured: X gates", ops.get("x", 0)),
            ("paper Fig.5: oracle CZ gates", 4),
            ("measured: CZ gates", ops.get("cz", 0)),
            ("measured: depth", circuit.depth()),
        ],
    )
    assert shift == 1
    assert all(run_program(seed)[0] == 1 for seed in range(10))

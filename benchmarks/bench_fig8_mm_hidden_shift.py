"""FIG7/8 — the Maiorana-McFarland hidden shift instance (Sec. VII).

Paper artifact: the Fig. 7 program (pi = [0,2,3,5,7,1,4,6], h = 0,
s = 5) whose compiled Fig. 8 circuit contains four permutation
subcircuits (pi and its inverse, synthesized with tbs and dbs and
mapped to Clifford+T), an H/X/CZ skeleton, and recovers shift 5.

Reproduced rows: the measured shift, the Clifford+T gate census of the
compiled circuit, and its T-count before/after the tpar pass.
"""

from conftest import report

from repro.boolean.bent import HiddenShiftInstance, MaioranaMcFarland
from repro.boolean.permutation import BitPermutation
from repro.boolean.truth_table import TruthTable
from repro.algorithms.hidden_shift import hidden_shift_circuit, solve_hidden_shift
from repro.mapping.barenco import map_to_clifford_t
from repro.optimization.simplify import cancel_adjacent_gates
from repro.optimization.tpar import tpar_optimize

PAPER_PI = BitPermutation([0, 2, 3, 5, 7, 1, 4, 6])


def paper_instance():
    return HiddenShiftInstance(
        MaioranaMcFarland(PAPER_PI, TruthTable(3)), 5
    )


def solve_mm(instance):
    return solve_hidden_shift(instance, method="mm")


def test_fig8_mm_instance(benchmark):
    instance = paper_instance()
    result = benchmark(solve_mm, instance)

    built = hidden_shift_circuit(instance, method="mm")
    mapped = map_to_clifford_t(built.circuit)
    optimized = cancel_adjacent_gates(
        tpar_optimize(cancel_adjacent_gates(mapped))
    )
    ops = mapped.count_ops()
    report(
        "FIG7/8: MM hidden shift (pi = [0,2,3,5,7,1,4,6], s = 5)",
        [
            ("paper: shift", 5),
            ("measured: shift", result.measured_shift),
            ("measured: success prob", f"{result.probability:.3f}"),
            ("paper Fig.8: gate set", "H, X, T, T', CNOT, CZ"),
            ("measured: Clifford+T?", mapped.is_clifford_t()),
            ("measured: H", ops.get("h", 0)),
            ("measured: X", ops.get("x", 0)),
            ("measured: CNOT", ops.get("cx", 0)),
            ("measured: T + T'", mapped.t_count()),
            ("measured: T after tpar", optimized.t_count()),
            ("measured: total gates", len(mapped.unitary_gates())),
            ("measured: depth", mapped.depth()),
        ],
    )
    assert result.measured_shift == 5
    assert abs(result.probability - 1.0) < 1e-9
    assert mapped.is_clifford_t()
    assert optimized.t_count() <= mapped.t_count()


def test_fig8_all_shifts(benchmark):
    def _run():
        """The same construction recovers every one of the 64 shifts."""
        mm = MaioranaMcFarland(PAPER_PI, TruthTable(3))
        failures = []
        for shift in range(64):
            instance = HiddenShiftInstance(mm, shift)
            result = solve_hidden_shift(instance, method="mm")
            if not result.success:
                failures.append(shift)
        report(
            "FIG7/8 extension: all 64 shifts",
            [
                ("instances", 64),
                ("recovered", 64 - len(failures)),
                ("failures", failures or "none"),
            ],
        )
        assert not failures
    benchmark.pedantic(_run, rounds=1, iterations=1)

"""Compiler facade overhead and sweep caching (PR 3).

Two obligations of the `repro.compile()` front door:

* **Overhead** — the facade (workload detection + target resolution +
  result bundling) adds < 5% wall-clock over the hand-wired
  `flows.eq5(...).run(...)` path it resolves to, measured cache-off so
  the comparison is real compute on both sides.
* **Sweep caching** — a `CompilerSession.sweep` over 8 parameter
  points with the shared pass cache beats the same sweep cold
  (cache=None), because repeated sub-flows (shared generation /
  synthesis prefixes) replay instead of recompute; a repeated sweep
  replays everything.

Timing asserts are skipped on shared CI runners (`CI` env var) where
timers are too noisy; CI still smokes both paths and uploads the
`BENCH_compiler.json` baseline.
"""

import os
import time

from conftest import report

import repro
from repro.compiler import CompilerSession
from repro.pipeline import PassCache, Pipeline, flows

SWEEP_GRID = {
    "hwb": [3, 4],
    "synthesis": ["tbs", "tbs-bidir"],
    "optimization_level": [1, 2],
}


def _best_of(fn, rounds=5):
    """Return the best wall-clock of ``rounds`` runs of ``fn``."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run_facade():
    return repro.compile({"hwb": 4}, target="clifford_t", cache=None)


def run_hand_wired():
    return flows.eq5(hwb=4).run(pipeline=Pipeline(cache=None))


def test_facade_overhead(benchmark):
    facade = benchmark(run_facade)
    direct = run_hand_wired()
    assert facade.circuit.gates == direct.quantum.gates

    facade_s = _best_of(run_facade)
    direct_s = _best_of(run_hand_wired)
    overhead = facade_s / direct_s - 1.0

    report(
        "compile() facade vs hand-wired flows.eq5",
        [
            ("hand-wired best", f"{direct_s * 1e3:.2f}ms"),
            ("facade best", f"{facade_s * 1e3:.2f}ms"),
            ("overhead", f"{overhead * 100:+.2f}%"),
            ("gate-for-gate", facade.circuit.gates == direct.quantum.gates),
        ],
    )
    if benchmark.enabled and not os.environ.get("CI"):
        assert overhead < 0.05, (
            f"facade overhead {overhead * 100:.2f}% exceeds 5%"
        )


def run_sweep_cold():
    session = CompilerSession(cache=None, max_workers=1)
    return session.sweep(SWEEP_GRID)


def test_sweep_with_cache_vs_cold(benchmark):
    cold_s = _best_of(run_sweep_cold, rounds=3)

    def run_sweep_cached():
        session = CompilerSession(cache=PassCache(), max_workers=1)
        first = session.sweep(SWEEP_GRID)
        second = session.sweep(SWEEP_GRID)
        return first, second, session

    (first, second, session) = benchmark(run_sweep_cached)
    warm_started = time.perf_counter()
    repeat = session.sweep(SWEEP_GRID)
    warm_s = time.perf_counter() - warm_started

    assert len(first) == 8
    # >= 1 cache hit per repeated sub-flow: after the first point of
    # each hwb size, the generation stage always replays
    assert first.cache_hits >= len(first) - 2
    # a repeated sweep replays every pass of every point
    assert all(
        point.result.cache_hits == len(point.result.records)
        for point in second
    )
    for cold_point, cached_point in zip(run_sweep_cold(), second):
        assert (
            cold_point.result.circuit.gates
            == cached_point.result.circuit.gates
        )

    report(
        "CompilerSession.sweep: 8 points, shared cache vs cold",
        [
            ("cold sweep best", f"{cold_s * 1e3:.2f}ms"),
            ("warm (all-replay) sweep", f"{warm_s * 1e3:.2f}ms"),
            ("speedup", f"{cold_s / warm_s:.1f}x"),
            ("first-sweep cache hits", first.cache_hits),
            ("cache stats", session.cache_stats()),
        ],
    )
    if benchmark.enabled and not os.environ.get("CI"):
        assert warm_s < cold_s, "cached sweep should beat cold sweep"

"""Compiler facade overhead, sweep caching, async execution (PR 3/4).

Obligations of the `repro.compile()` front door:

* **Overhead** — the facade (workload detection + target resolution +
  result bundling) adds < 5% wall-clock over the hand-wired
  `flows.eq5(...).run(...)` path it resolves to, measured cache-off so
  the comparison is real compute on both sides.
* **Sweep caching** — a `CompilerSession.sweep` over 8 parameter
  points with the shared pass cache beats the same sweep cold
  (cache=None), because repeated sub-flows (shared generation /
  synthesis prefixes) replay instead of recompute; a repeated sweep
  replays everything.
* **Async + bounded cache** — `sweep_async` over 32 parameter points
  on a warm disk-backed cache beats the sequential cold sweep
  (combined caching + overlapped-execution win; on a single-core
  runner the overlap itself is GIL-bound, so the margin is carried by
  the warm tier), and a budgeted cache (`max_entries=8` < 32 points)
  records evictions while still compiling every point gate-for-gate
  identically.
* **Emitter matrix (PR 5)** — one compiled workload renders in every
  format registered with `repro.emit`; per-format timings land in
  `BENCH_compiler.json` `extra_info` (`emit_<format>_s`) and the
  qasm2 output must parse back gate-for-gate (the round-trip
  obligation of the registry refactor).
* **Resilience overhead (PR 6)** — running the same warm eq5 sweep
  with the deadline + retry wrappers enabled (`job_timeout=`,
  `retry=`) costs < 2% wall-clock over the plain warm sweep, and the
  results stay gate-identical; the measured overhead lands in
  `extra_info` (`resilience_overhead`).
* **Verification overhead (PR 7)** — the same warm eq5 sweep with
  `verify="auto"` costs < 15% wall-clock over verify-off, every
  point verifies with each pass record naming its tier, and the
  measured overhead (plus the first fully-checked sweep) lands in
  `extra_info` (`verify_overhead`, `verify_first_sweep_s`).

Timing asserts are skipped on shared CI runners (`CI` env var) where
timers are too noisy; CI still smokes both paths and uploads the
`BENCH_compiler.json` baseline (including the async/eviction numbers
in `extra_info`).
"""

import asyncio
import os
import time

from conftest import report

import repro
from repro import emit
from repro.compiler import CompilerSession
from repro.pipeline import PassCache, Pipeline, flows

SWEEP_GRID = {
    "hwb": [3, 4],
    "synthesis": ["tbs", "tbs-bidir"],
    "optimization_level": [1, 2],
}


def _best_of(fn, rounds=5):
    """Return the best wall-clock of ``rounds`` runs of ``fn``."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run_facade():
    return repro.compile({"hwb": 4}, target="clifford_t", cache=None)


def run_hand_wired():
    return flows.eq5(hwb=4).run(pipeline=Pipeline(cache=None))


def test_facade_overhead(benchmark):
    facade = benchmark(run_facade)
    direct = run_hand_wired()
    assert facade.circuit.gates == direct.quantum.gates

    facade_s = _best_of(run_facade)
    direct_s = _best_of(run_hand_wired)
    overhead = facade_s / direct_s - 1.0

    report(
        "compile() facade vs hand-wired flows.eq5",
        [
            ("hand-wired best", f"{direct_s * 1e3:.2f}ms"),
            ("facade best", f"{facade_s * 1e3:.2f}ms"),
            ("overhead", f"{overhead * 100:+.2f}%"),
            ("gate-for-gate", facade.circuit.gates == direct.quantum.gates),
        ],
    )
    if benchmark.enabled and not os.environ.get("CI"):
        assert overhead < 0.05, (
            f"facade overhead {overhead * 100:.2f}% exceeds 5%"
        )


def run_sweep_cold():
    session = CompilerSession(cache=None, max_workers=1)
    return session.sweep(SWEEP_GRID)


def test_sweep_with_cache_vs_cold(benchmark):
    cold_s = _best_of(run_sweep_cold, rounds=3)

    def run_sweep_cached():
        session = CompilerSession(cache=PassCache(), max_workers=1)
        first = session.sweep(SWEEP_GRID)
        second = session.sweep(SWEEP_GRID)
        return first, second, session

    (first, second, session) = benchmark(run_sweep_cached)
    warm_started = time.perf_counter()
    repeat = session.sweep(SWEEP_GRID)
    warm_s = time.perf_counter() - warm_started

    assert len(first) == 8
    # >= 1 cache hit per repeated sub-flow: after the first point of
    # each hwb size, the generation stage always replays
    assert first.cache_hits >= len(first) - 2
    # a repeated sweep replays every pass of every point
    assert all(
        point.result.cache_hits == len(point.result.records)
        for point in second
    )
    for cold_point, cached_point in zip(run_sweep_cold(), second):
        assert (
            cold_point.result.circuit.gates
            == cached_point.result.circuit.gates
        )

    report(
        "CompilerSession.sweep: 8 points, shared cache vs cold",
        [
            ("cold sweep best", f"{cold_s * 1e3:.2f}ms"),
            ("warm (all-replay) sweep", f"{warm_s * 1e3:.2f}ms"),
            ("speedup", f"{cold_s / warm_s:.1f}x"),
            ("first-sweep cache hits", first.cache_hits),
            ("cache stats", session.cache_stats()),
        ],
    )
    if benchmark.enabled and not os.environ.get("CI"):
        assert warm_s < cold_s, "cached sweep should beat cold sweep"


#: 2 (sizes) x 2 (synthesis) x 4 (levels) x 2 (mapping) = 32 points.
ASYNC_SWEEP_GRID = {
    "hwb": [3, 4],
    "synthesis": ["tbs", "tbs-bidir"],
    "optimization_level": [0, 1, 2, 3],
    "relative_phase": [True, False],
}


def test_async_sweep_and_bounded_cache(benchmark, tmp_path):
    # sequential cold reference: one point at a time, no cache
    sequential = CompilerSession(cache=None, max_workers=1)
    baseline = sequential.sweep(ASYNC_SWEEP_GRID)
    assert len(baseline) == 32
    sequential_cold_s = _best_of(
        lambda: sequential.sweep(ASYNC_SWEEP_GRID), rounds=2
    )

    # async sweep over a warm disk-backed cache
    cache = PassCache(path=str(tmp_path / "warm"))
    session = CompilerSession(cache=cache, max_workers=8)
    session.sweep(ASYNC_SWEEP_GRID)  # warm both tiers

    def run_async_warm():
        return asyncio.run(
            session.sweep_async(ASYNC_SWEEP_GRID, max_in_flight=8)
        )

    swept = benchmark(run_async_warm)
    async_warm_s = _best_of(run_async_warm, rounds=3)

    # deterministic order and gate-for-gate agreement with sequential
    assert [p.params for p in swept] == [p.params for p in baseline]
    for cold_point, warm_point in zip(baseline, swept):
        assert (
            cold_point.result.circuit.gates
            == warm_point.result.circuit.gates
        )

    # a bounded cache (max_entries < sweep size) must evict and still
    # compile every point correctly
    bounded = PassCache(path=str(tmp_path / "bounded"), max_entries=8)
    bounded_session = CompilerSession(cache=bounded, max_workers=8)
    bounded_sweep = asyncio.run(
        bounded_session.sweep_async(ASYNC_SWEEP_GRID)
    )
    bounded_stats = bounded.stats()
    assert bounded_stats["evictions"] > 0
    assert bounded_stats["disk_entries"] <= 8
    for cold_point, bounded_point in zip(baseline, bounded_sweep):
        assert (
            cold_point.result.circuit.gates
            == bounded_point.result.circuit.gates
        )

    speedup = sequential_cold_s / async_warm_s
    benchmark.extra_info["points"] = len(baseline)
    benchmark.extra_info["sequential_cold_s"] = sequential_cold_s
    benchmark.extra_info["async_warm_s"] = async_warm_s
    benchmark.extra_info["speedup_vs_sequential"] = speedup
    benchmark.extra_info["bounded_max_entries"] = 8
    benchmark.extra_info["bounded_evictions"] = bounded_stats["evictions"]
    benchmark.extra_info["bounded_disk_evictions"] = bounded_stats[
        "disk_evictions"
    ]
    benchmark.extra_info["bounded_disk_bytes"] = bounded_stats["disk_bytes"]

    report(
        "sweep_async: 32 points, warm cache vs sequential cold",
        [
            ("sequential cold best", f"{sequential_cold_s * 1e3:.2f}ms"),
            ("async warm best", f"{async_warm_s * 1e3:.2f}ms"),
            ("speedup", f"{speedup:.1f}x"),
            ("bounded evictions", bounded_stats["evictions"]),
            ("bounded disk entries", bounded_stats["disk_entries"]),
            ("gate-for-gate (warm+bounded)", True),
        ],
    )
    if benchmark.enabled and not os.environ.get("CI"):
        assert async_warm_s < sequential_cold_s, (
            f"async warm sweep ({async_warm_s * 1e3:.1f}ms) should beat "
            f"sequential cold ({sequential_cold_s * 1e3:.1f}ms)"
        )


def test_resilience_overhead(benchmark):
    """Deadline + retry wrappers must be nearly free on the hot path.

    Obligations (PR 6): a warm eq5 sweep run with `job_timeout=` and
    `retry=` enabled stays gate-identical to the plain warm sweep and
    costs < 2% extra wall-clock; the measured numbers land in the
    committed `BENCH_compiler.json` (`extra_info["resilience_overhead"]`
    with the plain/wrapped timings alongside).
    """
    cache = PassCache()
    session = CompilerSession(cache=cache, max_workers=1)
    plain = session.sweep(SWEEP_GRID)  # warm the cache
    assert len(plain) == 8

    def run_warm_plain():
        return session.sweep(SWEEP_GRID)

    def run_warm_wrapped():
        return session.sweep(SWEEP_GRID, job_timeout=60, retry=2)

    wrapped = benchmark(run_warm_wrapped)
    # wrappers are behaviorally invisible: same points, same gates
    assert [p.params for p in wrapped] == [p.params for p in plain]
    for plain_point, wrapped_point in zip(plain, wrapped):
        assert (
            plain_point.result.circuit.gates
            == wrapped_point.result.circuit.gates
        )

    # interleave the two measurements so clock drift and cache-state
    # luck hit both sides equally — the overhead itself is tiny, so
    # the comparison must not be
    plain_s = wrapped_s = float("inf")
    for _ in range(15):
        started = time.perf_counter()
        run_warm_plain()
        plain_s = min(plain_s, time.perf_counter() - started)
        started = time.perf_counter()
        run_warm_wrapped()
        wrapped_s = min(wrapped_s, time.perf_counter() - started)
    overhead = wrapped_s / plain_s - 1.0

    benchmark.extra_info["warm_plain_s"] = plain_s
    benchmark.extra_info["warm_wrapped_s"] = wrapped_s
    benchmark.extra_info["resilience_overhead"] = overhead

    report(
        "resilience wrappers on a warm eq5 sweep (deadline + retry)",
        [
            ("warm plain best", f"{plain_s * 1e3:.2f}ms"),
            ("warm wrapped best", f"{wrapped_s * 1e3:.2f}ms"),
            ("overhead", f"{overhead * 100:+.2f}%"),
            ("gate-for-gate", True),
        ],
    )
    if benchmark.enabled and not os.environ.get("CI"):
        assert overhead < 0.02, (
            f"resilience overhead {overhead * 100:.2f}% exceeds 2%"
        )


def test_verify_overhead(benchmark):
    """Tiered verification must stay cheap on the warm path.

    Obligations (PR 7): a warm eq5 sweep compiled with
    `verify="auto"` costs < 15% extra wall-clock over the same warm
    sweep with verification off, stays gate-identical, and every
    point comes back `verified` with each pass record naming its
    tier.  The steady state rides the cache's `verified` flag — an
    entry checked once replays as tier `cache` — while the first
    verified sweep (real tier checks on every replay) is recorded
    separately in `extra_info["verify_first_sweep_s"]`.
    """
    cache = PassCache()
    plain_session = CompilerSession(cache=cache, max_workers=1)
    verified_session = CompilerSession(
        cache=cache, max_workers=1, verify="auto"
    )
    plain = plain_session.sweep(SWEEP_GRID)  # warm the cache unverified
    assert len(plain) == 8

    started = time.perf_counter()
    verified = verified_session.sweep(SWEEP_GRID)
    first_verified_s = time.perf_counter() - started

    # verification is behaviorally invisible: same points, same gates
    assert [p.params for p in verified] == [p.params for p in plain]
    for plain_point, verified_point in zip(plain, verified):
        assert (
            plain_point.result.circuit.gates
            == verified_point.result.circuit.gates
        )
        assert verified_point.result.verified
        for record in verified_point.result.records:
            assert record.verification is not None
            assert record.verification.tier

    def run_warm_plain():
        return plain_session.sweep(SWEEP_GRID)

    def run_warm_verified():
        return verified_session.sweep(SWEEP_GRID)

    benchmark(run_warm_verified)

    # interleave the measurements so clock drift hits both sides
    plain_s = verified_s = float("inf")
    for _ in range(15):
        started = time.perf_counter()
        run_warm_plain()
        plain_s = min(plain_s, time.perf_counter() - started)
        started = time.perf_counter()
        run_warm_verified()
        verified_s = min(verified_s, time.perf_counter() - started)
    overhead = verified_s / plain_s - 1.0

    tiers = sorted(
        {
            record.verification.tier
            for point in verified
            for record in point.result.records
        }
    )
    benchmark.extra_info["warm_plain_s"] = plain_s
    benchmark.extra_info["warm_verified_s"] = verified_s
    benchmark.extra_info["verify_first_sweep_s"] = first_verified_s
    benchmark.extra_info["verify_overhead"] = overhead
    benchmark.extra_info["verify_tiers"] = tiers

    report(
        "tiered verification on a warm eq5 sweep (verify=auto)",
        [
            ("warm plain best", f"{plain_s * 1e3:.2f}ms"),
            ("warm verified best", f"{verified_s * 1e3:.2f}ms"),
            ("first verified sweep", f"{first_verified_s * 1e3:.2f}ms"),
            ("overhead", f"{overhead * 100:+.2f}%"),
            ("tiers used", ", ".join(tiers)),
            ("all points verified", True),
        ],
    )
    if benchmark.enabled and not os.environ.get("CI"):
        assert overhead < 0.15, (
            f"tiered-verify overhead {overhead * 100:.2f}% exceeds 15%"
        )


def test_emitter_matrix(benchmark):
    """Render one compiled workload in every registered format.

    Obligations: every `repro.emit.formats()` backend emits the hwb4
    Clifford+T circuit, the per-format wall-clock lands in the
    committed `BENCH_compiler.json` (`extra_info["emit_<format>_s"]`),
    and the qasm2 text re-imports gate-for-gate (round-trip).
    """
    result = repro.compile({"hwb": 4}, target="clifford_t", cache=None)
    circuit = result.circuit
    formats = emit.formats()

    def run_matrix():
        return {name: emit.emit(circuit, name) for name in formats}

    texts = benchmark(run_matrix)
    assert set(texts) == set(formats)
    assert all(texts.values())

    rows = []
    for name in formats:
        per_format_s = _best_of(lambda: emit.emit(circuit, name))
        benchmark.extra_info[f"emit_{name}_s"] = per_format_s
        rows.append(
            (f"emit {name}", f"{per_format_s * 1e6:.0f}us "
             f"({len(texts[name].splitlines())} lines)")
        )

    reimported = emit.parse(texts["qasm2"], "qasm2")
    assert reimported.gates == circuit.gates
    assert emit.emit(reimported, "qasm2") == texts["qasm2"]
    rows.append(("qasm2 round-trip", "gate-for-gate"))

    report(
        f"emitter matrix: hwb4 Clifford+T x {len(formats)} formats",
        rows,
    )

"""EQ5 — the RevKit command pipeline (Sec. VI, Eq. (5)).

Paper artifact: the command script

    revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c

which generates the hidden-weighted-bit function on 4 inputs,
synthesizes it with transformation-based synthesis, simplifies the
cascade, maps to Clifford+T with relative-phase Toffolis, optimizes
the T-count with T-par, and prints statistics.

Reproduced rows: the per-stage gate statistics.  The paper prints no
absolute numbers for this pipeline, so the shape obligations are:
every stage preserves the function, revsimp never grows the cascade,
rptm emits pure Clifford+T, and tpar strictly reduces T-count.

Since PR 2 the script executes through the pass manager: the timed
kernel runs the :func:`repro.pipeline.flows.eq5` preset (with caching
disabled so the measurement is real compute), and the shell path is
asserted to produce the identical circuit gate-for-gate.
"""

from conftest import report

from repro.boolean.permutation import BitPermutation
from repro.core.statistics import circuit_statistics
from repro.pipeline import Pipeline, flows
from repro.revkit import RevKitShell


def run_pipeline():
    pipeline = Pipeline(cache=None)
    return flows.eq5(hwb=4).run(pipeline=pipeline)


def test_eq5_pipeline(benchmark):
    result = benchmark(run_pipeline)

    records = {record.name: record for record in result.records}
    tbs_gates = records["tbs"].after["mct_gates"]
    simp_gates = records["revsimp"].after["mct_gates"]
    assert result.reversible.permutation() == BitPermutation.hidden_weighted_bit(4)
    mapped_record = records["rptm"]
    t_before = mapped_record.after["t_count"]
    t_after = records["tpar"].after["t_count"]
    stats = result.state.artifacts["statistics"]

    # the RevKit shell dispatches the same passes: identical circuit
    shell = RevKitShell(pipeline=Pipeline(cache=None))
    shell.run("revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c")
    assert shell.quantum.gates == result.quantum.gates
    assert circuit_statistics(shell.quantum).as_dict() == stats.as_dict()

    report(
        "EQ5: revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c",
        [
            ("tbs: MCT gates", tbs_gates),
            ("revsimp: MCT gates", simp_gates),
            ("revsimp preserves hwb4", True),
            ("rptm: Clifford+T?", mapped_record.details["clifford_t"]),
            ("rptm: qubits", mapped_record.after["qubits"]),
            ("rptm: T-count", t_before),
            ("tpar: T-count", t_after),
            ("final gates", stats.num_gates),
            ("final depth", stats.depth),
            ("final T-depth", stats.t_depth),
            ("final 2q gates", stats.two_qubit_count),
            ("pipeline wall-clock", f"{result.total_seconds * 1e3:.2f}ms"),
        ],
    )
    assert simp_gates <= tbs_gates
    assert mapped_record.details["clifford_t"]
    assert t_after < t_before
    assert result.quantum.is_clifford_t()


def test_eq5_pipeline_other_generators(benchmark):
    def _run():
        """Same preset over the other revgen functions: the invariants
        hold for every benchmark function, not just hwb4."""
        rows = []
        for label, options in (
            ("--hwb 5", {"hwb": 5}),
            ("--adder 4 --const 3", {"adder": 4, "const": 3}),
            ("--rotate 4", {"rotate": 4}),
            ("--gray 4", {"gray": 4}),
            ("--random 4 --seed 11", {"random": 4, "seed": 11}),
        ):
            result = flows.eq5(**options).run(
                pipeline=Pipeline(cache=None, verify=True)
            )
            assert result.reversible.permutation() == result.state.function
            before = result.record("rptm").after["t_count"]
            after = result.record("tpar").after["t_count"]
            rows.append(
                (f"revgen {label}", f"MCT={len(result.reversible)} "
                 f"T: {before} -> {after}")
            )
            assert after <= before
        report("EQ5 extension: pipeline across generators", rows)
    benchmark.pedantic(_run, rounds=1, iterations=1)


def test_eq5_cache_replays(benchmark):
    def _run():
        """A second identical flow run must replay every pass from the
        content-keyed cache without recomputing."""
        from repro.pipeline import PassCache

        pipeline = Pipeline(cache=PassCache())
        cold = flows.eq5(hwb=4).run(pipeline=pipeline)
        warm = flows.eq5(hwb=4).run(pipeline=pipeline)
        assert [record.cache_hit for record in cold.records] == [False] * 6
        assert [record.cache_hit for record in warm.records] == [True] * 6
        assert warm.quantum.gates == cold.quantum.gates
        report(
            "EQ5 extension: pass-result cache",
            [
                ("cold run wall-clock", f"{cold.total_seconds * 1e3:.2f}ms"),
                ("warm run wall-clock", f"{warm.total_seconds * 1e3:.2f}ms"),
                ("cache", pipeline.cache.stats()),
            ],
        )
    benchmark.pedantic(_run, rounds=1, iterations=1)

"""EQ5 — the RevKit command pipeline (Sec. VI, Eq. (5)).

Paper artifact: the command script

    revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c

which generates the hidden-weighted-bit function on 4 inputs,
synthesizes it with transformation-based synthesis, simplifies the
cascade, maps to Clifford+T with relative-phase Toffolis, optimizes
the T-count with T-par, and prints statistics.

Reproduced rows: the per-stage gate statistics.  The paper prints no
absolute numbers for this pipeline, so the shape obligations are:
every stage preserves the function, revsimp never grows the cascade,
rptm emits pure Clifford+T, and tpar strictly reduces T-count.
"""

from conftest import report

from repro.boolean.permutation import BitPermutation
from repro.core.statistics import circuit_statistics
from repro.revkit import RevKitShell


def run_pipeline():
    shell = RevKitShell()
    shell.run("revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c")
    return shell


def test_eq5_pipeline(benchmark):
    shell = benchmark(run_pipeline)

    # re-run stage by stage for the report
    stage = RevKitShell()
    stage.execute("revgen --hwb 4")
    stage.execute("tbs")
    tbs_gates = len(stage.reversible)
    stage.execute("revsimp")
    simp_gates = len(stage.reversible)
    assert stage.reversible.permutation() == BitPermutation.hidden_weighted_bit(4)
    stage.execute("rptm")
    mapped = stage.quantum
    t_before = mapped.t_count()
    stage.execute("tpar")
    t_after = stage.quantum.t_count()
    stats = circuit_statistics(stage.quantum)

    report(
        "EQ5: revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c",
        [
            ("tbs: MCT gates", tbs_gates),
            ("revsimp: MCT gates", simp_gates),
            ("revsimp preserves hwb4", True),
            ("rptm: Clifford+T?", mapped.is_clifford_t()),
            ("rptm: qubits", mapped.num_qubits),
            ("rptm: T-count", t_before),
            ("tpar: T-count", t_after),
            ("final gates", stats.num_gates),
            ("final depth", stats.depth),
            ("final T-depth", stats.t_depth),
            ("final 2q gates", stats.two_qubit_count),
        ],
    )
    assert simp_gates <= tbs_gates
    assert mapped.is_clifford_t()
    assert t_after < t_before
    assert shell.quantum.is_clifford_t()


def test_eq5_pipeline_other_generators(benchmark):
    def _run():
        """Same pipeline over the other revgen functions: the invariants
        hold for every benchmark function, not just hwb4."""
        rows = []
        for spec in ("--hwb 5", "--adder 4 --const 3", "--rotate 4", "--gray 4",
                     "--random 4 --seed 11"):
            shell = RevKitShell()
            shell.execute(f"revgen {spec}")
            shell.execute("tbs")
            shell.execute("revsimp")
            assert "matches specification: True" in shell.execute("simulate")
            shell.execute("rptm")
            before = shell.quantum.t_count()
            shell.execute("tpar")
            after = shell.quantum.t_count()
            rows.append(
                (f"revgen {spec}", f"MCT={len(shell.reversible)} "
                 f"T: {before} -> {after}")
            )
            assert after <= before
        report("EQ5 extension: pipeline across generators", rows)
    benchmark.pedantic(_run, rounds=1, iterations=1)

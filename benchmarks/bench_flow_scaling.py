"""EXT-FLOW — compiled cost of the full flow vs problem size.

The paper's thesis is that the *automatic* flow scales where manual
compilation does not (Sec. IV).  This bench compiles hidden-shift
instances of growing width end to end — structured MM oracles
(synthesis + mapping + optimization) — and reports the resource-counter
costs, far past the widths anyone would compile by hand.  Simulation
is only run where feasible (<= 12 variables) to confirm correctness;
beyond that, the resource counter alone scales.
"""

from conftest import report

from repro.algorithms.hidden_shift import hidden_shift_circuit, solve_hidden_shift
from repro.boolean.bent import HiddenShiftInstance
from repro.mapping.barenco import map_to_clifford_t
from repro.optimization.simplify import cancel_adjacent_gates
from repro.optimization.tpar import tpar_optimize
from repro.simulator.resources import ResourceCounter


def compile_instance(half_vars, seed=0):
    instance = HiddenShiftInstance.random(half_vars, seed=seed)
    built = hidden_shift_circuit(instance, method="mm")
    mapped = cancel_adjacent_gates(
        tpar_optimize(cancel_adjacent_gates(map_to_clifford_t(built.circuit)))
    )
    return instance, mapped


def test_flow_scaling(benchmark):
    benchmark.pedantic(
        compile_instance, args=(3,), rounds=3, iterations=1
    )

    rows = [("instance", "qubits | gates | T | depth | verified")]
    counter = ResourceCounter()
    for half_vars in (2, 3, 4, 5):
        n = 2 * half_vars
        instance, mapped = compile_instance(half_vars, seed=half_vars)
        estimate = counter.run(mapped)
        if n <= 12:
            result = solve_hidden_shift(instance, method="mm")
            verified = result.success
            assert verified
        else:
            verified = "(too wide to simulate)"
        rows.append(
            (
                f"MM n={n} vars",
                f"{estimate.num_qubits:3d}    | {estimate.total_gates:5d} | "
                f"{estimate.t_count:4d} | {estimate.depth:5d} | {verified}",
            )
        )
    report("EXT-FLOW: automatic compilation across widths", rows)

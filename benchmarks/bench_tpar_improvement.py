"""CLAIM-TPAR — T-count optimization after mapping (Sec. VI).

Paper claim: the Eq. (5) pipeline "optimizes the T count using the
T-par algorithm presented in [69]" — i.e. phase folding over
{CNOT, T} regions reduces the T cost of mapped Toffoli networks; the
relative-phase mapping [42] likewise reduces T versus naive mapping.

Reproduced series: T-count of naive mapping vs relative-phase mapping
vs tpar-optimized, across benchmark functions, plus the matroid-
partition T-depth estimate.
"""

from conftest import report

from repro.boolean.permutation import BitPermutation
from repro.mapping.barenco import map_to_clifford_t
from repro.optimization.simplify import cancel_adjacent_gates
from repro.optimization.tpar import t_depth_estimate, tpar_optimize
from repro.revkit import generators
from repro.synthesis.transformation import transformation_based_synthesis


def workloads():
    return [
        ("hwb4", generators.hwb(4)),
        ("hwb5", generators.hwb(5)),
        ("adder4+3", generators.modular_adder(4, 3)),
        ("rot5", generators.bit_rotation(5, 2)),
        ("rand4", generators.random_permutation(4, seed=8)),
        ("rand5", generators.random_permutation(5, seed=8)),
    ]


def optimize(circuit):
    return cancel_adjacent_gates(
        tpar_optimize(cancel_adjacent_gates(circuit))
    )


def test_tpar_improvement(benchmark):
    reversible = transformation_based_synthesis(generators.hwb(4))
    mapped = map_to_clifford_t(reversible)
    benchmark(optimize, mapped)

    rows = [
        (
            "workload",
            "T naive -> T rptm -> T tpar   (T-depth est.)",
        )
    ]
    total_naive = total_rptm = total_tpar = 0
    for name, perm in workloads():
        reversible = transformation_based_synthesis(perm)
        naive = map_to_clifford_t(reversible, relative_phase=False)
        rptm = map_to_clifford_t(reversible, relative_phase=True)
        optimized = optimize(rptm)
        t_n, t_r, t_o = naive.t_count(), rptm.t_count(), optimized.t_count()
        total_naive += t_n
        total_rptm += t_r
        total_tpar += t_o
        rows.append(
            (
                name,
                f"{t_n:4d} -> {t_r:4d} -> {t_o:4d}"
                f"   ({t_depth_estimate(optimized):3d})",
            )
        )
        assert t_r <= t_n, f"{name}: relative-phase mapping regressed"
        assert t_o <= t_r, f"{name}: tpar regressed"
    rows.append(
        (
            "TOTAL",
            f"{total_naive:4d} -> {total_rptm:4d} -> {total_tpar:4d}",
        )
    )
    improvement = 1 - total_tpar / total_naive
    rows.append(("overall T reduction", f"{improvement:.1%}"))
    report("CLAIM-TPAR: T-count across the mapping/optimization ladder", rows)
    assert total_tpar < total_rptm < total_naive
    assert improvement > 0.15  # the ladder must save a solid margin

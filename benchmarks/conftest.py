"""Shared helpers for the benchmark harness.

Every bench prints the paper-vs-measured rows it regenerates (visible
with ``pytest benchmarks/ --benchmark-only -s``) and feeds one
representative kernel to pytest-benchmark for timing.
"""

import pytest


def report(title, rows):
    """Print a small aligned table of (label, value) pairs."""
    print(f"\n=== {title} ===")
    width = max((len(str(label)) for label, _ in rows), default=0)
    for label, value in rows:
        print(f"  {str(label):<{width}}  {value}")

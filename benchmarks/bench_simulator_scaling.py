"""CLAIM-SIM — classical simulation reach (Sec. I).

Paper claims in shape: full state-vector simulation is exponential in
qubit count (feasible to ~45 qubits on supercomputers, ~30 on a
workstation; here: laptop-scale widths), while restricted circuit
classes (low-depth / Clifford-dominated, cf. [24], [72]) simulate far
beyond that — our stabilizer engine handles hundreds of qubits.

Reproduced series: statevector seconds-per-layer vs qubit count
(exponential growth), stabilizer engine at widths impossible for the
statevector, and the verification cross-check between both engines.
"""

import os
import time

from conftest import report

from repro.core.circuit import QuantumCircuit
from repro.simulator.stabilizer import StabilizerSimulator
from repro.simulator.statevector import Statevector, StatevectorSimulator


def layered_circuit(num_qubits, layers=3):
    circ = QuantumCircuit(num_qubits)
    for _ in range(layers):
        for q in range(num_qubits):
            circ.h(q)
        for q in range(num_qubits - 1):
            circ.cx(q, q + 1)
    return circ


def test_statevector_scaling(benchmark):
    benchmark(
        lambda: StatevectorSimulator().statevector(layered_circuit(12))
    )

    rows = [("paper: cost doubles per added qubit", "")]
    timings = []
    for n in (8, 10, 12, 14, 16, 18):
        circ = layered_circuit(n)
        start = time.perf_counter()
        StatevectorSimulator().statevector(circ)
        elapsed = time.perf_counter() - start
        per_gate = elapsed / len(circ)
        timings.append((n, elapsed))
        rows.append(
            (
                f"n = {n:2d}",
                f"total = {elapsed * 1000:9.2f} ms"
                f"  per gate = {per_gate * 1e6:9.1f} us"
                f"  state = 2^{n} amplitudes",
            )
        )
    report("CLAIM-SIM: statevector scaling", rows)
    # exponential shape: 18 qubits must cost much more than 8 qubits
    assert timings[-1][1] > 4 * timings[0][1]


def _time_evolution(n, use_kernels, repeats=3):
    """Best-of-``repeats`` wall time of one layered_circuit(n) evolution."""
    circ = layered_circuit(n)
    best = float("inf")
    for _ in range(repeats):
        state = Statevector(n)
        state.use_kernels = use_kernels
        start = time.perf_counter()
        state.evolve(circ)
        best = min(best, time.perf_counter() - start)
    return best


def test_kernels_vs_dense(benchmark):
    """In-place kernel + fusion path vs the seed tensordot pipeline.

    The kernel path (bit-sliced views, gate fusion, matmul blocks) must
    be at least 5x faster than the dense seed implementation on the
    layered_circuit(16) series.
    """

    def _run():
        rows = [("series: layered_circuit(n), kernels vs dense seed path", "")]
        speedups = {}
        for n in (8, 10, 12, 14, 16):
            fast = _time_evolution(n, use_kernels=True)
            dense = _time_evolution(n, use_kernels=False)
            speedups[n] = dense / fast
            rows.append(
                (
                    f"n = {n:2d}",
                    f"kernels = {fast * 1000:8.2f} ms"
                    f"  dense = {dense * 1000:8.2f} ms"
                    f"  speedup = {dense / fast:5.1f}x",
                )
            )
        report("CLAIM-SIM: kernel layer speedup", rows)
        # the hard perf gate only applies to real benchmark runs on
        # dedicated hardware; --benchmark-disable smoke runs and noisy
        # shared CI runners (CI env var) just exercise the code path
        if benchmark.enabled and not os.environ.get("CI"):
            assert speedups[16] >= 5.0, (
                f"kernel path only {speedups[16]:.1f}x faster at n=16"
            )

    benchmark.pedantic(_run, rounds=1, iterations=1)


def test_backend_matrix(benchmark):
    def _run():
        """Per-array-backend timings of the layered_circuit(16) series.

        Every registered array backend (NumPy always; numba when the
        optional dependency is installed) evolves the same circuit;
        the amplitudes must agree to 1e-12 and the per-backend wall
        times land in the committed ``BENCH_simulator.json`` baseline
        so later PRs can track NumPy-path regressions and the JIT
        backend's trajectory.
        """
        import numpy as np

        from repro.simulator import backends as array_backends

        circ = layered_circuit(16)
        rows = [("series: layered_circuit(16), one row per array backend", "")]
        matrix = {}
        reference = None
        for name in array_backends.backends():
            best = float("inf")
            final = None
            for _ in range(3):  # best-of-3 also absorbs JIT warm-up
                sim = StatevectorSimulator(backend=name)
                start = time.perf_counter()
                final = sim.statevector(circ)
                best = min(best, time.perf_counter() - start)
            matrix[name] = best
            if reference is None:
                reference = final
            else:
                assert np.allclose(final, reference, atol=1e-12), name
            rows.append(
                (f"backend = {name}", f"best of 3 = {best * 1000:8.2f} ms")
            )
        for name in ("numba", "numba_parallel"):
            if name not in matrix:
                rows.append(
                    (f"backend = {name}",
                     "not installed (optional) — skipped")
                )
        report("CLAIM-SIM: array-backend timing matrix", rows)
        benchmark.extra_info["backend_matrix_seconds"] = {
            name: round(t, 4) for name, t in matrix.items()
        }
        benchmark.extra_info["backend_matrix_note"] = (
            "layered_circuit(16) best-of-3 per registered array backend; "
            "numba rows appear only where the optional dependency is "
            "installed (never a hard requirement); at n=16 "
            "numba_parallel sits below its size threshold, so its row "
            "must track the serial numba row"
        )
        assert "numpy" in matrix
        # threshold-fallback gate: at 2**16 amplitudes numba_parallel
        # delegates to the serial tier, so the two numba rows must be
        # within 10% of each other (local real runs only, PR 1 style)
        if (
            benchmark.enabled
            and not os.environ.get("CI")
            and "numba" in matrix
            and "numba_parallel" in matrix
        ):
            assert matrix["numba_parallel"] <= matrix["numba"] * 1.10, (
                f"numba_parallel {matrix['numba_parallel']:.4f}s not "
                f"within 10% of numba {matrix['numba']:.4f}s at n=16 — "
                "the size-threshold fallback is not engaging"
            )

    benchmark.pedantic(_run, rounds=1, iterations=1)


def test_parallel_sweeps(benchmark):
    def _run():
        """Parallel prange sweeps vs NumPy on a 22-qubit layered circuit.

        Records the numba_parallel speedup on ``layered_circuit(22)``
        (2**22 amplitudes — far above the parallel size threshold) in
        the committed baseline.  The speedup itself is asserted only on
        local multi-core real runs, per the PR 1 convention: CI
        runners and single-core boxes record the numbers without
        gating on them.
        """
        import numpy as np

        from repro.simulator import backends as array_backends

        circ = layered_circuit(22)
        rows = [("series: layered_circuit(22), parallel vs numpy", "")]
        timings = {}
        reference = None
        names = ["numpy"]
        if "numba_parallel" in array_backends.backends():
            names.append("numba_parallel")
        for name in names:
            best = float("inf")
            final = None
            for _ in range(2):  # best-of-2 absorbs JIT warm-up
                sim = StatevectorSimulator(backend=name)
                start = time.perf_counter()
                final = sim.statevector(circ)
                best = min(best, time.perf_counter() - start)
            timings[name] = best
            if reference is None:
                reference = final
            else:
                assert np.allclose(final, reference, atol=1e-12), name
            rows.append(
                (f"backend = {name}", f"best of 2 = {best * 1000:8.2f} ms")
            )
        if "numba_parallel" in timings:
            speedup = timings["numpy"] / timings["numba_parallel"]
            rows.append(
                ("parallel speedup", f"{speedup:5.2f}x over numpy "
                 f"({os.cpu_count()} cores)")
            )
            benchmark.extra_info["parallel_speedup_22"] = round(speedup, 3)
        else:
            rows.append(
                ("backend = numba_parallel",
                 "not installed (optional) — skipped")
            )
        report("CLAIM-SIM: parallel sweep speedup", rows)
        benchmark.extra_info["parallel_sweep_seconds"] = {
            name: round(t, 4) for name, t in timings.items()
        }
        benchmark.extra_info["parallel_sweep_note"] = (
            "layered_circuit(22) best-of-2; parallel_speedup_22 is "
            "asserted > 1 only on local multi-core real runs (PR 1 "
            "convention), recorded everywhere"
        )
        if (
            benchmark.enabled
            and not os.environ.get("CI")
            and "numba_parallel" in timings
            and (os.cpu_count() or 1) > 1
        ):
            speedup = timings["numpy"] / timings["numba_parallel"]
            assert speedup > 1.0, (
                f"numba_parallel only {speedup:.2f}x vs numpy at n=22 "
                f"on {os.cpu_count()} cores"
            )

    benchmark.pedantic(_run, rounds=1, iterations=1)


def test_stabilizer_reach(benchmark):
    def _run():
        """The Clifford engine runs widths the statevector never could.

        PR 10 bit-packed the tableau; the dense pre-refactor
        implementation is kept in ``_tableau_reference`` so the speedup
        is measured in-run rather than against a stale committed
        number.  The reference leg stops at n=100 (its n=200 run alone
        takes seconds), and the >=5x gate follows the PR 1 convention:
        asserted on local real runs only, recorded everywhere.
        """
        from repro.simulator._tableau_reference import (
            ReferenceStabilizerSimulator,
        )

        rows = [("paper: restricted classes simulate beyond 49 qubits", "")]
        packed_ms = {}
        reference_ms = {}
        for n in (25, 50, 100, 200):
            circ = QuantumCircuit(n, n)
            circ.h(0)
            for q in range(n - 1):
                circ.cx(q, q + 1)
            for q in range(n):
                circ.measure(q, q)
            start = time.perf_counter()
            counts = StabilizerSimulator(seed=1).run(circ, shots=3)
            elapsed = time.perf_counter() - start
            packed_ms[n] = elapsed * 1000
            rows.append(
                (f"n = {n:3d}", f"GHZ sampled in {elapsed * 1000:8.1f} ms")
            )
            for outcome in counts:
                assert outcome in (0, (1 << n) - 1)
            if n <= 100:
                start = time.perf_counter()
                dense = ReferenceStabilizerSimulator(seed=1).run(
                    circ, shots=3
                )
                reference_ms[n] = (time.perf_counter() - start) * 1000
                assert dense == counts
                rows.append(
                    (f"n = {n:3d} (dense reference)",
                     f"GHZ sampled in {reference_ms[n]:8.1f} ms")
                )
        speedup = reference_ms[100] / max(packed_ms[100], 1e-9)
        rows.append(
            ("packed speedup at n = 100", f"{speedup:7.1f}x over dense")
        )
        report("CLAIM-SIM: stabilizer (CHP) reach", rows)
        benchmark.extra_info["stabilizer_reach_ms"] = {
            str(n): round(t, 2) for n, t in packed_ms.items()
        }
        benchmark.extra_info["stabilizer_reference_ms"] = {
            str(n): round(t, 2) for n, t in reference_ms.items()
        }
        benchmark.extra_info["stabilizer_speedup_100"] = round(speedup, 1)
        if benchmark.enabled and not os.environ.get("CI"):
            assert speedup >= 5.0, (
                f"packed tableau only {speedup:.1f}x over the dense "
                "reference at n=100"
            )

    benchmark.pedantic(_run, rounds=1, iterations=1)


def _clifford_corpus(rng, count=6, n=4, depth=30):
    """Random Clifford circuits every engine (incl. stabilizer) can run."""
    corpus = []
    for _ in range(count):
        circ = QuantumCircuit(n, n)
        for _ in range(depth):
            r = rng.random()
            if r < 0.4:
                a, b = rng.sample(range(n), 2)
                circ.cx(a, b)
            else:
                getattr(circ, rng.choice(["h", "s", "x", "z"]))(
                    rng.randrange(n)
                )
        for q in range(n):
            circ.measure(q, q)
        corpus.append(circ)
    return corpus


def test_engines_agree(benchmark):
    def _run():
        """Verification cross-check (Sec. IX) as a per-engine matrix.

        Every registered engine runs the same Clifford corpus through
        the repro.engines registry; supports and frequencies must match
        the statevector reference (the 'verify the synthesized circuit'
        problem).  The exact density-matrix engine must match the
        reference *probabilities* to 1e-10, and its reach note records
        how wall time scales in rho's 4^n memory up to n ~ 10.
        """
        import random

        from repro import engines

        rng = random.Random(0)
        corpus = _clifford_corpus(rng)
        shots = 600
        matrix = {}
        for name in engines.engines():
            if name == "monte_carlo":
                # noiseless monte_carlo is the statevector path; keep
                # the matrix to the three distinct simulation models
                continue
            agreements = 0
            for trial, circ in enumerate(corpus):
                reference = StatevectorSimulator(seed=trial).run(
                    circ, shots=shots
                )
                result = engines.run(name, circ, shots=shots, seed=trial)
                if name == "density_matrix":
                    ok = all(
                        abs(
                            result.probability(k)
                            - reference.counts.get(k, 0) / shots
                        ) < 0.12
                        for k in set(result.counts) | set(reference.counts)
                    )
                else:
                    support = set(result.counts) == set(reference.counts)
                    ok = support and all(
                        abs(
                            result.counts.get(k, 0)
                            - reference.counts.get(k, 0)
                        ) / shots < 0.12
                        for k in set(result.counts) | set(reference.counts)
                    )
                agreements += ok
            matrix[name] = f"{agreements}/{len(corpus)}"
        rows = [
            (f"engine = {name}", f"circuits agreeing: {score}")
            for name, score in matrix.items()
        ]

        # density-matrix reach: rho is 4^n amplitudes, so ~10-12 qubits
        # is the practical ceiling (vs ~24 for the statevector)
        reach = {}
        for n in (4, 6, 8, 10):
            circ = layered_circuit(n, layers=1)
            circ.measure_all()
            start = time.perf_counter()
            engines.run("density_matrix", circ, shots=0)
            reach[n] = time.perf_counter() - start
            rows.append(
                (
                    f"density reach n = {n:2d}",
                    f"{reach[n] * 1000:8.1f} ms  (rho = 4^{n} amplitudes)",
                )
            )
        report("CLAIM-SIM: engine cross-verification matrix", rows)
        benchmark.extra_info["engine_matrix"] = matrix
        benchmark.extra_info["density_reach_seconds"] = {
            str(n): round(t, 4) for n, t in reach.items()
        }
        benchmark.extra_info["density_reach_note"] = (
            "exact rho engine is practical to n <= ~10 on a laptop "
            "(4^n amplitudes; hard cap 12)"
        )
        assert all(
            score == f"{len(corpus)}/{len(corpus)}"
            for score in matrix.values()
        ), matrix

    benchmark.pedantic(_run, rounds=1, iterations=1)

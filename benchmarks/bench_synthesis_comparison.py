"""CLAIM-SYNTH — the reversible-synthesis algorithm portfolio (Sec. V).

Paper survey claims to check in shape:
  * transformation-based synthesis works directly on reversible truth
    tables; the bidirectional variant is typically smaller [43];
  * decomposition-based synthesis bounds the cascade by 2n
    single-target gates [47];
  * exact synthesis gives the optimum but only for tiny widths [49];
  * heuristic results carry an optimality gap that exact search
    exposes.

Reproduced series: gate counts and runtimes of tbs / bidirectional /
dbs / exact over random 3-line permutations and named benchmarks.
"""

import statistics
import time

from conftest import report

from repro.boolean.permutation import BitPermutation
from repro.revkit import generators
from repro.synthesis.decomposition import decomposition_based_synthesis
from repro.synthesis.exact import exact_synthesis
from repro.synthesis.transformation import (
    bidirectional_synthesis,
    transformation_based_synthesis,
)


def test_synthesis_comparison_random(benchmark):
    benchmark(
        transformation_based_synthesis, BitPermutation.random(4, seed=0)
    )

    trials = 25
    sizes = {"tbs": [], "bidir": [], "dbs": [], "exact": []}
    for seed in range(trials):
        perm = BitPermutation.random(3, seed=seed)
        circuits = {
            "tbs": transformation_based_synthesis(perm),
            "bidir": bidirectional_synthesis(perm),
            "dbs": decomposition_based_synthesis(perm),
            "exact": exact_synthesis(perm),
        }
        for name, circuit in circuits.items():
            assert circuit.permutation() == perm, (name, seed)
            sizes[name].append(len(circuit))

    rows = [("paper: exact <= heuristics; bidir <= tbs on average", "")]
    for name in ("exact", "bidir", "tbs", "dbs"):
        rows.append(
            (
                name,
                f"mean gates = {statistics.mean(sizes[name]):5.2f}  "
                f"max = {max(sizes[name]):2d}",
            )
        )
    gap_bidir = statistics.mean(sizes["bidir"]) / statistics.mean(sizes["exact"])
    rows.append(("optimality gap (bidir/exact)", f"{gap_bidir:.2f}x"))
    report("CLAIM-SYNTH: algorithm comparison, random 3-line functions", rows)

    assert statistics.mean(sizes["exact"]) <= statistics.mean(sizes["bidir"])
    assert statistics.mean(sizes["bidir"]) <= statistics.mean(sizes["tbs"])
    # every exact result is a true lower bound per instance
    for a, b in zip(sizes["exact"], sizes["tbs"]):
        assert a <= b


def test_synthesis_comparison_named(benchmark):
    def _run():
        """Named benchmarks at growing width (runtime shape: tbs/dbs scale
        with 2^n; exact only exists at n = 3)."""
        rows = [("benchmark", "tbs gates/ms | bidir | dbs")]
        for name, perm in (
            ("hwb3", generators.hwb(3)),
            ("hwb4", generators.hwb(4)),
            ("hwb5", generators.hwb(5)),
            ("hwb6", generators.hwb(6)),
            ("adder5+7", generators.modular_adder(5, 7)),
            ("gray6", generators.gray_code(6)),
        ):
            cells = []
            for algo in (
                transformation_based_synthesis,
                bidirectional_synthesis,
                decomposition_based_synthesis,
            ):
                start = time.perf_counter()
                circuit = algo(perm)
                elapsed = (time.perf_counter() - start) * 1000
                assert circuit.permutation() == perm
                cells.append(f"{len(circuit):3d}/{elapsed:7.1f}ms")
            rows.append((name, " | ".join(cells)))
        report("CLAIM-SYNTH: named benchmarks", rows)


    benchmark.pedantic(_run, rounds=1, iterations=1)
def test_dbs_gate_bound(benchmark):
    def _run():
        """DBS produces at most 2n single-target gates -> the MCT count is
        bounded by 2n times the worst ESOP size; check the observable
        2n-single-target bound indirectly via distinct targets sequence."""
        from repro.synthesis.decomposition import young_subgroup_decomposition

        rows = []
        for n in (2, 3, 4):
            worst = 0
            for seed in range(10):
                perm = BitPermutation.random(n, seed=seed)
                lefts, rights = young_subgroup_decomposition(perm)
                worst = max(worst, len(lefts) + len(rights))
            rows.append((f"n = {n}", f"max single-target gates = {worst} <= {2 * n}"))
            assert worst <= 2 * n
        report("CLAIM-SYNTH: Young-subgroup 2n bound", rows)
    benchmark.pedantic(_run, rounds=1, iterations=1)

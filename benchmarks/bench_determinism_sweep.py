"""CLAIM-DET — determinism and query count of the algorithm (Sec. VI).

Paper claim: "quantum algorithms can find the shift with only 1 query
to g and 1 query to f~ ... assuming perfect gates, the answer is
deterministic, i.e., the measured bit pattern directly corresponds to
the hidden shift."

Reproduced rows: success rate 100% and exact success probability 1.0
over random Maiorana-McFarland instances (4 and 6 variables, both
oracle constructions), with exactly one query to each oracle.
"""

from conftest import report

from repro.algorithms.hidden_shift import (
    deterministic_success_sweep,
    hidden_shift_circuit,
)
from repro.boolean.bent import HiddenShiftInstance


def sweep(half_vars, trials, method):
    return deterministic_success_sweep(
        half_vars, trials=trials, seed=half_vars * 100, method=method
    )


def test_determinism_sweep(benchmark):
    results = benchmark.pedantic(
        sweep, args=(2, 20, "truth_table"), rounds=1, iterations=1
    )
    rows = [
        ("paper: queries to g / f~", "1 / 1"),
        ("paper: success probability", "1.0 (deterministic)"),
    ]
    all_ok = True
    for half_vars in (2, 3):
        for method in ("truth_table", "mm"):
            trials = 20 if half_vars == 2 else 8
            outcomes = sweep(half_vars, trials, method)
            successes = sum(r.success for r in outcomes)
            min_prob = min(r.probability for r in outcomes)
            built = hidden_shift_circuit(
                HiddenShiftInstance.random(half_vars, seed=1),
                method=method,
            )
            rows.append(
                (
                    f"n={2 * half_vars} vars, {method}",
                    f"success {successes}/{trials}, "
                    f"min p = {min_prob:.6f}, "
                    f"queries g/f~ = {built.g_queries}/{built.dual_queries}",
                )
            )
            all_ok &= successes == trials and min_prob > 1 - 1e-9
    report("CLAIM-DET: deterministic single-query recovery", rows)
    assert all_ok
    assert all(r.success for r in results)

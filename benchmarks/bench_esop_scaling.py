"""CLAIM-ESOP — ancilla-free synthesis scales to ~25 variables (Sec. V/IX).

Paper claim: "we only considered simple reversible synthesis methods
which do not require additional ancilla qubits ... this limits their
application to small functions with up to about 25 variables"; in [55]
ESOP-based synthesis was applied up to n = 25.

Reproduced series: ESOP-based synthesis of inner-product bent
functions from 4 to 24 variables — runtime and gate count stay benign
(the oracle for IP on 2k variables is exactly k Toffolis), while the
*truth-table size* (the 2^n bottleneck the paper identifies) grows
exponentially.
"""

import time

from conftest import report

from repro.boolean.truth_table import TruthTable
from repro.synthesis.esop_based import esop_synthesis


def synthesize_ip(half_vars):
    table = TruthTable.inner_product(half_vars)
    return esop_synthesis(table, effort="fast")


def test_esop_scaling(benchmark):
    benchmark(synthesize_ip, 6)

    rows = [
        ("paper: practical limit", "~25 variables (explicit tables)"),
        ("series: vars -> gates / lines / build time", ""),
    ]
    timings = []
    for half_vars in (2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12):
        n = 2 * half_vars
        start = time.perf_counter()
        circuit = synthesize_ip(half_vars)
        elapsed = time.perf_counter() - start
        timings.append((n, elapsed))
        rows.append(
            (
                f"n = {n:2d}",
                f"gates = {len(circuit):2d}  lines = {circuit.num_lines:2d}"
                f"  table = 2^{n} bits  t = {elapsed * 1000:8.2f} ms",
            )
        )
        assert len(circuit) == half_vars  # one MCT per IP cube
    report("CLAIM-ESOP: ancilla-free synthesis scaling", rows)

    # the 24-variable point must complete (the paper's ~25-var limit)
    assert timings[-1][0] == 24
    # and the cost clearly grows with the 2^n table, demonstrating why
    # the paper calls explicit methods limited
    assert timings[-1][1] > timings[0][1]


def test_esop_random_functions_quality(benchmark):
    def _run():
        """Cube-count quality across effort levels on dense functions."""
        import random

        rng = random.Random(3)
        rows = []
        for n in (4, 6, 8):
            table = TruthTable(n, rng.getrandbits(1 << n))
            from repro.boolean.esop import minimize_esop, minterm_cover

            naive = len(minterm_cover(table))
            fast = len(minimize_esop(table, effort="fast"))
            medium = len(minimize_esop(table, effort="medium"))
            rows.append(
                (
                    f"n = {n}",
                    f"minterms = {naive:3d}  fast = {fast:3d}  "
                    f"medium = {medium:3d}",
                )
            )
            assert medium <= naive
        report("CLAIM-ESOP extension: cover quality vs effort", rows)
    benchmark.pedantic(_run, rounds=1, iterations=1)

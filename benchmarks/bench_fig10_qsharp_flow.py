"""FIG9/10 — the Q# interop flow (Sec. VIII).

Paper artifact: RevKit runs as a pre-processor emitting the
permutation oracle as native Q# (Fig. 10), which the Q# hidden-shift
driver (Fig. 9) consumes.

Substitution: the Q# compiler is unavailable, so the generated program
is validated structurally, the oracle operation is re-parsed back into
a circuit, and the same algorithm is simulated natively — checking
that the emitted code is both well-formed and semantically the right
oracle.

Since PR 2 the RevKit pre-processing (synthesize, revsimp, rptm,
cancel) runs as the :data:`repro.pipeline.flows.QSHARP` preset on the
pass manager; the bench asserts the emitted oracle circuit equals the
preset's output gate-for-gate.
"""

import numpy as np
from conftest import report

from repro.boolean.bent import HiddenShiftInstance, MaioranaMcFarland
from repro.boolean.permutation import BitPermutation
from repro.boolean.truth_table import TruthTable
from repro.algorithms.hidden_shift import solve_hidden_shift
from repro.core.unitary import circuit_unitary
from repro.frameworks.qsharp import (
    hidden_shift_program,
    parse_operation_body,
    permutation_oracle_operation,
    validate_program,
)
from repro.pipeline import FlowState, Pipeline, flows
from repro.synthesis.decomposition import decomposition_based_synthesis

PAPER_PI = BitPermutation([0, 2, 3, 5, 7, 1, 4, 6])


def generate_program():
    return hidden_shift_program(PAPER_PI, 3)


def test_fig10_qsharp_generation(benchmark):
    program = benchmark(generate_program)

    operation = permutation_oracle_operation(PAPER_PI)
    parsed = parse_operation_body(operation.code, operation.circuit.num_qubits)
    unitary = circuit_unitary(parsed)
    oracle_correct = all(
        int(np.argmax(np.abs(unitary[:, x]))) == PAPER_PI(x)
        for x in range(8)
    )
    gate_lines = [
        line for line in operation.code.splitlines()
        if line.strip().endswith(");") and "qubits[" in line
    ]
    instance = HiddenShiftInstance(
        MaioranaMcFarland(PAPER_PI, TruthTable(3)), 5
    )
    native = solve_hidden_shift(instance, method="mm")

    # the emitted oracle is exactly the QSHARP preset's compiled circuit
    preset = flows.QSHARP.run(
        FlowState(function=PAPER_PI), pipeline=Pipeline(cache=None)
    )
    assert operation.circuit.gates == preset.quantum.gates

    report(
        "FIG9/10: Q# interop (RevKit as pre-processor)",
        [
            ("paper: emitted operation", "PermutationOracle (Fig. 10)"),
            ("pipeline preset", str(flows.QSHARP)),
            ("generated program valid", validate_program(program)),
            ("operation gate statements", len(gate_lines)),
            ("paper Fig.10 gate set", "H, T, T', CNOT"),
            (
                "measured gate set",
                sorted(operation.circuit.count_ops().keys()),
            ),
            ("reparsed oracle == pi", oracle_correct),
            ("native simulation shift (paper: 5)", native.measured_shift),
            ("HiddenShift driver present", "operation HiddenShift" in program),
            ("BentFunction present", "function BentFunction" in program),
        ],
    )
    assert validate_program(program)
    assert oracle_correct
    assert native.measured_shift == 5


def test_fig10_synthesis_choices(benchmark):
    def _run():
        """The paper uses tbs for one oracle and dbs for the other; both
        synthesis back-ends must produce valid, equivalent Q# oracles
        (compiled under the pass manager's fail-fast verification)."""
        rows = []
        from repro.compiler import targets

        for name, synth in (
            ("tbs (default)", None),
            ("dbs", decomposition_based_synthesis),
        ):
            target = targets.QSHARP
            if synth is not None:
                target = target.with_(synthesis=synth)
            operation = permutation_oracle_operation(
                PAPER_PI, target=target,
                pipeline=Pipeline(cache=None, verify=True),
            )
            parsed = parse_operation_body(
                operation.code, operation.circuit.num_qubits
            )
            unitary = circuit_unitary(parsed)
            ok = all(
                int(np.argmax(np.abs(unitary[:, x]))) == PAPER_PI(x)
                for x in range(8)
            )
            rows.append(
                (name, f"gates={len(operation.circuit)} "
                 f"T={operation.circuit.t_count()} correct={ok}")
            )
            assert ok
        report("FIG10 extension: synthesis back-ends", rows)
    benchmark.pedantic(_run, rounds=1, iterations=1)

"""EXT-ROUTE — device-topology mapping overhead (Sec. VII, extension).

Running on the IBM Quantum Experience chip requires mapping the
compiled circuit to the device coupling graph — a stage the paper
delegates to IBM's stack.  This bench regenerates it with our router.

The Fig. 4 circuit is trivially routable (its two CZ gates touch
adjacent pairs), which is asserted below.  The interesting case is the
Fig. 7/8 Maiorana–McFarland circuit: its CZ layer couples the x- and
y-registers across the device, so constrained topologies force SWAP
insertion — more two-qubit gates, and under the chip noise model a
measurably lower success probability.  That chain (topology -> SWAPs
-> fidelity) is part of why Fig. 6 sits near p ~ 0.63.

Since PR 2 the routing stage executes through the pass manager: each
topology run dispatches one :class:`repro.pipeline.RoutePass` (the
final stage of the :func:`repro.pipeline.flows.device` preset) over
the already-prepared circuit, and the pass records carry the SWAP
counts.
"""

from conftest import report

from repro.algorithms.hidden_shift import hidden_shift_circuit
from repro.boolean.bent import HiddenShiftInstance, MaioranaMcFarland
from repro.boolean.permutation import BitPermutation
from repro.boolean.truth_table import TruthTable
from repro.core.circuit import QuantumCircuit
from repro.mapping.barenco import map_to_clifford_t
from repro.mapping.routing import CouplingMap, verify_routing
from repro.optimization.simplify import cancel_adjacent_gates
from repro.pipeline import FlowState, Pipeline, RoutePass
from bench_fig5_simple_hidden_shift import run_program


def route_on(circuit, coupling, pipeline=None):
    """Route ``circuit`` onto ``coupling`` through the pass manager."""
    runner = pipeline if pipeline is not None else Pipeline(cache=None)
    state, record = runner.apply(RoutePass(coupling), FlowState(quantum=circuit))
    return state.routing, record


def mm_unitary_circuit():
    """The Fig. 7/8 circuit, Clifford+T-mapped, measurements stripped."""
    instance = HiddenShiftInstance(
        MaioranaMcFarland(BitPermutation([0, 2, 3, 5, 7, 1, 4, 6]), TruthTable(3)),
        5,
    )
    built = hidden_shift_circuit(instance, method="mm")
    mapped = cancel_adjacent_gates(map_to_clifford_t(built.circuit))
    unitary_part = QuantumCircuit(mapped.num_qubits)
    for gate in mapped.gates:
        if not gate.is_measurement:
            unitary_part.append(gate)
    return unitary_part


def test_fig4_circuit_needs_no_routing(benchmark):
    def _run():
        """Fig. 4's CZ pairs are adjacent on every preset topology."""
        _shift, circuit = run_program()
        unitary_part = QuantumCircuit(circuit.num_qubits)
        for gate in circuit.gates:
            if not gate.is_measurement:
                unitary_part.append(gate)
        rows = []
        for name, cmap in (
            ("ibmqx2 (bowtie)", CouplingMap.ibm_qx2()),
            ("ibmqx4", CouplingMap.ibm_qx4()),
            ("line-5", CouplingMap.line(5)),
        ):
            result, record = route_on(unitary_part, cmap)
            rows.append((name, f"SWAPs = {result.swap_count}"))
            assert record.details["swaps"] == 0
            assert result.swap_count == 0
            assert verify_routing(unitary_part, result)
        report("EXT-ROUTE: Fig. 4 circuit routes SWAP-free", rows)


    benchmark.pedantic(_run, rounds=1, iterations=1)
def test_mm_routing_overhead(benchmark):
    circuit = mm_unitary_circuit()
    benchmark.pedantic(
        route_on, args=(circuit, CouplingMap.line(6)),
        rounds=3, iterations=1,
    )

    rows = [("topology", "SWAPs | 2q gates | semantics kept")]
    baseline = None
    for name, cmap in (
        ("full (ideal)", CouplingMap.full(6)),
        ("grid 2x3", CouplingMap.grid(2, 3)),
        ("ring-6", CouplingMap.ring(6)),
        ("line-6", CouplingMap.line(6)),
    ):
        result, record = route_on(circuit, cmap)
        ok = verify_routing(circuit, result)
        rows.append(
            (
                name,
                f"{result.swap_count:3d}   | "
                f"{result.circuit.two_qubit_count():3d}      | {ok}",
            )
        )
        assert ok
        assert record.details["swaps"] == result.swap_count
        if baseline is None:
            baseline = result.swap_count
    report("EXT-ROUTE: Fig. 7/8 MM circuit on device topologies", rows)
    line_result, _ = route_on(circuit, CouplingMap.line(6))
    assert baseline == 0
    assert line_result.swap_count > 0

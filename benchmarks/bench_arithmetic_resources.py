"""EXT-ARITH — Toffoli-count scaling of Shor-style arithmetic.

Sec. III motivates the flow with the combinational workloads of real
algorithms: "factoring needs constant modular arithmetic [1]"; the
authors' reference [3] (Häner, Roetteler, Svore) builds factoring from
Toffoli-based modular arithmetic and reports linear-ish Toffoli growth
per adder bit.

Reproduced series: gate and T-count scaling of the Cuccaro adder
(2n Toffolis — linear), the constant adder (O(n^2) MCTs in the simple
variant), and the modular constant adder, plus end-to-end Clifford+T
mapping through the rptm pass.
"""

from conftest import report

from repro.arith import constant_adder, cuccaro_adder, modular_constant_adder
from repro.mapping.barenco import map_to_clifford_t
from repro.optimization.simplify import cancel_adjacent_gates
from repro.optimization.tpar import tpar_optimize
from repro.simulator.resources import ResourceCounter


def test_adder_scaling(benchmark):
    benchmark(cuccaro_adder, 8)

    rows = [("block", "MCT gates | Toffolis | T after mapping+tpar")]
    previous_toffoli = 0
    for n in (2, 4, 6, 8):
        circuit = cuccaro_adder(n)
        toffolis = sum(1 for g in circuit if g.num_controls == 2)
        mapped = cancel_adjacent_gates(
            tpar_optimize(
                cancel_adjacent_gates(map_to_clifford_t(circuit))
            )
        )
        rows.append(
            (
                f"cuccaro n={n}",
                f"{len(circuit):4d}      | {toffolis:4d}     | "
                f"{mapped.t_count():4d}",
            )
        )
        # the paper-[3] shape: Toffoli count linear in n (2n here)
        assert toffolis == 2 * n
        assert toffolis > previous_toffoli
        previous_toffoli = toffolis
    report("EXT-ARITH: ripple-carry adder scaling (linear Toffolis)", rows)


def test_constant_and_modular_adders(benchmark):
    def _run():
        rows = [("block", "MCT gates | quantum cost")]
        for n in (3, 4, 5, 6):
            circuit = constant_adder(n, (1 << n) - 3)
            rows.append(
                (
                    f"add-const n={n}",
                    f"{len(circuit):4d}      | {circuit.quantum_cost():5d}",
                )
            )
        for n, modulus in ((3, 5), (4, 11), (5, 23)):
            circuit = modular_constant_adder(n, 3, modulus)
            estimate = ResourceCounter().run(
                map_to_clifford_t(circuit)
            )
            rows.append(
                (
                    f"add-mod n={n} N={modulus}",
                    f"{len(circuit):4d}      | T={estimate.t_count}",
                )
            )
        report("EXT-ARITH: constant / modular adder costs", rows)

        # correctness spot-check at the largest size
        perm = modular_constant_adder(5, 3, 23).permutation()
        assert all(
            perm(x) & 31 == (x + 3) % 23 for x in range(23)
        )
    benchmark.pedantic(_run, rounds=1, iterations=1)

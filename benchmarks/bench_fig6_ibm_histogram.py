"""FIG6 — the IBM Quantum Experience histogram (Sec. VII).

Paper artifact: three runs of 1024 shots of the Fig. 4 circuit on the
IBM QE chip; the correct shift s = 1 is found with average probability
p ~ 0.63, the other 15 outcomes forming a noise floor (Fig. 6 shows
mean and standard deviation per outcome).

Substitution: the chip is replaced by the calibrated noisy simulator
(depolarizing + readout noise at early-2018 IBM QE rates).  The shape
to reproduce: the correct shift is the unambiguous mode with
probability well below 1, and error bars are small relative to the
gap.
"""

import numpy as np
from conftest import report

from repro.core.circuit import QuantumCircuit
from repro.engines import NoiseModel
from repro.simulator.noise import NoisyBackend
from bench_fig5_simple_hidden_shift import run_program


def build_circuit():
    _shift, circuit = run_program()
    return circuit


def run_chip_experiment(circuit, shots=1024, repetitions=3, seed=2018):
    backend = NoisyBackend(NoiseModel.ibm_qe_2018(), seed=seed)
    return backend.run_repeated(circuit, shots, repetitions)


def test_fig6_histogram(benchmark):
    circuit = build_circuit()
    mean, std = benchmark.pedantic(
        run_chip_experiment, args=(circuit,), rounds=1, iterations=1
    )
    mode = int(np.argmax(mean))
    rows = [
        ("paper: 3 runs x 1024 shots on IBM QE", ""),
        ("paper: correct shift", "s = 1 (histogram mode)"),
        ("paper: p(correct) ~", 0.63),
        ("measured: mode", mode),
        ("measured: p(correct)", f"{mean[1]:.3f} +- {std[1]:.3f}"),
        ("measured: runner-up p", f"{sorted(mean)[-2]:.3f}"),
    ]
    rows.append(("outcome histogram (mean +- std)", ""))
    for outcome in range(16):
        bar = "#" * int(round(mean[outcome] * 50))
        rows.append(
            (
                format(outcome, "04b"),
                f"{mean[outcome]:.3f} +- {std[outcome]:.3f} {bar}",
            )
        )
    report("FIG6: hidden shift on the noisy chip model", rows)

    assert mode == 1, "correct shift must be the histogram mode"
    assert 0.35 < mean[1] < 0.95, "success prob must be noisy but dominant"
    assert mean[1] > 2 * sorted(mean)[-2], "clear gap to runner-up"


def test_fig6_noise_sensitivity(benchmark):
    def _run():
        """Sweep the noise scale: success degrades monotonically-ish from
        ~1 (noiseless) toward uniform as gate errors grow."""
        circuit = build_circuit()
        rows = []
        previous = 1.1
        for scale in (0.0, 0.5, 1.0, 2.0, 4.0):
            model = NoiseModel(
                p1=0.0015 * scale,
                p2=0.035 * scale,
                p_meas=0.04 * scale,
                p_multi=0.06 * scale,
            )
            backend = NoisyBackend(model, seed=7)
            result = backend.run(circuit, shots=1024)
            p = result.probability(1)
            rows.append((f"noise x{scale}", f"p(correct) = {p:.3f}"))
            previous = p
        report("FIG6 extension: success vs noise scale", rows)
        noiseless = NoisyBackend(NoiseModel.noiseless(), seed=7).run(
            circuit, shots=256
        )
        assert noiseless.probability(1) == 1.0
    benchmark.pedantic(_run, rounds=1, iterations=1)

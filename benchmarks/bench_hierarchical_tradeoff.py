"""CLAIM-HIER — hierarchical synthesis trades qubits for gates (Sec. V).

Paper claim: hierarchical reversible synthesis maps network nodes onto
ancillae ("if the network has many internal nodes, many ancillae are
required, however, pebbling strategies may be employed to trade off
the number of qubits for quantum operations"), and "k is a result of
the synthesis algorithm" — the open challenge of Sec. IX.

Reproduced series:
  1. BDD- and LUT-based synthesis ancilla counts (k determined by the
     algorithm, growing with function complexity);
  2. bennett vs eager LHRS strategies (fewer ancillae, same or more
     gates);
  3. the pebble-game trade-off curve (pebbles down, moves up).
"""

from conftest import report

from repro.boolean.truth_table import TruthTable
from repro.synthesis.bdd_based import bdd_synthesis, verify_bdd_synthesis
from repro.synthesis.lut_based import lut_synthesis, verify_lut_synthesis
from repro.synthesis.pebbling import pebble_tradeoff_curve


def workloads():
    return [
        ("IP bent n=4", TruthTable.inner_product(2)),
        ("IP bent n=6", TruthTable.inner_product(3)),
        (
            "majority-5",
            TruthTable.from_function(
                5, lambda a, b, c, d, e: (a + b + c + d + e) >= 3
            ),
        ),
        (
            "adder-bit",
            TruthTable.from_function(
                6,
                lambda a, b, c, d, e, f: (
                    ((a + c + e) + 2 * (b + d + f)) >> 2
                ) & 1,
            ),
        ),
    ]


def test_hierarchical_ancilla_counts(benchmark):
    table = TruthTable.inner_product(3)
    benchmark(lut_synthesis, table, 3, "bennett")

    rows = [("paper: k (ancillae) is decided by the algorithm", "")]
    for name, table in workloads():
        bdd_result = bdd_synthesis(table)
        assert verify_bdd_synthesis(bdd_result, table)
        bennett = lut_synthesis(table, k=3, strategy="bennett")
        eager = lut_synthesis(table, k=3, strategy="eager")
        assert verify_lut_synthesis(bennett, table)
        assert verify_lut_synthesis(eager, table)
        rows.append(
            (
                name,
                f"BDD anc = {bdd_result.num_ancillae:2d}  "
                f"LHRS(bennett) anc/gates = {bennett.num_ancillae:2d}/"
                f"{len(bennett.circuit):3d}  "
                f"LHRS(eager) anc/gates = {eager.num_ancillae:2d}/"
                f"{len(eager.circuit):3d}",
            )
        )
        assert eager.num_ancillae <= bennett.num_ancillae
    report("CLAIM-HIER: ancilla demand of hierarchical synthesis", rows)


def test_lut_size_tradeoff(benchmark):
    def _run():
        """Larger LUTs -> fewer ancillae but bigger single-target gates."""
        table = TruthTable.inner_product(3)
        rows = []
        previous_anc = None
        for k in (2, 3, 4, 5, 6):
            result = lut_synthesis(table, k=k, strategy="bennett")
            assert verify_lut_synthesis(result, table)
            rows.append(
                (
                    f"k = {k}",
                    f"ancillae = {result.num_ancillae:2d}  "
                    f"gates = {len(result.circuit):3d}",
                )
            )
            if previous_anc is not None:
                assert result.num_ancillae <= previous_anc
            previous_anc = result.num_ancillae
        report("CLAIM-HIER: LUT size k vs ancillae", rows)


    benchmark.pedantic(_run, rounds=1, iterations=1)
def test_pebbling_tradeoff_curve(benchmark):
    def _run():
        """The [66]-style qubits-for-gates curve on a 24-step chain."""
        num_steps = 24
        points = pebble_tradeoff_curve(num_steps, list(range(3, 25)))
        rows = [("paper: fewer pebbles -> more moves (recomputation)", "")]
        for pebbles, moves in sorted(set(points)):
            bar = "#" * (moves // 8)
            rows.append((f"pebbles = {pebbles:2d}", f"moves = {moves:4d} {bar}"))
        report("CLAIM-HIER: reversible pebble-game trade-off", rows)
        points = sorted(set(points))
        assert points[0][1] >= points[-1][1]  # fewest pebbles costs most moves
        assert points[-1][1] == 2 * num_steps - 1  # full budget = Bennett
    benchmark.pedantic(_run, rounds=1, iterations=1)

"""Targeting a constrained device with the full compiler chain.

Combines everything the Fig. 2 flow needs to put a program on a real
chip: the hidden-shift program is written once against the eDSL, and
the CompilerBackend lowers it (cancellation -> Clifford+T -> T-par ->
SWAP routing) for three different device topologies, printing the
compiled-cost comparison and an ASCII rendering of the small circuit.

Run:  python examples/device_targeting.py
"""

from repro.core.drawing import draw_circuit
from repro.frameworks.projectq import (
    All,
    CompilerBackend,
    Compute,
    H,
    MainEngine,
    Measure,
    PhaseOracle,
    Uncompute,
    X,
)
from repro.mapping.routing import CouplingMap


def f(a, b, c, d):
    return (a and b) ^ (c and d)


def run_on(backend):
    eng = MainEngine(backend=backend)
    x1, x2, x3, x4 = qubits = eng.allocate_qureg(4)
    with Compute(eng):
        All(H) | qubits
        X | x1
    PhaseOracle(f) | qubits
    Uncompute(eng)
    PhaseOracle(f) | qubits
    All(H) | qubits
    Measure | qubits
    eng.flush()
    shift = 8 * int(x4) + 4 * int(x3) + 2 * int(x2) + int(x1)
    return shift, eng


def main():
    print("device   | shift | gates | 2q | T | swaps")
    print("---------+-------+-------+----+---+------")
    for name, coupling in (
        ("ideal", None),
        ("ibmqx2", CouplingMap.ibm_qx2()),
        ("ibmqx4", CouplingMap.ibm_qx4()),
        ("line-5", CouplingMap.line(5)),
    ):
        backend = CompilerBackend(coupling=coupling)
        shift, _eng = run_on(backend)
        stats = backend.report.compiled_stats
        print(
            f"{name:<8} |   {shift}   |  {stats.num_gates:3d}  | "
            f"{stats.two_qubit_count:2d} | {stats.t_count} | "
            f"{backend.report.swap_count}"
        )
        assert shift == 1

    print("\ncompiled circuit for ibmqx2 (ASCII rendering):")
    backend = CompilerBackend(coupling=CouplingMap.ibm_qx2())
    run_on(backend)
    print(draw_circuit(backend.compiled_circuit))

    # the backend dispatches through repro.compile(); the same chain
    # is available directly from the front door, QASM included
    import repro

    result = repro.compile(backend.compiled_circuit, target="ibm_qe5")
    print("\nrepro.compile(circuit, target='ibm_qe5'):")
    print("  " + result.summary())
    print("  first QASM lines: "
          + " / ".join(result.to_qasm().splitlines()[:4]))

    # the same compiled circuit renders in every registered format
    # (see examples/emitter_tour.py for the full registry tour)
    print("  emitters: " + ", ".join(repro.emit.formats()))
    print("  first QASM 3 lines: "
          + " / ".join(result.emit("qasm3").splitlines()[:4]))
    print("  first QIR lines: "
          + " / ".join(result.emit("qir").splitlines()[:2]))


if __name__ == "__main__":
    main()

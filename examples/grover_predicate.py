"""Grover search with an automatically compiled predicate (Sec. I).

The paper motivates automatic oracle compilation with Grover's
algorithm: "the overhead due to implementing the defining predicate in
a reversible way can be quite substantial".  This example writes the
predicate as a plain Python function — a tiny SAT-style constraint —
and lets the ESOP flow compile it into the phase oracle.

Run:  python examples/grover_predicate.py
"""

from repro.algorithms.grover import solve_grover
from repro.boolean.expression import predicate_to_truth_table


def constraint(a, b, c, d):
    """(a or b) and (not b or c) and (c != d) and a."""
    return (a or b) and ((not b) or c) and (c != d) and a


def main():
    table = predicate_to_truth_table(constraint)
    solutions = [x for x in range(16) if table(x)]
    print(f"predicate has {len(solutions)} satisfying assignments:")
    for x in solutions:
        print(f"  abcd = {x & 1}{(x >> 1) & 1}{(x >> 2) & 1}{(x >> 3) & 1}")

    result = solve_grover(constraint)
    measured = result.measured
    print(
        f"\nGrover ({result.iterations} iterations) measured "
        f"x = {measured:04b} "
        f"(a={measured & 1}, b={(measured >> 1) & 1}, "
        f"c={(measured >> 2) & 1}, d={(measured >> 3) & 1})"
    )
    print(f"is a solution: {result.is_solution}")
    print(f"success probability: {result.success_probability:.3f}")
    print(
        f"oracle + diffusion circuit: {len(result.circuit)} gates on "
        f"{result.circuit.num_qubits} qubits"
    )
    assert result.is_solution


if __name__ == "__main__":
    main()

"""Simon's problem — exercising the XOR-oracle compilation path.

The hidden shift examples use *phase* oracles; Simon's algorithm needs
the other oracle style of Sec. V — the Bennett form
U|x>|y> = |x>|y ^ f(x)> — which ESOP-based reversible synthesis
compiles automatically from the 2-to-1 function's truth tables.

Run:  python examples/simon_xor_oracle.py
"""

from repro.algorithms.simon import SimonInstance, simon_circuit, solve_simon


def main():
    instance = SimonInstance.random(4, seed=7)
    print(f"hidden XOR mask: s = {instance.secret:04b}")
    print(f"promise verified (f(x) = f(x ^ s), 2-to-1): "
          f"{instance.verify_promise()}")

    circuit = simon_circuit(instance)
    ops = circuit.count_ops()
    print(
        f"\ncompiled sampling circuit: {circuit.num_qubits} qubits "
        f"({instance.function.num_vars} data + "
        f"{circuit.num_qubits - instance.function.num_vars} oracle outputs)"
    )
    print(f"oracle gates: {ops}")

    result = solve_simon(instance, seed=3)
    print(f"\nsampled orthogonality equations (z . s = 0):")
    for z in result.equations:
        dot = bin(z & instance.secret).count("1") % 2
        print(f"  z = {z:04b}   z.s = {dot}")
    print(
        f"\nrecovered s = {result.recovered:04b} with "
        f"{result.quantum_queries} quantum queries "
        f"(classical needs ~2^(n/2) = 4+ distinct collisions)"
    )
    assert result.success


if __name__ == "__main__":
    main()

"""A tour of the reversible-synthesis portfolio (Sec. V).

Synthesizes the same specification with every algorithm in the
library, showing the trade-offs the paper surveys:

  * reversible input (a permutation): tbs, bidirectional tbs, dbs,
    exact search;
  * irreversible input (a Boolean function): ESOP-based (ancilla-free
    Bennett oracle), BDD-based and LUT-based hierarchical synthesis
    (ancillae = network nodes), with the eager pebbling variant;
  * embedding an irreversible function explicitly (Eq. (2) vs Eq. (3)).

Every result is verified by simulation and finally mapped to
Clifford+T with and without relative-phase Toffolis.  The closing
section runs the same portfolio through the pass manager's preset
flows (``repro.pipeline``) with fail-fast verification on, printing
the per-pass statistics report.

Run:  python examples/synthesis_tour.py
"""

from repro.boolean.permutation import BitPermutation
from repro.boolean.truth_table import TruthTable
from repro.mapping.barenco import map_to_clifford_t
from repro.synthesis.bdd_based import bdd_synthesis, verify_bdd_synthesis
from repro.synthesis.decomposition import decomposition_based_synthesis
from repro.synthesis.embedding import (
    bennett_embedding,
    explicit_embedding,
    minimum_garbage_bits,
)
from repro.synthesis.esop_based import esop_synthesis, verify_esop_circuit
from repro.synthesis.exact import exact_synthesis
from repro.synthesis.lut_based import lut_synthesis, verify_lut_synthesis
from repro.synthesis.transformation import (
    bidirectional_synthesis,
    transformation_based_synthesis,
)


def reversible_portfolio():
    print("== reversible specification: pi = [0,2,3,5,7,1,4,6] ==")
    perm = BitPermutation([0, 2, 3, 5, 7, 1, 4, 6])
    for name, algo in (
        ("transformation-based (tbs)", transformation_based_synthesis),
        ("bidirectional tbs", bidirectional_synthesis),
        ("decomposition-based (dbs)", decomposition_based_synthesis),
        ("exact (BFS optimum)", exact_synthesis),
    ):
        circuit = algo(perm)
        ok = circuit.permutation() == perm
        print(
            f"  {name:<28} {len(circuit):2d} MCT gates, "
            f"quantum cost {circuit.quantum_cost():3d}, correct={ok}"
        )
        assert ok


def irreversible_portfolio():
    print("\n== irreversible specification: majority-of-5 ==")
    table = TruthTable.from_function(
        5, lambda a, b, c, d, e: (a + b + c + d + e) >= 3
    )

    esop = esop_synthesis(table)
    assert verify_esop_circuit(esop, table)
    print(
        f"  ESOP-based (ancilla-free)   lines={esop.num_lines} "
        f"gates={len(esop)}"
    )

    bdd = bdd_synthesis(table)
    assert verify_bdd_synthesis(bdd, table)
    print(
        f"  BDD-based hierarchical      lines={bdd.total_lines} "
        f"gates={len(bdd.circuit)} (ancillae={bdd.num_ancillae})"
    )

    for strategy in ("bennett", "eager"):
        lut = lut_synthesis(table, k=3, strategy=strategy)
        assert verify_lut_synthesis(lut, table)
        print(
            f"  LUT-based ({strategy:<7})       lines={lut.total_lines} "
            f"gates={len(lut.circuit)} (ancillae={lut.num_ancillae})"
        )


def embedding_demo():
    print("\n== embedding an irreversible function (2-bit AND) ==")
    table = TruthTable.from_function(2, lambda a, b: a and b)
    bennett = bennett_embedding(table)
    explicit, r = explicit_embedding(table)
    print(f"  Bennett embedding  (Eq. 3): {bennett.num_bits} lines")
    print(
        f"  explicit embedding (Eq. 2): {r} lines "
        f"(minimum garbage = {minimum_garbage_bits(table)})"
    )


def mapping_demo():
    print("\n== Clifford+T mapping of the synthesized oracle ==")
    table = TruthTable.from_function(
        5, lambda a, b, c, d, e: (a + b + c + d + e) >= 3
    )
    reversible = esop_synthesis(table)
    for relative_phase in (False, True):
        mapped = map_to_clifford_t(reversible, relative_phase=relative_phase)
        label = "relative-phase" if relative_phase else "naive 7-T"
        print(
            f"  {label:<15} qubits={mapped.num_qubits} "
            f"gates={len(mapped)} T={mapped.t_count()}"
        )


def pipeline_demo():
    print("\n== the same flow as pass-manager presets (repro.pipeline) ==")
    from repro.pipeline import FlowState, Pipeline, flows

    perm = BitPermutation([0, 2, 3, 5, 7, 1, 4, 6])
    print("  flows.QSHARP on pi, verify=True (per-pass report):")
    result = flows.QSHARP.run(
        FlowState(function=perm), pipeline=Pipeline(cache=None, verify=True)
    )
    for line in result.report().splitlines():
        print("    " + line)

    print("  synthesis back-ends through the same preset:")
    for method in ("tbs", "tbs-bidir", "dbs", "exact"):
        res = flows.qsharp(synth=method).run(
            FlowState(function=perm), pipeline=Pipeline(cache=None)
        )
        print(
            f"    {method:<9} MCT={len(res.reversible):2d}  "
            f"gates={len(res.quantum):3d}  T={res.quantum.t_count():2d}  "
            f"({res.total_seconds * 1e3:.2f}ms)"
        )


def facade_demo():
    print("\n== one front door: repro.compile() + a synthesis sweep ==")
    import repro
    from repro.pipeline import PassCache

    perm = BitPermutation([0, 2, 3, 5, 7, 1, 4, 6])
    result = repro.compile(perm, target="qsharp", cache=None)
    print(f"  repro.compile(pi, target='qsharp'): {result.summary()}")

    session = repro.CompilerSession(cache=PassCache(), max_workers=1)
    sweep = session.sweep(
        {"synthesis": ["tbs", "tbs-bidir", "dbs"],
         "optimization_level": [1, 2]},
        base=perm,
    )
    for line in sweep.table("t_count").splitlines():
        print("    " + line)
    best = sweep.best("t_count")
    print(
        f"  best T-count: {best.params} "
        f"(cache hits across the sweep: {sweep.cache_hits})"
    )


if __name__ == "__main__":
    reversible_portfolio()
    irreversible_portfolio()
    embedding_demo()
    mapping_demo()
    pipeline_demo()
    facade_demo()

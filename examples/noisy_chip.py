"""Running on the 'IBM Quantum Experience' — the Fig. 6 experiment.

The paper changes two lines of the Fig. 4 program to retarget the IBM
QE chip and runs 3 x 1024 shots, finding the correct shift with
average probability ~0.63.  Here the chip is the calibrated noisy
simulator; this script prints the same histogram (mean +- std per
outcome) as an ASCII rendering of Fig. 6.

Run:  python examples/noisy_chip.py
"""

import numpy as np

from repro.frameworks.projectq import (
    All,
    Compute,
    H,
    IBMBackend,       # <- changed line 1: import the chip backend
    MainEngine,
    Measure,
    PhaseOracle,
    Uncompute,
    X,
)
from repro.engines import NoiseModel
from repro.simulator.noise import NoisyBackend


def f(a, b, c, d):
    return (a and b) ^ (c and d)


def build_circuit():
    eng = MainEngine(backend=IBMBackend(shots=1024, seed=2018))
    # ^ changed line 2: backend=IBMBackend(...) instead of default
    x1, x2, x3, x4 = qubits = eng.allocate_qureg(4)
    with Compute(eng):
        All(H) | qubits
        X | x1
    PhaseOracle(f) | qubits
    Uncompute(eng)
    PhaseOracle(f) | qubits
    All(H) | qubits
    Measure | qubits
    eng.flush()
    shift = 8 * int(x4) + 4 * int(x3) + 2 * int(x2) + int(x1)
    return shift, eng.circuit


def main():
    shift, circuit = build_circuit()
    print(f"modal outcome read off the chip: shift = {shift} (paper: 1)")

    # the Fig. 6 protocol: three independent runs of 1024 shots
    backend = NoisyBackend(NoiseModel.ibm_qe_2018(), seed=2018)
    mean, std = backend.run_repeated(circuit, shots=1024, repetitions=3)

    print("\noutcome   probability (3 x 1024 shots)")
    for outcome in range(16):
        bar = "#" * int(round(mean[outcome] * 60))
        marker = " <- correct shift" if outcome == 1 else ""
        print(
            f"  {outcome:04b}   {mean[outcome]:.3f} +- {std[outcome]:.3f} "
            f"{bar}{marker}"
        )
    print(
        f"\ncorrect shift found with average probability "
        f"p = {mean[1]:.2f} (paper: p ~ 0.63)"
    )
    assert int(np.argmax(mean)) == 1


if __name__ == "__main__":
    main()

"""One compiled circuit, every quantum programming framework.

The paper's thesis (Sec. I) is that a single design-automation flow
retargets reversible logic onto many frameworks.  This tour compiles
the paper's running permutation oracle once and renders it through
every backend of the ``repro.emit`` registry — OpenQASM 2.0/3.0, Q#,
ProjectQ, cirq and textual QIR — then closes the loop by re-importing
the OpenQASM 2.0 text and showing emit -> parse -> emit is a fixed
point.  Finally it registers a tiny custom backend to show the
registry is open.

Run:  python examples/emitter_tour.py
"""

import repro
from repro import emit


def preview(title, text, lines=6):
    print(f"--- {title} " + "-" * max(0, 58 - len(title)))
    for line in text.splitlines()[:lines]:
        print("  " + line)
    total = len(text.splitlines())
    if total > lines:
        print(f"  ... ({total - lines} more lines)")
    print()


def main():
    pi = [0, 2, 3, 5, 7, 1, 4, 6]  # the paper's Fig. 7 permutation
    result = repro.compile(pi, target="ibm_qe5")
    print("compiled:", result.summary(), "\n")

    print("registered formats:", ", ".join(emit.formats()), "\n")
    for name in emit.formats():
        emitter = emit.get(name)
        preview(
            f"{name} ({emitter.file_extension}): {emitter.description}",
            result.emit(name),
        )

    # round trip: the emitted QASM re-enters the toolflow unchanged
    text = result.emit("qasm2")
    reimported = emit.parse(text, "qasm2")
    assert emit.emit(reimported, "qasm2") == text
    assert reimported.gates == result.circuit.gates
    print("qasm2 emit -> parse -> emit: fixed point "
          f"({len(reimported.gates)} gates round-tripped)\n")

    # the registry is open: one register() call adds a format
    class GateCountEmitter:
        name = "gatecount"
        description = "toy backend: one line per gate name count"
        file_extension = ".txt"
        aliases = ()

        def emit(self, circuit, **opts):
            counts = {}
            for gate in circuit.gates:
                counts[gate.name] = counts.get(gate.name, 0) + 1
            body = "\n".join(
                f"{name} {count}" for name, count in sorted(counts.items())
            )
            return body + "\n"

    emit.register(GateCountEmitter())
    try:
        preview("custom 'gatecount' backend", result.emit("gatecount"))
        print("shell command for free: write_gatecount <path>")
    finally:
        emit.unregister("gatecount")


if __name__ == "__main__":
    main()

"""The Fig. 7 flow: hidden shift for a Maiorana-McFarland bent function.

Uses PermutationOracle with two different RevKit synthesis back-ends
(transformation-based for pi, decomposition-based + Dagger for pi^-1),
exactly as the paper's listing, then cross-checks against the
structured solver and the classical correlation baseline.

Run:  python examples/maiorana_mcfarland.py
"""

from repro.algorithms.hidden_shift import solve_hidden_shift
from repro.boolean.bent import HiddenShiftInstance, MaioranaMcFarland
from repro.boolean.permutation import BitPermutation
from repro.boolean.spectral import find_shift_classically
from repro.boolean.truth_table import TruthTable
from repro.frameworks.projectq import (
    All,
    Compute,
    Dagger,
    H,
    MainEngine,
    Measure,
    PermutationOracle,
    PhaseOracle,
    Uncompute,
    X,
)
from repro.revkit import dbs


# phase function: the inner product on interleaved qubit pairs
def f(a, b, c, d, e, g):
    return (a and b) ^ (c and d) ^ (e and g)


# permutation defining the Maiorana-McFarland instance
PI = [0, 2, 3, 5, 7, 1, 4, 6]


def projectq_flow():
    """The paper's Fig. 7 listing."""
    eng = MainEngine(seed=0)
    qubits = eng.allocate_qureg(6)
    x = qubits[::2]   # qubits on odd circuit lines
    y = qubits[1::2]  # qubits on even circuit lines

    # U_g = X^s U_f X^s with s = 5 (X on x[0], x[1])
    with Compute(eng):
        All(H) | qubits
        All(X) | [x[0], x[1]]
        PermutationOracle(PI) | y
    PhaseOracle(f) | qubits
    Uncompute(eng)

    # U_f~ needs pi^-1: synthesize pi with dbs and invert with Dagger
    with Compute(eng):
        with Dagger(eng):
            PermutationOracle(PI, synth=dbs) | x
    PhaseOracle(f) | qubits
    Uncompute(eng)

    All(H) | qubits
    Measure | qubits
    eng.flush()

    return sum(int(q) << i for i, q in enumerate(qubits)), eng.circuit


def main():
    shift, circuit = projectq_flow()
    print(f"ProjectQ flow measured shift: {shift} (paper: 5)")
    print(f"compiled circuit: {len(circuit)} gates, depth {circuit.depth()}")

    # cross-check 1: the library's structured MM solver
    instance = HiddenShiftInstance(
        MaioranaMcFarland(BitPermutation(PI), TruthTable(3)), 5
    )
    result = solve_hidden_shift(instance, method="mm")
    print(
        f"structured solver: shift = {result.measured_shift}, "
        f"P(correct) = {result.probability:.3f}"
    )

    # cross-check 2: classical exhaustive correlation (exponential time)
    classical = find_shift_classically(
        instance.f_table(), instance.g_table()
    )
    print(f"classical correlation baseline: shift = {classical}")

    assert shift == result.measured_shift == classical == 5


if __name__ == "__main__":
    main()

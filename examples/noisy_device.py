"""Fig. 6 on the exact noise tier — density matrix vs ideal engine.

``noisy_chip.py`` reproduces the paper's IBM QE experiment by Monte
Carlo sampling: three noisy runs of 1024 shots, averaged.  This script
asks the same question of the *exact* tier added in PR 8 — the
``density_matrix`` engine evolves the full density operator through
the calibrated QE5 channel set (depolarizing + readout error), so the
recovery probability comes out of rho's diagonal with no sampling
noise at all.

Both engines come from the same registry (``repro.engines``), so the
ideal reference and the noisy run differ only in the engine name and
the noise spec.

Run:  python examples/noisy_device.py
"""

from repro import engines
from repro.core.circuit import QuantumCircuit


def hidden_shift_circuit():
    """The paper's Fig. 6 run: 4-qubit hidden shift with s = 0001.

    f(x) = x1x2 XOR x3x4 is the Fig. 4 bent function; the
    Fourier-sandwich circuit returns |s> on an ideal device.
    """
    circuit = QuantumCircuit(4, 4, name="hidden-shift-fig6")
    for q in range(4):
        circuit.h(q)
    circuit.x(0)
    circuit.cz(0, 1)
    circuit.cz(2, 3)
    circuit.x(0)
    for q in range(4):
        circuit.h(q)
    circuit.cz(0, 1)
    circuit.cz(2, 3)
    for q in range(4):
        circuit.h(q)
    circuit.measure_all()
    return circuit


def main():
    circuit = hidden_shift_circuit()

    ideal = engines.run("statevector", circuit, shots=1024, seed=2018)
    noisy = engines.run(
        "density_matrix", circuit, shots=1024, noise="qe5", seed=2018
    )

    print("engines:", ", ".join(engines.engines()))
    print(f"circuit: {circuit.name} ({len(circuit)} instructions)\n")

    print("outcome   ideal   QE5 (exact)   Fig. 6 bar")
    for outcome in range(16):
        p_ideal = ideal.counts.get(outcome, 0) / 1024
        p_noisy = noisy.probability(outcome)
        bar = "#" * int(round(p_noisy * 60))
        marker = " <- correct shift" if outcome == 1 else ""
        print(
            f"  {outcome:04b}   {p_ideal:.3f}   {p_noisy:.3f}         "
            f"{bar}{marker}"
        )

    recovery = noisy.probability(1)
    print(
        f"\ncorrect shift recovered with exact probability "
        f"p = {recovery:.4f} (paper, sampled: p ~ 0.63)"
    )
    assert ideal.counts.get(1, 0) == 1024, "ideal run must be deterministic"
    assert noisy.most_frequent() == 1
    assert 0.55 < recovery < 0.72


if __name__ == "__main__":
    main()

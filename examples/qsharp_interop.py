"""The Q# interop flow (Sec. VIII, Figs. 9 and 10).

RevKit acts as a pre-processor: it synthesizes the permutation oracle
for pi = [0,2,3,5,7,1,4,6] through tbs -> revsimp -> Clifford+T
mapping, and emits it as a native Q# operation together with the
hidden-shift driver program.  The generated code is printed, validated
and re-parsed; the same algorithm is then simulated natively to show
the emitted oracle is semantically correct.

Run:  python examples/qsharp_interop.py
"""

from repro.algorithms.hidden_shift import solve_hidden_shift
from repro.boolean.bent import HiddenShiftInstance, MaioranaMcFarland
from repro.boolean.permutation import BitPermutation
from repro.boolean.truth_table import TruthTable
from repro.core.unitary import circuit_unitary
from repro.frameworks.qsharp import (
    hidden_shift_program,
    parse_operation_body,
    permutation_oracle_operation,
    validate_program,
)

import numpy as np

PI = BitPermutation([0, 2, 3, 5, 7, 1, 4, 6])


def main():
    # stage 1: RevKit pre-processing -> Q# source for the oracle
    operation = permutation_oracle_operation(PI)
    print("generated Q# operation (Fig. 10 analogue):")
    print("-" * 60)
    print(operation.code)
    print("-" * 60)

    # stage 1b: the same artifact through the one front door — the
    # qsharp target resolves to the identical pass sequence, so the
    # emitted operation body is gate-for-gate the same
    import repro

    facade = repro.compile(PI, target="qsharp")
    assert facade.circuit.gates == operation.circuit.gates
    print(
        "repro.compile(PI, target='qsharp') emits the same oracle: "
        f"{facade.summary()}"
    )

    # stage 2: full two-namespace program (Fig. 9 + Fig. 10)
    program = hidden_shift_program(PI, 3)
    print(
        f"full program: {len(program.splitlines())} lines, "
        f"well-formed = {validate_program(program)}"
    )

    # stage 3: verify the emitted text *is* the right oracle by parsing
    # it back and inspecting its unitary
    parsed = parse_operation_body(operation.code, operation.circuit.num_qubits)
    unitary = circuit_unitary(parsed)
    correct = all(
        int(np.argmax(np.abs(unitary[:, x]))) == PI(x) for x in range(8)
    )
    print(f"re-parsed oracle realizes pi: {correct}")

    # stage 4: the Q# runtime is unavailable here, so run the same
    # algorithm on the native simulator backend instead
    instance = HiddenShiftInstance(
        MaioranaMcFarland(PI, TruthTable(3)), 5
    )
    result = solve_hidden_shift(instance, method="mm")
    print(
        f"native simulation of the HiddenShift driver: "
        f"result = {result.measured_shift} (expected 5)"
    )
    assert correct and result.measured_shift == 5


if __name__ == "__main__":
    main()

"""The RevKit command shell — the Eq. (5) synthesis script.

Runs the paper's command pipeline

    revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c

plus a comparison of the available synthesis commands on the same
function, both via the shell syntax and the Python API
(``shell.revgen(hwb=4)``).

The shell dispatches every command through the pass manager
(``repro.pipeline``), so the session also prints the per-pass
timing/delta report and demonstrates the equivalent declarative
preset, ``flows.EQ5``.

Run:  python examples/revkit_shell.py
"""

from repro.pipeline import Pipeline, flows
from repro.revkit import RevKitShell


def main():
    print("$ revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c")
    shell = RevKitShell()
    for command, output in zip(
        "revgen tbs revsimp rptm tpar ps".split(),
        shell.run("revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c"),
    ):
        print(f"[{command}] {output}")

    print("\nper-pass report (shell.report()):")
    for line in shell.report().splitlines():
        print("  " + line)

    print("\nsame flow as a declarative preset (flows.EQ5):")
    result = flows.EQ5.run(pipeline=Pipeline(cache=None))
    for line in result.report().splitlines():
        print("  " + line)
    assert result.quantum.gates == shell.quantum.gates
    print(f"  -> identical to the shell run, gate for gate "
          f"({len(result.quantum)} gates)")

    print("\nparameterized sweep via flows.eq5(...):")
    for options in ({"hwb": 4}, {"gray": 4}, {"adder": 4, "const": 3}):
        res = flows.eq5(**options).run()
        tpar = res.record("tpar")
        label = ",".join(f"{k}={v}" for k, v in options.items())
        print(f"  eq5({label:<16}) MCT={len(res.reversible):2d}  "
              f"T {tpar.before['t_count']:3d} -> {tpar.after['t_count']:3d}")

    print("\nsynthesis command comparison on hwb4 (python API):")
    for label, build in (
        ("tbs", lambda s: s.tbs()),
        ("tbs --bidirectional", lambda s: s.tbs(bidirectional=True)),
        ("dbs", lambda s: s.dbs()),
    ):
        shell = RevKitShell()
        shell.revgen(hwb=4)
        output = build(shell)
        check = shell.simulate()
        print(f"  {label:<22} {output:<12} ({check})")

    print("\nexporting the mapped circuit as OpenQASM:")
    shell = RevKitShell()
    shell.run("revgen --hwb 3; tbs; revsimp; rptm")
    qasm = shell.quantum.to_qasm()
    head = "\n".join("    " + line for line in qasm.splitlines()[:8])
    print(head)
    print(f"    ... ({len(qasm.splitlines())} lines total)")


if __name__ == "__main__":
    main()

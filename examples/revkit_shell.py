"""The RevKit command shell — the Eq. (5) synthesis script.

Runs the paper's command pipeline

    revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c

plus a comparison of the available synthesis commands on the same
function, both via the shell syntax and the Python API
(``shell.revgen(hwb=4)``).

Run:  python examples/revkit_shell.py
"""

from repro.revkit import RevKitShell


def main():
    print("$ revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c")
    shell = RevKitShell()
    for command, output in zip(
        "revgen tbs revsimp rptm tpar ps".split(),
        shell.run("revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c"),
    ):
        print(f"[{command}] {output}")

    print("\nsynthesis command comparison on hwb4 (python API):")
    for label, build in (
        ("tbs", lambda s: s.tbs()),
        ("tbs --bidirectional", lambda s: s.tbs(bidirectional=True)),
        ("dbs", lambda s: s.dbs()),
    ):
        shell = RevKitShell()
        shell.revgen(hwb=4)
        output = build(shell)
        check = shell.simulate()
        print(f"  {label:<22} {output:<12} ({check})")

    print("\nexporting the mapped circuit as OpenQASM:")
    shell = RevKitShell()
    shell.run("revgen --hwb 3; tbs; revsimp; rptm")
    qasm = shell.quantum.to_qasm()
    head = "\n".join("    " + line for line in qasm.splitlines()[:8])
    print(head)
    print(f"    ... ({len(qasm.splitlines())} lines total)")


if __name__ == "__main__":
    main()

"""Quickstart — the paper's Fig. 4 program, line for line.

Solves the Boolean hidden shift problem for f = x1x2 XOR x3x4 with
hidden shift s = 1 on the noiseless local simulator, using the
ProjectQ-style eDSL with the PhaseOracle compiled by the RevKit-style
ESOP flow.

Run:  python examples/quickstart.py
"""

from repro.frameworks.projectq import (
    All,
    Compute,
    H,
    MainEngine,
    Measure,
    PhaseOracle,
    Uncompute,
    X,
)


# phase function (the bent function of Sec. VII)
def f(a, b, c, d):
    return (a and b) ^ (c and d)


def main():
    eng = MainEngine(seed=0)
    x1, x2, x3, x4 = qubits = eng.allocate_qureg(4)

    # circuit: H^4, shift by s = 1 (X on the least-significant qubit),
    # phase oracle for f -- then uncompute the H/X skeleton, query the
    # dual (f = f~ for this function), final H^4 and measure.
    with Compute(eng):
        All(H) | qubits
        X | x1
    PhaseOracle(f) | qubits
    Uncompute(eng)

    PhaseOracle(f) | qubits
    All(H) | qubits
    Measure | qubits

    eng.flush()

    # measurement result
    shift = 8 * int(x4) + 4 * int(x3) + 2 * int(x2) + int(x1)
    print("Shift is {}".format(shift))

    ops = eng.circuit.count_ops()
    print(
        f"compiled circuit: {len(eng.circuit)} gates "
        f"({ops.get('h', 0)} H, {ops.get('x', 0)} X, "
        f"{ops.get('cz', 0)} CZ, {ops.get('measure', 0)} measurements)"
    )
    assert shift == 1, "expected the hidden shift s = 1"


if __name__ == "__main__":
    main()

"""Exact density-matrix engine with Pauli-transfer-matrix noise.

The open-system tier of the engine registry: instead of sampling noisy
trajectories (:class:`repro.simulator.noise.NoisyBackend`), the state
is the full density matrix ``rho`` and every noise channel is applied
exactly, so outcome probabilities are read off the diagonal of ``rho``
without shot sampling — the paper's Fig. 6 recovery probability (~0.63
under IBM QE5 calibration rates) becomes a deterministic number.

Kernel reuse on both indices
----------------------------
``rho`` is stored as the flat length-``4^n`` row-major vector
``flat[row * 2^n + col]`` and handed to the existing bit-sliced kernels
of :mod:`repro.simulator.kernels` as if it were a statevector of
``2n`` qubits: qubit ``q``'s *column* bit is kernel qubit ``q`` and its
*row* bit is kernel qubit ``n + q``.  A unitary update
``rho -> U rho U^+`` is then two kernel passes:

* left-multiply by ``U``: the gate remapped onto the row qubits;
* right-multiply by ``U^+``: the elementwise-conjugated gate on the
  column qubits (``rho U^+ = (U* rho*)*`` and ``rho`` is only
  conjugated implicitly — acting on the column index with ``U*`` is
  exactly right-multiplication by ``U^+``).

Most named gates conjugate to another named gate (real matrices are
their own conjugate, ``s``/``t``/``sx`` swap with their daggers,
rotations negate their angle), so both passes stay on the dedicated
bit-sliced kernels; ``y``/``cy`` (whose conjugate ``-y`` is not a named
gate — the sign matters on one index) fall back to the dense kernel.
Noise channels are 4x4 superoperators (:mod:`repro.engines.ptm`)
applied to the ``(row bit, column bit)`` pair of one qubit through the
same dense kernel, and ``reset`` is amplitude damping at ``gamma = 1``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.circuit import QuantumCircuit
from ..core.gates import ADJOINT_NAME, Gate
from ..simulator import backends as array_backends
from ..simulator import kernels
from ..simulator.statevector import (
    SimulationResult,
    Statevector,
    _measured_width,
    _measurements_terminal,
)
from .base import EngineCapabilities, EngineError, reject_opts
from .noise import NoiseModel
from .ptm import channel_superoperator

#: hard circuit-width ceiling: rho at n qubits is 16 * 4^n bytes
#: (n=12 -> 256 MiB), so wider jobs are refused rather than swapped.
MAX_QUBITS = 12

#: base names whose matrix is real — the gate is its own conjugate.
_REAL_BASES = frozenset(
    {"id", "h", "x", "z", "swap", "ry", "mcx", "mcz"}
)

#: parametric bases whose conjugate negates the angle.
_NEGATE_PARAM_BASES = frozenset({"rx", "rz", "p"})


def _conjugate_gate(gate: Gate) -> Optional[Gate]:
    """Return the named gate equal to ``gate``'s elementwise conjugate.

    Controls are real structure, so a controlled gate conjugates by
    conjugating its base.  Returns ``None`` when no named gate matches
    (``y``'s conjugate is ``-y`` — same adjoint, opposite sign, and the
    sign is physical when only one index of ``rho`` is touched).
    """
    base = gate.base_name
    if base in _REAL_BASES:
        return gate
    if base in ADJOINT_NAME:  # s/sdg, t/tdg, sx/sxdg: diagonal or real-swap
        if gate.controls:
            return None  # no named controlled-sdg etc.; dense fallback
        return Gate(ADJOINT_NAME[gate.name], gate.targets, params=gate.params)
    if base in _NEGATE_PARAM_BASES:
        return Gate(
            gate.name,
            gate.targets,
            gate.controls,
            tuple(-p for p in gate.params),
        )
    return None


class DensityMatrix:
    """Mutable n-qubit density matrix driven by the statevector kernels.

    The matrix is stored flat (row-major, length ``4^n``) so the
    bit-sliced kernels of :mod:`repro.simulator.kernels` can treat it
    as a ``2n``-qubit state: column bits are kernel qubits ``0..n-1``,
    row bits are ``n..2n-1``.
    """

    def __init__(
        self,
        num_qubits: int,
        data: Optional[np.ndarray] = None,
        backend=None,
    ):
        """Initialize to |0..0><0..0| or a copy of ``data``.

        Args:
            num_qubits: the register width ``n``.
            data: optional ``2^n x 2^n`` (or flat ``4^n``) initial
                matrix, copied.
            backend: optional array backend (name, instance, or
                ``None`` for the process default) executing the
                kernels on the flat ``rho`` vector.
        """
        if num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        if num_qubits > MAX_QUBITS:
            raise EngineError(
                f"density matrix at {num_qubits} qubits needs "
                f"{16 * 4 ** num_qubits / 2 ** 20:.0f} MiB; the engine "
                f"caps at {MAX_QUBITS} qubits — use 'statevector' or "
                "'monte_carlo' for wider circuits"
            )
        self.num_qubits = num_qubits
        #: the array backend executing this matrix's kernel sweeps.
        self.backend = array_backends.resolve(backend)
        dim = 1 << num_qubits
        if data is None:
            self.data = self.backend.zeros(2 * num_qubits)
            self.data[0] = 1.0
        else:
            data = self.backend.prepare(data).reshape(-1)
            if data.shape != (dim * dim,):
                raise ValueError(f"density matrix must have {dim * dim} entries")
            self.data = data

    @classmethod
    def from_statevector(cls, state: Statevector) -> "DensityMatrix":
        """Build the pure-state density matrix |psi><psi|.

        Args:
            state: the pure state to lift.

        Returns:
            The rank-one :class:`DensityMatrix`.
        """
        return cls(state.num_qubits, np.outer(state.data, state.data.conj()))

    def copy(self) -> "DensityMatrix":
        """Return an independent copy."""
        return DensityMatrix(self.num_qubits, self.data, backend=self.backend)

    def matrix(self) -> np.ndarray:
        """The density matrix as a ``2^n x 2^n`` array (a view)."""
        dim = 1 << self.num_qubits
        return self.data.reshape(dim, dim)

    # ------------------------------------------------------------------
    # evolution
    # ------------------------------------------------------------------
    def apply_gate(self, gate: Gate) -> None:
        """Apply ``rho -> U rho U^+`` with two kernel passes.

        Args:
            gate: the unitary gate (measure/reset are handled by the
                engine, not here).
        """
        if gate.name in ("barrier", "id"):
            return
        if not gate.is_unitary:
            raise EngineError(
                f"apply_gate cannot handle non-unitary {gate.name!r}"
            )
        n = self.num_qubits
        total = 2 * n
        # left-multiply U: the same gate on the row qubits
        row_gate = gate.remap({q: q + n for q in gate.qubits})
        if not kernels.apply_gate(
            self.data, row_gate, total, backend=self.backend
        ):
            kernels.apply_matrix(
                self.data,
                gate.matrix(),
                [q + n for q in gate.qubits],
                total,
                backend=self.backend,
            )
        # right-multiply U^+: the conjugated gate on the column qubits
        conj = _conjugate_gate(gate)
        if conj is None or not kernels.apply_gate(
            self.data, conj, total, backend=self.backend
        ):
            kernels.apply_matrix(
                self.data, np.conj(gate.matrix()), gate.qubits, total,
                backend=self.backend,
            )

    def apply_unitary(self, matrix: np.ndarray, qubits: List[int]) -> None:
        """Apply an arbitrary ``2^k x 2^k`` unitary to ``qubits``.

        Args:
            matrix: the unitary (``qubits[0]`` is its local MSB).
            qubits: the qubits acted on.
        """
        n = self.num_qubits
        matrix = np.asarray(matrix, dtype=complex)
        kernels.apply_matrix(
            self.data, matrix, [q + n for q in qubits], 2 * n,
            backend=self.backend,
        )
        kernels.apply_matrix(
            self.data, np.conj(matrix), qubits, 2 * n, backend=self.backend
        )

    def apply_channel(self, kind: str, rate: float, qubit: int) -> None:
        """Apply a builtin single-qubit channel exactly.

        Args:
            kind: ``"amplitude_damping"``, ``"phase_damping"`` or
                ``"depolarizing"``.
            rate: the channel rate in [0, 1] (zero is a no-op).
            qubit: the qubit the channel hits.
        """
        if rate == 0.0:
            return
        superop = channel_superoperator(kind, rate)
        # the superoperator's local index pairs (row bit, column bit)
        kernels.apply_matrix(
            self.data,
            superop,
            [qubit + self.num_qubits, qubit],
            2 * self.num_qubits,
            backend=self.backend,
        )

    def reset_qubit(self, qubit: int) -> None:
        """Reset one qubit to |0> (amplitude damping at ``gamma = 1``)."""
        self.apply_channel("amplitude_damping", 1.0, qubit)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        """Exact basis-state probabilities: the diagonal of ``rho``."""
        probs = self.matrix().diagonal().real.copy()
        np.clip(probs, 0.0, None, out=probs)  # scrub float round-off
        total = probs.sum()
        if total > 0.0:
            probs /= total
        return probs

    def trace(self) -> float:
        """Tr(rho) — 1.0 up to float round-off for any channel chain."""
        return float(self.matrix().diagonal().real.sum())

    def purity(self) -> float:
        """Tr(rho^2): 1.0 for pure states, 1/2^n for maximal mixing."""
        return float(np.sum(np.abs(self.data) ** 2))


class DensityMatrixResult(SimulationResult):
    """A simulation result whose probabilities are exact.

    ``counts`` are sampled from the exact distribution (so shot-based
    callers behave normally), but :meth:`probability` and
    :attr:`exact_probabilities` come straight off the diagonal of
    ``rho`` — no sampling error.
    """

    def __init__(
        self,
        counts: Dict[int, int],
        probabilities: np.ndarray,
        density: DensityMatrix,
        shots: int,
        num_clbits: Optional[int] = None,
    ):
        """Wrap the exact distribution next to sampled counts.

        Args:
            counts: sampled outcome histogram.
            probabilities: exact probabilities over the measured
                register.
            density: the final density matrix.
            shots: number of sampled shots.
            num_clbits: measured classical register width.
        """
        super().__init__(counts, None, shots, num_clbits)
        #: exact outcome probabilities indexed by classical register value.
        self.exact_probabilities = probabilities
        #: the final :class:`DensityMatrix`.
        self.density = density

    def probability(self, outcome: int) -> float:
        """Exact probability of ``outcome``, read off ``rho``'s diagonal.

        Args:
            outcome: the classical register value.

        Returns:
            The exact probability (0.0 outside the register range).
        """
        if 0 <= outcome < self.exact_probabilities.size:
            return float(self.exact_probabilities[outcome])
        return 0.0

    def most_frequent(self) -> int:
        """The most likely outcome of the exact distribution."""
        return int(np.argmax(self.exact_probabilities))


class DensityMatrixEngine:
    """The exact open-system builtin engine (registry: ``density_matrix``)."""

    name = "density_matrix"
    description = (
        "exact rho evolution with PTM noise channels "
        "(amplitude/phase damping, depolarizing, readout error)"
    )
    capabilities = EngineCapabilities(
        max_qubits=MAX_QUBITS, noise=True, exact=True
    )
    aliases = ("dm", "rho")

    def run(
        self,
        circuit: QuantumCircuit,
        *,
        shots: int = 1024,
        noise: Optional[NoiseModel] = None,
        seed: Optional[int] = None,
        **opts,
    ) -> DensityMatrixResult:
        """Evolve ``rho`` through ``circuit`` and read exact statistics.

        Args:
            circuit: the circuit (measurements must be terminal).
            shots: number of counts to sample from the exact
                distribution (the probabilities themselves are exact).
            noise: optional :class:`NoiseModel`; each gate is followed
                by its class's depolarizing channel plus the model's
                damping channels on every touched qubit, and measured
                bits mix through the readout-assignment matrix.
            seed: RNG seed for the count sampling only.
            **opts: ``backend`` selects the array backend (name or
                instance); any other option raises.

        Returns:
            The run's :class:`DensityMatrixResult`.
        """
        reject_opts(self, opts, allowed=("backend",))
        if shots < 0:
            raise EngineError("shots must be non-negative")
        if not _measurements_terminal(circuit):
            raise EngineError(
                "density_matrix engine requires terminal measurements; "
                "use 'statevector' or 'monte_carlo' for mid-circuit "
                "measurement"
            )
        rho = DensityMatrix(circuit.num_qubits, backend=opts.get("backend"))
        measure_map: Dict[int, int] = {}  # clbit -> qubit (last wins)
        for gate in circuit.gates:
            if gate.name == "barrier":
                continue
            if gate.is_measurement:
                measure_map[gate.cbits[0]] = gate.targets[0]
                continue
            if gate.name == "reset":
                rho.reset_qubit(gate.targets[0])
                continue
            rho.apply_gate(gate)
            if noise is not None:
                p_err = noise.gate_error(gate)
                for qubit in gate.qubits:
                    rho.apply_channel("depolarizing", p_err, qubit)
                    rho.apply_channel(
                        "amplitude_damping", noise.amplitude_damping, qubit
                    )
                    rho.apply_channel(
                        "phase_damping", noise.phase_damping, qubit
                    )

        if not circuit.has_measurements():
            return DensityMatrixResult(
                {}, rho.probabilities(), rho, shots, None
            )

        num_clbits = _measured_width(circuit)
        probs = _register_marginal(
            rho.probabilities(), measure_map, num_clbits
        )
        if noise is not None and noise.p_meas > 0.0:
            for clbit in measure_map:
                probs = _mix_readout(probs, clbit, noise.p_meas)
        counts = _sample_counts(probs, shots, seed)
        return DensityMatrixResult(counts, probs, rho, shots, num_clbits)


def _register_marginal(
    probs: np.ndarray, measure_map: Dict[int, int], num_clbits: int
) -> np.ndarray:
    """Marginalize basis-state probabilities onto the measured register.

    Args:
        probs: exact probabilities over all ``2^n`` basis states.
        measure_map: classical bit -> measured qubit.
        num_clbits: width of the classical register.

    Returns:
        Exact probabilities indexed by classical register value.
    """
    idx = np.arange(probs.size)
    keys = np.zeros(probs.size, dtype=np.int64)
    for clbit, qubit in measure_map.items():
        keys |= ((idx >> qubit) & 1) << clbit
    return np.bincount(keys, weights=probs, minlength=1 << num_clbits)


def _mix_readout(probs: np.ndarray, clbit: int, p_flip: float) -> np.ndarray:
    """Mix one classical bit through the readout-assignment matrix.

    Args:
        probs: register probabilities.
        clbit: the bit read out imperfectly.
        p_flip: its flip probability.

    Returns:
        The mixed distribution ``(1 - p) probs + p probs_flipped``.
    """
    flipped = probs[np.arange(probs.size) ^ (1 << clbit)]
    return (1.0 - p_flip) * probs + p_flip * flipped


def _sample_counts(
    probs: np.ndarray, shots: int, seed: Optional[int]
) -> Dict[int, int]:
    """Draw a multinomial count histogram from exact probabilities.

    Args:
        probs: the exact distribution.
        shots: number of samples.
        seed: RNG seed.

    Returns:
        Outcome -> count, zero-count outcomes omitted.
    """
    if shots == 0:
        return {}
    rng = np.random.default_rng(seed)
    draws = rng.multinomial(shots, probs / probs.sum())
    return {int(i): int(c) for i, c in enumerate(draws) if c}


#: the registry's lazy-loading hook (mirrors ``emit``'s ``EMITTER``).
ENGINE = DensityMatrixEngine()

"""The :class:`Engine` protocol — what a simulation backend provides.

An engine executes a compiled :class:`~repro.core.circuit.QuantumCircuit`
on one simulation model (pure statevector, stabilizer tableau, exact
density matrix, Monte-Carlo trajectories, ...) and returns a
:class:`~repro.simulator.statevector.SimulationResult`.  Backends are
plain objects satisfying the protocol; the registry in
:mod:`repro.engines.registry` makes them addressable by name everywhere
an engine is accepted (``Target.engine``,
``CompilationResult.simulate``, ``python -m repro compile --engine``,
the RevKit shell's ``sim_*`` commands).

Each engine declares its :class:`EngineCapabilities` — the practical
qubit ceiling, whether it accepts a
:class:`~repro.engines.noise.NoiseModel`, whether its probabilities are
exact or sampled, and the gate classes it can execute — so callers can
pick a backend (and the registry can report why one refused a job)
without trying it first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Protocol, Tuple, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from ..core.circuit import QuantumCircuit
    from ..simulator.statevector import SimulationResult
    from .noise import NoiseModel


class EngineError(ValueError):
    """Raised for unknown engines or jobs a backend cannot run."""


@dataclass(frozen=True)
class EngineCapabilities:
    """What a simulation backend can (and cannot) do.

    Attributes:
        max_qubits: practical circuit-width ceiling — the widest
            circuit the engine is expected to handle on workstation
            memory; ``None`` means effectively unbounded (stabilizer
            tableaus grow polynomially).  Engines enforce their own
            hard limits; this figure is advisory for listings and
            backend selection.
        noise: whether :meth:`Engine.run` accepts a
            :class:`~repro.engines.noise.NoiseModel`.
        exact: whether outcome probabilities are computed exactly
            (read off a state or a density matrix) rather than
            estimated from sampled trajectories.
        gate_set: the gate classes the engine executes —
            ``"universal"`` (any gate with a unitary matrix) or
            ``"clifford"`` (stabilizer operations only).
    """

    max_qubits: Optional[int] = None
    noise: bool = False
    exact: bool = False
    gate_set: str = "universal"

    def describe(self) -> str:
        """Return a compact ``"<=n qubits, noise, exact"`` summary."""
        parts = [
            "any width" if self.max_qubits is None
            else f"<={self.max_qubits} qubits"
        ]
        parts.append("noise" if self.noise else "noiseless")
        parts.append("exact" if self.exact else "sampled")
        if self.gate_set != "universal":
            parts.append(self.gate_set)
        return ", ".join(parts)


@runtime_checkable
class Engine(Protocol):
    """What a simulation backend must provide.

    Attributes:
        name: canonical registry name (lowercase, e.g.
            ``"density_matrix"``).
        description: one-line summary shown by engine listings.
        capabilities: the backend's :class:`EngineCapabilities`.
        aliases: alternative names resolving to this backend (e.g.
            ``"dm"`` for ``density_matrix``).
    """

    name: str
    description: str
    capabilities: EngineCapabilities
    aliases: Tuple[str, ...]

    def run(
        self,
        circuit: "QuantumCircuit",
        *,
        shots: int = 1024,
        noise: Optional["NoiseModel"] = None,
        seed: Optional[int] = None,
        **opts,
    ) -> "SimulationResult":
        """Execute ``circuit`` and return its measurement statistics.

        Args:
            circuit: the circuit to execute.
            shots: number of measurement repetitions to report.
            noise: optional noise model; engines whose capabilities
                declare ``noise=False`` must raise
                :class:`EngineError` for a non-trivial model instead
                of silently ignoring it.
            seed: RNG seed for reproducible sampling.
            **opts: backend-specific options.

        Returns:
            The run's :class:`~repro.simulator.statevector.SimulationResult`.
        """
        ...  # pragma: no cover


def reject_noise(engine: Engine, noise: Optional["NoiseModel"]) -> None:
    """Raise when a noiseless backend is handed a non-trivial model.

    Args:
        engine: the backend the model was passed to.
        noise: the model to vet (``None`` and all-zero models pass).

    Raises:
        EngineError: for a non-trivial model; the message names the
            noise-capable alternatives.
    """
    if noise is None or noise.is_noiseless:
        return
    raise EngineError(
        f"engine {engine.name!r} does not support noise models; use "
        "'density_matrix' (exact) or 'monte_carlo' (sampled) instead"
    )


def reject_opts(engine: Engine, opts: dict, allowed: Tuple[str, ...] = ()) -> None:
    """Raise for backend options the engine does not understand.

    Args:
        engine: the backend the options were passed to.
        opts: the keyword options to vet.
        allowed: option names the caller already consumed.

    Raises:
        EngineError: naming the first unknown option.
    """
    unknown = [key for key in opts if key not in allowed]
    if unknown:
        raise EngineError(
            f"engine {engine.name!r} got unknown option {unknown[0]!r}"
            + (f"; supported options: {', '.join(allowed)}" if allowed else "")
        )

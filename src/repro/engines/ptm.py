"""Pauli-transfer-matrix channel algebra for the density-matrix tier.

A single-qubit channel ``E`` is represented by its Pauli transfer
matrix (PTM) — the real 4x4 matrix

    R[i, j] = Tr(P_i E(P_j)) / 2,      P in (I, X, Y, Z)

acting on the Pauli coefficient vector ``c`` of a density matrix
``rho = sum_j c_j P_j`` (the quantumsim representation: unitaries and
noise compose as plain real matrix products, complete positivity and
trace preservation are directly readable).  The density-matrix engine
stores ``rho`` in the computational basis, so every PTM is lowered
once (and cached) to the equivalent 4x4 computational-basis
superoperator ``S = T R T^dagger / 2`` with ``T[:, j] = vec(P_j)``,
which :func:`repro.simulator.kernels.apply_matrix` then applies to the
(row-bit, column-bit) qubit pair of the flattened ``rho`` exactly like
a two-qubit gate on a statevector.

Channels provided: amplitude damping (T1 relaxation), phase damping
(T2 dephasing), depolarizing (uniform random Pauli — the Monte-Carlo
sampler's convention, so both noisy tiers agree channel-for-channel),
and the PTM of any single-qubit unitary.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

#: The Pauli basis (I, X, Y, Z) the transfer matrices are written in.
PAULIS: Tuple[np.ndarray, ...] = (
    np.eye(2, dtype=complex),
    np.array([[0, 1], [1, 0]], dtype=complex),
    np.array([[0, -1j], [1j, 0]], dtype=complex),
    np.array([[1, 0], [0, -1]], dtype=complex),
)

#: Basis-change matrix: column j is vec(P_j), row-major flattening.
_PAULI_COLUMNS = np.column_stack([p.reshape(-1) for p in PAULIS])


def unitary_ptm(matrix: np.ndarray) -> np.ndarray:
    """Return the PTM of a single-qubit unitary ``U rho U^dagger``.

    Args:
        matrix: the 2x2 unitary.

    Returns:
        The real 4x4 Pauli transfer matrix.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise ValueError("unitary_ptm expects a 2x2 matrix")
    out = np.empty((4, 4))
    for j, p_j in enumerate(PAULIS):
        image = matrix @ p_j @ matrix.conj().T
        for i, p_i in enumerate(PAULIS):
            out[i, j] = np.trace(p_i @ image).real / 2.0
    return out


def kraus_ptm(operators: Sequence[np.ndarray]) -> np.ndarray:
    """Return the PTM of the channel ``sum_k K_k rho K_k^dagger``.

    Args:
        operators: the Kraus operators (2x2 each).

    Returns:
        The real 4x4 Pauli transfer matrix.
    """
    out = np.zeros((4, 4))
    for kraus in operators:
        kraus = np.asarray(kraus, dtype=complex)
        for j, p_j in enumerate(PAULIS):
            image = kraus @ p_j @ kraus.conj().T
            for i, p_i in enumerate(PAULIS):
                out[i, j] += np.trace(p_i @ image).real / 2.0
    return out


def amplitude_damping_ptm(gamma: float) -> np.ndarray:
    """PTM of T1 relaxation toward |0> with rate ``gamma``.

    Args:
        gamma: probability of losing the excitation (``gamma=1`` is a
            perfect reset to |0>).

    Returns:
        The real 4x4 Pauli transfer matrix (non-unital: the Z row
        gains a ``gamma`` contribution from the identity column).
    """
    if not 0.0 <= gamma <= 1.0:
        raise ValueError(f"amplitude damping rate {gamma!r} not in [0, 1]")
    keep = math.sqrt(1.0 - gamma)
    out = np.diag([1.0, keep, keep, 1.0 - gamma])
    out[3, 0] = gamma
    return out


def phase_damping_ptm(lam: float) -> np.ndarray:
    """PTM of pure T2 dephasing with rate ``lam``.

    Args:
        lam: probability of the environment learning the phase.

    Returns:
        The real 4x4 Pauli transfer matrix (coherences shrink by
        ``sqrt(1 - lam)``, populations are untouched).
    """
    if not 0.0 <= lam <= 1.0:
        raise ValueError(f"phase damping rate {lam!r} not in [0, 1]")
    keep = math.sqrt(1.0 - lam)
    return np.diag([1.0, keep, keep, 1.0])


def depolarizing_ptm(p: float) -> np.ndarray:
    """PTM of the uniform-random-Pauli channel with rate ``p``.

    With probability ``p`` one of X/Y/Z (uniformly) hits the qubit —
    the exact-channel form of the Monte-Carlo sampler in
    :mod:`repro.simulator.noise`, so differential tests can compare
    the two tiers channel-for-channel.

    Args:
        p: probability of a random Pauli error.

    Returns:
        The real 4x4 Pauli transfer matrix ``diag(1, f, f, f)`` with
        ``f = 1 - 4p/3``.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"depolarizing rate {p!r} not in [0, 1]")
    fidelity = 1.0 - 4.0 * p / 3.0
    return np.diag([1.0, fidelity, fidelity, fidelity])


def compose_ptms(*ptms: np.ndarray) -> np.ndarray:
    """Compose channels left-to-right (first argument acts first).

    Args:
        *ptms: the transfer matrices to chain.

    Returns:
        The PTM of the composite channel.
    """
    out = np.eye(4)
    for ptm in ptms:
        out = np.asarray(ptm) @ out
    return out


def is_trace_preserving(ptm: np.ndarray, atol: float = 1e-12) -> bool:
    """Whether the channel preserves trace (first PTM row is e_0).

    Args:
        ptm: the 4x4 transfer matrix to check.
        atol: numerical tolerance.

    Returns:
        True when ``Tr E(rho) = Tr rho`` for every ``rho``.
    """
    return bool(
        np.allclose(np.asarray(ptm)[0], [1.0, 0.0, 0.0, 0.0], atol=atol)
    )


def is_unital(ptm: np.ndarray, atol: float = 1e-12) -> bool:
    """Whether the channel fixes the identity (first PTM column is e_0).

    Args:
        ptm: the 4x4 transfer matrix to check.
        atol: numerical tolerance.

    Returns:
        True when ``E(I) = I`` (amplitude damping is the non-unital
        builtin).
    """
    return bool(
        np.allclose(np.asarray(ptm)[:, 0], [1.0, 0.0, 0.0, 0.0], atol=atol)
    )


def ptm_to_superoperator(ptm: np.ndarray) -> np.ndarray:
    """Lower a PTM to the computational-basis superoperator.

    The returned matrix acts on the row-major flattening of a 2x2
    density matrix: ``vec(E(rho)) = S vec(rho)``.  Its local index
    pairs the qubit's row bit (most significant) with its column bit,
    which is exactly the qubit order the density-matrix engine hands
    to :func:`repro.simulator.kernels.apply_matrix`.

    Args:
        ptm: the real 4x4 Pauli transfer matrix.

    Returns:
        The complex 4x4 superoperator.
    """
    ptm = np.asarray(ptm, dtype=float)
    if ptm.shape != (4, 4):
        raise ValueError("ptm_to_superoperator expects a 4x4 matrix")
    return (_PAULI_COLUMNS @ ptm @ _PAULI_COLUMNS.conj().T) / 2.0


def superoperator_to_ptm(superop: np.ndarray) -> np.ndarray:
    """Raise a computational-basis superoperator back to its PTM.

    Args:
        superop: the complex 4x4 superoperator on ``vec(rho)``.

    Returns:
        The real 4x4 Pauli transfer matrix (the inverse of
        :func:`ptm_to_superoperator`).
    """
    superop = np.asarray(superop, dtype=complex)
    if superop.shape != (4, 4):
        raise ValueError("superoperator_to_ptm expects a 4x4 matrix")
    return (
        (_PAULI_COLUMNS.conj().T @ superop @ _PAULI_COLUMNS) / 2.0
    ).real


@lru_cache(maxsize=256)
def _cached_channel_superop(kind: str, rate: float) -> np.ndarray:
    """Memoized (read-only) superoperator of a named builtin channel."""
    builders = {
        "amplitude_damping": amplitude_damping_ptm,
        "phase_damping": phase_damping_ptm,
        "depolarizing": depolarizing_ptm,
    }
    superop = ptm_to_superoperator(builders[kind](rate))
    superop.flags.writeable = False  # shared across callers
    return superop


def channel_superoperator(kind: str, rate: float) -> np.ndarray:
    """Cached computational-basis superoperator of a builtin channel.

    Args:
        kind: ``"amplitude_damping"``, ``"phase_damping"`` or
            ``"depolarizing"``.
        rate: the channel rate in [0, 1].

    Returns:
        The (read-only) complex 4x4 superoperator.
    """
    return _cached_channel_superop(kind, float(rate))


def readout_assignment(p_flip: float) -> np.ndarray:
    """Stochastic readout matrix mixing measured-bit probabilities.

    Args:
        p_flip: probability a measured bit is reported flipped.

    Returns:
        The 2x2 column-stochastic assignment matrix
        ``[[1-p, p], [p, 1-p]]`` acting on ``(p0, p1)`` vectors.
    """
    if not 0.0 <= p_flip <= 1.0:
        raise ValueError(f"readout flip rate {p_flip!r} not in [0, 1]")
    return np.array([[1.0 - p_flip, p_flip], [p_flip, 1.0 - p_flip]])

"""The shared noise model — one home for the IBM QE5 error rates.

The paper runs the 4-qubit hidden-shift circuit on the IBM QE chip
(Fig. 6): 3 runs x 1024 shots, recovering the correct shift with
average probability ~0.63.  :class:`NoiseModel` is the device
description both noisy tiers consume:

* the exact ``density_matrix`` engine applies the corresponding
  Pauli-transfer-matrix channels (:mod:`repro.engines.ptm`) after
  every gate and a readout-assignment matrix at measurement;
* the Monte-Carlo sampler (:class:`repro.simulator.noise.NoisyBackend`)
  draws random Paulis and readout flips at the same rates.

Default error rates follow published calibration data of the 2017/2018
IBM QE 5-qubit devices (1q ~1.5e-3, 2q ~3.5e-2, readout ~4e-2),
exposed as the :data:`QE5_NOISE` preset.  The depolarizing convention
is the Monte-Carlo one: with probability ``p`` a uniformly random
non-identity Pauli hits each touched qubit, so both tiers agree
channel-for-channel (the exact engine is the trajectory average of the
sampler).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..core.gates import Gate


@dataclass(frozen=True)
class NoiseModel:
    """Per-gate-class error rates plus open-system damping channels.

    The first four fields keep the historical constructor of
    ``repro.simulator.noise.NoiseModel`` (same names, same positional
    order); the damping rates are new with the density-matrix tier and
    default to zero, so every pre-existing call site constructs the
    identical model.

    Attributes:
        p1: single-qubit gate depolarizing probability.
        p2: two-qubit gate depolarizing probability (per qubit).
        p_meas: readout bit-flip probability.
        p_multi: >2-qubit gate depolarizing probability (per qubit).
        amplitude_damping: per-gate T1 relaxation rate ``gamma``
            applied to each touched qubit (exact tier only — the
            Monte-Carlo sampler has no non-unital channel).
        phase_damping: per-gate T2 dephasing rate ``lambda`` applied
            to each touched qubit (exact tier only).
    """

    p1: float = 0.0015
    p2: float = 0.035
    p_meas: float = 0.04
    p_multi: float = 0.06
    amplitude_damping: float = 0.0
    phase_damping: float = 0.0

    def __post_init__(self) -> None:
        """Validate every rate is a probability in [0, 1]."""
        for name in (
            "p1", "p2", "p_meas", "p_multi",
            "amplitude_damping", "phase_damping",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"noise rate {name}={value!r} is not in [0, 1]"
                )

    def gate_error(self, gate: Gate) -> float:
        """Return the depolarizing rate of ``gate``'s class.

        Args:
            gate: the gate whose error class to look up.

        Returns:
            ``p1``/``p2``/``p_multi`` by the gate's qubit count.
        """
        if gate.num_qubits == 1:
            return self.p1
        if gate.num_qubits == 2:
            return self.p2
        return self.p_multi

    @property
    def is_noiseless(self) -> bool:
        """Whether every rate is exactly zero."""
        return not any(
            (
                self.p1, self.p2, self.p_meas, self.p_multi,
                self.amplitude_damping, self.phase_damping,
            )
        )

    @property
    def trajectory_safe(self) -> bool:
        """Whether Pauli/readout trajectory sampling is exact for us.

        Damping channels are not mixtures of unitaries, so they cannot
        be sampled as statevector trajectories and need the exact
        ``density_matrix`` tier; everything else (depolarizing +
        readout flips) batches safely.
        """
        return not (self.amplitude_damping or self.phase_damping)

    def scaled(self, factor: float) -> "NoiseModel":
        """Return a copy with every rate multiplied by ``factor``.

        Args:
            factor: the scale to apply (rates are clipped to 1.0).

        Returns:
            The scaled :class:`NoiseModel`.
        """
        return NoiseModel(
            *(
                min(1.0, rate * factor)
                for rate in (
                    self.p1, self.p2, self.p_meas, self.p_multi,
                    self.amplitude_damping, self.phase_damping,
                )
            )
        )

    @classmethod
    def ibm_qe_2018(cls) -> "NoiseModel":
        """Calibration representative of the early-2018 IBM QE chips."""
        return cls(p1=0.0015, p2=0.035, p_meas=0.04, p_multi=0.06)

    @classmethod
    def noiseless(cls) -> "NoiseModel":
        """The all-zero model (every engine accepts it)."""
        return cls(p1=0.0, p2=0.0, p_meas=0.0, p_multi=0.0)


#: The 2017/2018 IBM QE 5-qubit calibration numbers, the model behind
#: the paper's Fig. 6 histogram (and the ``ibm_qe5`` target's default).
QE5_NOISE = NoiseModel.ibm_qe_2018()

#: Named noise presets accepted wherever a model can be spelled as a
#: string (CLI ``--noise``, the shell's ``sim_*`` commands).
NOISE_PRESETS = {
    "qe5": QE5_NOISE,
    "ibm_qe5": QE5_NOISE,
    "ibm_qe_2018": QE5_NOISE,
    "none": NoiseModel.noiseless(),
    "ideal": NoiseModel.noiseless(),
    "noiseless": NoiseModel.noiseless(),
}


def as_noise_model(
    spec: Union["NoiseModel", str, None]
) -> Optional["NoiseModel"]:
    """Resolve a noise argument to a :class:`NoiseModel` (or ``None``).

    Args:
        spec: ``None``, a model (returned as-is), a preset name from
            :data:`NOISE_PRESETS` (case-insensitive), or a
            ``"p1=0.001,p2=0.03"`` rate list over the model's fields.

    Returns:
        The resolved model, or ``None`` when ``spec`` is ``None``.

    Raises:
        EngineError: for unknown preset names, unknown rate fields, or
            malformed rate lists.
    """
    from .base import EngineError

    if spec is None or isinstance(spec, NoiseModel):
        return spec
    if not isinstance(spec, str):
        raise EngineError(
            f"expected a NoiseModel, a preset name or a rate list, "
            f"got {type(spec).__name__}"
        )
    key = spec.lower().strip()
    if key in NOISE_PRESETS:
        return NOISE_PRESETS[key]
    if "=" not in key:
        raise EngineError(
            f"unknown noise preset {spec!r}; presets: "
            f"{', '.join(sorted(set(NOISE_PRESETS)))} (or a "
            "'p1=0.001,p2=0.03' rate list)"
        )
    rates = {}
    valid = NoiseModel.__dataclass_fields__
    for item in key.split(","):
        name, _, value = item.partition("=")
        name = name.strip()
        if name not in valid:
            raise EngineError(
                f"unknown noise rate {name!r}; fields: "
                f"{', '.join(valid)}"
            )
        if name in rates:
            raise EngineError(
                f"duplicate noise rate {name!r} in {spec!r}; "
                "each field may appear at most once"
            )
        try:
            rates[name] = float(value)
        except ValueError:
            raise EngineError(
                f"noise rate {name!r} needs a number, got {value!r}"
            ) from None
    try:
        return NoiseModel(**rates)
    except ValueError as exc:
        raise EngineError(str(exc)) from exc

"""The ``statevector`` builtin engine — the default backend.

A thin adapter over :class:`repro.simulator.statevector.StatevectorSimulator`:
the registry path constructs the same simulator with the same arguments
as direct use, so results are identical shot-for-shot (golden-asserted
in ``tests/engines/test_adapters_golden.py``).
"""

from __future__ import annotations

from typing import Optional

from ..core.circuit import QuantumCircuit
from ..simulator.statevector import SimulationResult, StatevectorSimulator
from .base import EngineCapabilities, reject_noise, reject_opts
from .noise import NoiseModel


class StatevectorEngine:
    """Pure-state simulation via the bit-sliced kernel layer."""

    name = "statevector"
    description = (
        "pure-state simulation on the fused bit-sliced kernels "
        "(universal gates, mid-circuit measurement)"
    )
    capabilities = EngineCapabilities(max_qubits=24, noise=False, exact=False)
    aliases = ("sv", "pure")

    def run(
        self,
        circuit: QuantumCircuit,
        *,
        shots: int = 1024,
        noise: Optional[NoiseModel] = None,
        seed: Optional[int] = None,
        **opts,
    ) -> SimulationResult:
        """Run ``circuit`` on a fresh :class:`StatevectorSimulator`.

        Args:
            circuit: the circuit to execute.
            shots: measurement repetitions.
            noise: must be ``None`` or all-zero (this backend is
                noiseless; the error names the noisy alternatives).
            seed: RNG seed for measurement sampling.
            **opts: ``fusion=False`` disables the gate-fusion pre-pass;
                ``backend`` selects the array backend (name or instance).

        Returns:
            The run's :class:`SimulationResult` (with final state).
        """
        reject_noise(self, noise)
        reject_opts(self, opts, allowed=("fusion", "backend"))
        simulator = StatevectorSimulator(
            seed=seed,
            fusion=opts.get("fusion", True),
            backend=opts.get("backend"),
        )
        return simulator.run(circuit, shots=shots)


#: the registry's lazy-loading hook (mirrors ``emit``'s ``EMITTER``).
ENGINE = StatevectorEngine()

"""The ``monte_carlo`` builtin engine — sampled noisy trajectories.

A thin adapter over :class:`repro.simulator.noise.NoisyBackend`: every
shot evolves a fresh statevector with random Pauli errors and readout
flips at the :class:`NoiseModel`'s rates.  The exact counterpart is the
``density_matrix`` engine, which evolves the trajectory *average* of
this sampler (same depolarizing convention), so the two agree within
sampling tolerance — asserted in
``tests/engines/test_differential_density.py``.

Unlike the raw backend (which defaults to the QE5 calibration), the
engine treats ``noise=None`` as noiseless, matching the other engines'
convention that noise is only applied when the caller asks for it.

Since PR 10 trajectory-safe models route through the backend's batched
sweep (:meth:`NoisyBackend.run_batched`) by default: all shots evolve
on one trailing batch axis, which is the same distribution but a
*different RNG stream* than the per-shot loop — pass ``batched=False``
for the historical per-shot stream, ``batched=True`` to force the
batch even past the memory guard.
"""

from __future__ import annotations

from typing import Optional

from ..core.circuit import QuantumCircuit
from ..simulator.statevector import SimulationResult
from .base import EngineCapabilities, EngineError, reject_opts
from .noise import NoiseModel


class MonteCarloEngine:
    """Shot-sampled Pauli/readout noise on statevector trajectories."""

    name = "monte_carlo"
    description = (
        "per-shot statevector trajectories with sampled "
        "Pauli/readout noise (the Fig. 6 device substitute)"
    )
    capabilities = EngineCapabilities(max_qubits=20, noise=True, exact=False)
    aliases = ("mc", "noisy")

    #: auto-batching memory guard: largest ``shots * 2**n`` complex128
    #: batch the engine will allocate unasked (256 MiB).
    max_batch_bytes = 1 << 28

    def run(
        self,
        circuit: QuantumCircuit,
        *,
        shots: int = 1024,
        noise: Optional[NoiseModel] = None,
        seed: Optional[int] = None,
        **opts,
    ) -> SimulationResult:
        """Run ``circuit`` on a fresh :class:`NoisyBackend`.

        Args:
            circuit: the circuit to execute.
            shots: trajectory count.
            noise: the :class:`NoiseModel` to sample from (``None``
                means noiseless — pass ``QE5_NOISE`` explicitly for
                the paper's device rates).  Damping rates are exact-
                tier channels and are rejected here.
            seed: RNG seed for the error/measurement sampling.
            **opts: ``backend`` selects the array backend; ``batched``
                picks the trajectory sweep — ``None`` (default) batches
                all shots on one axis when the model is trajectory-safe
                and the batch fits :attr:`max_batch_bytes`,
                ``False`` forces the historical per-shot loop,
                ``True`` forces the batch.  The batched sweep samples
                the same distribution but a *different RNG stream*
                than the loop for the same seed.  Any other option
                raises.

        Returns:
            The run's :class:`SimulationResult` (counts only).
        """
        reject_opts(self, opts, allowed=("backend", "batched"))
        model = noise if noise is not None else NoiseModel.noiseless()
        if not model.trajectory_safe:
            raise EngineError(
                "engine 'monte_carlo' samples Pauli/readout errors only; "
                "amplitude/phase damping needs the exact "
                "'density_matrix' engine"
            )
        from ..simulator.noise import NoisyBackend

        sampler = NoisyBackend(
            model, seed=seed, backend=opts.get("backend")
        )
        batched = opts.get("batched")
        if batched is None:
            batch_bytes = shots * (1 << circuit.num_qubits) * 16
            batched = batch_bytes <= self.max_batch_bytes
        if batched:
            return sampler.run_batched(circuit, shots=shots)
        return sampler.run(circuit, shots=shots)


#: the registry's lazy-loading hook (mirrors ``emit``'s ``EMITTER``).
ENGINE = MonteCarloEngine()

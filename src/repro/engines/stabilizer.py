"""The ``stabilizer`` builtin engine — polynomial-time Clifford runs.

A thin adapter over :class:`repro.simulator.stabilizer.StabilizerSimulator`.
The direct simulator returns a raw counts dict; the adapter wraps the
byte-identical dict in a :class:`SimulationResult` so every engine has
one result type (the dict itself is golden-asserted against the direct
path in ``tests/engines/test_adapters_golden.py``).  Non-Clifford gates
raise the simulator's own :class:`StabilizerError`.
"""

from __future__ import annotations

from typing import Optional

from ..core.circuit import QuantumCircuit
from ..simulator.stabilizer import StabilizerSimulator
from ..simulator.statevector import SimulationResult, _measured_width
from .base import EngineCapabilities, reject_noise, reject_opts
from .noise import NoiseModel


class StabilizerEngine:
    """CHP tableau simulation for Clifford circuits."""

    name = "stabilizer"
    description = (
        "Aaronson-Gottesman tableau simulation "
        "(Clifford gates only, polynomial scaling)"
    )
    capabilities = EngineCapabilities(
        max_qubits=None, noise=False, exact=False, gate_set="clifford"
    )
    aliases = ("chp", "tableau")

    def run(
        self,
        circuit: QuantumCircuit,
        *,
        shots: int = 1024,
        noise: Optional[NoiseModel] = None,
        seed: Optional[int] = None,
        **opts,
    ) -> SimulationResult:
        """Run a Clifford circuit on a fresh :class:`StabilizerSimulator`.

        Args:
            circuit: the Clifford circuit to execute.
            shots: measurement repetitions.
            noise: must be ``None`` or all-zero (this backend is
                noiseless; the error names the noisy alternatives).
            seed: RNG seed for measurement outcomes.
            **opts: no backend options are defined; any raises.

        Returns:
            The run's :class:`SimulationResult` (counts only).

        Raises:
            StabilizerError: for non-Clifford gates.
        """
        reject_noise(self, noise)
        reject_opts(self, opts)
        counts = StabilizerSimulator(seed=seed).run(circuit, shots=shots)
        return SimulationResult(counts, None, shots, _measured_width(circuit))


#: the registry's lazy-loading hook (mirrors ``emit``'s ``EMITTER``).
ENGINE = StabilizerEngine()

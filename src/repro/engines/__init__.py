"""Pluggable simulation engines: one registry for every backend.

The simulator-side mirror of :mod:`repro.emit`: every simulation
backend is an :class:`~.base.Engine` behind one registry, so
``Target.engine``, ``CompilationResult.simulate``, ``python -m repro
engines`` / ``compile --engine``, and the RevKit shell's ``sim_*``
commands all resolve backends the same way.

Built-in engines (``engines()`` order):

* ``statevector`` — pure states on the fused bit-sliced kernels
  (aliases ``sv``, ``pure``);
* ``stabilizer`` — Aaronson-Gottesman tableaus, Clifford only
  (aliases ``chp``, ``tableau``);
* ``density_matrix`` — exact open-system evolution with
  Pauli-transfer-matrix noise channels (aliases ``dm``, ``rho``);
* ``monte_carlo`` — per-shot noisy trajectories, the Fig. 6 device
  substitute (aliases ``mc``, ``noisy``).

Adding a backend is one :func:`register` call with any object carrying
``name`` / ``description`` / ``capabilities`` / ``run``; it
immediately shows up in every listing above.  Noise is described by
one shared :class:`~.noise.NoiseModel` (:data:`~.noise.QE5_NOISE` is
the paper's IBM QE5 calibration) consumed by both noisy tiers.
"""

from .base import Engine, EngineCapabilities, EngineError
from .noise import NOISE_PRESETS, NoiseModel, QE5_NOISE, as_noise_model
from .registry import (
    describe_engines,
    engines,
    get,
    register,
    run,
    unregister,
)

__all__ = [
    "Engine",
    "EngineCapabilities",
    "EngineError",
    "NOISE_PRESETS",
    "NoiseModel",
    "QE5_NOISE",
    "as_noise_model",
    "describe_engines",
    "engines",
    "get",
    "register",
    "run",
    "unregister",
    "DensityMatrix",
    "DensityMatrixResult",
]

#: density-matrix types resolved lazily (PEP 562) so importing the
#: package stays light — only registry use loads the builtin engines.
_LAZY = {
    "DensityMatrix": "density_matrix",
    "DensityMatrixResult": "density_matrix",
}


def __getattr__(name: str):
    """Resolve the lazily-exported density-matrix types on first use."""
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __package__)
    value = getattr(module, name)
    globals()[name] = value
    return value

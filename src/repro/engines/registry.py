"""The engine registry: name → backend resolution for every simulator.

The simulator-side mirror of :mod:`repro.emit.registry`.  Built-in
engines load lazily on first registry use — importing
:mod:`repro.engines` alone pays for none of them.  User backends join
via :func:`register`; from then on both kinds are indistinguishable.
Resolution is case-insensitive and alias-aware (``"sv"`` resolves to
``"statevector"``, ``"dm"`` to ``"density_matrix"``).
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from .base import Engine, EngineError
from .noise import NoiseModel, as_noise_model

if TYPE_CHECKING:  # pragma: no cover
    from ..core.circuit import QuantumCircuit
    from ..simulator.statevector import SimulationResult

#: Built-in engine modules, in canonical listing order; each module
#: exposes its backend instance as ``ENGINE``.
_BUILTIN_MODULES = ("statevector", "stabilizer", "density_matrix", "monte_carlo")

_REGISTRY: Dict[str, Engine] = {}
_ALIASES: Dict[str, str] = {}
_ORDER: List[str] = []
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Load and register the built-in engines exactly once."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    for module_name in _BUILTIN_MODULES:
        module = importlib.import_module(f".{module_name}", __package__)
        register(module.ENGINE)


def register(engine: Engine, overwrite: bool = False) -> Engine:
    """Register a backend under its canonical name and aliases.

    Args:
        engine: the backend to register (anything satisfying the
            :class:`~.base.Engine` protocol).
        overwrite: replace an existing registration of the same name
            or alias instead of raising.

    Returns:
        The registered backend (for chaining).

    Raises:
        EngineError: when the backend is missing protocol fields, or
            its name/alias collides with an existing registration and
            ``overwrite`` is false.
    """
    for attr in ("name", "description", "capabilities", "run"):
        if not hasattr(engine, attr):
            raise EngineError(
                f"engine {engine!r} does not satisfy the Engine "
                f"protocol: missing {attr!r}"
            )
    _ensure_builtins()
    name = engine.name.lower()
    aliases = tuple(a.lower() for a in getattr(engine, "aliases", ()))
    taken = [
        key
        for key in (name, *aliases)
        if key in _REGISTRY or key in _ALIASES
    ]
    if taken and not overwrite:
        raise EngineError(
            f"engine {taken[0]!r} is already registered; pass "
            "overwrite=True to replace it"
        )
    # evict everything the new registration shadows: backends whose
    # canonical name collides with one of our keys, aliases colliding
    # with our keys, and the replaced backend's own old aliases
    predecessors = (
        set(_ORDER[: _ORDER.index(name)]) if name in _REGISTRY else None
    )
    for key in (name, *aliases):
        if key in _REGISTRY:
            unregister(key)
        _ALIASES.pop(key, None)
    for alias, canonical in list(_ALIASES.items()):
        if canonical == name:
            del _ALIASES[alias]
    _REGISTRY[name] = engine
    if predecessors is not None:
        # keep the replaced backend's listing position relative to the
        # entries that survived the evictions
        index = sum(1 for key in _ORDER if key in predecessors)
        _ORDER.insert(index, name)
    elif name not in _ORDER:
        _ORDER.append(name)
    for alias in aliases:
        _ALIASES[alias] = name
    return engine


def unregister(name: str) -> Engine:
    """Remove a backend registration (built-ins included).

    Args:
        name: the canonical engine name to remove (not an alias).

    Returns:
        The removed backend.

    Raises:
        EngineError: when no engine of that name is registered.
    """
    _ensure_builtins()
    key = name.lower()
    engine = _REGISTRY.get(key)
    if engine is None:
        raise EngineError(
            f"unknown engine {name!r}; registered engines: "
            f"{describe_engines()}"
        )
    del _REGISTRY[key]
    _ORDER.remove(key)
    for alias, canonical in list(_ALIASES.items()):
        if canonical == key:
            del _ALIASES[alias]
    return engine


def get(spec: Union[str, Engine]) -> Engine:
    """Resolve an engine name (or alias, or backend) to its backend.

    Args:
        spec: a registered engine name or alias (case-insensitive),
            or an :class:`~.base.Engine` instance (returned as-is).

    Returns:
        The resolved backend.

    Raises:
        EngineError: for unknown names; the message lists the
            registered engines (with their aliases).
    """
    if not isinstance(spec, str):
        # duck-typed like register(): 'aliases' stays optional
        if hasattr(spec, "run") and hasattr(spec, "name"):
            return spec
        raise EngineError(
            f"expected an engine name or Engine, got {type(spec).__name__}"
        )
    _ensure_builtins()
    key = spec.lower()
    key = _ALIASES.get(key, key)
    engine = _REGISTRY.get(key)
    if engine is None:
        raise EngineError(
            f"unknown engine {spec!r}; registered engines: "
            f"{describe_engines()}"
        )
    return engine


def engines() -> Tuple[str, ...]:
    """Return the canonical registered engine names, in listing order."""
    _ensure_builtins()
    return tuple(_ORDER)


def describe_engines() -> str:
    """Return ``"statevector (aka sv, pure), ..."`` for error messages."""
    parts = []
    for name in engines():
        # the live alias map, not the backends' static declarations:
        # overwrite registrations may have reassigned an alias
        aliases = tuple(
            alias
            for alias, canonical in _ALIASES.items()
            if canonical == name
        )
        if aliases:
            parts.append(f"{name} (aka {', '.join(aliases)})")
        else:
            parts.append(name)
    return ", ".join(parts)


def run(
    engine: Union[str, Engine],
    circuit: "QuantumCircuit",
    *,
    shots: int = 1024,
    noise: Union[NoiseModel, str, None] = None,
    seed: Optional[int] = None,
    **opts,
) -> "SimulationResult":
    """Execute a circuit on a named engine (registry dispatch).

    Args:
        engine: registered engine name or alias, or an engine instance.
        circuit: the circuit to execute.
        shots: measurement repetitions to report.
        noise: a :class:`NoiseModel`, a preset name (``"qe5"``), a
            ``"p1=0.001,p2=0.03"`` rate list, or ``None``.
        seed: RNG seed for reproducible sampling.
        **opts: backend-specific options.

    Returns:
        The run's :class:`~repro.simulator.statevector.SimulationResult`.

    Raises:
        EngineError: for unknown engine names, unknown noise specs, or
            jobs the backend cannot run.
    """
    backend = get(engine)
    return backend.run(
        circuit, shots=shots, noise=as_noise_model(noise), seed=seed, **opts
    )

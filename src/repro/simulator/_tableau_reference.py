"""The pre-PR-10 per-gate-loop CHP tableau, kept as a reference oracle.

This is the historical ``StabilizerState`` implementation (dense uint8
bit matrices, per-row Python ``_rowsum``) exactly as it shipped before
the bit-packed rewrite.  It exists for two jobs only:

* the differential/pinning tests in
  ``tests/simulator/test_stabilizer_packed.py`` assert that the packed
  tableau reproduces this implementation's tableau evolution, measure
  outcomes and RNG stream bit for bit;
* ``benchmarks/bench_simulator_scaling.py::test_stabilizer_reach``
  times it against the packed tableau to enforce the >= 5x speedup
  gate in-run (PR 1 style), instead of trusting a stale committed
  number.

Do not use it anywhere else — it is O(n) Python per row product and
two orders of magnitude slower at bench widths.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.circuit import QuantumCircuit
from ..core.gates import Gate


class ReferenceStabilizerError(RuntimeError):
    """Raised when a non-Clifford gate reaches the reference tableau."""


class ReferenceStabilizerState:
    """Dense uint8 CHP tableau (the pre-packed implementation)."""

    def __init__(self, num_qubits: int):
        self.num_qubits = num_qubits
        n = num_qubits
        # rows 0..n-1: destabilizers; rows n..2n-1: stabilizers; row 2n: scratch
        self.x = np.zeros((2 * n + 1, n), dtype=np.uint8)
        self.z = np.zeros((2 * n + 1, n), dtype=np.uint8)
        self.r = np.zeros(2 * n + 1, dtype=np.uint8)
        for i in range(n):
            self.x[i, i] = 1          # destabilizer X_i
            self.z[n + i, i] = 1      # stabilizer Z_i

    def copy(self) -> "ReferenceStabilizerState":
        out = ReferenceStabilizerState(self.num_qubits)
        out.x = self.x.copy()
        out.z = self.z.copy()
        out.r = self.r.copy()
        return out

    # ------------------------------------------------------------------
    # Clifford generators
    # ------------------------------------------------------------------
    def apply_h(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def apply_s(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def apply_cx(self, control: int, target: int) -> None:
        self.r ^= (
            self.x[:, control]
            & self.z[:, target]
            & (self.x[:, target] ^ self.z[:, control] ^ 1)
        )
        self.x[:, target] ^= self.x[:, control]
        self.z[:, control] ^= self.z[:, target]

    # derived gates ------------------------------------------------------
    def apply_sdg(self, q: int) -> None:
        self.apply_s(q)
        self.apply_s(q)
        self.apply_s(q)

    def apply_x(self, q: int) -> None:
        self.apply_h(q)
        self.apply_s(q)
        self.apply_s(q)
        self.apply_h(q)

    def apply_z(self, q: int) -> None:
        self.apply_s(q)
        self.apply_s(q)

    def apply_y(self, q: int) -> None:
        self.apply_z(q)
        self.apply_x(q)

    def apply_cz(self, control: int, target: int) -> None:
        self.apply_h(target)
        self.apply_cx(control, target)
        self.apply_h(target)

    def apply_cy(self, control: int, target: int) -> None:
        self.apply_sdg(target)
        self.apply_cx(control, target)
        self.apply_s(target)

    def apply_swap(self, a: int, b: int) -> None:
        self.apply_cx(a, b)
        self.apply_cx(b, a)
        self.apply_cx(a, b)

    def apply_sx(self, q: int) -> None:
        self.apply_h(q)
        self.apply_s(q)
        self.apply_h(q)

    def apply_sxdg(self, q: int) -> None:
        self.apply_h(q)
        self.apply_sdg(q)
        self.apply_h(q)

    def apply_gate(self, gate: Gate) -> None:
        """Dispatch a Clifford gate onto the tableau."""
        name = gate.name
        if name in ("barrier", "id"):
            return
        handlers = {
            "h": lambda: self.apply_h(gate.targets[0]),
            "s": lambda: self.apply_s(gate.targets[0]),
            "sdg": lambda: self.apply_sdg(gate.targets[0]),
            "x": lambda: self.apply_x(gate.targets[0]),
            "y": lambda: self.apply_y(gate.targets[0]),
            "z": lambda: self.apply_z(gate.targets[0]),
            "sx": lambda: self.apply_sx(gate.targets[0]),
            "sxdg": lambda: self.apply_sxdg(gate.targets[0]),
            "cx": lambda: self.apply_cx(gate.controls[0], gate.targets[0]),
            "cy": lambda: self.apply_cy(gate.controls[0], gate.targets[0]),
            "cz": lambda: self.apply_cz(gate.controls[0], gate.targets[0]),
            "swap": lambda: self.apply_swap(*gate.targets),
        }
        handler = handlers.get(name)
        if handler is None:
            raise ReferenceStabilizerError(f"gate {name!r} is not Clifford")
        handler()

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def _g(self, x1: int, z1: int, x2: int, z2: int) -> int:
        """Phase exponent contribution of multiplying two Paulis."""
        if x1 == 0 and z1 == 0:
            return 0
        if x1 == 1 and z1 == 1:  # Y
            return z2 - x2
        if x1 == 1 and z1 == 0:  # X
            return z2 * (2 * x2 - 1)
        return x2 * (1 - 2 * z2)  # Z

    def _rowsum(self, h: int, i: int) -> None:
        """Row h := row h * row i (Pauli group multiplication)."""
        n = self.num_qubits
        phase = 2 * int(self.r[h]) + 2 * int(self.r[i])
        for j in range(n):
            phase += self._g(
                int(self.x[i, j]),
                int(self.z[i, j]),
                int(self.x[h, j]),
                int(self.z[h, j]),
            )
        self.r[h] = (phase % 4) // 2
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]

    def measure(self, q: int, rng: np.random.Generator) -> int:
        """Measure qubit ``q`` in the Z basis, collapsing the tableau."""
        n = self.num_qubits
        p = -1
        for i in range(n, 2 * n):
            if self.x[i, q]:
                p = i
                break
        if p >= 0:
            for i in range(2 * n):
                if i != p and self.x[i, q]:
                    self._rowsum(i, p)
            self.x[p - n] = self.x[p].copy()
            self.z[p - n] = self.z[p].copy()
            self.r[p - n] = self.r[p]
            self.x[p] = 0
            self.z[p] = 0
            self.z[p, q] = 1
            outcome = int(rng.integers(0, 2))
            self.r[p] = outcome
            return outcome
        scratch = 2 * n
        self.x[scratch] = 0
        self.z[scratch] = 0
        self.r[scratch] = 0
        for i in range(n):
            if self.x[i, q]:
                self._rowsum(scratch, i + n)
        return int(self.r[scratch])

    def expectation_z(self, q: int) -> Optional[int]:
        """Deterministic Z_q value (0 or 1) or None if random."""
        n = self.num_qubits
        for i in range(n, 2 * n):
            if self.x[i, q]:
                return None
        probe = self.copy()
        return probe.measure(q, np.random.default_rng(0))

    def stabilizer_strings(self) -> List[str]:
        """Human-readable stabilizer generators, e.g. ``+XZI``."""
        n = self.num_qubits
        out = []
        for i in range(n, 2 * n):
            sign = "-" if self.r[i] else "+"
            paulis = []
            for j in range(n):
                xbit, zbit = self.x[i, j], self.z[i, j]
                paulis.append(
                    "I" if not xbit and not zbit
                    else "X" if xbit and not zbit
                    else "Z" if not xbit and zbit
                    else "Y"
                )
            out.append(sign + "".join(paulis))
        return out


class ReferenceStabilizerSimulator:
    """Shot-based runner over the reference tableau (bench/test use)."""

    def __init__(self, seed: Optional[int] = None):
        self._seed = seed

    def run(self, circuit: QuantumCircuit, shots: int = 1) -> Dict[int, int]:
        """Execute a Clifford circuit; returns classical-register counts."""
        rng = np.random.default_rng(self._seed)
        counts: Dict[int, int] = {}
        for _ in range(shots):
            state = ReferenceStabilizerState(circuit.num_qubits)
            creg = 0
            for gate in circuit.gates:
                if gate.is_measurement:
                    bit = state.measure(gate.targets[0], rng)
                    creg = (creg & ~(1 << gate.cbits[0])) | (bit << gate.cbits[0])
                elif gate.name == "reset":
                    if state.measure(gate.targets[0], rng):
                        state.apply_x(gate.targets[0])
                else:
                    state.apply_gate(gate)
            counts[creg] = counts.get(creg, 0) + 1
        return counts

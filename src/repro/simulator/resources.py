"""Resource counting backend.

ProjectQ and Q# both expose resource estimation backends (Sec. II of
the paper mentions "resource counter" backends; Q# offers resource
estimation).  :class:`ResourceCounter` consumes a circuit and produces
the same aggregate numbers without simulating any quantum state, so it
scales to arbitrary width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..core.circuit import QuantumCircuit
from ..core.gates import is_clifford_name


@dataclass
class ResourceEstimate:
    """Aggregate gate/qubit costs of a circuit."""

    num_qubits: int = 0
    total_gates: int = 0
    t_count: int = 0
    t_depth: int = 0
    cnot_count: int = 0
    two_qubit_count: int = 0
    clifford_count: int = 0
    measurement_count: int = 0
    depth: int = 0
    gate_counts: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, int]:
        return {
            "qubits": self.num_qubits,
            "gates": self.total_gates,
            "t_count": self.t_count,
            "t_depth": self.t_depth,
            "cnot": self.cnot_count,
            "two_qubit": self.two_qubit_count,
            "clifford": self.clifford_count,
            "measurements": self.measurement_count,
            "depth": self.depth,
        }

    def __str__(self) -> str:
        return (
            f"ResourceEstimate(qubits={self.num_qubits}, "
            f"gates={self.total_gates}, T={self.t_count}, "
            f"T-depth={self.t_depth}, CNOT={self.cnot_count}, "
            f"depth={self.depth})"
        )


class ResourceCounter:
    """Backend that tallies resources instead of simulating."""

    def run(self, circuit: QuantumCircuit) -> ResourceEstimate:
        estimate = ResourceEstimate(num_qubits=circuit.num_qubits)
        for gate in circuit.gates:
            if gate.name == "barrier":
                continue
            estimate.gate_counts[gate.name] = (
                estimate.gate_counts.get(gate.name, 0) + 1
            )
            if gate.is_measurement:
                estimate.measurement_count += 1
                continue
            estimate.total_gates += 1
            if gate.name in ("t", "tdg"):
                estimate.t_count += 1
            if gate.name == "cx":
                estimate.cnot_count += 1
            if gate.num_qubits == 2:
                estimate.two_qubit_count += 1
            if is_clifford_name(gate.name, gate.params):
                estimate.clifford_count += 1
        estimate.depth = circuit.depth()
        estimate.t_depth = circuit.t_depth()
        return estimate

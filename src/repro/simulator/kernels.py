"""Vectorized in-place gate kernels for the statevector engine.

The seed simulator applied every gate with a tensordot → transpose →
ascontiguousarray pipeline, costing three full-state copies per gate.
This module replaces that hot path with in-place bit-sliced kernels
operating on views of the state reshaped as a ``(2,) * n`` tensor
(qubit ``q`` lives on axis ``n - 1 - q``):

* single-qubit gates update two half-state views with one 2x2 linear
  combination (antidiagonal and diagonal matrices get cheaper paths);
* controlled gates index the control axes at 1 and apply the base
  kernel on the surviving subview, so an ``mcx`` with ``c`` controls
  touches only ``2^(n-c)`` amplitudes and never materializes
  ``np.arange(2^n)``;
* diagonal gates (Z/S/T/RZ/P and their controlled forms) are pure
  elementwise multiplies on the relevant slices;
* arbitrary matrices fall back to :func:`apply_matrix`, a generic
  in-place ``2^k``-slice kernel (still no transpose / copy).

Since the array-backend refactor, this module owns the gate
*semantics* — named-gate dispatch, control handling, gate fusion —
while every actual array sweep is delegated to a pluggable
:class:`~repro.simulator.backends.ArrayBackend` (state allocation,
slice linear combinations, elementwise diagonal multiplies,
axis-grouped matmul).  Every public entry point accepts ``backend=``
(a name, an instance, or ``None`` for the process default); the NumPy
backend is the default and reproduces the pre-backend kernels
*identically*, and an optional numba backend JIT-compiles the
memory-bound sweeps when numba is installed.

All kernels accept batched states: an array of shape ``(2^n, b...)``
is treated as ``b`` independent states, which lets
:mod:`repro.core.unitary` evolve a full ``2^n x 2^n`` unitary column
batch through the same code (and noise trajectories vectorize over the
same batch axis).

Dtype contract: states must be complex arrays.  The entry points
raise ``TypeError`` for real/integer states instead of silently
truncating the imaginary parts to zero (the historical behaviour was
an all-zero state plus a ``ComplexWarning``); use
``backend.prepare(data)`` — or ``np.asarray(data, dtype=complex)`` —
to upcast on ingest.

:func:`compile_circuit` is the gate-fusion pre-pass used by
``Statevector.evolve``.  It runs three stages:

1. wire-adjacent runs of single-qubit gates fold into one 2x2 matrix
   (products collapsing to the identity are dropped);
2. consecutive diagonal gates merge into a single local diagonal
   (they all commute, so a run becomes one elementwise multiply);
3. remaining ops are greedily grouped into multi-qubit *blocks* of at
   most ``DEFAULT_BLOCK_QUBITS`` qubits — commuting ops may be pulled
   over unrelated gates, qiskit-aer/qulacs style — and each block is
   executed as one BLAS matmul over the state reshaped around the
   block's axes.  A cost heuristic keeps blocks only where the matmul
   beats the individual kernels, so circuits dominated by cheap
   permutation/diagonal gates (reversible logic, phase polynomials)
   stay on the bit-sliced path.

Long Clifford+T circuits therefore execute far fewer full-state
sweeps than they have gates.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import cmath
import math

import numpy as np

from ..core.gates import Gate, base_matrix
from . import backends as array_backends
from .backends import ArrayBackend, infer_num_qubits  # noqa: F401  (re-export)

#: base names whose matrix is diagonal in the computational basis.
DIAGONAL_BASES = frozenset({"z", "s", "sdg", "t", "tdg", "rz", "p"})

#: base names with a dedicated 2x2 kernel (everything single-qubit).
SINGLE_QUBIT_BASES = frozenset(
    {
        "id",
        "h",
        "x",
        "y",
        "z",
        "s",
        "sdg",
        "t",
        "tdg",
        "sx",
        "sxdg",
        "rx",
        "ry",
        "rz",
        "p",
    }
)

#: diagonal fusion stops growing a merged diagonal beyond this many
#: qubits (the merged diagonal stores 2^m entries).
DIAG_FUSION_MAX_QUBITS = 12

#: default upper bound on the qubit count of a fused matmul block.
DEFAULT_BLOCK_QUBITS = 5

#: how far block fusion scans ahead for absorbable commuting ops.
BLOCK_LOOKAHEAD = 256

_IDENTITY_ATOL = 1e-14

#: optional backend argument accepted by every public entry point.
BackendSpec = Union[str, ArrayBackend, None]


def _require_complex(state: np.ndarray, where: str) -> None:
    """Refuse non-complex states at the public kernel entry points.

    The kernels update ``state`` in place, so a float64/int64 input
    cannot be upcast here — historically such states were silently
    corrupted (a Y gate on a float64 state produced all zeros with
    only a ``ComplexWarning``).  Callers who hold real data should
    upcast on ingest via ``backend.prepare(data)`` or
    ``np.asarray(data, dtype=complex)``.
    """
    dtype = getattr(state, "dtype", None)
    if dtype is None or not np.issubdtype(dtype, np.complexfloating):
        raise TypeError(
            f"{where} requires a complex state array (in-place kernels "
            f"cannot widen dtype {dtype}); upcast on ingest with "
            "backend.prepare(data) or np.asarray(data, dtype=complex)"
        )


@lru_cache(maxsize=1024)
def _diag_entries(base: str, params: Tuple[float, ...]) -> Tuple[complex, complex]:
    """(d0, d1) diagonal of an uncontrolled diagonal base gate."""
    if base == "z":
        return (1.0, -1.0)
    if base == "s":
        return (1.0, 1j)
    if base == "sdg":
        return (1.0, -1j)
    if base == "t":
        return (1.0, cmath.exp(1j * math.pi / 4))
    if base == "tdg":
        return (1.0, cmath.exp(-1j * math.pi / 4))
    if base == "rz":
        half = params[0] / 2.0
        return (cmath.exp(-1j * half), cmath.exp(1j * half))
    if base == "p":
        return (1.0, cmath.exp(1j * params[0]))
    raise ValueError(f"gate {base!r} is not diagonal")


#: Pauli matrices for :func:`apply_pauli`'s X/Y antidiagonal paths.
_PAULI_X = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex)
_PAULI_Y = np.array([[0.0, -1j], [1j, 0.0]], dtype=complex)


# ----------------------------------------------------------------------
# named-gate dispatch
# ----------------------------------------------------------------------
def _apply_named(
    state: np.ndarray, n: int, gate: Gate, backend: ArrayBackend
) -> bool:
    """Apply a named gate via its dedicated kernel; False if unknown."""
    name = gate.name
    if name in ("barrier", "id"):
        return True
    if not gate.is_unitary:
        return False
    base = gate.base_name
    if base in DIAGONAL_BASES:
        d0, d1 = _diag_entries(base, gate.params)
        backend.apply_diag1(state, n, d0, d1, gate.targets[0], gate.controls)
        return True
    if base in SINGLE_QUBIT_BASES:
        backend.apply_1q(
            state, n, base_matrix(base, gate.params),
            gate.targets[0], gate.controls,
        )
        return True
    if base == "swap":
        backend.apply_swap(
            state, n, gate.targets[0], gate.targets[1], gate.controls
        )
        return True
    return False


def apply_gate(
    state: np.ndarray,
    gate: Gate,
    num_qubits: Optional[int] = None,
    backend: BackendSpec = None,
) -> bool:
    """Apply a named gate in place on a flat/batched state.

    Returns True if a dedicated kernel handled the gate; False means
    the caller must fall back to :func:`apply_matrix` with the dense
    gate matrix.
    """
    _require_complex(state, "apply_gate")
    n = infer_num_qubits(state) if num_qubits is None else num_qubits
    return _apply_named(state, n, gate, array_backends.resolve(backend))


def apply_matrix(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: Optional[int] = None,
    backend: BackendSpec = None,
) -> None:
    """Apply an arbitrary ``2^k x 2^k`` matrix in place (dense fallback)."""
    _require_complex(state, "apply_matrix")
    n = infer_num_qubits(state) if num_qubits is None else num_qubits
    array_backends.resolve(backend).apply_matrix(
        state, n, np.asarray(matrix, dtype=complex), qubits
    )


def apply_pauli(
    state: np.ndarray,
    pauli: str,
    qubit: int,
    num_qubits: Optional[int] = None,
    backend: BackendSpec = None,
) -> None:
    """Apply a single Pauli X/Y/Z without building a Gate object."""
    _require_complex(state, "apply_pauli")
    n = infer_num_qubits(state) if num_qubits is None else num_qubits
    resolved = array_backends.resolve(backend)
    if pauli == "z":
        resolved.apply_diag1(state, n, 1.0, -1.0, qubit)
    elif pauli == "x":
        resolved.apply_1q(state, n, _PAULI_X, qubit)
    elif pauli == "y":
        resolved.apply_1q(state, n, _PAULI_Y, qubit)
    else:
        raise ValueError(f"unknown Pauli {pauli!r}")


# ----------------------------------------------------------------------
# gate fusion / circuit compilation
# ----------------------------------------------------------------------
#: compiled op kinds: ("gate", Gate) | ("u1", (matrix, qubit)) |
#: ("diag", (qubits_msb_first, diagonal_vector)) |
#: ("block", (qubits_msb_first, dense_matrix))
CompiledOp = Tuple[str, object]


def _local_diag(op: CompiledOp) -> Optional[Tuple[Tuple[int, ...], np.ndarray]]:
    """If ``op`` is diagonal, return (qubits MSB-first, local diagonal)."""
    kind, payload = op
    if kind == "u1":
        matrix, qubit = payload
        if matrix[0, 1] == 0 and matrix[1, 0] == 0:
            return ((qubit,), np.array([matrix[0, 0], matrix[1, 1]]))
        return None
    if kind != "gate":
        return None
    gate = payload
    if gate.base_name not in DIAGONAL_BASES:
        return None
    d0, d1 = _diag_entries(gate.base_name, gate.params)
    k = len(gate.controls)
    local = np.ones(1 << (k + 1), dtype=complex)
    local[-2] = d0
    local[-1] = d1
    return (gate.qubits, local)


def _merge_diag_run(run: List[Tuple[Tuple[int, ...], np.ndarray]]) -> CompiledOp:
    """Fold a run of commuting diagonal gates into one local diagonal."""
    qubits = sorted({q for qs, _ in run for q in qs}, reverse=True)
    m = len(qubits)
    pos = {q: i for i, q in enumerate(qubits)}  # i == 0 is the MSB
    idx = np.arange(1 << m)
    merged = np.ones(1 << m, dtype=complex)
    for qs, local in run:
        k = len(qs)
        local_idx = np.zeros(1 << m, dtype=np.int64)
        for j, q in enumerate(qs):
            bit = (idx >> (m - 1 - pos[q])) & 1
            local_idx |= bit << (k - 1 - j)
        merged *= local[local_idx]
    return ("diag", (tuple(qubits), merged))


def _fuse_diagonals(ops: List[CompiledOp]) -> List[CompiledOp]:
    """Merge consecutive diagonal ops (they all commute) into one."""
    out: List[CompiledOp] = []
    run_ops: List[CompiledOp] = []
    run_diags: List[Tuple[Tuple[int, ...], np.ndarray]] = []
    run_qubits: set = set()

    def flush() -> None:
        if len(run_diags) >= 2:
            out.append(_merge_diag_run(run_diags))
        else:
            out.extend(run_ops)
        run_ops.clear()
        run_diags.clear()
        run_qubits.clear()

    for op in ops:
        info = _local_diag(op)
        if info is None:
            flush()
            out.append(op)
            continue
        qs, _ = info
        if len(run_qubits | set(qs)) > DIAG_FUSION_MAX_QUBITS:
            flush()
        run_ops.append(op)
        run_diags.append(info)
        run_qubits.update(qs)
    flush()
    return out


_EYE2 = np.eye(2, dtype=complex)


def _op_qubits(op: CompiledOp) -> Tuple[int, ...]:
    """Qubits touched by a compiled op."""
    kind, payload = op
    if kind == "gate":
        return payload.qubits
    if kind == "u1":
        return (payload[1],)
    return payload[0]  # diag / block


#: relative cost weight of an op executed by its dedicated kernel.
#: "cheap" ops (diagonal multiplies, slice permutations) barely touch
#: the state; "generic" ops pay a full 2x2 linear-combination sweep.
_CHEAP_WEIGHT = 0.35
_GENERIC_WEIGHT = 1.0

#: minimum summed member weight for a block of f qubits to beat its
#: members' individual kernels (one f-qubit matmul costs roughly this
#: many generic single-qubit sweeps; measured on the dev box to f = 6).
_BLOCK_GAIN = {1: 0.7, 2: 1.0, 3: 1.1, 4: 1.3, 5: 1.9, 6: 3.0}

#: per-qubit growth factor extrapolating the gain curve past f = 6
#: (the measured tail grows ~1.5-1.6x per qubit: one more qubit
#: doubles the matmul flops but also doubles the amplitudes each
#: member kernel would sweep).
_BLOCK_GAIN_GROWTH = 1.6


def _block_gain(f: int) -> float:
    """Break-even member weight for an ``f``-qubit fused block.

    Measured values cover f <= 6; larger blocks extrapolate the curve
    geometrically instead of returning infinity, so an oversized
    ``block_size`` degrades predictably rather than silently disabling
    fusion (historically ``block_size=7`` never fused anything).
    """
    if f in _BLOCK_GAIN:
        return _BLOCK_GAIN[f]
    top = max(_BLOCK_GAIN)
    return _BLOCK_GAIN[top] * _BLOCK_GAIN_GROWTH ** (f - top)


def _op_weight(op: CompiledOp) -> float:
    """Estimated kernel cost of an op, in generic-1q-sweep units."""
    kind, payload = op
    if kind == "diag":
        return _CHEAP_WEIGHT
    if kind == "u1":
        matrix = payload[0]
        off_diag = matrix[0, 1] == 0 and matrix[1, 0] == 0
        anti_diag = matrix[0, 0] == 0 and matrix[1, 1] == 0
        return _CHEAP_WEIGHT if off_diag or anti_diag else _GENERIC_WEIGHT
    if kind == "gate":
        return (
            _CHEAP_WEIGHT
            if payload.base_name in _CHEAP_BASES
            else _GENERIC_WEIGHT
        )
    return _GENERIC_WEIGHT


_CHEAP_BASES = frozenset(
    {"x", "y", "z", "s", "sdg", "t", "tdg", "rz", "p", "swap"}
)


def _block_matrix(
    members: List[CompiledOp], qubits_desc: Tuple[int, ...]
) -> np.ndarray:
    """Dense unitary of a member op sequence over the block's qubits.

    The block matrix is built by evolving an identity through the same
    batched kernels, with every member remapped onto the block-local
    qubit numbering (``qubits_desc[0]`` is the local MSB).  Block
    construction always runs on the NumPy backend so the compiled op
    list is identical whichever backend later executes it.
    """
    f = len(qubits_desc)
    local = {q: f - 1 - j for j, q in enumerate(qubits_desc)}
    remapped: List[CompiledOp] = []
    for kind, payload in members:
        if kind == "gate":
            remapped.append(("gate", payload.remap(local)))
        elif kind == "u1":
            matrix, qubit = payload
            remapped.append(("u1", (matrix, local[qubit])))
        else:  # diag: descending qubits stay descending under the remap
            qs, diag = payload
            remapped.append(("diag", (tuple(local[q] for q in qs), diag)))
    unitary = np.eye(1 << f, dtype=complex)
    apply_ops(unitary, remapped, f, backend="numpy")
    return np.ascontiguousarray(unitary)


def _fuse_blocks(ops: List[CompiledOp], max_qubits: int) -> List[CompiledOp]:
    """Greedily group ops into multi-qubit matmul blocks.

    Standard simulator gate fusion: starting from a seed op, absorb any
    later op whose qubits fit in the growing block support and that
    commutes past every skipped op in between (guaranteed by qubit
    disjointness from everything skipped).  A block is emitted as one
    dense matrix only when the cost heuristic says the single matmul
    beats the members' individual kernels; otherwise the members are
    emitted unchanged, preserving their relative order (which is
    equivalent, since each member commutes with all skipped ops that
    precede it).
    """
    total = len(ops)
    used = [False] * total
    out: List[CompiledOp] = []
    for i in range(total):
        if used[i]:
            continue
        used[i] = True
        seed_qubits = _op_qubits(ops[i])
        if len(seed_qubits) > max_qubits:
            out.append(ops[i])
            continue
        support = set(seed_qubits)
        members = [ops[i]]
        weight = _op_weight(ops[i])
        blocked: set = set()
        for j in range(i + 1, min(i + 1 + BLOCK_LOOKAHEAD, total)):
            if used[j]:
                continue
            qubits = set(_op_qubits(ops[j]))
            if not (qubits & blocked) and len(support | qubits) <= max_qubits:
                used[j] = True
                support |= qubits
                members.append(ops[j])
                weight += _op_weight(ops[j])
            else:
                blocked |= qubits
        f = len(support)
        if len(members) >= 2 and weight >= _block_gain(f):
            qubits_desc = tuple(sorted(support, reverse=True))
            out.append(("block", (qubits_desc, _block_matrix(members, qubits_desc))))
        else:
            out.extend(members)
    return out


def compile_circuit(
    gates: Iterable[Gate],
    fuse: bool = True,
    block_size: int = DEFAULT_BLOCK_QUBITS,
) -> List[CompiledOp]:
    """Compile a unitary gate sequence into fused kernel ops.

    Fusion folds wire-adjacent runs of single-qubit gates into one 2x2
    matrix (products that collapse to the identity are dropped), merges
    consecutive diagonal gates into one local diagonal of at most
    ``DIAG_FUSION_MAX_QUBITS`` qubits, and groups the remaining ops
    into matmul blocks of at most ``block_size`` qubits where that
    wins (the break-even curve is measured to 6 qubits and
    extrapolated geometrically beyond, so oversized block sizes still
    fuse).  With ``fuse=False`` the gates pass through one-to-one
    (still kernel-dispatched); ``block_size=0`` disables only the
    block stage.
    """
    if not fuse:
        return [("gate", g) for g in gates if g.name not in ("barrier", "id")]

    ops: List[CompiledOp] = []
    pending: dict = {}  # qubit -> accumulated 2x2 matrix

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is None:
            return
        a, b, c, d = matrix.ravel()  # scalar identity check: allclose is slow
        if (
            abs(a - 1.0) < _IDENTITY_ATOL
            and abs(d - 1.0) < _IDENTITY_ATOL
            and abs(b) < _IDENTITY_ATOL
            and abs(c) < _IDENTITY_ATOL
        ):
            return
        ops.append(("u1", (matrix, qubit)))

    for gate in gates:
        name = gate.name
        if name == "id":
            continue
        if name == "barrier":
            for q in list(pending):
                flush(q)
            continue
        if (
            gate.is_unitary
            and not gate.controls
            and len(gate.targets) == 1
            and gate.base_name in SINGLE_QUBIT_BASES
        ):
            q = gate.targets[0]
            matrix = base_matrix(gate.base_name, gate.params)
            pending[q] = matrix @ pending[q] if q in pending else matrix
            continue
        for q in gate.qubits:
            flush(q)
        ops.append(("gate", gate))
    for q in list(pending):
        flush(q)
    ops = _fuse_diagonals(ops)
    if block_size:
        ops = _fuse_blocks(ops, block_size)
    return ops


def apply_ops(
    state: np.ndarray,
    ops: Sequence[CompiledOp],
    num_qubits: Optional[int] = None,
    backend: BackendSpec = None,
) -> None:
    """Run a compiled op list in place on a flat/batched state."""
    _require_complex(state, "apply_ops")
    n = infer_num_qubits(state) if num_qubits is None else num_qubits
    resolved = array_backends.resolve(backend)
    for kind, payload in ops:
        if kind == "gate":
            gate = payload
            if not _apply_named(state, n, gate, resolved):
                resolved.apply_matrix(state, n, gate.matrix(), gate.qubits)
        elif kind == "u1":
            matrix, qubit = payload
            resolved.apply_1q(state, n, matrix, qubit)
        elif kind == "diag":
            qubits, diag = payload
            resolved.apply_diag(state, n, qubits, diag)
        elif kind == "block":
            qubits, matrix = payload
            resolved.apply_block(state, n, qubits, matrix)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown compiled op kind {kind!r}")

"""Vectorized in-place gate kernels for the statevector engine.

The seed simulator applied every gate with a tensordot → transpose →
ascontiguousarray pipeline, costing three full-state copies per gate.
This module replaces that hot path with in-place bit-sliced kernels
operating on views of the state reshaped as a ``(2,) * n`` tensor
(qubit ``q`` lives on axis ``n - 1 - q``):

* single-qubit gates update two half-state views with one 2x2 linear
  combination (antidiagonal and diagonal matrices get cheaper paths);
* controlled gates index the control axes at 1 and apply the base
  kernel on the surviving subview, so an ``mcx`` with ``c`` controls
  touches only ``2^(n-c)`` amplitudes and never materializes
  ``np.arange(2^n)``;
* diagonal gates (Z/S/T/RZ/P and their controlled forms) are pure
  elementwise multiplies on the relevant slices;
* arbitrary matrices fall back to :func:`apply_matrix`, a generic
  in-place ``2^k``-slice kernel (still no transpose / copy).

All kernels accept batched states: an array of shape ``(2^n, b...)``
is treated as ``b`` independent states, which lets
:mod:`repro.core.unitary` evolve a full ``2^n x 2^n`` unitary column
batch through the same code.

:func:`compile_circuit` is the gate-fusion pre-pass used by
``Statevector.evolve``.  It runs three stages:

1. wire-adjacent runs of single-qubit gates fold into one 2x2 matrix
   (products collapsing to the identity are dropped);
2. consecutive diagonal gates merge into a single local diagonal
   (they all commute, so a run becomes one elementwise multiply);
3. remaining ops are greedily grouped into multi-qubit *blocks* of at
   most ``DEFAULT_BLOCK_QUBITS`` qubits — commuting ops may be pulled
   over unrelated gates, qiskit-aer/qulacs style — and each block is
   executed as one BLAS matmul over the state reshaped around the
   block's axes.  A cost heuristic keeps blocks only where the matmul
   beats the individual kernels, so circuits dominated by cheap
   permutation/diagonal gates (reversible logic, phase polynomials)
   stay on the bit-sliced path.

Long Clifford+T circuits therefore execute far fewer full-state
sweeps than they have gates.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, List, Optional, Sequence, Tuple

import cmath
import math

import numpy as np

from ..core.gates import Gate, base_matrix

#: base names whose matrix is diagonal in the computational basis.
DIAGONAL_BASES = frozenset({"z", "s", "sdg", "t", "tdg", "rz", "p"})

#: base names with a dedicated 2x2 kernel (everything single-qubit).
SINGLE_QUBIT_BASES = frozenset(
    {
        "id",
        "h",
        "x",
        "y",
        "z",
        "s",
        "sdg",
        "t",
        "tdg",
        "sx",
        "sxdg",
        "rx",
        "ry",
        "rz",
        "p",
    }
)

#: diagonal fusion stops growing a merged diagonal beyond this many
#: qubits (the merged diagonal stores 2^m entries).
DIAG_FUSION_MAX_QUBITS = 12

#: default upper bound on the qubit count of a fused matmul block.
DEFAULT_BLOCK_QUBITS = 5

#: how far block fusion scans ahead for absorbable commuting ops.
BLOCK_LOOKAHEAD = 256

_IDENTITY_ATOL = 1e-14


@lru_cache(maxsize=1024)
def _diag_entries(base: str, params: Tuple[float, ...]) -> Tuple[complex, complex]:
    """(d0, d1) diagonal of an uncontrolled diagonal base gate."""
    if base == "z":
        return (1.0, -1.0)
    if base == "s":
        return (1.0, 1j)
    if base == "sdg":
        return (1.0, -1j)
    if base == "t":
        return (1.0, cmath.exp(1j * math.pi / 4))
    if base == "tdg":
        return (1.0, cmath.exp(-1j * math.pi / 4))
    if base == "rz":
        half = params[0] / 2.0
        return (cmath.exp(-1j * half), cmath.exp(1j * half))
    if base == "p":
        return (1.0, cmath.exp(1j * params[0]))
    raise ValueError(f"gate {base!r} is not diagonal")


# ----------------------------------------------------------------------
# tensor plumbing
# ----------------------------------------------------------------------
def infer_num_qubits(state: np.ndarray) -> int:
    """Number of qubits of a flat or batched state array."""
    dim = state.shape[0]
    n = dim.bit_length() - 1
    if 1 << n != dim:
        raise ValueError("state length is not a power of two")
    return n


def _tensor(state: np.ndarray, n: int) -> np.ndarray:
    """View of ``state`` with one axis per qubit (batch axes trail)."""
    return state.reshape((2,) * n + state.shape[1:])


def _subview(t: np.ndarray, n: int, controls: Sequence[int]) -> np.ndarray:
    """View with every control axis fixed at |1>."""
    if not controls:
        return t
    idx: List[object] = [slice(None)] * n
    for c in controls:
        idx[n - 1 - c] = 1
    return t[tuple(idx)]


def _axis_after_controls(qubit: int, n: int, controls: Sequence[int]) -> int:
    """Axis of ``qubit`` inside the control subview."""
    return (n - 1 - qubit) - sum(1 for c in controls if c > qubit)


# ----------------------------------------------------------------------
# elementary kernels (operate on a qubit-axis tensor view, in place)
# ----------------------------------------------------------------------
def _apply_1q(
    t: np.ndarray,
    n: int,
    matrix: np.ndarray,
    qubit: int,
    controls: Sequence[int] = (),
) -> None:
    """Apply a 2x2 matrix to ``qubit`` within the control subspace."""
    sub = _subview(t, n, controls)
    ax = _axis_after_controls(qubit, n, controls)
    i0 = (slice(None),) * ax + (0,)
    i1 = (slice(None),) * ax + (1,)
    a, b, c, d = matrix.ravel()
    if b == 0 and c == 0:  # diagonal
        if a != 1.0:
            sub[i0] *= a
        if d != 1.0:
            sub[i1] *= d
        return
    v0 = sub[i0]
    v1 = sub[i1]
    if a == 0 and d == 0:  # antidiagonal (X, Y, and phased variants)
        tmp = v0.copy()
        sub[i0] = v1 if b == 1.0 else b * v1
        sub[i1] = tmp if c == 1.0 else c * tmp
        return
    t0 = a * v0 + b * v1
    t1 = c * v0 + d * v1
    sub[i0] = t0
    sub[i1] = t1


def _apply_diag1(
    t: np.ndarray,
    n: int,
    d0: complex,
    d1: complex,
    qubit: int,
    controls: Sequence[int] = (),
) -> None:
    """Multiply the |0>/|1> slices of ``qubit`` by (d0, d1)."""
    sub = _subview(t, n, controls)
    ax = _axis_after_controls(qubit, n, controls)
    if d0 != 1.0:
        sub[(slice(None),) * ax + (0,)] *= d0
    if d1 != 1.0:
        sub[(slice(None),) * ax + (1,)] *= d1


def _apply_swap(
    t: np.ndarray,
    n: int,
    qubit_a: int,
    qubit_b: int,
    controls: Sequence[int] = (),
) -> None:
    """Exchange the |01> and |10> subspaces of two qubits."""
    sub = _subview(t, n, controls)
    ax_a = _axis_after_controls(qubit_a, n, controls)
    ax_b = _axis_after_controls(qubit_b, n, controls)
    idx01: List[object] = [slice(None)] * (max(ax_a, ax_b) + 1)
    idx10 = list(idx01)
    idx01[ax_a] = 0
    idx01[ax_b] = 1
    idx10[ax_a] = 1
    idx10[ax_b] = 0
    i01 = tuple(idx01)
    i10 = tuple(idx10)
    tmp = sub[i01].copy()
    sub[i01] = sub[i10]
    sub[i10] = tmp


def _apply_matrix_t(
    t: np.ndarray, n: int, matrix: np.ndarray, qubits: Sequence[int]
) -> None:
    """Generic in-place k-qubit kernel: one view per local basis state.

    ``qubits[0]`` is the most-significant bit of the matrix's local
    index space (matching :meth:`Gate.matrix`).
    """
    k = len(qubits)
    dim = 1 << k
    if matrix.shape != (dim, dim):
        raise ValueError("matrix does not match qubit count")
    if t.ndim == n:
        # gate touches every axis: keep a trailing length-1 axis so the
        # per-basis views stay writable arrays instead of scalars
        t = t.reshape((2,) * n + (1,))
    views = []
    for basis in range(dim):
        idx: List[object] = [slice(None)] * n
        for j, q in enumerate(qubits):
            idx[n - 1 - q] = (basis >> (k - 1 - j)) & 1
        views.append(t[tuple(idx)])
    rows = []
    for r in range(dim):
        acc = None
        for c in range(dim):
            coeff = matrix[r, c]
            if coeff == 0:
                continue
            if acc is None:
                acc = views[c] * coeff  # materializes; views stay readable
            else:
                acc += coeff * views[c]
        rows.append(acc)
    for r in range(dim):
        if rows[r] is None:
            views[r][...] = 0
        else:
            views[r][...] = rows[r]


# ----------------------------------------------------------------------
# named-gate dispatch
# ----------------------------------------------------------------------
def _apply_named(t: np.ndarray, n: int, gate: Gate) -> bool:
    """Apply a named gate via its dedicated kernel; False if unknown."""
    name = gate.name
    if name in ("barrier", "id"):
        return True
    if not gate.is_unitary:
        return False
    base = gate.base_name
    if base in DIAGONAL_BASES:
        d0, d1 = _diag_entries(base, gate.params)
        _apply_diag1(t, n, d0, d1, gate.targets[0], gate.controls)
        return True
    if base in SINGLE_QUBIT_BASES:
        _apply_1q(t, n, base_matrix(base, gate.params), gate.targets[0], gate.controls)
        return True
    if base == "swap":
        _apply_swap(t, n, gate.targets[0], gate.targets[1], gate.controls)
        return True
    return False


def apply_gate(state: np.ndarray, gate: Gate, num_qubits: Optional[int] = None) -> bool:
    """Apply a named gate in place on a flat/batched state.

    Returns True if a dedicated kernel handled the gate; False means
    the caller must fall back to :func:`apply_matrix` with the dense
    gate matrix.
    """
    n = infer_num_qubits(state) if num_qubits is None else num_qubits
    return _apply_named(_tensor(state, n), n, gate)


def apply_matrix(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: Optional[int] = None,
) -> None:
    """Apply an arbitrary ``2^k x 2^k`` matrix in place (dense fallback)."""
    n = infer_num_qubits(state) if num_qubits is None else num_qubits
    _apply_matrix_t(_tensor(state, n), n, np.asarray(matrix, dtype=complex), qubits)


def apply_pauli(state: np.ndarray, pauli: str, qubit: int, num_qubits: Optional[int] = None) -> None:
    """Apply a single Pauli X/Y/Z without building a Gate object."""
    n = infer_num_qubits(state) if num_qubits is None else num_qubits
    t = _tensor(state, n)
    if pauli == "z":
        _apply_diag1(t, n, 1.0, -1.0, qubit)
    elif pauli == "x":
        _apply_swap_bit(t, n, qubit)
    elif pauli == "y":
        ax = n - 1 - qubit
        i0 = (slice(None),) * ax + (0,)
        i1 = (slice(None),) * ax + (1,)
        tmp = t[i0].copy()
        t[i0] = -1j * t[i1]
        t[i1] = 1j * tmp
    else:
        raise ValueError(f"unknown Pauli {pauli!r}")


def _apply_swap_bit(t: np.ndarray, n: int, qubit: int) -> None:
    """Exchange the |0> and |1> slices of one qubit (an X gate)."""
    ax = n - 1 - qubit
    i0 = (slice(None),) * ax + (0,)
    i1 = (slice(None),) * ax + (1,)
    tmp = t[i0].copy()
    t[i0] = t[i1]
    t[i1] = tmp


# ----------------------------------------------------------------------
# gate fusion / circuit compilation
# ----------------------------------------------------------------------
#: compiled op kinds: ("gate", Gate) | ("u1", (matrix, qubit)) |
#: ("diag", (qubits_msb_first, diagonal_vector)) |
#: ("block", (qubits_msb_first, dense_matrix))
CompiledOp = Tuple[str, object]


def _local_diag(op: CompiledOp) -> Optional[Tuple[Tuple[int, ...], np.ndarray]]:
    """If ``op`` is diagonal, return (qubits MSB-first, local diagonal)."""
    kind, payload = op
    if kind == "u1":
        matrix, qubit = payload
        if matrix[0, 1] == 0 and matrix[1, 0] == 0:
            return ((qubit,), np.array([matrix[0, 0], matrix[1, 1]]))
        return None
    if kind != "gate":
        return None
    gate = payload
    if gate.base_name not in DIAGONAL_BASES:
        return None
    d0, d1 = _diag_entries(gate.base_name, gate.params)
    k = len(gate.controls)
    local = np.ones(1 << (k + 1), dtype=complex)
    local[-2] = d0
    local[-1] = d1
    return (gate.qubits, local)


def _merge_diag_run(run: List[Tuple[Tuple[int, ...], np.ndarray]]) -> CompiledOp:
    """Fold a run of commuting diagonal gates into one local diagonal."""
    qubits = sorted({q for qs, _ in run for q in qs}, reverse=True)
    m = len(qubits)
    pos = {q: i for i, q in enumerate(qubits)}  # i == 0 is the MSB
    idx = np.arange(1 << m)
    merged = np.ones(1 << m, dtype=complex)
    for qs, local in run:
        k = len(qs)
        local_idx = np.zeros(1 << m, dtype=np.int64)
        for j, q in enumerate(qs):
            bit = (idx >> (m - 1 - pos[q])) & 1
            local_idx |= bit << (k - 1 - j)
        merged *= local[local_idx]
    return ("diag", (tuple(qubits), merged))


def _fuse_diagonals(ops: List[CompiledOp]) -> List[CompiledOp]:
    """Merge consecutive diagonal ops (they all commute) into one."""
    out: List[CompiledOp] = []
    run_ops: List[CompiledOp] = []
    run_diags: List[Tuple[Tuple[int, ...], np.ndarray]] = []
    run_qubits: set = set()

    def flush() -> None:
        if len(run_diags) >= 2:
            out.append(_merge_diag_run(run_diags))
        else:
            out.extend(run_ops)
        run_ops.clear()
        run_diags.clear()
        run_qubits.clear()

    for op in ops:
        info = _local_diag(op)
        if info is None:
            flush()
            out.append(op)
            continue
        qs, _ = info
        if len(run_qubits | set(qs)) > DIAG_FUSION_MAX_QUBITS:
            flush()
        run_ops.append(op)
        run_diags.append(info)
        run_qubits.update(qs)
    flush()
    return out


_EYE2 = np.eye(2, dtype=complex)


def _op_qubits(op: CompiledOp) -> Tuple[int, ...]:
    """Qubits touched by a compiled op."""
    kind, payload = op
    if kind == "gate":
        return payload.qubits
    if kind == "u1":
        return (payload[1],)
    return payload[0]  # diag / block


#: relative cost weight of an op executed by its dedicated kernel.
#: "cheap" ops (diagonal multiplies, slice permutations) barely touch
#: the state; "generic" ops pay a full 2x2 linear-combination sweep.
_CHEAP_WEIGHT = 0.35
_GENERIC_WEIGHT = 1.0

#: minimum summed member weight for a block of f qubits to beat its
#: members' individual kernels (one f-qubit matmul costs roughly this
#: many generic single-qubit sweeps; measured on the dev box).
_BLOCK_GAIN = {1: 0.7, 2: 1.0, 3: 1.1, 4: 1.3, 5: 1.9, 6: 3.0}

_CHEAP_BASES = frozenset(
    {"x", "y", "z", "s", "sdg", "t", "tdg", "rz", "p", "swap"}
)


def _op_weight(op: CompiledOp) -> float:
    """Estimated kernel cost of an op, in generic-1q-sweep units."""
    kind, payload = op
    if kind == "diag":
        return _CHEAP_WEIGHT
    if kind == "u1":
        matrix = payload[0]
        off_diag = matrix[0, 1] == 0 and matrix[1, 0] == 0
        anti_diag = matrix[0, 0] == 0 and matrix[1, 1] == 0
        return _CHEAP_WEIGHT if off_diag or anti_diag else _GENERIC_WEIGHT
    if kind == "gate":
        return (
            _CHEAP_WEIGHT
            if payload.base_name in _CHEAP_BASES
            else _GENERIC_WEIGHT
        )
    return _GENERIC_WEIGHT


def _block_matrix(
    members: List[CompiledOp], qubits_desc: Tuple[int, ...]
) -> np.ndarray:
    """Dense unitary of a member op sequence over the block's qubits.

    The block matrix is built by evolving an identity through the same
    batched kernels, with every member remapped onto the block-local
    qubit numbering (``qubits_desc[0]`` is the local MSB).
    """
    f = len(qubits_desc)
    local = {q: f - 1 - j for j, q in enumerate(qubits_desc)}
    remapped: List[CompiledOp] = []
    for kind, payload in members:
        if kind == "gate":
            remapped.append(("gate", payload.remap(local)))
        elif kind == "u1":
            matrix, qubit = payload
            remapped.append(("u1", (matrix, local[qubit])))
        else:  # diag: descending qubits stay descending under the remap
            qs, diag = payload
            remapped.append(("diag", (tuple(local[q] for q in qs), diag)))
    unitary = np.eye(1 << f, dtype=complex)
    apply_ops(unitary, remapped, f)
    return np.ascontiguousarray(unitary)


def _fuse_blocks(ops: List[CompiledOp], max_qubits: int) -> List[CompiledOp]:
    """Greedily group ops into multi-qubit matmul blocks.

    Standard simulator gate fusion: starting from a seed op, absorb any
    later op whose qubits fit in the growing block support and that
    commutes past every skipped op in between (guaranteed by qubit
    disjointness from everything skipped).  A block is emitted as one
    dense matrix only when the cost heuristic says the single matmul
    beats the members' individual kernels; otherwise the members are
    emitted unchanged, preserving their relative order (which is
    equivalent, since each member commutes with all skipped ops that
    precede it).
    """
    total = len(ops)
    used = [False] * total
    out: List[CompiledOp] = []
    for i in range(total):
        if used[i]:
            continue
        used[i] = True
        seed_qubits = _op_qubits(ops[i])
        if len(seed_qubits) > max_qubits:
            out.append(ops[i])
            continue
        support = set(seed_qubits)
        members = [ops[i]]
        weight = _op_weight(ops[i])
        blocked: set = set()
        for j in range(i + 1, min(i + 1 + BLOCK_LOOKAHEAD, total)):
            if used[j]:
                continue
            qubits = set(_op_qubits(ops[j]))
            if not (qubits & blocked) and len(support | qubits) <= max_qubits:
                used[j] = True
                support |= qubits
                members.append(ops[j])
                weight += _op_weight(ops[j])
            else:
                blocked |= qubits
        f = len(support)
        if len(members) >= 2 and weight >= _BLOCK_GAIN.get(f, float("inf")):
            qubits_desc = tuple(sorted(support, reverse=True))
            out.append(("block", (qubits_desc, _block_matrix(members, qubits_desc))))
        else:
            out.extend(members)
    return out


def compile_circuit(
    gates: Iterable[Gate],
    fuse: bool = True,
    block_size: int = DEFAULT_BLOCK_QUBITS,
) -> List[CompiledOp]:
    """Compile a unitary gate sequence into fused kernel ops.

    Fusion folds wire-adjacent runs of single-qubit gates into one 2x2
    matrix (products that collapse to the identity are dropped), merges
    consecutive diagonal gates into one local diagonal of at most
    ``DIAG_FUSION_MAX_QUBITS`` qubits, and groups the remaining ops
    into matmul blocks of at most ``block_size`` qubits where that
    wins.  With ``fuse=False`` the gates pass through one-to-one
    (still kernel-dispatched); ``block_size=0`` disables only the
    block stage.
    """
    if not fuse:
        return [("gate", g) for g in gates if g.name not in ("barrier", "id")]

    ops: List[CompiledOp] = []
    pending: dict = {}  # qubit -> accumulated 2x2 matrix

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is None:
            return
        a, b, c, d = matrix.ravel()  # scalar identity check: allclose is slow
        if (
            abs(a - 1.0) < _IDENTITY_ATOL
            and abs(d - 1.0) < _IDENTITY_ATOL
            and abs(b) < _IDENTITY_ATOL
            and abs(c) < _IDENTITY_ATOL
        ):
            return
        ops.append(("u1", (matrix, qubit)))

    for gate in gates:
        name = gate.name
        if name == "id":
            continue
        if name == "barrier":
            for q in list(pending):
                flush(q)
            continue
        if (
            gate.is_unitary
            and not gate.controls
            and len(gate.targets) == 1
            and gate.base_name in SINGLE_QUBIT_BASES
        ):
            q = gate.targets[0]
            matrix = base_matrix(gate.base_name, gate.params)
            pending[q] = matrix @ pending[q] if q in pending else matrix
            continue
        for q in gate.qubits:
            flush(q)
        ops.append(("gate", gate))
    for q in list(pending):
        flush(q)
    ops = _fuse_diagonals(ops)
    if block_size:
        ops = _fuse_blocks(ops, block_size)
    return ops


def _apply_block(
    state: np.ndarray, t: np.ndarray, n: int, qubits_desc: Tuple[int, ...], matrix: np.ndarray
) -> None:
    """Apply a fused block matrix with one BLAS matmul.

    The state is reshaped so the block's qubit axes form one axis; if
    the block's qubits are contiguous this is a pure reshape, otherwise
    the axes are transposed next to each other first (two copies).
    Batched states fall back to the generic slice kernel.
    """
    f = len(qubits_desc)
    dim = 1 << f
    axes = [n - 1 - q for q in qubits_desc]  # ascending
    if t.ndim != n:  # batched (e.g. dense-unitary evolution)
        _apply_matrix_t(t, n, matrix, qubits_desc)
        return
    if axes == list(range(axes[0], axes[0] + f)):
        if axes[-1] == n - 1:
            view = state.reshape(-1, dim)
            view[...] = view @ matrix.T
        else:
            view = state.reshape(1 << axes[0], dim, -1)
            view[...] = np.matmul(matrix, view)
        return
    perm = [a for a in range(n) if a not in axes] + axes
    transposed = np.transpose(t, perm)
    flat = np.ascontiguousarray(transposed).reshape(-1, dim)
    transposed[...] = (flat @ matrix.T).reshape(transposed.shape)


def apply_ops(state: np.ndarray, ops: Sequence[CompiledOp], num_qubits: Optional[int] = None) -> None:
    """Run a compiled op list in place on a flat/batched state."""
    n = infer_num_qubits(state) if num_qubits is None else num_qubits
    t = _tensor(state, n)
    for kind, payload in ops:
        if kind == "gate":
            gate = payload
            if not _apply_named(t, n, gate):
                _apply_matrix_t(t, n, gate.matrix(), gate.qubits)
        elif kind == "u1":
            matrix, qubit = payload
            _apply_1q(t, n, matrix, qubit)
        elif kind == "diag":
            qubits, diag = payload
            shape = [1] * t.ndim
            for q in qubits:
                shape[n - 1 - q] = 2
            t *= diag.reshape(shape)
        elif kind == "block":
            qubits, matrix = payload
            _apply_block(state, t, n, qubits, matrix)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown compiled op kind {kind!r}")

"""Pluggable array backends under the kernel layer.

The kernel layer (:mod:`repro.simulator.kernels`) keeps the gate
semantics — dispatch, control handling, gate fusion — while every
actual array sweep goes through the narrow :class:`ArrayBackend`
interface defined here:

* **state allocation / ingest** — :meth:`ArrayBackend.zeros` and
  :meth:`ArrayBackend.prepare` own the dtype contract (states are
  complex; real/integer input is upcast on ingest, non-numeric input
  raises ``TypeError``);
* **slice linear combinations** — :meth:`ArrayBackend.apply_1q` (the
  2x2 kernel with diagonal/antidiagonal fast paths),
  :meth:`ArrayBackend.apply_swap` and the generic ``2^k``-slice kernel
  :meth:`ArrayBackend.apply_matrix`;
* **elementwise diagonal multiplies** — :meth:`ArrayBackend.apply_diag1`
  and the merged multi-qubit :meth:`ArrayBackend.apply_diag`;
* **axis-grouped matmul** — :meth:`ArrayBackend.apply_block`, the fused
  block executed as one BLAS contraction.

Every method takes the *flat* state array of shape ``(2**n, *batch)``:
trailing batch axes are first-class, which is how multi-shot and
noise-trajectory evolution vectorize over one batch axis (see
:meth:`repro.simulator.noise.NoisyBackend.run_batched` and the dense
unitary evolution in :mod:`repro.core.unitary`).

Backends register by name, mirroring the :mod:`repro.emit` and
:mod:`repro.engines` registries (case-insensitive, alias-aware, lazy
builtin loading).  :class:`NumpyBackend` is the default and the
reference implementation; :class:`NumbaBackend` JIT-compiles the
memory-bound slice kernels when ``numba`` is importable and is never a
hard dependency — resolving it without numba raises
:class:`BackendUnavailable`, and selecting it through the
``REPRO_ARRAY_BACKEND`` environment variable degrades to NumPy with a
single warning instead of failing.  :class:`NumbaParallelBackend`
climbs one rung further: the same sweeps (plus the fused block matmul)
as ``prange`` multi-threaded kernels, with the thread count bounded by
``REPRO_NUM_THREADS`` and a state-size threshold
(:attr:`NumbaParallelBackend.parallel_threshold`) below which it
delegates to the serial tier so thread fork/join overhead never
regresses small registers.

Selection precedence, strongest first: an explicit ``backend=``
argument (``Statevector``/``DensityMatrix``/engine ``run`` options or
any kernel entry point) > :func:`set_default_backend` >
``REPRO_ARRAY_BACKEND`` > NumPy.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

#: environment variable naming the process-wide default backend.
ENV_VAR = "REPRO_ARRAY_BACKEND"

#: environment variable bounding the parallel backend's thread count.
THREADS_ENV_VAR = "REPRO_NUM_THREADS"


class BackendError(ValueError):
    """Raised for unknown backend names or invalid registrations."""


class BackendUnavailable(BackendError):
    """Raised when a known backend's accelerator dependency is missing."""


# ----------------------------------------------------------------------
# tensor plumbing shared with the kernel layer
# ----------------------------------------------------------------------
def infer_num_qubits(state: np.ndarray) -> int:
    """Number of qubits of a flat or batched state array."""
    dim = state.shape[0]
    n = dim.bit_length() - 1
    if 1 << n != dim:
        raise ValueError("state length is not a power of two")
    return n


def _tensor(state: np.ndarray, n: int) -> np.ndarray:
    """View of ``state`` with one axis per qubit (batch axes trail)."""
    return state.reshape((2,) * n + state.shape[1:])


def _subview(t: np.ndarray, n: int, controls: Sequence[int]) -> np.ndarray:
    """View with every control axis fixed at |1>."""
    if not controls:
        return t
    idx: List[object] = [slice(None)] * n
    for c in controls:
        idx[n - 1 - c] = 1
    return t[tuple(idx)]


def _axis_after_controls(qubit: int, n: int, controls: Sequence[int]) -> int:
    """Axis of ``qubit`` inside the control subview."""
    return (n - 1 - qubit) - sum(1 for c in controls if c > qubit)


# ----------------------------------------------------------------------
# the default backend — plain NumPy, the reference implementation
# ----------------------------------------------------------------------
class NumpyBackend:
    """The default :class:`ArrayBackend`: vectorized NumPy slice math.

    Every kernel is expressed as in-place operations on strided views
    of the state tensor, exactly as the pre-backend kernel layer did —
    the golden suite in ``tests/simulator/test_array_backends.py`` asserts
    the outputs are *identical* to the historical kernels, not merely
    close.
    """

    name = "numpy"
    description = "vectorized NumPy slice kernels (the default)"
    aliases = ("np", "default")

    @classmethod
    def available(cls) -> bool:
        """Whether this backend's dependencies are importable."""
        return True

    # -- allocation / dtype contract -----------------------------------
    def zeros(
        self, num_qubits: int, batch: Tuple[int, ...] = ()
    ) -> np.ndarray:
        """Allocate an all-zero complex state of ``(2**n, *batch)``.

        Args:
            num_qubits: register width ``n``.
            batch: optional trailing batch axes (one column per
                trajectory/shot/unitary column).

        Returns:
            A zeroed ``complex128`` array.
        """
        return np.zeros((1 << num_qubits,) + tuple(batch), dtype=complex)

    def prepare(self, data, copy: bool = True) -> np.ndarray:
        """Coerce ``data`` to a complex state array (the dtype contract).

        Real floating, integer and boolean input upcasts to
        ``complex128``; complex input is kept (copied when ``copy``).
        This is the supported way to feed non-complex data to the
        kernels — the in-place entry points themselves refuse
        non-complex arrays rather than silently truncating them.

        Args:
            data: array-like state data.
            copy: always return a fresh array (default) instead of a
                view of complex input.

        Returns:
            The complex state array.

        Raises:
            TypeError: for data that cannot upcast to complex
                (strings, objects, ...).
        """
        arr = np.asarray(data)
        if not np.issubdtype(arr.dtype, np.number) and arr.dtype != bool:
            raise TypeError(
                f"cannot build a complex state from dtype {arr.dtype}; "
                "states must be numeric (upcastable to complex128)"
            )
        if np.issubdtype(arr.dtype, np.complexfloating):
            out = np.array(arr, dtype=complex, copy=True) if copy else arr
            return out
        return arr.astype(complex)

    # -- slice linear combinations -------------------------------------
    def apply_1q(
        self,
        state: np.ndarray,
        n: int,
        matrix: np.ndarray,
        qubit: int,
        controls: Sequence[int] = (),
    ) -> None:
        """Apply a 2x2 matrix to ``qubit`` within the control subspace.

        One linear combination over two half-state views; diagonal and
        antidiagonal matrices take cheaper copy/scale paths.
        """
        t = _tensor(state, n)
        sub = _subview(t, n, controls)
        ax = _axis_after_controls(qubit, n, controls)
        i0 = (slice(None),) * ax + (0,)
        i1 = (slice(None),) * ax + (1,)
        a, b, c, d = matrix.ravel()
        if b == 0 and c == 0:  # diagonal
            if a != 1.0:
                sub[i0] *= a
            if d != 1.0:
                sub[i1] *= d
            return
        v0 = sub[i0]
        v1 = sub[i1]
        if a == 0 and d == 0:  # antidiagonal (X, Y, and phased variants)
            tmp = v0.copy()
            sub[i0] = v1 if b == 1.0 else b * v1
            sub[i1] = tmp if c == 1.0 else c * tmp
            return
        t0 = a * v0 + b * v1
        t1 = c * v0 + d * v1
        sub[i0] = t0
        sub[i1] = t1

    def apply_swap(
        self,
        state: np.ndarray,
        n: int,
        qubit_a: int,
        qubit_b: int,
        controls: Sequence[int] = (),
    ) -> None:
        """Exchange the |01> and |10> subspaces of two qubits."""
        t = _tensor(state, n)
        sub = _subview(t, n, controls)
        ax_a = _axis_after_controls(qubit_a, n, controls)
        ax_b = _axis_after_controls(qubit_b, n, controls)
        idx01: List[object] = [slice(None)] * (max(ax_a, ax_b) + 1)
        idx10 = list(idx01)
        idx01[ax_a] = 0
        idx01[ax_b] = 1
        idx10[ax_a] = 1
        idx10[ax_b] = 0
        i01 = tuple(idx01)
        i10 = tuple(idx10)
        tmp = sub[i01].copy()
        sub[i01] = sub[i10]
        sub[i10] = tmp

    def apply_matrix(
        self,
        state: np.ndarray,
        n: int,
        matrix: np.ndarray,
        qubits: Sequence[int],
    ) -> None:
        """Generic in-place k-qubit kernel: one view per local basis state.

        ``qubits[0]`` is the most-significant bit of the matrix's local
        index space (matching ``Gate.matrix``).
        """
        t = _tensor(state, n)
        k = len(qubits)
        dim = 1 << k
        if matrix.shape != (dim, dim):
            raise ValueError("matrix does not match qubit count")
        if t.ndim == n:
            # gate touches every axis: keep a trailing length-1 axis so
            # the per-basis views stay writable arrays instead of scalars
            t = t.reshape((2,) * n + (1,))
        views = []
        for basis in range(dim):
            idx: List[object] = [slice(None)] * n
            for j, q in enumerate(qubits):
                idx[n - 1 - q] = (basis >> (k - 1 - j)) & 1
            views.append(t[tuple(idx)])
        rows = []
        for r in range(dim):
            acc = None
            for c in range(dim):
                coeff = matrix[r, c]
                if coeff == 0:
                    continue
                if acc is None:
                    acc = views[c] * coeff  # materializes; views stay readable
                else:
                    acc += coeff * views[c]
            rows.append(acc)
        for r in range(dim):
            if rows[r] is None:
                views[r][...] = 0
            else:
                views[r][...] = rows[r]

    # -- elementwise diagonal multiplies -------------------------------
    def apply_diag1(
        self,
        state: np.ndarray,
        n: int,
        d0: complex,
        d1: complex,
        qubit: int,
        controls: Sequence[int] = (),
    ) -> None:
        """Multiply the |0>/|1> slices of ``qubit`` by ``(d0, d1)``."""
        t = _tensor(state, n)
        sub = _subview(t, n, controls)
        ax = _axis_after_controls(qubit, n, controls)
        if d0 != 1.0:
            sub[(slice(None),) * ax + (0,)] *= d0
        if d1 != 1.0:
            sub[(slice(None),) * ax + (1,)] *= d1

    def apply_diag(
        self,
        state: np.ndarray,
        n: int,
        qubits_desc: Tuple[int, ...],
        diag: np.ndarray,
    ) -> None:
        """Multiply by a merged multi-qubit local diagonal.

        ``qubits_desc`` lists the touched qubits in descending order;
        ``qubits_desc[0]`` is the most-significant bit of ``diag``'s
        index space.
        """
        t = _tensor(state, n)
        shape = [1] * t.ndim
        for q in qubits_desc:
            shape[n - 1 - q] = 2
        t *= diag.reshape(shape)

    # -- axis-grouped matmul -------------------------------------------
    def apply_block(
        self,
        state: np.ndarray,
        n: int,
        qubits_desc: Tuple[int, ...],
        matrix: np.ndarray,
    ) -> None:
        """Apply a fused block matrix with one BLAS matmul.

        The state is reshaped so the block's qubit axes form one axis;
        if the block's qubits are contiguous this is a pure reshape,
        otherwise the axes are transposed next to each other first (two
        copies).  Batched states fall back to the generic slice kernel.
        """
        t = _tensor(state, n)
        f = len(qubits_desc)
        dim = 1 << f
        axes = [n - 1 - q for q in qubits_desc]  # ascending
        if t.ndim != n:  # batched (e.g. dense-unitary evolution)
            self.apply_matrix(state, n, matrix, qubits_desc)
            return
        if axes == list(range(axes[0], axes[0] + f)):
            if axes[-1] == n - 1:
                view = state.reshape(-1, dim)
                view[...] = view @ matrix.T
            else:
                view = state.reshape(1 << axes[0], dim, -1)
                view[...] = np.matmul(matrix, view)
            return
        perm = [a for a in range(n) if a not in axes] + axes
        transposed = np.transpose(t, perm)
        flat = np.ascontiguousarray(transposed).reshape(-1, dim)
        transposed[...] = (flat @ matrix.T).reshape(transposed.shape)


#: alias documenting the interface: any object shaped like NumpyBackend.
ArrayBackend = NumpyBackend


# ----------------------------------------------------------------------
# the optional numba backend — JIT'd slice kernels, never a hard dep
# ----------------------------------------------------------------------
def _load_numba_kernels():
    """Compile the numba slice kernels; ``None`` if numba is missing."""
    try:
        import numba
    except ImportError:
        return None

    jit = numba.njit(cache=False, fastmath=False)

    @jit
    def nb_apply_1q(data, a, b, c, d, tbit, cmask):
        for i in range(data.shape[0]):
            if (i & tbit) == 0 and (i & cmask) == cmask:
                j = i | tbit
                v0 = data[i]
                v1 = data[j]
                data[i] = a * v0 + b * v1
                data[j] = c * v0 + d * v1

    @jit
    def nb_apply_diag1(data, d0, d1, tbit, cmask):
        for i in range(data.shape[0]):
            if (i & cmask) == cmask:
                if (i & tbit) == 0:
                    data[i] = data[i] * d0
                else:
                    data[i] = data[i] * d1

    @jit
    def nb_apply_swap(data, abit, bbit, cmask):
        for i in range(data.shape[0]):
            # visit each |01>/|10> pair once, from its |01> member
            if (i & abit) == 0 and (i & bbit) == bbit and (i & cmask) == cmask:
                j = (i | abit) & ~bbit
                tmp = data[i]
                data[i] = data[j]
                data[j] = tmp

    @jit
    def nb_apply_diag(data, diag, qubits_desc):
        m = qubits_desc.shape[0]
        for i in range(data.shape[0]):
            local = 0
            for j in range(m):
                local |= ((i >> qubits_desc[j]) & 1) << (m - 1 - j)
            data[i] = data[i] * diag[local]

    return {
        "1q": nb_apply_1q,
        "diag1": nb_apply_diag1,
        "swap": nb_apply_swap,
        "diag": nb_apply_diag,
    }


def _control_mask(controls: Sequence[int]) -> int:
    """OR of the control qubits' index bits."""
    mask = 0
    for c in controls:
        mask |= 1 << c
    return mask


class NumbaBackend(NumpyBackend):
    """JIT-compiled slice kernels via numba (optional accelerator).

    Overrides the memory-bound slice kernels — 1q linear combinations,
    diagonal multiplies, swaps — with ``numba.njit`` bit-twiddling
    loops over the flat state.  The BLAS-bound paths (fused block
    matmul, the generic dense kernel) and every batched call inherit
    the NumPy implementation, where vectorized code is already at
    memory/BLAS speed.

    The class is always importable; *instantiation* requires numba
    (:meth:`available`), so feature detection stays at registry
    resolution and numba is never a hard dependency.
    """

    name = "numba"
    description = "numba-JIT bit-twiddling slice kernels (optional)"
    aliases = ("nb", "jit")

    _kernels = None

    @classmethod
    def available(cls) -> bool:
        """Whether numba is importable (compilation is deferred)."""
        try:
            import numba  # noqa: F401
        except ImportError:
            return False
        return True

    def __init__(self):
        """Compile the JIT kernels once per process.

        Raises:
            BackendUnavailable: when numba is not importable.
        """
        if NumbaBackend._kernels is None:
            kernels = _load_numba_kernels()
            if kernels is None:
                raise BackendUnavailable(
                    f"array backend {self.name!r} needs the numba package "
                    "(pip install numba); the 'numpy' backend is the "
                    "dependency-free default"
                )
            NumbaBackend._kernels = kernels

    def _jittable(self, state: np.ndarray) -> bool:
        """True when the flat 1-D JIT loops apply to ``state``."""
        return (
            state.ndim == 1
            and state.dtype == np.complex128
            and state.flags.c_contiguous
        )

    def apply_1q(self, state, n, matrix, qubit, controls=()):
        """Apply a 2x2 matrix via the JIT pair loop (NumPy for batches)."""
        if not self._jittable(state):
            return super().apply_1q(state, n, matrix, qubit, controls)
        a, b, c, d = (complex(v) for v in matrix.ravel())
        self._kernels["1q"](
            state, a, b, c, d, 1 << qubit, _control_mask(controls)
        )

    def apply_diag1(self, state, n, d0, d1, qubit, controls=()):
        """Elementwise (d0, d1) multiply via the JIT loop."""
        if not self._jittable(state):
            return super().apply_diag1(state, n, d0, d1, qubit, controls)
        self._kernels["diag1"](
            state, complex(d0), complex(d1), 1 << qubit,
            _control_mask(controls),
        )

    def apply_swap(self, state, n, qubit_a, qubit_b, controls=()):
        """Exchange the |01>/|10> subspaces via the JIT pair loop."""
        if not self._jittable(state):
            return super().apply_swap(state, n, qubit_a, qubit_b, controls)
        self._kernels["swap"](
            state, 1 << qubit_a, 1 << qubit_b, _control_mask(controls)
        )

    def apply_diag(self, state, n, qubits_desc, diag):
        """Merged multi-qubit diagonal multiply via the JIT gather loop."""
        if not self._jittable(state):
            return super().apply_diag(state, n, qubits_desc, diag)
        self._kernels["diag"](
            state,
            np.ascontiguousarray(diag, dtype=complex),
            np.asarray(qubits_desc, dtype=np.int64),
        )


# ----------------------------------------------------------------------
# the parallel numba tier — prange sweeps for wide states
# ----------------------------------------------------------------------
def _load_parallel_kernels():
    """Compile the prange parallel kernels; ``None`` if numba is missing.

    Every kernel partitions the flat state by iteration index, and each
    ``prange`` iteration only ever touches the index pair (or block
    gather set) it owns, so the loops are race-free without locks.
    """
    try:
        import numba
    except ImportError:
        return None

    jit = numba.njit(cache=False, fastmath=False, parallel=True)
    prange = numba.prange

    @jit
    def nbp_apply_1q(data, a, b, c, d, tbit, cmask):
        for i in prange(data.shape[0]):
            if (i & tbit) == 0 and (i & cmask) == cmask:
                j = i | tbit
                v0 = data[i]
                v1 = data[j]
                data[i] = a * v0 + b * v1
                data[j] = c * v0 + d * v1

    @jit
    def nbp_apply_diag1(data, d0, d1, tbit, cmask):
        for i in prange(data.shape[0]):
            if (i & cmask) == cmask:
                if (i & tbit) == 0:
                    data[i] = data[i] * d0
                else:
                    data[i] = data[i] * d1

    @jit
    def nbp_apply_swap(data, abit, bbit, cmask):
        for i in prange(data.shape[0]):
            # visit each |01>/|10> pair once, from its |01> member
            if (i & abit) == 0 and (i & bbit) == bbit and (i & cmask) == cmask:
                j = (i | abit) & ~bbit
                tmp = data[i]
                data[i] = data[j]
                data[j] = tmp

    @jit
    def nbp_apply_diag(data, diag, qubits_desc):
        m = qubits_desc.shape[0]
        for i in prange(data.shape[0]):
            local = 0
            for j in range(m):
                local |= ((i >> qubits_desc[j]) & 1) << (m - 1 - j)
            data[i] = data[i] * diag[local]

    @jit
    def nbp_apply_block(data, matrix, offsets, positions):
        # one iteration per rest-space index: expand it to the flat base
        # index (zero bits at every block position), gather the block's
        # 2^f amplitudes, matmul, scatter back
        f = positions.shape[0]
        dim = offsets.shape[0]
        rest = data.shape[0] >> f
        for rank in prange(rest):
            base = rank
            for k in range(f):
                p = positions[k]
                base = ((base >> p) << (p + 1)) | (base & ((1 << p) - 1))
            vec = np.empty(dim, np.complex128)
            for col in range(dim):
                vec[col] = data[base + offsets[col]]
            for row in range(dim):
                acc = 0.0 + 0.0j
                for col in range(dim):
                    acc = acc + matrix[row, col] * vec[col]
                data[base + offsets[row]] = acc

    return {
        "1q": nbp_apply_1q,
        "diag1": nbp_apply_diag1,
        "swap": nbp_apply_swap,
        "diag": nbp_apply_diag,
        "block": nbp_apply_block,
    }


def _block_offsets(qubits_desc: Tuple[int, ...]) -> np.ndarray:
    """Flat-index offset of each local basis state of a fused block.

    ``qubits_desc[0]`` is the most-significant bit of the local index
    space, matching :meth:`NumpyBackend.apply_matrix`.
    """
    f = len(qubits_desc)
    offsets = np.zeros(1 << f, dtype=np.int64)
    for j, q in enumerate(qubits_desc):
        bit = 1 << (f - 1 - j)
        for local in range(1 << f):
            if local & bit:
                offsets[local] |= 1 << q
    return offsets


class NumbaParallelBackend(NumbaBackend):
    """Multi-threaded ``prange`` sweeps for wide states (optional).

    Re-implements the memory-bound sweeps *and* the fused block matmul
    as ``numba.njit(parallel=True)`` kernels over the flat complex128
    state.  Narrow states — below :attr:`parallel_threshold` elements —
    delegate to the serial :class:`NumbaBackend` kernels (NumPy BLAS
    for blocks), because thread fork/join costs more than the sweep
    itself in the ≤12-qubit regime; batched/strided input inherits the
    NumPy paths like the serial tier.

    The thread count defaults to numba's; set ``REPRO_NUM_THREADS`` to
    bound it (clamped to numba's configured maximum).  Like
    :class:`NumbaBackend` the class is always importable and only
    *instantiation* requires numba.
    """

    name = "numba_parallel"
    description = "prange multi-threaded sweeps for wide states (optional)"
    aliases = ("nbp", "parallel")

    _pkernels = None
    _threads_warned = False

    #: flat state sizes below this use the serial tier (measured: the
    #: fork/join overhead beats the sweep win under ~2**17 elements).
    parallel_threshold = 1 << 17

    #: widest fused block the gather kernel handles; larger blocks are
    #: BLAS-bound anyway and fall back to the NumPy matmul path.
    max_block_qubits = 8

    def __init__(self):
        """Compile serial + parallel JIT kernels once per process.

        Raises:
            BackendUnavailable: when numba is not importable (the
                message names the package to install).
        """
        super().__init__()
        if NumbaParallelBackend._pkernels is None:
            NumbaParallelBackend._pkernels = _load_parallel_kernels()
        self._configure_threads()

    @classmethod
    def _configure_threads(cls) -> None:
        """Apply ``REPRO_NUM_THREADS`` to numba's thread pool."""
        requested = os.environ.get(THREADS_ENV_VAR, "").strip()
        if not requested:
            return
        try:
            count = int(requested)
            if count < 1:
                raise ValueError(requested)
        except ValueError:
            if not cls._threads_warned:
                cls._threads_warned = True
                warnings.warn(
                    f"{THREADS_ENV_VAR}={requested!r} is not a positive "
                    "integer; using numba's default thread count",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return
        import numba

        numba.set_num_threads(min(count, numba.config.NUMBA_NUM_THREADS))

    def _parallel(self, state: np.ndarray) -> bool:
        """True when the prange kernels should run on ``state``."""
        return (
            self._jittable(state)
            and state.shape[0] >= self.parallel_threshold
        )

    def apply_1q(self, state, n, matrix, qubit, controls=()):
        """2x2 linear combination via the parallel pair sweep."""
        if not self._parallel(state):
            return super().apply_1q(state, n, matrix, qubit, controls)
        a, b, c, d = (complex(v) for v in matrix.ravel())
        self._pkernels["1q"](
            state, a, b, c, d, 1 << qubit, _control_mask(controls)
        )

    def apply_diag1(self, state, n, d0, d1, qubit, controls=()):
        """Elementwise (d0, d1) multiply via the parallel sweep."""
        if not self._parallel(state):
            return super().apply_diag1(state, n, d0, d1, qubit, controls)
        self._pkernels["diag1"](
            state, complex(d0), complex(d1), 1 << qubit,
            _control_mask(controls),
        )

    def apply_swap(self, state, n, qubit_a, qubit_b, controls=()):
        """|01>/|10> exchange via the parallel pair sweep."""
        if not self._parallel(state):
            return super().apply_swap(state, n, qubit_a, qubit_b, controls)
        self._pkernels["swap"](
            state, 1 << qubit_a, 1 << qubit_b, _control_mask(controls)
        )

    def apply_diag(self, state, n, qubits_desc, diag):
        """Merged multi-qubit diagonal via the parallel gather sweep."""
        if not self._parallel(state):
            return super().apply_diag(state, n, qubits_desc, diag)
        self._pkernels["diag"](
            state,
            np.ascontiguousarray(diag, dtype=complex),
            np.asarray(qubits_desc, dtype=np.int64),
        )

    def apply_block(self, state, n, qubits_desc, matrix):
        """Fused block matmul as a parallel gather/matmul/scatter sweep.

        New for the numba tiers: the serial backend always used the
        BLAS reshape path for blocks.  Narrow states, batched states
        and blocks wider than :attr:`max_block_qubits` still do.
        """
        if (
            not self._parallel(state)
            or len(qubits_desc) > self.max_block_qubits
        ):
            return super().apply_block(state, n, qubits_desc, matrix)
        self._pkernels["block"](
            state,
            np.ascontiguousarray(matrix, dtype=complex),
            _block_offsets(tuple(qubits_desc)),
            np.array(sorted(qubits_desc), dtype=np.int64),
        )


# ----------------------------------------------------------------------
# the registry — name -> backend, mirroring repro.emit / repro.engines
# ----------------------------------------------------------------------
_BUILTIN_CLASSES = (NumpyBackend, NumbaBackend, NumbaParallelBackend)

_REGISTRY: Dict[str, ArrayBackend] = {}
_ALIASES: Dict[str, str] = {}
_ORDER: List[str] = []
_BUILTINS_LOADED = False

_DEFAULT: Optional[ArrayBackend] = None
_ENV_WARNED = False


def _ensure_builtins() -> None:
    """Register the available builtin backends exactly once."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    for cls in _BUILTIN_CLASSES:
        if cls.available():
            register(cls())


def register(backend: ArrayBackend, overwrite: bool = False) -> ArrayBackend:
    """Register a backend under its canonical name and aliases.

    Args:
        backend: the backend to register (anything shaped like
            :class:`NumpyBackend` — same methods, ``name``,
            ``description``, optional ``aliases``).
        overwrite: replace an existing registration instead of raising.

    Returns:
        The registered backend (for chaining).

    Raises:
        BackendError: when the backend is missing interface methods,
            or its name/alias collides and ``overwrite`` is false.
    """
    for attr in ("name", "description", "zeros", "prepare", "apply_1q",
                 "apply_diag1", "apply_diag", "apply_swap", "apply_matrix",
                 "apply_block"):
        if not hasattr(backend, attr):
            raise BackendError(
                f"array backend {backend!r} does not satisfy the "
                f"ArrayBackend interface: missing {attr!r}"
            )
    _ensure_builtins()
    name = backend.name.lower()
    aliases = tuple(a.lower() for a in getattr(backend, "aliases", ()))
    taken = [
        key for key in (name, *aliases)
        if key in _REGISTRY or key in _ALIASES
    ]
    if taken and not overwrite:
        raise BackendError(
            f"array backend {taken[0]!r} is already registered; pass "
            "overwrite=True to replace it"
        )
    for key in (name, *aliases):
        if key in _REGISTRY:
            unregister(key)
        _ALIASES.pop(key, None)
    for alias, canonical in list(_ALIASES.items()):
        if canonical == name:
            del _ALIASES[alias]
    _REGISTRY[name] = backend
    if name not in _ORDER:
        _ORDER.append(name)
    for alias in aliases:
        _ALIASES[alias] = name
    return backend


def unregister(name: str) -> ArrayBackend:
    """Remove a backend registration (built-ins included).

    Args:
        name: the canonical backend name to remove (not an alias).

    Returns:
        The removed backend.

    Raises:
        BackendError: when no backend of that name is registered.
    """
    global _DEFAULT
    _ensure_builtins()
    key = name.lower()
    backend = _REGISTRY.get(key)
    if backend is None:
        raise BackendError(
            f"unknown array backend {name!r}; registered: "
            f"{describe_backends()}"
        )
    del _REGISTRY[key]
    _ORDER.remove(key)
    for alias, canonical in list(_ALIASES.items()):
        if canonical == key:
            del _ALIASES[alias]
    if _DEFAULT is backend:
        _DEFAULT = None
    return backend


def get(spec: Union[str, ArrayBackend]) -> ArrayBackend:
    """Resolve a backend name (or instance) to its backend.

    Args:
        spec: a registered backend name or alias (case-insensitive),
            or a backend instance (returned as-is).

    Returns:
        The resolved backend.

    Raises:
        BackendUnavailable: for known builtin backends whose
            dependency is missing (the message names the package).
        BackendError: for unknown names; the message lists the
            registered backends.
    """
    if not isinstance(spec, str):
        if hasattr(spec, "apply_1q") and hasattr(spec, "name"):
            return spec
        raise BackendError(
            f"expected a backend name or ArrayBackend, got "
            f"{type(spec).__name__}"
        )
    _ensure_builtins()
    key = spec.lower()
    key = _ALIASES.get(key, key)
    backend = _REGISTRY.get(key)
    if backend is None:
        for cls in _BUILTIN_CLASSES:
            names = (cls.name, *cls.aliases)
            if key in (n.lower() for n in names) and not cls.available():
                cls()  # raises BackendUnavailable with the install hint
        raise BackendError(
            f"unknown array backend {spec!r}; registered: "
            f"{describe_backends()}"
        )
    return backend


def backends() -> Tuple[str, ...]:
    """Return the canonical registered backend names, in listing order."""
    _ensure_builtins()
    return tuple(_ORDER)


def describe_backends() -> str:
    """Return ``"numpy (aka np, default), ..."`` for error messages."""
    parts = []
    for name in backends():
        aliases = tuple(
            alias for alias, canonical in _ALIASES.items()
            if canonical == name
        )
        if aliases:
            parts.append(f"{name} (aka {', '.join(aliases)})")
        else:
            parts.append(name)
    return ", ".join(parts)


def set_default_backend(
    spec: Union[str, ArrayBackend, None]
) -> Optional[ArrayBackend]:
    """Set (or clear) the process-wide default backend.

    Args:
        spec: a backend name/instance, or ``None`` to fall back to the
            ``REPRO_ARRAY_BACKEND`` environment variable / NumPy.

    Returns:
        The new default backend (``None`` when cleared).
    """
    global _DEFAULT
    _DEFAULT = None if spec is None else get(spec)
    return _DEFAULT


def default_backend() -> ArrayBackend:
    """The backend used when no ``backend=`` argument is given.

    Resolution order: :func:`set_default_backend` >
    ``REPRO_ARRAY_BACKEND`` (degrading to NumPy with one warning when
    the named backend is unknown or unavailable) > NumPy.

    Returns:
        The default :class:`ArrayBackend`.
    """
    global _ENV_WARNED
    if _DEFAULT is not None:
        return _DEFAULT
    _ensure_builtins()
    env = os.environ.get(ENV_VAR, "").strip()
    if env:
        try:
            return get(env)
        except BackendError as exc:
            if not _ENV_WARNED:
                _ENV_WARNED = True
                warnings.warn(
                    f"{ENV_VAR}={env!r} is not usable ({exc}); "
                    "falling back to the 'numpy' backend",
                    RuntimeWarning,
                    stacklevel=2,
                )
    return _REGISTRY["numpy"]


def resolve(spec: Union[str, ArrayBackend, None]) -> ArrayBackend:
    """Resolve an optional ``backend=`` argument.

    Args:
        spec: ``None`` (use :func:`default_backend`), a registered
            name/alias, or a backend instance.

    Returns:
        The resolved :class:`ArrayBackend`.
    """
    if spec is None:
        return default_backend()
    return get(spec)

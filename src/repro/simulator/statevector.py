"""Full state-vector simulator.

The local simulator backend of the paper's ProjectQ flow (Sec. VII) and
the reference oracle for every synthesis/optimization test in this
repository.  States are numpy complex vectors of length ``2**n`` with
qubit 0 as the least-significant bit of the basis-state index.

Gates are applied by reshaping the state into an ``n``-dimensional
tensor and contracting the gate's local matrix over the touched axes,
which is O(2^n) per gate rather than O(4^n).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.circuit import QuantumCircuit
from ..core.gates import Gate


class SimulationError(RuntimeError):
    """Raised for invalid simulator operations."""


class Statevector:
    """Mutable n-qubit pure state."""

    def __init__(self, num_qubits: int, data: Optional[np.ndarray] = None):
        if num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        self.num_qubits = num_qubits
        dim = 1 << num_qubits
        if data is None:
            self.data = np.zeros(dim, dtype=complex)
            self.data[0] = 1.0
        else:
            data = np.asarray(data, dtype=complex)
            if data.shape != (dim,):
                raise ValueError(f"state must have length {dim}")
            self.data = data.copy()

    @classmethod
    def from_basis_state(cls, num_qubits: int, basis: int) -> "Statevector":
        """Computational basis state |basis>."""
        if not 0 <= basis < (1 << num_qubits):
            raise ValueError("basis state out of range")
        state = cls(num_qubits)
        state.data[0] = 0.0
        state.data[basis] = 1.0
        return state

    @classmethod
    def from_label(cls, label: str) -> "Statevector":
        """Build a product state from a label like ``'01+'``.

        Character i of the label describes qubit ``n-1-i`` (big-endian,
        as states are conventionally written), from {0, 1, +, -}.
        """
        num_qubits = len(label)
        state = cls(0)
        state.data = np.array([1.0], dtype=complex)
        vectors = {
            "0": np.array([1.0, 0.0], dtype=complex),
            "1": np.array([0.0, 1.0], dtype=complex),
            "+": np.array([1.0, 1.0], dtype=complex) / math.sqrt(2),
            "-": np.array([1.0, -1.0], dtype=complex) / math.sqrt(2),
        }
        for char in label:
            if char not in vectors:
                raise ValueError(f"unknown state label character {char!r}")
            state.data = np.kron(state.data, vectors[char])
        state.num_qubits = num_qubits
        return state

    def copy(self) -> "Statevector":
        return Statevector(self.num_qubits, self.data)

    # ------------------------------------------------------------------
    # evolution
    # ------------------------------------------------------------------
    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Apply a ``2^k x 2^k`` matrix to the listed qubits.

        ``qubits[0]`` is the most-significant bit of the matrix's local
        index space (matching :meth:`Gate.matrix` ordering).
        """
        k = len(qubits)
        if matrix.shape != (1 << k, 1 << k):
            raise ValueError("matrix does not match qubit count")
        n = self.num_qubits
        tensor = self.data.reshape([2] * n)
        axes = [n - 1 - q for q in qubits]
        local = matrix.reshape([2] * (2 * k))
        tensor = np.tensordot(local, tensor, axes=(list(range(k, 2 * k)), axes))
        # restore axis ordering (same logic as core.unitary)
        remaining = [a for a in range(n) if a not in axes]
        out_index = {axis: i for i, axis in enumerate(axes)}
        rem_index = {axis: k + i for i, axis in enumerate(remaining)}
        perm = [
            out_index[a] if a in out_index else rem_index[a] for a in range(n)
        ]
        self.data = np.ascontiguousarray(np.transpose(tensor, perm)).reshape(-1)

    def apply_gate(self, gate: Gate) -> None:
        """Apply a unitary gate (with fast paths for classical gates)."""
        if gate.name == "barrier" or gate.name == "id":
            return
        if not gate.is_unitary:
            raise SimulationError(
                f"apply_gate cannot handle non-unitary {gate.name!r}"
            )
        if gate.base_name == "x" and not gate.params:
            self._apply_mcx(gate.controls, gate.targets[0])
            return
        if gate.base_name == "z" and not gate.params:
            self._apply_mcz(gate.controls, gate.targets[0])
            return
        self.apply_matrix(gate.matrix(), gate.qubits)

    def _apply_mcx(self, controls: Tuple[int, ...], target: int) -> None:
        """Permutation fast path for X/CX/CCX/MCX."""
        indices = np.arange(self.data.size)
        mask = np.ones(self.data.size, dtype=bool)
        for ctl in controls:
            mask &= (indices >> ctl) & 1 == 1
        flipped = indices ^ (1 << target)
        new_data = self.data.copy()
        new_data[flipped[mask]] = self.data[indices[mask]]
        self.data = new_data

    def _apply_mcz(self, controls: Tuple[int, ...], target: int) -> None:
        """Diagonal fast path for Z/CZ/CCZ/MCZ."""
        indices = np.arange(self.data.size)
        mask = (indices >> target) & 1 == 1
        for ctl in controls:
            mask &= (indices >> ctl) & 1 == 1
        self.data[mask] *= -1.0

    def evolve(self, circuit: QuantumCircuit) -> "Statevector":
        """Apply all unitary gates of ``circuit`` in place; returns self."""
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError("circuit width does not match state")
        for gate in circuit.gates:
            if gate.is_measurement or gate.name == "reset":
                raise SimulationError(
                    "evolve() only handles unitary circuits; "
                    "use StatevectorSimulator.run for measurements"
                )
            self.apply_gate(gate)
        return self

    # ------------------------------------------------------------------
    # inspection / measurement
    # ------------------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        return np.abs(self.data) ** 2

    def probability_of(self, basis: int) -> float:
        return float(abs(self.data[basis]) ** 2)

    def amplitude(self, basis: int) -> complex:
        return complex(self.data[basis])

    def norm(self) -> float:
        return float(np.linalg.norm(self.data))

    def fidelity(self, other: "Statevector") -> float:
        return float(abs(np.vdot(self.data, other.data)) ** 2)

    def equiv(self, other: "Statevector", atol: float = 1e-9) -> bool:
        """Equality up to global phase."""
        return self.fidelity(other) > 1.0 - atol

    def measure_qubit(
        self, qubit: int, rng: np.random.Generator
    ) -> int:
        """Projectively measure one qubit, collapsing the state."""
        indices = np.arange(self.data.size)
        mask_one = ((indices >> qubit) & 1).astype(bool)
        p_one = float(np.sum(np.abs(self.data[mask_one]) ** 2))
        outcome = 1 if rng.random() < p_one else 0
        keep = mask_one if outcome else ~mask_one
        prob = p_one if outcome else 1.0 - p_one
        if prob <= 0.0:
            raise SimulationError("measurement of zero-probability branch")
        new_data = np.zeros_like(self.data)
        new_data[keep] = self.data[keep] / math.sqrt(prob)
        self.data = new_data
        return outcome

    def reset_qubit(self, qubit: int, rng: np.random.Generator) -> None:
        """Measure and, if 1, flip back to |0>."""
        if self.measure_qubit(qubit, rng) == 1:
            self._apply_mcx((), qubit)

    def sample_counts(
        self,
        shots: int,
        rng: np.random.Generator,
        qubits: Optional[Sequence[int]] = None,
    ) -> Dict[int, int]:
        """Sample measurement outcomes without collapsing the state.

        Returns a histogram mapping the integer outcome (bit i of the
        key = measured value of ``qubits[i]``) to its frequency.
        """
        probs = self.probabilities()
        outcomes = rng.choice(probs.size, size=shots, p=probs / probs.sum())
        if qubits is None:
            qubits = range(self.num_qubits)
        counts: Dict[int, int] = {}
        for outcome in outcomes:
            key = 0
            for i, q in enumerate(qubits):
                key |= ((int(outcome) >> q) & 1) << i
            counts[key] = counts.get(key, 0) + 1
        return counts

    def __str__(self) -> str:
        terms = []
        for basis, amp in enumerate(self.data):
            if abs(amp) > 1e-9:
                label = format(basis, f"0{self.num_qubits}b")
                terms.append(f"({amp:.4g})|{label}>")
        return " + ".join(terms) if terms else "0"


class StatevectorSimulator:
    """Shot-based simulator supporting mid-circuit measurement/reset."""

    def __init__(self, seed: Optional[int] = None):
        self._seed = seed

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1,
        initial_state: Optional[Statevector] = None,
    ) -> "SimulationResult":
        """Execute ``circuit`` for ``shots`` repetitions.

        If the circuit's measurements are all terminal, a single state
        evolution is sampled ``shots`` times; otherwise each shot is
        simulated independently.
        """
        rng = np.random.default_rng(self._seed)
        if not circuit.has_measurements():
            state = initial_state.copy() if initial_state else Statevector(
                circuit.num_qubits
            )
            state.evolve(circuit)
            return SimulationResult({}, state, shots)

        if _measurements_terminal(circuit):
            state = initial_state.copy() if initial_state else Statevector(
                circuit.num_qubits
            )
            measure_map: List[Tuple[int, int]] = []
            for gate in circuit.gates:
                if gate.is_measurement:
                    measure_map.append((gate.targets[0], gate.cbits[0]))
                elif gate.name == "reset":
                    raise SimulationError("reset after measurement unsupported")
                else:
                    state.apply_gate(gate)
            probs = state.probabilities()
            outcomes = rng.choice(
                probs.size, size=shots, p=probs / probs.sum()
            )
            counts: Dict[int, int] = {}
            for outcome in outcomes:
                key = 0
                for qubit, clbit in measure_map:
                    key |= ((int(outcome) >> qubit) & 1) << clbit
                counts[key] = counts.get(key, 0) + 1
            return SimulationResult(counts, state, shots)

        counts = {}
        last_state = None
        for _ in range(shots):
            state = initial_state.copy() if initial_state else Statevector(
                circuit.num_qubits
            )
            creg = 0
            for gate in circuit.gates:
                if gate.is_measurement:
                    bit = state.measure_qubit(gate.targets[0], rng)
                    clbit = gate.cbits[0]
                    creg = (creg & ~(1 << clbit)) | (bit << clbit)
                elif gate.name == "reset":
                    state.reset_qubit(gate.targets[0], rng)
                else:
                    state.apply_gate(gate)
            counts[creg] = counts.get(creg, 0) + 1
            last_state = state
        return SimulationResult(counts, last_state, shots)

    def statevector(self, circuit: QuantumCircuit) -> Statevector:
        """Evolve |0..0> through a unitary circuit and return the state."""
        state = Statevector(circuit.num_qubits)
        return state.evolve(circuit)


def _measurements_terminal(circuit: QuantumCircuit) -> bool:
    """True if no unitary gate follows a measurement on any qubit."""
    measured = set()
    for gate in circuit.gates:
        if gate.is_measurement:
            measured.add(gate.targets[0])
        elif gate.name == "barrier":
            continue
        else:
            if any(q in measured for q in gate.qubits):
                return False
    return True


class SimulationResult:
    """Counts + final state from a simulator run."""

    def __init__(
        self,
        counts: Dict[int, int],
        statevector: Optional[Statevector],
        shots: int,
    ):
        self.counts = counts
        self.final_state = statevector
        self.shots = shots

    def counts_by_bitstring(self, width: Optional[int] = None) -> Dict[str, int]:
        """Counts keyed by bitstrings (most-significant bit first)."""
        if width is None:
            width = max(
                (key.bit_length() for key in self.counts), default=1
            )
            if self.final_state is not None:
                width = max(width, self.final_state.num_qubits)
        return {
            format(key, f"0{width}b"): value
            for key, value in sorted(self.counts.items())
        }

    def most_frequent(self) -> int:
        if not self.counts:
            raise SimulationError("no measurement results recorded")
        return max(self.counts, key=lambda k: self.counts[k])

    def probability(self, outcome: int) -> float:
        return self.counts.get(outcome, 0) / self.shots

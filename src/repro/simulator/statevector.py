"""Full state-vector simulator.

The local simulator backend of the paper's ProjectQ flow (Sec. VII) and
the reference oracle for every synthesis/optimization test in this
repository.  States are numpy complex vectors of length ``2**n`` with
qubit 0 as the least-significant bit of the basis-state index.

Execution model
---------------
Gates are applied by the in-place bit-sliced kernels of
:mod:`repro.simulator.kernels`: the state is viewed as a ``(2,) * n``
tensor (qubit ``q`` on axis ``n - 1 - q``) and each gate updates only
the slices it touches —

* named single-qubit gates are one 2x2 linear combination over two
  half-state views (O(2^n) flops, zero full-state copies);
* diagonal gates (Z/S/T/RZ/P and controlled forms) are elementwise
  multiplies on the |1>-control subspace only;
* X/Y/SWAP families are slice exchanges; an ``mcx`` with ``c``
  controls touches just ``2^(n-c)`` amplitudes;
* anything without a dedicated kernel (an arbitrary matrix passed to
  :meth:`Statevector.apply_matrix`) falls back to a generic in-place
  ``2^k``-slice kernel.

:meth:`Statevector.evolve` additionally runs the gate-fusion pre-pass
(:func:`repro.simulator.kernels.compile_circuit`): wire-adjacent runs
of single-qubit gates collapse into one 2x2 matrix, consecutive
diagonal gates merge into a single local diagonal, and the remaining
ops are grouped into multi-qubit blocks executed as one BLAS matmul
each, so deep Clifford+T circuits execute far fewer full-state sweeps
than they have gates.

Setting ``Statevector.use_kernels = False`` (class or instance level)
restores the seed implementation — dense tensordot contraction with
``np.arange``-based MCX/MCZ fast paths — which
``benchmarks/bench_simulator_scaling.py`` uses as the comparison
baseline.

Sampling is vectorized: measurement histograms are produced by numpy
bit-gathers over the sampled outcome array plus ``np.unique`` instead
of per-shot Python loops, and shot-based runs with mid-circuit
measurements share the deterministic unitary prefix across shots
instead of re-evolving every shot from |0...0>.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.circuit import QuantumCircuit
from ..core.gates import Gate
from . import backends as array_backends
from . import kernels


class SimulationError(RuntimeError):
    """Raised for invalid simulator operations."""


class Statevector:
    """Mutable n-qubit pure state."""

    #: route gates through the in-place kernel layer; set to False to
    #: fall back to the dense tensordot implementation (benchmarking).
    use_kernels = True

    def __init__(
        self,
        num_qubits: int,
        data: Optional[np.ndarray] = None,
        backend: kernels.BackendSpec = None,
    ):
        if num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        self.num_qubits = num_qubits
        #: the array backend executing this state's kernels (resolved
        #: once at construction; ``None`` picks the process default).
        self.backend = array_backends.resolve(backend)
        dim = 1 << num_qubits
        if data is None:
            self.data = self.backend.zeros(num_qubits)
            self.data[0] = 1.0
        else:
            data = self.backend.prepare(data)
            if data.shape != (dim,):
                raise ValueError(f"state must have length {dim}")
            self.data = data

    @classmethod
    def from_basis_state(cls, num_qubits: int, basis: int) -> "Statevector":
        """Computational basis state |basis>."""
        if not 0 <= basis < (1 << num_qubits):
            raise ValueError("basis state out of range")
        state = cls(num_qubits)
        state.data[0] = 0.0
        state.data[basis] = 1.0
        return state

    @classmethod
    def from_label(cls, label: str) -> "Statevector":
        """Build a product state from a label like ``'01+'``.

        Character i of the label describes qubit ``n-1-i`` (big-endian,
        as states are conventionally written), from {0, 1, +, -}.
        """
        num_qubits = len(label)
        state = cls(0)
        state.data = np.array([1.0], dtype=complex)
        vectors = {
            "0": np.array([1.0, 0.0], dtype=complex),
            "1": np.array([0.0, 1.0], dtype=complex),
            "+": np.array([1.0, 1.0], dtype=complex) / math.sqrt(2),
            "-": np.array([1.0, -1.0], dtype=complex) / math.sqrt(2),
        }
        for char in label:
            if char not in vectors:
                raise ValueError(f"unknown state label character {char!r}")
            state.data = np.kron(state.data, vectors[char])
        state.num_qubits = num_qubits
        return state

    def copy(self) -> "Statevector":
        out = Statevector(self.num_qubits, self.data, backend=self.backend)
        if "use_kernels" in self.__dict__:  # carry instance-level override
            out.use_kernels = self.use_kernels
        return out

    # ------------------------------------------------------------------
    # evolution
    # ------------------------------------------------------------------
    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Apply a ``2^k x 2^k`` matrix to the listed qubits.

        ``qubits[0]`` is the most-significant bit of the matrix's local
        index space (matching :meth:`Gate.matrix` ordering).
        """
        k = len(qubits)
        if matrix.shape != (1 << k, 1 << k):
            raise ValueError("matrix does not match qubit count")
        if self.use_kernels:
            kernels.apply_matrix(
                self.data, matrix, qubits, self.num_qubits,
                backend=self.backend,
            )
        else:
            self._apply_matrix_dense(matrix, qubits)

    def _apply_matrix_dense(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Seed implementation: tensordot + transpose + contiguous copy."""
        k = len(qubits)
        n = self.num_qubits
        tensor = self.data.reshape([2] * n)
        axes = [n - 1 - q for q in qubits]
        local = matrix.reshape([2] * (2 * k))
        tensor = np.tensordot(local, tensor, axes=(list(range(k, 2 * k)), axes))
        # restore axis ordering (same logic as core.unitary)
        remaining = [a for a in range(n) if a not in axes]
        out_index = {axis: i for i, axis in enumerate(axes)}
        rem_index = {axis: k + i for i, axis in enumerate(remaining)}
        perm = [
            out_index[a] if a in out_index else rem_index[a] for a in range(n)
        ]
        self.data = np.ascontiguousarray(np.transpose(tensor, perm)).reshape(-1)

    def apply_gate(self, gate: Gate) -> None:
        """Apply a unitary gate via its dedicated kernel when one exists."""
        if gate.name == "barrier" or gate.name == "id":
            return
        if not gate.is_unitary:
            raise SimulationError(
                f"apply_gate cannot handle non-unitary {gate.name!r}"
            )
        if self.use_kernels:
            if kernels.apply_gate(
                self.data, gate, self.num_qubits, backend=self.backend
            ):
                return
        else:
            if gate.base_name == "x" and not gate.params:
                self._apply_mcx(gate.controls, gate.targets[0])
                return
            if gate.base_name == "z" and not gate.params:
                self._apply_mcz(gate.controls, gate.targets[0])
                return
        self.apply_matrix(gate.matrix(), gate.qubits)

    def _apply_mcx(self, controls: Tuple[int, ...], target: int) -> None:
        """Seed permutation path for X/CX/CCX/MCX (dense fallback)."""
        indices = np.arange(self.data.size)
        mask = np.ones(self.data.size, dtype=bool)
        for ctl in controls:
            mask &= (indices >> ctl) & 1 == 1
        flipped = indices ^ (1 << target)
        new_data = self.data.copy()
        new_data[flipped[mask]] = self.data[indices[mask]]
        self.data = new_data

    def _apply_mcz(self, controls: Tuple[int, ...], target: int) -> None:
        """Seed diagonal path for Z/CZ/CCZ/MCZ (dense fallback)."""
        indices = np.arange(self.data.size)
        mask = (indices >> target) & 1 == 1
        for ctl in controls:
            mask &= (indices >> ctl) & 1 == 1
        self.data[mask] *= -1.0

    def evolve(self, circuit: QuantumCircuit, fuse: bool = True) -> "Statevector":
        """Apply all unitary gates of ``circuit`` in place; returns self.

        With ``fuse=True`` (the default) the circuit first runs through
        the kernel layer's gate-fusion pre-pass.
        """
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError("circuit width does not match state")
        for gate in circuit.gates:
            if gate.is_measurement or gate.name == "reset":
                raise SimulationError(
                    "evolve() only handles unitary circuits; "
                    "use StatevectorSimulator.run for measurements"
                )
        _evolve_gates(self, circuit.gates, fuse)
        return self

    # ------------------------------------------------------------------
    # inspection / measurement
    # ------------------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        return np.abs(self.data) ** 2

    def probability_of(self, basis: int) -> float:
        return float(abs(self.data[basis]) ** 2)

    def amplitude(self, basis: int) -> complex:
        return complex(self.data[basis])

    def norm(self) -> float:
        return float(np.linalg.norm(self.data))

    def fidelity(self, other: "Statevector") -> float:
        return float(abs(np.vdot(self.data, other.data)) ** 2)

    def equiv(self, other: "Statevector", atol: float = 1e-9) -> bool:
        """Equality up to global phase."""
        return self.fidelity(other) > 1.0 - atol

    def measure_qubit(
        self, qubit: int, rng: np.random.Generator
    ) -> int:
        """Projectively measure one qubit, collapsing the state."""
        view = self.data.reshape(-1, 2, 1 << qubit)
        p_one = float(np.sum(np.abs(view[:, 1, :]) ** 2))
        outcome = 1 if rng.random() < p_one else 0
        prob = p_one if outcome else 1.0 - p_one
        if prob <= 0.0:
            raise SimulationError("measurement of zero-probability branch")
        view[:, 1 - outcome, :] = 0.0
        self.data *= 1.0 / math.sqrt(prob)
        return outcome

    def reset_qubit(self, qubit: int, rng: np.random.Generator) -> None:
        """Measure and, if 1, flip back to |0>."""
        if self.measure_qubit(qubit, rng) == 1:
            kernels.apply_pauli(
                self.data, "x", qubit, self.num_qubits, backend=self.backend
            )

    def sample_counts(
        self,
        shots: int,
        rng: np.random.Generator,
        qubits: Optional[Sequence[int]] = None,
    ) -> Dict[int, int]:
        """Sample measurement outcomes without collapsing the state.

        Returns a histogram mapping the integer outcome (bit i of the
        key = measured value of ``qubits[i]``) to its frequency.  The
        histogram is produced by a vectorized bit-gather over the
        sampled outcomes rather than a per-shot loop.
        """
        probs = self.probabilities()
        outcomes = rng.choice(probs.size, size=shots, p=probs / probs.sum())
        if qubits is None:
            qubits = range(self.num_qubits)
        return _bit_gather_counts(outcomes, list(enumerate(qubits)))

    def __str__(self) -> str:
        terms = []
        for basis, amp in enumerate(self.data):
            if abs(amp) > 1e-9:
                label = format(basis, f"0{self.num_qubits}b")
                terms.append(f"({amp:.4g})|{label}>")
        return " + ".join(terms) if terms else "0"


def _bit_gather_counts(
    outcomes: np.ndarray, bit_map: Sequence[Tuple[int, int]]
) -> Dict[int, int]:
    """Histogram of remapped outcome bits, fully vectorized.

    ``bit_map`` lists (destination_bit, source_qubit) pairs: bit
    ``source_qubit`` of each sampled outcome lands at ``destination_bit``
    of the histogram key.
    """
    outcomes = np.asarray(outcomes, dtype=np.int64)
    keys = np.zeros(outcomes.shape, dtype=np.int64)
    for dest, src in bit_map:
        keys |= ((outcomes >> src) & 1) << dest
    values, counts = np.unique(keys, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


class StatevectorSimulator:
    """Shot-based simulator supporting mid-circuit measurement/reset."""

    def __init__(
        self,
        seed: Optional[int] = None,
        fusion: bool = True,
        backend: kernels.BackendSpec = None,
    ):
        self._seed = seed
        self._fusion = fusion
        self._backend = array_backends.resolve(backend)

    def _fresh_state(self, num_qubits: int) -> "Statevector":
        """A |0..0> state on this simulator's array backend."""
        return Statevector(num_qubits, backend=self._backend)

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1,
        initial_state: Optional[Statevector] = None,
    ) -> "SimulationResult":
        """Execute ``circuit`` for ``shots`` repetitions.

        If the circuit's measurements are all terminal, a single state
        evolution is sampled ``shots`` times; otherwise the unitary
        prefix before the first measurement/reset is evolved once and
        shared, and only the remainder is re-simulated per shot.
        """
        rng = np.random.default_rng(self._seed)
        if not circuit.has_measurements():
            state = initial_state.copy() if initial_state else (
                self._fresh_state(circuit.num_qubits)
            )
            state.evolve(circuit, fuse=self._fusion)
            return SimulationResult({}, state, shots)

        num_clbits = _measured_width(circuit)

        if _measurements_terminal(circuit):
            state = initial_state.copy() if initial_state else (
                self._fresh_state(circuit.num_qubits)
            )
            measure_map: List[Tuple[int, int]] = []
            prefix: List[Gate] = []
            for gate in circuit.gates:
                if gate.is_measurement:
                    measure_map.append((gate.cbits[0], gate.targets[0]))
                elif gate.name == "reset":
                    raise SimulationError("reset after measurement unsupported")
                else:
                    prefix.append(gate)
            _evolve_gates(state, prefix, self._fusion)
            probs = state.probabilities()
            outcomes = rng.choice(
                probs.size, size=shots, p=probs / probs.sum()
            )
            counts = _bit_gather_counts(outcomes, measure_map)
            return SimulationResult(counts, state, shots, num_clbits)

        # mid-circuit measurement: evolve the deterministic unitary
        # prefix once and re-simulate only the suffix per shot.
        split = _first_nonunitary_index(circuit)
        base = initial_state.copy() if initial_state else (
            self._fresh_state(circuit.num_qubits)
        )
        _evolve_gates(base, circuit.gates[:split], self._fusion)
        suffix = circuit.gates[split:]

        counts: Dict[int, int] = {}
        last_state = None
        for _ in range(shots):
            state = base.copy()
            creg = 0
            for gate in suffix:
                if gate.is_measurement:
                    bit = state.measure_qubit(gate.targets[0], rng)
                    clbit = gate.cbits[0]
                    creg = (creg & ~(1 << clbit)) | (bit << clbit)
                elif gate.name == "reset":
                    state.reset_qubit(gate.targets[0], rng)
                else:
                    state.apply_gate(gate)
            counts[creg] = counts.get(creg, 0) + 1
            last_state = state
        return SimulationResult(counts, last_state, shots, num_clbits)

    def statevector(self, circuit: QuantumCircuit) -> Statevector:
        """Evolve |0..0> through a unitary circuit and return the state."""
        state = self._fresh_state(circuit.num_qubits)
        return state.evolve(circuit, fuse=self._fusion)


def _evolve_gates(
    state: Statevector, gates: Sequence[Gate], fusion: bool
) -> None:
    """Apply a unitary gate list in place (fused when enabled)."""
    if state.use_kernels:
        ops = kernels.compile_circuit(gates, fuse=fusion)
        kernels.apply_ops(
            state.data, ops, state.num_qubits, backend=state.backend
        )
    else:
        for gate in gates:
            state.apply_gate(gate)


def evolve_batch(
    circuit: QuantumCircuit,
    states: np.ndarray,
    fuse: bool = True,
    backend: kernels.BackendSpec = None,
) -> np.ndarray:
    """Evolve a batch of states through a unitary circuit in place.

    The batch is one array of shape ``(2**n, b...)`` — column ``i`` of
    the trailing axes is an independent state — and every gate sweeps
    the whole batch through the array backend's vectorized batch axis,
    which is how multi-shot and noise-trajectory simulation amortize
    gate dispatch across shots.

    Args:
        circuit: a measurement-free circuit of matching width.
        states: the complex state batch, modified in place.
        fuse: run the gate-fusion pre-pass (default).
        backend: optional array backend (name, instance, or ``None``
            for the process default).

    Returns:
        The evolved ``states`` array (the same object).

    Raises:
        SimulationError: for width mismatches or non-unitary gates.
    """
    if kernels.infer_num_qubits(states) != circuit.num_qubits:
        raise SimulationError("circuit width does not match state batch")
    for gate in circuit.gates:
        if gate.is_measurement or gate.name == "reset":
            raise SimulationError(
                "evolve_batch() only handles unitary circuits"
            )
    ops = kernels.compile_circuit(circuit.gates, fuse=fuse)
    kernels.apply_ops(states, ops, circuit.num_qubits, backend=backend)
    return states


def _first_nonunitary_index(circuit: QuantumCircuit) -> int:
    """Index of the first measurement/reset gate."""
    for i, gate in enumerate(circuit.gates):
        if gate.is_measurement or gate.name == "reset":
            return i
    return len(circuit.gates)


def _measured_width(circuit: QuantumCircuit) -> int:
    """Histogram bit-width of a circuit's measured classical register.

    The declared classical register width wins (a 3-clbit circuit
    formats 3-character bitstrings even if only clbit 0 is measured);
    circuits that never declared clbits fall back to the highest
    measured bit.
    """
    if circuit.num_clbits:
        return circuit.num_clbits
    bits = [g.cbits[0] for g in circuit.gates if g.is_measurement]
    return (max(bits) + 1) if bits else 1


def _measurements_terminal(circuit: QuantumCircuit) -> bool:
    """True if no unitary gate follows a measurement on any qubit."""
    measured = set()
    for gate in circuit.gates:
        if gate.is_measurement:
            measured.add(gate.targets[0])
        elif gate.name == "barrier":
            continue
        else:
            if any(q in measured for q in gate.qubits):
                return False
    return True


class SimulationResult:
    """Counts + final state from a simulator run."""

    def __init__(
        self,
        counts: Dict[int, int],
        statevector: Optional[Statevector],
        shots: int,
        num_clbits: Optional[int] = None,
    ):
        self.counts = counts
        self.final_state = statevector
        self.shots = shots
        #: width (in bits) of the measured classical register, when the
        #: producing backend knows it; used for bitstring formatting.
        self.num_clbits = num_clbits

    def counts_by_bitstring(self, width: Optional[int] = None) -> Dict[str, int]:
        """Counts keyed by bitstrings (most-significant bit first).

        The width is, in order of preference: the explicit ``width``
        argument, the measured classical register width recorded by the
        backend, or the widest observed outcome / final-state width.
        """
        if width is None:
            width = self.num_clbits
        if width is None:
            width = max(
                (key.bit_length() for key in self.counts), default=1
            )
            if self.final_state is not None:
                width = max(width, self.final_state.num_qubits)
        return {
            format(key, f"0{width}b"): value
            for key, value in sorted(self.counts.items())
        }

    def most_frequent(self) -> int:
        if not self.counts:
            raise SimulationError("no measurement results recorded")
        return max(self.counts, key=lambda k: self.counts[k])

    def probability(self, outcome: int) -> float:
        return self.counts.get(outcome, 0) / self.shots

"""Noisy shot-based backend — the Monte-Carlo trajectory sampler.

The paper runs the 4-qubit hidden-shift circuit on the IBM QE chip
(Fig. 6): 3 runs x 1024 shots, recovering the correct shift with
average probability ~0.63.  Real hardware is not available here, so
this module samples noisy statevector trajectories:

* after every gate, each touched qubit suffers a depolarizing error
  (random Pauli) with a per-gate-class probability;
* measurement results are flipped with a readout-error probability.

The error rates come from the shared
:class:`~repro.engines.noise.NoiseModel` (one home for the 2017/2018
IBM QE5 calibration numbers — 1q ~1.5e-3, 2q ~3.5e-2, readout ~4e-2).
Those rates reproduce the *shape* of Fig. 6: the correct outcome
dominates at well under 1.0 probability, with a broad error floor over
the other basis states.  The exact counterpart is the
``density_matrix`` engine (:mod:`repro.engines.density_matrix`), which
evolves the trajectory average of this sampler as a full density
matrix — same depolarizing convention, no sampling error.

Importing ``NoiseModel`` from this module still works but warns once:
the dataclass now lives in :mod:`repro.engines.noise` (import it from
there, or from :mod:`repro.simulator`, which re-exports it silently).
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional

import numpy as np

from ..core.circuit import QuantumCircuit
from ..engines.noise import NoiseModel as _NoiseModel
from . import backends as array_backends
from . import kernels
from .statevector import SimulationResult, Statevector, _measured_width

_PAULIS = ("x", "y", "z")

_DEPRECATED_WARNED = False


def __getattr__(name: str):
    """Warn once when the relocated ``NoiseModel`` is pulled from here."""
    if name == "NoiseModel":
        global _DEPRECATED_WARNED
        if not _DEPRECATED_WARNED:
            _DEPRECATED_WARNED = True
            warnings.warn(
                "repro.simulator.noise.NoiseModel moved to "
                "repro.engines.noise (also re-exported by repro.simulator "
                "and repro.engines); this alias will be removed",
                DeprecationWarning,
                stacklevel=2,
            )
        return _NoiseModel
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class NoisyBackend:
    """Monte-Carlo statevector simulator with Pauli/readout noise.

    Each shot evolves a fresh statevector; after every unitary gate each
    touched qubit is hit by a uniformly random Pauli with the model's
    per-class probability, and measured bits are flipped with
    ``p_meas``.  The RNG is seeded for reproducible experiments.
    """

    def __init__(
        self,
        noise_model: Optional[_NoiseModel] = None,
        seed: Optional[int] = None,
        backend=None,
    ):
        self.noise_model = noise_model or _NoiseModel.ibm_qe_2018()
        self._seed = seed
        self._array_backend = backend

    def run(self, circuit: QuantumCircuit, shots: int = 1024) -> SimulationResult:
        """Execute ``circuit`` with noise for ``shots`` repetitions.

        Gate application goes through the in-place kernel layer
        (:mod:`repro.simulator.kernels`); per-gate error rates are
        looked up once per circuit rather than once per shot, and the
        injected Pauli errors skip Gate construction entirely.  No gate
        fusion happens here — the noise model is defined per physical
        gate, so the gate sequence must be executed verbatim.
        """
        rng = np.random.default_rng(self._seed)
        counts: Dict[int, int] = {}
        model = self.noise_model
        num_qubits = circuit.num_qubits
        gates = [g for g in circuit.gates if g.name != "barrier"]
        error_rates = [
            0.0 if g.is_measurement or g.name == "reset" else model.gate_error(g)
            for g in gates
        ]
        for _ in range(shots):
            state = Statevector(num_qubits, backend=self._array_backend)
            creg = 0
            for gate, p_err in zip(gates, error_rates):
                if gate.is_measurement:
                    bit = state.measure_qubit(gate.targets[0], rng)
                    if rng.random() < model.p_meas:
                        bit ^= 1
                    clbit = gate.cbits[0]
                    creg = (creg & ~(1 << clbit)) | (bit << clbit)
                    continue
                if gate.name == "reset":
                    state.reset_qubit(gate.targets[0], rng)
                    continue
                state.apply_gate(gate)
                if p_err > 0.0:
                    for qubit in gate.qubits:
                        if rng.random() < p_err:
                            pauli = _PAULIS[rng.integers(0, 3)]
                            kernels.apply_pauli(
                                state.data, pauli, qubit, num_qubits,
                                backend=state.backend,
                            )
            counts[creg] = counts.get(creg, 0) + 1
        return SimulationResult(counts, None, shots, _measured_width(circuit))

    def run_batched(
        self, circuit: QuantumCircuit, shots: int = 1024
    ) -> SimulationResult:
        """Vectorized counterpart of :meth:`run`: all shots in one batch.

        The ``shots`` trajectories evolve together as one
        ``(2**n, shots)`` array on the backend's batch axis: every gate
        is a single batched kernel call, sampled Pauli errors are
        scattered onto only the affected trajectory columns, and
        measurements collapse all columns at once.  Results are
        statistically identical to :meth:`run` but a seed does **not**
        reproduce the looped sampler's exact counts — the vectorized
        sampler draws its random numbers in a different order.
        """
        rng = np.random.default_rng(self._seed)
        model = self.noise_model
        num_qubits = circuit.num_qubits
        backend = array_backends.resolve(self._array_backend)
        gates = [g for g in circuit.gates if g.name != "barrier"]
        error_rates = [
            0.0 if g.is_measurement or g.name == "reset" else model.gate_error(g)
            for g in gates
        ]
        state = backend.zeros(num_qubits, batch=(shots,))
        state[0, :] = 1.0
        creg = np.zeros(shots, dtype=np.int64)
        for gate, p_err in zip(gates, error_rates):
            if gate.is_measurement:
                bits = _measure_batch(state, num_qubits, gate.targets[0], rng)
                if model.p_meas > 0.0:
                    bits ^= rng.random(shots) < model.p_meas
                clbit = gate.cbits[0]
                creg = (creg & ~(1 << clbit)) | (
                    bits.astype(np.int64) << clbit
                )
                continue
            if gate.name == "reset":
                _reset_batch(state, num_qubits, gate.targets[0], rng)
                continue
            if not kernels.apply_gate(state, gate, num_qubits, backend=backend):
                kernels.apply_matrix(
                    state, gate.matrix(), gate.qubits, num_qubits,
                    backend=backend,
                )
            if p_err > 0.0:
                for qubit in gate.qubits:
                    hit = rng.random(shots) < p_err
                    if not hit.any():
                        continue
                    choice = rng.integers(0, 3, shots)
                    for pidx, pauli in enumerate(_PAULIS):
                        cols = np.nonzero(hit & (choice == pidx))[0]
                        if cols.size == 0:
                            continue
                        sub = np.ascontiguousarray(state[:, cols])
                        kernels.apply_pauli(
                            sub, pauli, qubit, num_qubits, backend=backend
                        )
                        state[:, cols] = sub
        counts: Dict[int, int] = {}
        for value, count in zip(*np.unique(creg, return_counts=True)):
            counts[int(value)] = int(count)
        return SimulationResult(counts, None, shots, _measured_width(circuit))

    def run_repeated(
        self, circuit: QuantumCircuit, shots: int, repetitions: int
    ):
        """Repeat a shots-run ``repetitions`` times (paper: 3 x 1024).

        Returns (mean probabilities, std deviations) as arrays indexed
        by outcome, mirroring the error bars of Fig. 6.
        """
        dim = 1 << _measured_width(circuit)
        probs = np.zeros((repetitions, dim))
        for rep in range(repetitions):
            # derive a distinct child seed per repetition
            backend = NoisyBackend(
                self.noise_model,
                None if self._seed is None else self._seed + rep,
            )
            result = backend.run(circuit, shots)
            for outcome, count in result.counts.items():
                probs[rep, outcome] = count / shots
        return probs.mean(axis=0), probs.std(axis=0)


def _measure_batch(
    state: np.ndarray, num_qubits: int, qubit: int, rng
) -> np.ndarray:
    """Measure ``qubit`` on every batch column, collapsing in place.

    Returns the boolean outcome per column.  Columns keep unit norm;
    degenerate branches (probability ~0) are never selected, so the
    clipped divisors below only guard against 0/0.
    """
    t = state.reshape((2,) * num_qubits + (-1,))
    axis = num_qubits - 1 - qubit
    tm = np.moveaxis(t, axis, 0)  # view: (2, ..., shots)
    p1 = np.abs(tm[1].reshape(-1, state.shape[-1])) ** 2
    p1 = np.minimum(p1.sum(axis=0), 1.0)
    bits = rng.random(p1.shape[0]) < p1
    inv0 = np.where(bits, 0.0, 1.0 / np.sqrt(np.maximum(1.0 - p1, 1e-300)))
    inv1 = np.where(bits, 1.0 / np.sqrt(np.maximum(p1, 1e-300)), 0.0)
    tm[0] *= inv0
    tm[1] *= inv1
    return bits


def _reset_batch(
    state: np.ndarray, num_qubits: int, qubit: int, rng
) -> None:
    """Reset ``qubit`` to |0> on every batch column (measure + flip)."""
    bits = _measure_batch(state, num_qubits, qubit, rng)
    cols = np.nonzero(bits)[0]
    if cols.size:
        t = state.reshape((2,) * num_qubits + (-1,))
        tm = np.moveaxis(t, num_qubits - 1 - qubit, 0)
        tm[0][..., cols] = tm[1][..., cols]
        tm[1][..., cols] = 0.0

"""Noisy shot-based backend — the IBM Quantum Experience substitute.

The paper runs the 4-qubit hidden-shift circuit on the IBM QE chip
(Fig. 6): 3 runs x 1024 shots, recovering the correct shift with
average probability ~0.63.  Real hardware is not available here, so
this module provides a density-free Monte-Carlo noise simulator:

* after every gate, each touched qubit suffers a depolarizing error
  (random Pauli) with a per-gate-class probability;
* measurement results are flipped with a readout-error probability.

Default error rates follow published calibration data of the 2017/2018
IBM QE 5-qubit devices (1q ~1.5e-3, 2q ~3.5e-2, readout ~4e-2).  Those
rates reproduce the *shape* of Fig. 6: the correct outcome dominates at
well under 1.0 probability, with a broad error floor over the other
basis states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core.circuit import QuantumCircuit
from ..core.gates import Gate
from . import kernels
from .statevector import SimulationResult, Statevector, _measured_width


@dataclass(frozen=True)
class NoiseModel:
    """Per-gate-class depolarizing + readout error probabilities."""

    p1: float = 0.0015      # single-qubit gate depolarizing probability
    p2: float = 0.035       # two-qubit gate depolarizing probability (per qubit)
    p_meas: float = 0.04    # readout bit-flip probability
    p_multi: float = 0.06   # >2-qubit gate depolarizing probability (per qubit)

    def gate_error(self, gate: Gate) -> float:
        if gate.num_qubits == 1:
            return self.p1
        if gate.num_qubits == 2:
            return self.p2
        return self.p_multi

    @classmethod
    def ibm_qe_2018(cls) -> "NoiseModel":
        """Calibration representative of the early-2018 IBM QE chips."""
        return cls(p1=0.0015, p2=0.035, p_meas=0.04, p_multi=0.06)

    @classmethod
    def noiseless(cls) -> "NoiseModel":
        return cls(p1=0.0, p2=0.0, p_meas=0.0, p_multi=0.0)


_PAULIS = ("x", "y", "z")


class NoisyBackend:
    """Monte-Carlo statevector simulator with Pauli/readout noise.

    Each shot evolves a fresh statevector; after every unitary gate each
    touched qubit is hit by a uniformly random Pauli with the model's
    per-class probability, and measured bits are flipped with
    ``p_meas``.  The RNG is seeded for reproducible experiments.
    """

    def __init__(
        self,
        noise_model: Optional[NoiseModel] = None,
        seed: Optional[int] = None,
    ):
        self.noise_model = noise_model or NoiseModel.ibm_qe_2018()
        self._seed = seed

    def run(self, circuit: QuantumCircuit, shots: int = 1024) -> SimulationResult:
        """Execute ``circuit`` with noise for ``shots`` repetitions.

        Gate application goes through the in-place kernel layer
        (:mod:`repro.simulator.kernels`); per-gate error rates are
        looked up once per circuit rather than once per shot, and the
        injected Pauli errors skip Gate construction entirely.  No gate
        fusion happens here — the noise model is defined per physical
        gate, so the gate sequence must be executed verbatim.
        """
        rng = np.random.default_rng(self._seed)
        counts: Dict[int, int] = {}
        model = self.noise_model
        num_qubits = circuit.num_qubits
        gates = [g for g in circuit.gates if g.name != "barrier"]
        error_rates = [
            0.0 if g.is_measurement or g.name == "reset" else model.gate_error(g)
            for g in gates
        ]
        for _ in range(shots):
            state = Statevector(num_qubits)
            creg = 0
            for gate, p_err in zip(gates, error_rates):
                if gate.is_measurement:
                    bit = state.measure_qubit(gate.targets[0], rng)
                    if rng.random() < model.p_meas:
                        bit ^= 1
                    clbit = gate.cbits[0]
                    creg = (creg & ~(1 << clbit)) | (bit << clbit)
                    continue
                if gate.name == "reset":
                    state.reset_qubit(gate.targets[0], rng)
                    continue
                state.apply_gate(gate)
                if p_err > 0.0:
                    for qubit in gate.qubits:
                        if rng.random() < p_err:
                            pauli = _PAULIS[rng.integers(0, 3)]
                            kernels.apply_pauli(
                                state.data, pauli, qubit, num_qubits
                            )
            counts[creg] = counts.get(creg, 0) + 1
        return SimulationResult(counts, None, shots, _measured_width(circuit))

    def run_repeated(
        self, circuit: QuantumCircuit, shots: int, repetitions: int
    ):
        """Repeat a shots-run ``repetitions`` times (paper: 3 x 1024).

        Returns (mean probabilities, std deviations) as arrays indexed
        by outcome, mirroring the error bars of Fig. 6.
        """
        dim = 1 << _measured_width(circuit)
        probs = np.zeros((repetitions, dim))
        for rep in range(repetitions):
            # derive a distinct child seed per repetition
            backend = NoisyBackend(
                self.noise_model,
                None if self._seed is None else self._seed + rep,
            )
            result = backend.run(circuit, shots)
            for outcome, count in result.counts.items():
                probs[rep, outcome] = count / shots
        return probs.mean(axis=0), probs.std(axis=0)

"""Noisy shot-based backend — the Monte-Carlo trajectory sampler.

The paper runs the 4-qubit hidden-shift circuit on the IBM QE chip
(Fig. 6): 3 runs x 1024 shots, recovering the correct shift with
average probability ~0.63.  Real hardware is not available here, so
this module samples noisy statevector trajectories:

* after every gate, each touched qubit suffers a depolarizing error
  (random Pauli) with a per-gate-class probability;
* measurement results are flipped with a readout-error probability.

The error rates come from the shared
:class:`~repro.engines.noise.NoiseModel` (one home for the 2017/2018
IBM QE5 calibration numbers — 1q ~1.5e-3, 2q ~3.5e-2, readout ~4e-2).
Those rates reproduce the *shape* of Fig. 6: the correct outcome
dominates at well under 1.0 probability, with a broad error floor over
the other basis states.  The exact counterpart is the
``density_matrix`` engine (:mod:`repro.engines.density_matrix`), which
evolves the trajectory average of this sampler as a full density
matrix — same depolarizing convention, no sampling error.

Importing ``NoiseModel`` from this module still works but warns once:
the dataclass now lives in :mod:`repro.engines.noise` (import it from
there, or from :mod:`repro.simulator`, which re-exports it silently).
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional

import numpy as np

from ..core.circuit import QuantumCircuit
from ..engines.noise import NoiseModel as _NoiseModel
from . import kernels
from .statevector import SimulationResult, Statevector, _measured_width

_PAULIS = ("x", "y", "z")

_DEPRECATED_WARNED = False


def __getattr__(name: str):
    """Warn once when the relocated ``NoiseModel`` is pulled from here."""
    if name == "NoiseModel":
        global _DEPRECATED_WARNED
        if not _DEPRECATED_WARNED:
            _DEPRECATED_WARNED = True
            warnings.warn(
                "repro.simulator.noise.NoiseModel moved to "
                "repro.engines.noise (also re-exported by repro.simulator "
                "and repro.engines); this alias will be removed",
                DeprecationWarning,
                stacklevel=2,
            )
        return _NoiseModel
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class NoisyBackend:
    """Monte-Carlo statevector simulator with Pauli/readout noise.

    Each shot evolves a fresh statevector; after every unitary gate each
    touched qubit is hit by a uniformly random Pauli with the model's
    per-class probability, and measured bits are flipped with
    ``p_meas``.  The RNG is seeded for reproducible experiments.
    """

    def __init__(
        self,
        noise_model: Optional[_NoiseModel] = None,
        seed: Optional[int] = None,
    ):
        self.noise_model = noise_model or _NoiseModel.ibm_qe_2018()
        self._seed = seed

    def run(self, circuit: QuantumCircuit, shots: int = 1024) -> SimulationResult:
        """Execute ``circuit`` with noise for ``shots`` repetitions.

        Gate application goes through the in-place kernel layer
        (:mod:`repro.simulator.kernels`); per-gate error rates are
        looked up once per circuit rather than once per shot, and the
        injected Pauli errors skip Gate construction entirely.  No gate
        fusion happens here — the noise model is defined per physical
        gate, so the gate sequence must be executed verbatim.
        """
        rng = np.random.default_rng(self._seed)
        counts: Dict[int, int] = {}
        model = self.noise_model
        num_qubits = circuit.num_qubits
        gates = [g for g in circuit.gates if g.name != "barrier"]
        error_rates = [
            0.0 if g.is_measurement or g.name == "reset" else model.gate_error(g)
            for g in gates
        ]
        for _ in range(shots):
            state = Statevector(num_qubits)
            creg = 0
            for gate, p_err in zip(gates, error_rates):
                if gate.is_measurement:
                    bit = state.measure_qubit(gate.targets[0], rng)
                    if rng.random() < model.p_meas:
                        bit ^= 1
                    clbit = gate.cbits[0]
                    creg = (creg & ~(1 << clbit)) | (bit << clbit)
                    continue
                if gate.name == "reset":
                    state.reset_qubit(gate.targets[0], rng)
                    continue
                state.apply_gate(gate)
                if p_err > 0.0:
                    for qubit in gate.qubits:
                        if rng.random() < p_err:
                            pauli = _PAULIS[rng.integers(0, 3)]
                            kernels.apply_pauli(
                                state.data, pauli, qubit, num_qubits
                            )
            counts[creg] = counts.get(creg, 0) + 1
        return SimulationResult(counts, None, shots, _measured_width(circuit))

    def run_repeated(
        self, circuit: QuantumCircuit, shots: int, repetitions: int
    ):
        """Repeat a shots-run ``repetitions`` times (paper: 3 x 1024).

        Returns (mean probabilities, std deviations) as arrays indexed
        by outcome, mirroring the error bars of Fig. 6.
        """
        dim = 1 << _measured_width(circuit)
        probs = np.zeros((repetitions, dim))
        for rep in range(repetitions):
            # derive a distinct child seed per repetition
            backend = NoisyBackend(
                self.noise_model,
                None if self._seed is None else self._seed + rep,
            )
            result = backend.run(circuit, shots)
            for outcome, count in result.counts.items():
                probs[rep, outcome] = count / shots
        return probs.mean(axis=0), probs.std(axis=0)

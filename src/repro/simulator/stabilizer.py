"""Stabilizer (CHP tableau) simulator over bit-packed uint64 planes.

Implements the Aaronson–Gottesman tableau algorithm so Clifford
circuits — the dominant part of mapped hidden-shift circuits, cf. the
Bravyi–Gosset reference [72] in the paper — can be simulated in
polynomial time.  Supports H, S, CNOT (and the gates reducible to them:
X, Y, Z, S', CZ, SWAP, SX) plus projective measurement.

The tableau holds 2n+1 rows (n destabilizers, n stabilizers, one
scratch row), exactly as in "Improved simulation of stabilizer
circuits" (Aaronson & Gottesman, 2004).  Since PR 10 the bit matrices
are packed: each row's n X-bits (and Z-bits) live in ``ceil(n/64)``
little-endian ``uint64`` words (bit ``j`` of word ``w`` is qubit
``64*w + j``), and the phase column is a ``uint64`` 0/1 vector so gate
updates XOR into it without dtype casts.  Gate updates stay whole-row
vectorized (one strided op over all 2n+1 rows), while ``_rowsum`` —
the hot loop of measurement — multiplies entire packed rows at once
and accumulates the Pauli phase with popcount arithmetic instead of a
per-column Python loop.  The public API and the RNG stream (exactly
one ``rng.integers(0, 2)`` draw per random measurement, in tableau
order) are unchanged from the dense implementation, which survives as
``_tableau_reference.ReferenceStabilizerState`` for differential
testing; the packed layout itself is documented in
``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.circuit import QuantumCircuit
from ..core.gates import Gate

_ONE = np.uint64(1)
_ZERO = np.uint64(0)

#: Pauli letter for each (x + 2z) code, indexable by a uint8 array.
_PAULI_LETTERS = np.array(["I", "X", "Z", "Y"])


class StabilizerError(RuntimeError):
    """Raised when a non-Clifford gate reaches the stabilizer engine."""


class StabilizerState:
    """CHP tableau over ``num_qubits`` qubits, initialized to |0..0>.

    Internally the X/Z bit matrices are row-packed ``uint64`` arrays
    (``self.xs`` / ``self.zs``, shape ``(2n+1, ceil(n/64))``) plus the
    ``uint64`` phase column ``self.r``.  The historical dense views are
    still available read-only through the ``x`` / ``z`` properties.
    """

    def __init__(self, num_qubits: int):
        self.num_qubits = num_qubits
        n = num_qubits
        words = (n + 63) >> 6
        self._words = words
        # rows 0..n-1: destabilizers; rows n..2n-1: stabilizers; row 2n: scratch
        self.xs = np.zeros((2 * n + 1, words), dtype=np.uint64)
        self.zs = np.zeros((2 * n + 1, words), dtype=np.uint64)
        self.r = np.zeros(2 * n + 1, dtype=np.uint64)
        for i in range(n):
            self.xs[i, i >> 6] = _ONE << np.uint64(i & 63)      # destabilizer X_i
            self.zs[n + i, i >> 6] = _ONE << np.uint64(i & 63)  # stabilizer Z_i

    def copy(self) -> "StabilizerState":
        out = StabilizerState.__new__(StabilizerState)
        out.num_qubits = self.num_qubits
        out._words = self._words
        out.xs = self.xs.copy()
        out.zs = self.zs.copy()
        out.r = self.r.copy()
        return out

    # ------------------------------------------------------------------
    # packed-layout helpers
    # ------------------------------------------------------------------
    def _col(self, planes: np.ndarray, q: int) -> np.ndarray:
        """0/1 ``uint64`` column: bit ``q`` of every row of ``planes``."""
        return (planes[:, q >> 6] >> np.uint64(q & 63)) & _ONE

    def _unpack(self, planes: np.ndarray) -> np.ndarray:
        """Expand packed rows to the dense ``(rows, n)`` uint8 layout."""
        bits = np.unpackbits(
            planes.view(np.uint8).reshape(planes.shape[0], -1),
            axis=1,
            bitorder="little",
        )
        return bits[:, : self.num_qubits]

    @property
    def x(self) -> np.ndarray:
        """Dense ``(2n+1, n)`` uint8 X bit matrix (read-only unpacking)."""
        return self._unpack(self.xs)

    @property
    def z(self) -> np.ndarray:
        """Dense ``(2n+1, n)`` uint8 Z bit matrix (read-only unpacking)."""
        return self._unpack(self.zs)

    # ------------------------------------------------------------------
    # Clifford generators
    # ------------------------------------------------------------------
    def apply_h(self, q: int) -> None:
        w, b = q >> 6, np.uint64(q & 63)
        xq = (self.xs[:, w] >> b) & _ONE
        zq = (self.zs[:, w] >> b) & _ONE
        self.r ^= xq & zq
        diff = (xq ^ zq) << b
        self.xs[:, w] ^= diff
        self.zs[:, w] ^= diff

    def apply_s(self, q: int) -> None:
        w, b = q >> 6, np.uint64(q & 63)
        xq = (self.xs[:, w] >> b) & _ONE
        self.r ^= xq & ((self.zs[:, w] >> b) & _ONE)
        self.zs[:, w] ^= xq << b

    def apply_cx(self, control: int, target: int) -> None:
        wc, bc = control >> 6, np.uint64(control & 63)
        wt, bt = target >> 6, np.uint64(target & 63)
        xc = (self.xs[:, wc] >> bc) & _ONE
        zc = (self.zs[:, wc] >> bc) & _ONE
        xt = (self.xs[:, wt] >> bt) & _ONE
        zt = (self.zs[:, wt] >> bt) & _ONE
        self.r ^= xc & zt & (xt ^ zc ^ _ONE)
        self.xs[:, wt] ^= xc << bt
        self.zs[:, wc] ^= zt << bc

    # derived gates ------------------------------------------------------
    # The phase updates below are the algebraic collapse of the legacy
    # H/S/CX compositions, so the tableau evolves bit-identically to the
    # reference implementation (asserted by the packed differential suite).
    def apply_sdg(self, q: int) -> None:
        w, b = q >> 6, np.uint64(q & 63)
        xq = (self.xs[:, w] >> b) & _ONE
        self.r ^= xq & (((self.zs[:, w] >> b) & _ONE) ^ _ONE)
        self.zs[:, w] ^= xq << b

    def apply_x(self, q: int) -> None:
        # X = H Z H; anticommutes with the Z/Y rows
        self.r ^= self._col(self.zs, q)

    def apply_z(self, q: int) -> None:
        # Z = S S; anticommutes with the X/Y rows
        self.r ^= self._col(self.xs, q)

    def apply_y(self, q: int) -> None:
        # Y = i X Z; global phase is untracked in the tableau
        self.r ^= self._col(self.xs, q) ^ self._col(self.zs, q)

    def apply_cz(self, control: int, target: int) -> None:
        # CZ = H(t) CX H(t), collapsed to its symmetric phase rule
        wc, bc = control >> 6, np.uint64(control & 63)
        wt, bt = target >> 6, np.uint64(target & 63)
        xc = (self.xs[:, wc] >> bc) & _ONE
        zc = (self.zs[:, wc] >> bc) & _ONE
        xt = (self.xs[:, wt] >> bt) & _ONE
        zt = (self.zs[:, wt] >> bt) & _ONE
        self.r ^= xc & xt & (zc ^ zt)
        self.zs[:, wt] ^= xc << bt
        self.zs[:, wc] ^= xt << bc

    def apply_cy(self, control: int, target: int) -> None:
        self.apply_sdg(target)
        self.apply_cx(control, target)
        self.apply_s(target)

    def apply_swap(self, a: int, b: int) -> None:
        self.apply_cx(a, b)
        self.apply_cx(b, a)
        self.apply_cx(a, b)

    def apply_sx(self, q: int) -> None:
        # sqrt(X) = H S H (up to phase)
        self.apply_h(q)
        self.apply_s(q)
        self.apply_h(q)

    def apply_sxdg(self, q: int) -> None:
        self.apply_h(q)
        self.apply_sdg(q)
        self.apply_h(q)

    def apply_gate(self, gate: Gate) -> None:
        """Dispatch a Clifford gate onto the tableau."""
        name = gate.name
        if name in ("barrier", "id"):
            return
        handler = self._DISPATCH.get(name)
        if handler is None:
            raise StabilizerError(f"gate {name!r} is not Clifford")
        handler(self, gate)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def _rowsum(self, h: int, i: int) -> None:
        """Row h := row h * row i (Pauli group multiplication).

        The Aaronson–Gottesman ``g`` phase function is evaluated for all
        columns at once: the combinations contributing +1 and -1 become
        two bit masks over the packed words, and their popcounts give
        the net phase exponent.
        """
        x1, z1 = self.xs[i], self.zs[i]
        x2, z2 = self.xs[h], self.zs[h]
        # g = +1 on {X*Y, Y*Z, Z*X}; g = -1 on {X*Z, Y*X, Z*Y}
        plus = (x1 & ~z1 & x2 & z2) | (x1 & z1 & ~x2 & z2) | (~x1 & z1 & x2 & ~z2)
        minus = (x1 & ~z1 & ~x2 & z2) | (x1 & z1 & x2 & ~z2) | (~x1 & z1 & x2 & z2)
        phase = (
            2 * int(self.r[h])
            + 2 * int(self.r[i])
            + int(np.bitwise_count(plus).sum(dtype=np.int64))
            - int(np.bitwise_count(minus).sum(dtype=np.int64))
        )
        self.r[h] = (phase % 4) // 2
        self.xs[h] ^= x1
        self.zs[h] ^= z1

    def _rowsum_many(self, rows: np.ndarray, i: int) -> None:
        """Batched ``_rowsum``: every row in ``rows`` times row ``i``.

        Valid because the multiplier row ``i`` is never in ``rows``, so
        the updates are independent and can run as one vectorized sweep.
        """
        x1, z1 = self.xs[i], self.zs[i]
        x2, z2 = self.xs[rows], self.zs[rows]
        plus = (x1 & ~z1 & x2 & z2) | (x1 & z1 & ~x2 & z2) | (~x1 & z1 & x2 & ~z2)
        minus = (x1 & ~z1 & ~x2 & z2) | (x1 & z1 & x2 & ~z2) | (~x1 & z1 & x2 & z2)
        phase = (
            2 * self.r[rows].astype(np.int64)
            + 2 * int(self.r[i])
            + np.bitwise_count(plus).sum(axis=1, dtype=np.int64)
            - np.bitwise_count(minus).sum(axis=1, dtype=np.int64)
        )
        self.r[rows] = ((phase % 4) // 2).astype(np.uint64)
        self.xs[rows] ^= x1
        self.zs[rows] ^= z1

    def measure(self, q: int, rng: np.random.Generator) -> int:
        """Measure qubit ``q`` in the Z basis, collapsing the tableau."""
        n = self.num_qubits
        xq = self._col(self.xs, q)
        # find a stabilizer anticommuting with Z_q
        anticommuting = np.nonzero(xq[n : 2 * n])[0]
        if anticommuting.size:
            # random outcome
            p = int(anticommuting[0]) + n
            others = np.nonzero(xq[: 2 * n])[0]
            others = others[others != p]
            if others.size:
                self._rowsum_many(others, p)
            self.xs[p - n] = self.xs[p]
            self.zs[p - n] = self.zs[p]
            self.r[p - n] = self.r[p]
            self.xs[p] = _ZERO
            self.zs[p] = _ZERO
            self.zs[p, q >> 6] = _ONE << np.uint64(q & 63)
            outcome = int(rng.integers(0, 2))
            self.r[p] = outcome
            return outcome
        # deterministic outcome: the product of the stabilizer rows
        # selected by the destabilizer X-bits.  The sequential scratch-row
        # rowsums collapse to one vectorized pass: a prefix-XOR gives the
        # partial product each row multiplies into, and because every
        # partial product is a stabilizer element (phase strictly ±1,
        # never ±i) the mod-4 reduction can be deferred to the end.
        scratch = 2 * n
        self.xs[scratch] = _ZERO
        self.zs[scratch] = _ZERO
        self.r[scratch] = _ZERO
        rows = np.nonzero(xq[:n])[0] + n
        if not rows.size:
            return 0
        x1, z1 = self.xs[rows], self.zs[rows]
        x2 = np.zeros_like(x1)
        z2 = np.zeros_like(z1)
        np.bitwise_xor.accumulate(x1[:-1], axis=0, out=x2[1:])
        np.bitwise_xor.accumulate(z1[:-1], axis=0, out=z2[1:])
        plus = (x1 & ~z1 & x2 & z2) | (x1 & z1 & ~x2 & z2) | (~x1 & z1 & x2 & ~z2)
        minus = (x1 & ~z1 & ~x2 & z2) | (x1 & z1 & x2 & ~z2) | (~x1 & z1 & x2 & z2)
        phase = (
            2 * int(self.r[rows].sum(dtype=np.int64))
            + int(np.bitwise_count(plus).sum(dtype=np.int64))
            - int(np.bitwise_count(minus).sum(dtype=np.int64))
        )
        outcome = (phase % 4) // 2
        # leave the accumulated product in the scratch row, as the
        # sequential implementation did
        self.xs[scratch] = x2[-1] ^ x1[-1]
        self.zs[scratch] = z2[-1] ^ z1[-1]
        self.r[scratch] = outcome
        return outcome

    def expectation_z(self, q: int) -> Optional[int]:
        """Deterministic Z_q value (0 or 1) or None if random."""
        n = self.num_qubits
        if np.any(self._col(self.xs, q)[n : 2 * n]):
            return None
        probe = self.copy()
        return probe.measure(q, np.random.default_rng(0))

    def stabilizer_strings(self) -> List[str]:
        """Human-readable stabilizer generators, e.g. ``+XZI``."""
        n = self.num_qubits
        xbits = self._unpack(self.xs[n : 2 * n])
        zbits = self._unpack(self.zs[n : 2 * n])
        letters = _PAULI_LETTERS[xbits + 2 * zbits]
        return [
            ("-" if self.r[n + i] else "+") + "".join(letters[i])
            for i in range(n)
        ]


def _dispatch_table() -> Dict[str, object]:
    """Gate-name -> bound-update table shared by every state instance."""
    return {
        "h": lambda s, g: s.apply_h(g.targets[0]),
        "s": lambda s, g: s.apply_s(g.targets[0]),
        "sdg": lambda s, g: s.apply_sdg(g.targets[0]),
        "x": lambda s, g: s.apply_x(g.targets[0]),
        "y": lambda s, g: s.apply_y(g.targets[0]),
        "z": lambda s, g: s.apply_z(g.targets[0]),
        "sx": lambda s, g: s.apply_sx(g.targets[0]),
        "sxdg": lambda s, g: s.apply_sxdg(g.targets[0]),
        "cx": lambda s, g: s.apply_cx(g.controls[0], g.targets[0]),
        "cy": lambda s, g: s.apply_cy(g.controls[0], g.targets[0]),
        "cz": lambda s, g: s.apply_cz(g.controls[0], g.targets[0]),
        "swap": lambda s, g: s.apply_swap(*g.targets),
    }


StabilizerState._DISPATCH = _dispatch_table()


class StabilizerSimulator:
    """Shot-based Clifford circuit simulator."""

    def __init__(self, seed: Optional[int] = None):
        self._seed = seed

    def run(self, circuit: QuantumCircuit, shots: int = 1) -> Dict[int, int]:
        """Execute a Clifford circuit; returns classical-register counts."""
        rng = np.random.default_rng(self._seed)
        counts: Dict[int, int] = {}
        for _ in range(shots):
            state = StabilizerState(circuit.num_qubits)
            creg = 0
            for gate in circuit.gates:
                if gate.is_measurement:
                    bit = state.measure(gate.targets[0], rng)
                    creg = (creg & ~(1 << gate.cbits[0])) | (bit << gate.cbits[0])
                elif gate.name == "reset":
                    if state.measure(gate.targets[0], rng):
                        state.apply_x(gate.targets[0])
                else:
                    state.apply_gate(gate)
            counts[creg] = counts.get(creg, 0) + 1
        return counts

    def final_state(self, circuit: QuantumCircuit) -> StabilizerState:
        """Tableau after a measurement-free Clifford circuit."""
        state = StabilizerState(circuit.num_qubits)
        for gate in circuit.gates:
            if gate.is_measurement or gate.name == "reset":
                raise StabilizerError("final_state needs a unitary circuit")
            state.apply_gate(gate)
        return state

"""Simulation backends: statevector, stabilizer, noisy, resource counter."""

from .noise import NoiseModel, NoisyBackend
from .resources import ResourceCounter, ResourceEstimate
from .stabilizer import StabilizerSimulator, StabilizerState, StabilizerError
from .statevector import (
    SimulationError,
    SimulationResult,
    Statevector,
    StatevectorSimulator,
)

__all__ = [
    "NoiseModel",
    "NoisyBackend",
    "ResourceCounter",
    "ResourceEstimate",
    "StabilizerSimulator",
    "StabilizerState",
    "StabilizerError",
    "SimulationError",
    "SimulationResult",
    "Statevector",
    "StatevectorSimulator",
]

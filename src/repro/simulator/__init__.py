"""Simulation backends: statevector, stabilizer, noisy, resource counter.

The statevector, noisy, and dense-unitary paths all execute gates via
the shared in-place kernel layer in :mod:`repro.simulator.kernels`.
"""

from . import kernels
from ..engines.noise import NoiseModel  # canonical home since PR 8
from .noise import NoisyBackend
from .resources import ResourceCounter, ResourceEstimate
from .stabilizer import StabilizerSimulator, StabilizerState, StabilizerError
from .statevector import (
    SimulationError,
    SimulationResult,
    Statevector,
    StatevectorSimulator,
)

__all__ = [
    "kernels",
    "NoiseModel",
    "NoisyBackend",
    "ResourceCounter",
    "ResourceEstimate",
    "StabilizerSimulator",
    "StabilizerState",
    "StabilizerError",
    "SimulationError",
    "SimulationResult",
    "Statevector",
    "StatevectorSimulator",
]

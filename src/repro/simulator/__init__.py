"""Simulation backends: statevector, stabilizer, noisy, resource counter.

The statevector, noisy, and dense-unitary paths all execute gates via
the shared in-place kernel layer in :mod:`repro.simulator.kernels`,
which in turn dispatches every array sweep to a pluggable
:mod:`repro.simulator.backends` array backend (NumPy by default, an
optional numba JIT accelerator when installed).
"""

from . import backends
from . import kernels
from ..engines.noise import NoiseModel  # canonical home since PR 8
from .backends import ArrayBackend, BackendError, BackendUnavailable
from .noise import NoisyBackend
from .resources import ResourceCounter, ResourceEstimate
from .stabilizer import StabilizerSimulator, StabilizerState, StabilizerError
from .statevector import (
    SimulationError,
    SimulationResult,
    Statevector,
    StatevectorSimulator,
    evolve_batch,
)

__all__ = [
    "backends",
    "kernels",
    "ArrayBackend",
    "BackendError",
    "BackendUnavailable",
    "evolve_batch",
    "NoiseModel",
    "NoisyBackend",
    "ResourceCounter",
    "ResourceEstimate",
    "StabilizerSimulator",
    "StabilizerState",
    "StabilizerError",
    "SimulationError",
    "SimulationResult",
    "Statevector",
    "StatevectorSimulator",
]

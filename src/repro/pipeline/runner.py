"""The pipeline runner: timed, cached, verified pass execution.

:class:`Pipeline` executes :class:`~.passes.Pass` objects over a
:class:`~.state.FlowState`, producing one :class:`PassRecord` per pass
with wall-clock timing, gate-count/T-count deltas and pass-specific
details.  Behind flags it also

* replays results from a content-keyed :class:`~.cache.PassCache`
  (skipping recomputation on repeated flows), and
* fail-fast verifies every pass functionally (permutation / unitary
  checks, Sec. IX), raising :class:`VerificationError` at the first
  pass that breaks the flow's semantics.

The RevKit shell, the Q#/ProjectQ framework flows and the paper-flow
benchmarks all execute through this runner.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..resilience.errors import DeadlineExceeded
from ..resilience.faults import fault_point
from ..resilience.policies import Deadline, RetryPolicy, as_deadline, as_retry
from ..verify.checker import EquivalenceChecker, as_checker
from ..verify.verdict import Verdict
from .cache import PassCache, shared_cache
from .passes import Pass
from .state import FlowState, PipelineError, state_key

#: How long a follower waits for another thread computing the same
#: cache key before giving up and computing the pass itself — the
#: default when neither ``Pipeline(follower_timeout=...)`` nor the
#: ``REPRO_SINGLE_FLIGHT_TIMEOUT`` environment variable overrides it.
SINGLE_FLIGHT_TIMEOUT = 60.0

#: Per-pass error policies ``on_error=`` accepts (or a dict mapping
#: pass names to one of these).
ON_ERROR_POLICIES = ("raise", "retry", "fallback")


def _default_follower_timeout() -> float:
    """Resolve the follower timeout: env override, then the constant.

    Read at wait time (not construction), so tests and operators can
    adjust ``REPRO_SINGLE_FLIGHT_TIMEOUT`` — or monkeypatch
    :data:`SINGLE_FLIGHT_TIMEOUT` — without rebuilding pipelines.
    """
    raw = os.environ.get("REPRO_SINGLE_FLIGHT_TIMEOUT")
    if raw:
        try:
            return float(raw)
        except ValueError:
            pass
    return SINGLE_FLIGHT_TIMEOUT


class VerificationError(PipelineError):
    """Raised when a pass breaks the flow's functional semantics."""


def _check_on_error(
    policy: Union[str, Dict[str, str], None]
) -> Union[str, Dict[str, str], None]:
    """Validate an ``on_error`` argument (policy name or per-pass dict)."""
    values = (
        policy.values() if isinstance(policy, dict)
        else () if policy is None
        else (policy,)
    )
    for value in values:
        if value not in ON_ERROR_POLICIES:
            raise PipelineError(
                f"unknown on_error policy {value!r}; one of "
                f"{', '.join(ON_ERROR_POLICIES)} (or a dict mapping "
                "pass names to one of those)"
            )
    return policy


def _flow_context(
    flow_name: Optional[str], index: int, total: int, pass_: "Pass"
) -> str:
    """Name the failing step: flow, 1-based pass index, name, stage."""
    where = f"pass {index + 1}/{total} ({pass_.name!r}, stage {pass_.stage!r})"
    if flow_name:
        return f"flow {flow_name!r} {where}"
    return where


def state_metrics(state: FlowState) -> Dict[str, Any]:
    """Summarize the cost figures of a flow store.

    Args:
        state: the store to measure.

    Returns:
        A dict with (present-field dependent) keys ``mct_gates``,
        ``lines``, ``quantum_cost``, ``gates``, ``qubits`` and
        ``t_count``.
    """
    metrics: Dict[str, Any] = {}
    if state.reversible is not None:
        metrics["mct_gates"] = len(state.reversible)
        metrics["lines"] = state.reversible.num_lines
        metrics["quantum_cost"] = state.reversible.quantum_cost()
    if state.quantum is not None:
        metrics["gates"] = len(state.quantum)
        metrics["qubits"] = state.quantum.num_qubits
        metrics["t_count"] = state.quantum.t_count()
    return metrics


@dataclass
class PassRecord:
    """What one pass execution did.

    Attributes:
        name: the pass's command-style name.
        stage: the pass's flow phase.
        seconds: wall-clock time of the pass's ``run`` (replay time
            on a cache hit); verification and statistics hooks are
            not included.
        cache_hit: whether the result was replayed from the cache.
        before: :func:`state_metrics` of the incoming store.
        after: :func:`state_metrics` of the outgoing store.
        details: pass-specific statistics (swap counts, ...).
        verification: the :class:`~repro.verify.Verdict` of the
            pass's functional check — which tier ran, its cost and
            outcome — or ``None`` when the pipeline ran unverified.
            A skipped check is recorded explicitly, never silently.
    """

    name: str
    stage: str
    seconds: float
    cache_hit: bool
    before: Dict[str, Any] = field(default_factory=dict)
    after: Dict[str, Any] = field(default_factory=dict)
    details: Dict[str, Any] = field(default_factory=dict)
    verification: Optional[Verdict] = None

    def delta(self, metric: str) -> Optional[int]:
        """Return ``after - before`` for ``metric`` when both exist.

        Args:
            metric: a :func:`state_metrics` key, e.g. ``t_count``.

        Returns:
            The signed change, or ``None`` if the metric is missing
            on either side.
        """
        before, after = self.before.get(metric), self.after.get(metric)
        if before is None or after is None:
            return None
        return after - before

    def summary(self) -> str:
        """Return a one-line human-readable delta summary."""
        parts: List[str] = []
        for metric, label in (
            ("mct_gates", "MCT"),
            ("gates", "gates"),
            ("t_count", "T"),
        ):
            before, after = self.before.get(metric), self.after.get(metric)
            if after is None:
                continue
            if before is None or before == after:
                parts.append(f"{label}={after}")
            else:
                parts.append(f"{label} {before}->{after}")
        for key, value in self.details.items():
            if isinstance(value, (int, bool, str)):
                parts.append(f"{key}={value}")
        if self.verification is not None:
            parts.append(
                f"verify={self.verification.status}"
                f":{self.verification.tier}"
            )
        return "  ".join(parts)


@dataclass
class PipelineResult:
    """Final store plus the per-pass records of one flow execution."""

    state: FlowState
    records: List[PassRecord] = field(default_factory=list)

    @property
    def quantum(self):
        """Return the final quantum circuit (or ``None``)."""
        return self.state.quantum

    @property
    def reversible(self):
        """Return the final reversible cascade (or ``None``)."""
        return self.state.reversible

    @property
    def routing(self):
        """Return the final routing result (or ``None``)."""
        return self.state.routing

    @property
    def total_seconds(self) -> float:
        """Return the summed wall-clock time of all passes."""
        return sum(record.seconds for record in self.records)

    @property
    def verified(self) -> bool:
        """Whether every pass carries a *passed* verification verdict.

        ``False`` for unverified runs and whenever any pass's check
        was skipped — a skip is never promoted to a pass.
        """
        return bool(self.records) and all(
            record.verification is not None and record.verification.passed
            for record in self.records
        )

    def record(self, name: str) -> PassRecord:
        """Return the first record of the pass called ``name``.

        Args:
            name: the pass name to look up.

        Returns:
            The matching :class:`PassRecord`.

        Raises:
            KeyError: if no pass of that name ran.
        """
        for record in self.records:
            if record.name == name:
                return record
        raise KeyError(name)

    def report(self) -> str:
        """Format the records as an aligned per-pass table."""
        return format_records(self.records)


def format_records(records: Iterable[PassRecord]) -> str:
    """Format pass records as an aligned text table.

    Args:
        records: the records to render.

    Returns:
        One line per pass: name, stage, time, cache marker, deltas.
    """
    rows = list(records)
    if not rows:
        return "(no passes executed)"
    name_w = max(len(r.name) for r in rows)
    stage_w = max(len(r.stage) for r in rows)
    lines = []
    for r in rows:
        marker = "cached" if r.cache_hit else f"{r.seconds * 1e3:8.2f}ms"
        lines.append(
            f"{r.name:<{name_w}}  {r.stage:<{stage_w}}  "
            f"{marker:>10}  {r.summary()}"
        )
    return "\n".join(lines)


class Pipeline:
    """Execute passes with timing, caching and optional verification.

    Args:
        verify: functionally verify every pass (fail-fast — the first
            failing pass raises :class:`VerificationError`).  Accepts
            ``True``/``"auto"`` (tiered checking, skips recorded
            explicitly), ``"strict"`` (a skipped check also raises),
            ``False``/``"off"``/``None``, or a configured
            :class:`~repro.verify.EquivalenceChecker`.  Each pass
            record carries the :class:`~repro.verify.Verdict` naming
            the tier that ran.
        cache: a :class:`~.cache.PassCache`, the string ``"shared"``
            for the process-wide cache (default), or ``None`` to
            disable result caching.
        follower_timeout: how long a single-flight follower waits for
            the leader's result before recomputing itself; ``None``
            (default) resolves ``REPRO_SINGLE_FLIGHT_TIMEOUT`` and
            then :data:`SINGLE_FLIGHT_TIMEOUT` at wait time.
        deadline: default compute budget for :meth:`run`/:meth:`apply`
            — a :class:`~repro.resilience.Deadline` or seconds from
            now; checked at cooperative checkpoints (between passes,
            before waits), raising
            :class:`~repro.resilience.DeadlineExceeded`.
        retry: default :class:`~repro.resilience.RetryPolicy` (or an
            attempt count) used when ``on_error`` selects ``retry``.
        on_error: per-pass failure policy — ``"raise"`` (default),
            ``"retry"`` (re-run transiently failing passes per the
            retry policy), ``"fallback"`` (run the pass's declared
            :attr:`~.passes.Pass.fallback` instead), or a dict mapping
            pass names to one of those.
    """

    def __init__(
        self,
        verify: Union[bool, str, EquivalenceChecker, None] = False,
        cache: Union[PassCache, str, None] = "shared",
        follower_timeout: Optional[float] = None,
        deadline: Union[Deadline, float, None] = None,
        retry: Union[RetryPolicy, int, None] = None,
        on_error: Union[str, Dict[str, str], None] = None,
    ) -> None:
        """Configure verification, caching, and resilience policies."""
        self.checker = as_checker(verify)
        self.verify = self.checker is not None
        if cache == "shared":
            self.cache: Optional[PassCache] = shared_cache()
        else:
            self.cache = cache
        self.follower_timeout = (
            float(follower_timeout) if follower_timeout is not None else None
        )
        self.deadline = as_deadline(deadline)
        self.retry = as_retry(retry)
        self.on_error = _check_on_error(on_error)
        self.history: List[PassRecord] = []

    def _policy_for(
        self, pass_: Pass, on_error: Union[str, Dict[str, str], None]
    ) -> str:
        """Resolve the error policy applying to one pass."""
        policy = on_error if on_error is not None else self.on_error
        if isinstance(policy, dict):
            policy = policy.get(pass_.name, policy.get("*", "raise"))
        return policy or "raise"

    # ------------------------------------------------------------------
    def apply(
        self,
        pass_: Pass,
        state: FlowState,
        deadline: Union[Deadline, float, None] = None,
        retry: Union[RetryPolicy, int, None] = None,
        on_error: Union[str, Dict[str, str], None] = None,
    ) -> Tuple[FlowState, PassRecord]:
        """Run one pass on ``state`` and record what happened.

        Concurrent flows sharing one :class:`~.cache.PassCache` are
        safe here: a cache miss claims the key in the cache's
        single-flight registry, so a second thread arriving at the
        same key waits for the first result and replays it instead of
        recomputing, and the entry stays pinned (exempt from LRU
        eviction and :meth:`~.cache.PassCache.gc`) while in flight.
        No lock is held while a pass runs, and a nested flow that
        re-enters the same key on the same thread computes directly
        instead of deadlocking on itself.  A follower whose leader
        stalls past the follower timeout recomputes the pass itself;
        the wait is additionally bounded by the deadline, so a hung
        leader can never consume a follower's whole budget.

        Args:
            pass_: the pass to execute.
            state: the incoming store (never mutated).
            deadline: per-call budget (a
                :class:`~repro.resilience.Deadline` or seconds)
                overriding the pipeline default; checked before the
                pass runs and around single-flight waits.
            retry: per-call retry policy override (used when the
                error policy selects ``retry``).
            on_error: per-call error policy override (``raise`` /
                ``retry`` / ``fallback`` or a per-pass-name dict).

        Returns:
            ``(new_state, record)``; the record is also appended to
            :attr:`history`.

        Raises:
            VerificationError: when ``verify`` is on and the pass
                broke the flow's semantics; nothing is cached or
                recorded in that case, and a broken cached entry is
                dropped.  Verified entries are flagged in the cache,
                so replaying them skips re-verification.
            repro.resilience.DeadlineExceeded: the budget ran out at
                a cooperative checkpoint.
        """
        deadline = as_deadline(deadline) or self.deadline
        retry_policy = as_retry(retry) or self.retry
        on_error = _check_on_error(on_error)
        if deadline is not None:
            deadline.check(site=f"pipeline.apply({pass_.name})")
        cacheable = (
            self.cache is not None and bool(pass_.writes) and pass_.cacheable
        )
        key = ""
        started = time.perf_counter()
        if cacheable:
            key = self._cache_key(pass_, state)
            # the first probe does not count a miss: a follower that
            # ends up replaying the leader's result was one logical
            # hit, not a miss-then-hit
            cached = self.cache.get(key, count_miss=False)
            if cached is not None:
                return self._finish(
                    self._replay(pass_, state, key, cached, started)
                )
            fault_point("pipeline.apply.claim")
            role, event = self.cache.begin_compute(key)
            if role == "follower":
                # another thread is computing this key — wait for it
                # and replay; on timeout or eviction, compute anyway
                timeout = (
                    self.follower_timeout
                    if self.follower_timeout is not None
                    else _default_follower_timeout()
                )
                if deadline is not None:
                    timeout = deadline.bound(timeout)
                fault_point("pipeline.apply.wait")
                event.wait(timeout)
                if deadline is not None:
                    deadline.check(
                        site=f"pipeline.apply.wait({pass_.name})"
                    )
                # restart the clock: the wait is the leader's compute
                # time and must not be billed to this replay record
                started = time.perf_counter()
                cached = self.cache.get(key)
                if cached is not None:
                    return self._finish(
                        self._replay(pass_, state, key, cached, started)
                    )
                role, event = self.cache.begin_compute(key)
            else:
                self.cache.count_miss()
            if role == "leader":
                try:
                    return self._finish(
                        self._execute(
                            pass_, state, key, cacheable,
                            deadline, retry_policy, on_error,
                        )
                    )
                finally:
                    self.cache.end_compute(key)
            # "reentrant": this thread already leads the key (a nested
            # flow) — fall through and compute without the registry
        return self._finish(
            self._execute(
                pass_, state, key, cacheable,
                deadline, retry_policy, on_error,
            )
        )

    def _finish(
        self, outcome: Tuple[FlowState, PassRecord]
    ) -> Tuple[FlowState, PassRecord]:
        """Append the record to :attr:`history` and pass through."""
        self.history.append(outcome[1])
        return outcome

    def _replay(
        self,
        pass_: Pass,
        state: FlowState,
        key: str,
        cached: Tuple[Dict[str, Any], Dict[str, Any], bool],
        started: float,
    ) -> Tuple[FlowState, PassRecord]:
        """Overlay a cached entry onto ``state`` and record the hit."""
        outputs, details, verified = cached
        result = self._apply_outputs(state, outputs)
        seconds = time.perf_counter() - started
        verdict: Optional[Verdict] = None
        if self.verify:
            if verified:
                verdict = Verdict.accept(
                    "cache", detail="verified when first computed"
                )
            else:
                verdict = self._check(pass_, state, result, key=key)
        record = PassRecord(
            name=pass_.name,
            stage=pass_.stage,
            seconds=seconds,
            cache_hit=True,
            before=state_metrics(state),
            after=state_metrics(result),
            details=details,
            verification=verdict,
        )
        return result, record

    def _run_pass(self, pass_: Pass, state: FlowState) -> FlowState:
        """Run one pass through its fault-injection site."""
        fault_point(f"pipeline.pass.run.{pass_.name}")
        return pass_.run(state)

    def _execute(
        self,
        pass_: Pass,
        state: FlowState,
        key: str,
        cacheable: bool,
        deadline: Optional[Deadline] = None,
        retry: Optional[RetryPolicy] = None,
        on_error: Union[str, Dict[str, str], None] = None,
    ) -> Tuple[FlowState, PassRecord]:
        """Actually run the pass, verify, cache, and record it.

        The resolved error policy shapes failure handling: ``retry``
        re-runs the pass on transient errors per the retry policy
        (bounded by the deadline), ``fallback`` switches to the
        pass's declared alternate — recorded in the result's details
        as ``fallback_for`` — and ``raise`` (default) propagates.
        """
        policy = self._policy_for(pass_, on_error)
        run_started = time.perf_counter()
        try:
            if policy == "retry" and retry is not None:
                result = retry.call(
                    lambda: self._run_pass(pass_, state),
                    site=f"pipeline.pass.run.{pass_.name}",
                    deadline=deadline,
                )
            else:
                result = self._run_pass(pass_, state)
        except Exception as error:
            fallback = getattr(pass_, "fallback", None)
            if policy != "fallback" or fallback is None:
                raise
            if isinstance(error, DeadlineExceeded):
                raise  # no budget left for an alternate either
            alternate_cacheable = (
                self.cache is not None
                and bool(fallback.writes)
                and fallback.cacheable
            )
            alternate_key = (
                self._cache_key(fallback, state)
                if alternate_cacheable
                else ""
            )
            outcome = self._execute(
                fallback, state, alternate_key, alternate_cacheable,
                deadline, retry, "raise",
            )
            outcome[1].details["fallback_for"] = pass_.name
            return outcome
        seconds = time.perf_counter() - run_started
        details = pass_.statistics(state, result)
        verdict: Optional[Verdict] = None
        if self.verify:
            # verify BEFORE caching: a broken result must never be
            # stored, or later verify=False runs would replay it
            verdict = self._check(pass_, state, result)
        record = PassRecord(
            name=pass_.name,
            stage=pass_.stage,
            seconds=seconds,
            cache_hit=False,
            before=state_metrics(state),
            after=state_metrics(result),
            details=details,
            verification=verdict,
        )
        if cacheable:
            # the verified flag is only set for a *passed* check — a
            # skipped one must stay re-checkable, never a silent pass
            self.cache.put(
                key,
                self._collect_outputs(pass_, state, result),
                details,
                verified=verdict is not None and verdict.passed,
            )
        return result, record

    def _check(
        self,
        pass_: Pass,
        state: FlowState,
        result: FlowState,
        key: Optional[str] = None,
    ) -> Verdict:
        """Run the tiered check and enforce the pipeline's mode.

        Args:
            pass_: the pass whose result is being checked.
            state: store content entering the pass.
            result: store content the pass produced.
            key: cache key of a replayed entry — a broken entry is
                dropped before raising, a passed one is flagged
                verified so later replays skip the re-check.

        Returns:
            The pass's :class:`~repro.verify.Verdict`.

        Raises:
            VerificationError: the check rejected, or it was skipped
                while the checker runs in strict mode.
        """
        verdict = pass_.check(self.checker, state, result)
        if verdict.failed:
            if key is not None:
                # never replay a broken entry again
                self.cache.drop(key)
            raise VerificationError(
                f"pass {pass_.name!r} failed verification "
                f"(tier {verdict.tier}): {verdict.detail}"
            )
        if verdict.skipped and self.checker.strict:
            raise VerificationError(
                f"pass {pass_.name!r} could not be verified under "
                f"strict mode (tier {verdict.tier}): {verdict.detail}"
            )
        if key is not None and verdict.passed:
            self.cache.mark_verified(key)
        return verdict

    def run(
        self,
        passes: Union[Iterable[Pass], Any],
        state: Optional[FlowState] = None,
        flow_name: Optional[str] = None,
        deadline: Union[Deadline, float, None] = None,
        retry: Union[RetryPolicy, int, None] = None,
        on_error: Union[str, Dict[str, str], None] = None,
    ) -> PipelineResult:
        """Execute a sequence of passes (or a flow) end to end.

        A pass that raises mid-flow is re-raised with its position:
        :class:`~.state.PipelineError` subclasses get the flow name
        and ``pass i/n`` prefixed to their message, other exceptions
        keep their type and message and gain a traceback note.  The
        deadline — per-call or the pipeline default — is checked
        before every pass (a cooperative checkpoint), so an expired
        budget surfaces as a
        :class:`~repro.resilience.DeadlineExceeded` naming the flow
        position instead of a runaway flow.

        Args:
            passes: an iterable of passes, or any object with a
                ``passes`` attribute (a :class:`~.flows.Flow`).
            state: the initial store; a fresh empty one by default.
            flow_name: name used in error context; inferred from
                ``passes.name`` when a flow object is given.
            deadline: compute budget for the whole sequence (a
                :class:`~repro.resilience.Deadline` or seconds);
                overrides the pipeline default.
            retry: retry policy override for ``on_error='retry'``.
            on_error: error policy override (``raise`` / ``retry`` /
                ``fallback`` or a per-pass-name dict).

        Returns:
            A :class:`PipelineResult` with the final store and the
            records of exactly this execution.
        """
        if hasattr(passes, "passes"):
            if flow_name is None:
                flow_name = getattr(passes, "name", None)
            passes = passes.passes
        deadline = as_deadline(deadline) or self.deadline
        sequence = list(passes)
        current = state if state is not None else FlowState()
        records: List[PassRecord] = []
        for index, pass_ in enumerate(sequence):
            try:
                current, record = self.apply(
                    pass_, current,
                    deadline=deadline, retry=retry, on_error=on_error,
                )
            except PipelineError as exc:
                where = _flow_context(flow_name, index, len(sequence), pass_)
                try:
                    wrapped = type(exc)(f"{where}: {exc}")
                except TypeError:
                    # a subclass with a non-message constructor: keep
                    # the exception intact, carry context as a note
                    exc.add_note(f"while running {where}")
                    raise
                raise wrapped from exc
            except Exception as exc:
                where = _flow_context(flow_name, index, len(sequence), pass_)
                exc.add_note(f"while running {where}")
                raise
            records.append(record)
        return PipelineResult(state=current, records=records)

    def report(self) -> str:
        """Format every pass this pipeline ever ran as a table."""
        return format_records(self.history)

    # ------------------------------------------------------------------
    def _cache_key(self, pass_: Pass, state: FlowState) -> str:
        """Build the content key for ``pass_`` applied to ``state``."""
        signature = repr((pass_.name, type(pass_).__name__, pass_.signature()))
        return signature + "/" + state_key(state, pass_.reads)

    @staticmethod
    def _collect_outputs(
        pass_: Pass, before: FlowState, after: FlowState
    ) -> Dict[str, Any]:
        """Extract the written fields of ``after`` for caching.

        The artifacts dict is stored as a diff (keys added or rebound
        by the pass) so a replay cannot resurrect unrelated entries.
        """
        outputs: Dict[str, Any] = {}
        for name in pass_.writes:
            if name == "artifacts":
                outputs["artifacts"] = {
                    k: v
                    for k, v in after.artifacts.items()
                    if before.artifacts.get(k) is not v
                }
            else:
                outputs[name] = getattr(after, name)
        return outputs

    @staticmethod
    def _apply_outputs(
        state: FlowState, outputs: Dict[str, Any]
    ) -> FlowState:
        """Overlay cached outputs onto a copy of ``state``."""
        skip = tuple(
            name for name in ("reversible", "quantum") if name in outputs
        )
        result = state.copy(skip=skip)
        for name, value in outputs.items():
            if name == "artifacts":
                result.artifacts.update(value)
            else:
                setattr(result, name, value)
        return result

"""Content-keyed pass-result cache, optionally spilled to disk.

Repeated flows — parameter sweeps, shell re-runs, regenerating the
same Q# oracle — re-execute identical (pass, input) pairs.  The cache
keys each pass result by the pass name, its parameter signature, and a
content fingerprint of the store fields it reads
(:func:`~.state.state_key`), so a second identical invocation replays
the stored outputs instead of recomputing them.

Values are defensively copied on both insert and lookup: callers may
mutate circuits they receive (the shell does), and that must never
corrupt cached entries.  All operations take an internal lock, so one
cache may back the batched compilations of a
:class:`~repro.compiler.session.CompilerSession` thread pool.

With ``PassCache(path=...)`` entries are additionally written to disk
as content-named JSON files and reloaded on a memory miss, so a cache
rooted at the same path persists across processes and sessions.  Only
values with a registered JSON codec spill (circuits, specifications,
routing results, statistics); entries carrying opaque artifacts stay
memory-only.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import re
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..boolean.permutation import BitPermutation
from ..boolean.truth_table import TruthTable
from ..core.circuit import QuantumCircuit
from ..core.statistics import CircuitStatistics
from ..mapping.routing import RoutingResult
from ..synthesis.reversible import MctGate, ReversibleCircuit

#: Default number of entries a cache retains (LRU eviction).
DEFAULT_MAXSIZE = 512

#: On-disk entry format version; bumped when the schema changes.
DISK_FORMAT = 1

#: Names of the entry files the disk tier owns (sha256 hex + .json);
#: ``clear(disk=True)`` deletes only these.
_ENTRY_FILE_RE = re.compile(r"[0-9a-f]{64}\.json")


def _copy_value(value: Any) -> Any:
    """Return a safe copy of one cached store value.

    Circuits use their cheap ``copy`` (gate objects are immutable);
    everything else is deep-copied.
    """
    if isinstance(value, (QuantumCircuit, ReversibleCircuit)):
        return value.copy()
    if value is None or isinstance(value, (int, float, str, bool, tuple)):
        return value
    return copy.deepcopy(value)


# ----------------------------------------------------------------------
# JSON codec for disk spilling
# ----------------------------------------------------------------------
class _Unspillable(Exception):
    """Internal: the value has no JSON codec (entry stays in memory)."""


def _encode(value: Any) -> Any:
    """Encode one store value as a type-tagged JSON structure."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, QuantumCircuit):
        return {
            "__t__": "qc",
            "name": value.name,
            "nq": value.num_qubits,
            "nc": value.num_clbits,
            "gates": [
                [
                    g.name,
                    list(g.targets),
                    list(g.controls),
                    list(g.params),
                    list(g.cbits),
                ]
                for g in value.gates
            ],
        }
    if isinstance(value, ReversibleCircuit):
        return {
            "__t__": "rev",
            "name": value.name,
            "lines": value.num_lines,
            "gates": [
                [g.target, list(g.controls), list(g.polarity)]
                for g in value.gates
            ],
        }
    if isinstance(value, TruthTable):
        return {"__t__": "tt", "n": value.num_vars, "bits": value.bits}
    if isinstance(value, BitPermutation):
        return {"__t__": "perm", "image": list(value.image)}
    if isinstance(value, RoutingResult):
        return {
            "__t__": "route",
            "circuit": _encode(value.circuit),
            "initial_layout": list(value.initial_layout),
            "final_layout": list(value.final_layout),
            "swap_count": value.swap_count,
            "position_of": list(value.position_of),
        }
    if isinstance(value, CircuitStatistics):
        return {
            "__t__": "stats",
            "num_qubits": value.num_qubits,
            "num_gates": value.num_gates,
            "depth": value.depth,
            "t_count": value.t_count,
            "t_depth": value.t_depth,
            "two_qubit_count": value.two_qubit_count,
            "clifford_count": value.clifford_count,
            "histogram": dict(value.histogram),
        }
    if isinstance(value, (list, tuple)):
        return {
            "__t__": "list" if isinstance(value, list) else "tuple",
            "items": [_encode(v) for v in value],
        }
    if isinstance(value, dict):
        if any(not isinstance(k, str) for k in value):
            raise _Unspillable(f"non-string dict key in {value!r}")
        return {
            "__t__": "dict",
            "items": {k: _encode(v) for k, v in value.items()},
        }
    raise _Unspillable(f"no JSON codec for {type(value).__name__}")


def _decode(value: Any) -> Any:
    """Decode a type-tagged JSON structure back into store values."""
    if not isinstance(value, dict):
        return value
    tag = value.get("__t__")
    if tag == "qc":
        circuit = QuantumCircuit(value["nq"], value["nc"], name=value["name"])
        for name, targets, controls, params, cbits in value["gates"]:
            circuit._add(
                name,
                tuple(targets),
                tuple(controls),
                tuple(params),
                tuple(cbits),
            )
        return circuit
    if tag == "rev":
        circuit = ReversibleCircuit(value["lines"], name=value["name"])
        for target, controls, polarity in value["gates"]:
            circuit.append(
                MctGate(target, tuple(controls), tuple(polarity))
            )
        return circuit
    if tag == "tt":
        return TruthTable(value["n"], value["bits"])
    if tag == "perm":
        return BitPermutation(value["image"])
    if tag == "route":
        return RoutingResult(
            circuit=_decode(value["circuit"]),
            initial_layout=list(value["initial_layout"]),
            final_layout=list(value["final_layout"]),
            swap_count=value["swap_count"],
            position_of=list(value["position_of"]),
        )
    if tag == "stats":
        return CircuitStatistics(
            num_qubits=value["num_qubits"],
            num_gates=value["num_gates"],
            depth=value["depth"],
            t_count=value["t_count"],
            t_depth=value["t_depth"],
            two_qubit_count=value["two_qubit_count"],
            clifford_count=value["clifford_count"],
            histogram=dict(value["histogram"]),
        )
    if tag == "list":
        return [_decode(v) for v in value["items"]]
    if tag == "tuple":
        return tuple(_decode(v) for v in value["items"])
    if tag == "dict":
        return {k: _decode(v) for k, v in value["items"].items()}
    return value


class PassCache:
    """Locked LRU cache mapping content keys to pass outputs.

    Args:
        maxsize: in-memory entry cap; the least recently used entry is
            evicted first.  ``None`` disables eviction.  Disk entries
            are never evicted.
        path: optional directory for the persistent tier; entries with
            JSON-codable values are written there and reloaded on a
            memory miss, including from other processes.
    """

    def __init__(
        self,
        maxsize: Optional[int] = DEFAULT_MAXSIZE,
        path: Optional[str] = None,
    ) -> None:
        """Create an empty cache with the given capacity and tier."""
        self.maxsize = maxsize
        self.path = os.fspath(path) if path is not None else None
        if self.path is not None:
            os.makedirs(self.path, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self._lock = threading.RLock()
        self._entries: (
            "OrderedDict[str, Tuple[Dict[str, Any], Dict[str, Any], bool]]"
        )
        self._entries = OrderedDict()

    def __len__(self) -> int:
        """Return the number of in-memory entries."""
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # disk tier
    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> str:
        """Return the spill file path for a content key."""
        digest = hashlib.sha256(key.encode()).hexdigest()
        return os.path.join(self.path, f"{digest}.json")

    def _spill(
        self,
        key: str,
        entry: Tuple[Dict[str, Any], Dict[str, Any], bool],
    ) -> None:
        """Write one entry to the disk tier (best effort)."""
        outputs, details, verified = entry
        try:
            payload = json.dumps(
                {
                    "format": DISK_FORMAT,
                    "key": key,
                    "verified": verified,
                    "outputs": {k: _encode(v) for k, v in outputs.items()},
                    "details": {k: _encode(v) for k, v in details.items()},
                }
            )
        except (_Unspillable, TypeError, ValueError):
            return
        target = self._entry_path(key)
        tmp = f"{target}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w") as stream:
                stream.write(payload)
            os.replace(tmp, target)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _load(
        self, key: str
    ) -> Optional[Tuple[Dict[str, Any], Dict[str, Any], bool]]:
        """Read one entry back from the disk tier, if present."""
        try:
            with open(self._entry_path(key)) as stream:
                payload = json.load(stream)
        except (OSError, ValueError):
            return None
        if (
            payload.get("format") != DISK_FORMAT
            or payload.get("key") != key
        ):
            return None
        return (
            {k: _decode(v) for k, v in payload["outputs"].items()},
            {k: _decode(v) for k, v in payload["details"].items()},
            bool(payload.get("verified", False)),
        )

    # ------------------------------------------------------------------
    def get(
        self, key: str
    ) -> Optional[Tuple[Dict[str, Any], Dict[str, Any], bool]]:
        """Look up ``key`` and return ``(outputs, details, verified)``.

        Args:
            key: content key built by the pipeline.

        Returns:
            A fresh copy of the stored output fields, the recorded
            pass statistics, and whether the entry has already passed
            functional verification — or ``None`` on a miss in both
            tiers.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
        if entry is None and self.path is not None:
            # file I/O happens outside the lock; insertion re-checks
            loaded = self._load(key)
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self.hits += 1
                elif loaded is not None:
                    entry = loaded
                    self.disk_hits += 1
                    self.hits += 1
                    self._store(key, entry)
        if entry is None:
            with self._lock:
                self.misses += 1
            return None
        # entry tuples are replaced wholesale, never mutated in place,
        # so the defensive copy can run without holding the lock
        outputs, details, verified = entry
        return (
            {name: _copy_value(value) for name, value in outputs.items()},
            dict(details),
            verified,
        )

    def _store(
        self,
        key: str,
        entry: Tuple[Dict[str, Any], Dict[str, Any], bool],
    ) -> None:
        """Insert an entry into the memory tier and apply the LRU cap."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        if self.maxsize is not None:
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def put(
        self,
        key: str,
        outputs: Dict[str, Any],
        details: Dict[str, Any],
        verified: bool = False,
    ) -> None:
        """Store pass outputs under ``key`` (both tiers).

        Args:
            key: content key built by the pipeline.
            outputs: store-field values the pass wrote.
            details: the pass's statistics dict for replayed records.
            verified: whether the outputs passed functional
                verification before being stored.
        """
        entry = (
            {name: _copy_value(value) for name, value in outputs.items()},
            dict(details),
            verified,
        )
        with self._lock:
            self._store(key, entry)
        if self.path is not None:
            # the spill encodes from this call's private entry tuple,
            # so serializing outside the lock races with nothing
            self._spill(key, entry)

    def mark_verified(self, key: str) -> None:
        """Flag an existing entry as functionally verified."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry = (entry[0], entry[1], True)
                self._entries[key] = entry
        if entry is not None and self.path is not None:
            self._spill(key, entry)

    def drop(self, key: str) -> None:
        """Remove one entry (e.g. after it failed verification)."""
        with self._lock:
            self._entries.pop(key, None)
            if self.path is not None:
                try:
                    os.unlink(self._entry_path(key))
                except OSError:
                    pass

    def clear(self, disk: bool = False) -> None:
        """Drop all in-memory entries and reset the counters.

        Args:
            disk: also delete the persistent tier's entry files (only
                content-named ``<sha256>.json`` files this cache
                owns — other files in the directory are untouched).
        """
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.disk_hits = 0
            if disk and self.path is not None:
                for name in os.listdir(self.path):
                    if _ENTRY_FILE_RE.fullmatch(name):
                        try:
                            os.unlink(os.path.join(self.path, name))
                        except OSError:
                            pass

    def stats(self) -> Dict[str, int]:
        """Return ``{"entries", "hits", "misses", "disk_hits"}``."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
            }


_SHARED: Optional[PassCache] = None


def shared_cache() -> PassCache:
    """Return the process-wide cache shared by default pipelines."""
    global _SHARED
    if _SHARED is None:
        _SHARED = PassCache()
    return _SHARED

"""Content-keyed pass-result cache.

Repeated flows — parameter sweeps, shell re-runs, regenerating the
same Q# oracle — re-execute identical (pass, input) pairs.  The cache
keys each pass result by the pass name, its parameter signature, and a
content fingerprint of the store fields it reads
(:func:`~.state.state_key`), so a second identical invocation replays
the stored outputs instead of recomputing them.

Values are defensively copied on both insert and lookup: callers may
mutate circuits they receive (the shell does), and that must never
corrupt cached entries.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..core.circuit import QuantumCircuit
from ..synthesis.reversible import ReversibleCircuit

#: Default number of entries a cache retains (LRU eviction).
DEFAULT_MAXSIZE = 512


def _copy_value(value: Any) -> Any:
    """Return a safe copy of one cached store value.

    Circuits use their cheap ``copy`` (gate objects are immutable);
    everything else is deep-copied.
    """
    if isinstance(value, (QuantumCircuit, ReversibleCircuit)):
        return value.copy()
    if value is None or isinstance(value, (int, float, str, bool, tuple)):
        return value
    return copy.deepcopy(value)


class PassCache:
    """LRU cache mapping content keys to pass outputs.

    Args:
        maxsize: entry cap; the least recently used entry is evicted
            first.  ``None`` disables eviction.
    """

    def __init__(self, maxsize: Optional[int] = DEFAULT_MAXSIZE) -> None:
        """Create an empty cache with the given capacity."""
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: (
            "OrderedDict[str, Tuple[Dict[str, Any], Dict[str, Any], bool]]"
        )
        self._entries = OrderedDict()

    def __len__(self) -> int:
        """Return the number of stored entries."""
        return len(self._entries)

    def get(
        self, key: str
    ) -> Optional[Tuple[Dict[str, Any], Dict[str, Any], bool]]:
        """Look up ``key`` and return ``(outputs, details, verified)``.

        Args:
            key: content key built by the pipeline.

        Returns:
            A fresh copy of the stored output fields, the recorded
            pass statistics, and whether the entry has already passed
            functional verification — or ``None`` on a miss.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        outputs, details, verified = entry
        return (
            {name: _copy_value(value) for name, value in outputs.items()},
            dict(details),
            verified,
        )

    def put(
        self,
        key: str,
        outputs: Dict[str, Any],
        details: Dict[str, Any],
        verified: bool = False,
    ) -> None:
        """Store pass outputs under ``key``.

        Args:
            key: content key built by the pipeline.
            outputs: store-field values the pass wrote.
            details: the pass's statistics dict for replayed records.
            verified: whether the outputs passed functional
                verification before being stored.
        """
        self._entries[key] = (
            {name: _copy_value(value) for name, value in outputs.items()},
            dict(details),
            verified,
        )
        self._entries.move_to_end(key)
        if self.maxsize is not None:
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def mark_verified(self, key: str) -> None:
        """Flag an existing entry as functionally verified."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries[key] = (entry[0], entry[1], True)

    def drop(self, key: str) -> None:
        """Remove one entry (e.g. after it failed verification)."""
        self._entries.pop(key, None)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, int]:
        """Return ``{"entries", "hits", "misses"}`` counters."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
        }


_SHARED: Optional[PassCache] = None


def shared_cache() -> PassCache:
    """Return the process-wide cache shared by default pipelines."""
    global _SHARED
    if _SHARED is None:
        _SHARED = PassCache()
    return _SHARED

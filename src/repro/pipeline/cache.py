"""Content-keyed pass-result cache, optionally spilled to disk.

Repeated flows — parameter sweeps, shell re-runs, regenerating the
same Q# oracle — re-execute identical (pass, input) pairs.  The cache
keys each pass result by the pass name, its parameter signature, and a
content fingerprint of the store fields it reads
(:func:`~.state.state_key`), so a second identical invocation replays
the stored outputs instead of recomputing them.

Values are defensively copied on both insert and lookup: callers may
mutate circuits they receive (the shell does), and that must never
corrupt cached entries.  All operations take an internal lock, so one
cache may back the batched compilations of a
:class:`~repro.compiler.session.CompilerSession` thread pool.

With ``PassCache(path=...)`` entries are additionally written to disk
as content-named JSON files and reloaded on a memory miss, so a cache
rooted at the same path persists across processes and sessions.  Only
values with a registered JSON codec spill (circuits, specifications,
routing results, statistics); entries carrying opaque artifacts stay
memory-only.

The disk tier has a bounded lifecycle: ``max_entries``/``max_bytes``
budgets trigger an LRU sweep (:meth:`PassCache.gc`) ordered by each
entry file's access stamp (its mtime, touched on every disk hit).
Entries are generation-stamped and written atomically
(``os.replace``), so concurrent writers can never produce a torn
read; in-flight entries — pinned via :meth:`PassCache.pin` while a
pipeline is computing or replaying them — are never evicted by this
instance's own sweeps.  Pins live in the instance, so a sweep run by
a different instance or process (e.g. ``python -m repro cache gc``)
cannot see them; crossing that line costs a recompute, never
corruption.

The disk tier is also *resilient* (PR 6): transient I/O errors are
retried per a :class:`~repro.resilience.RetryPolicy` and counted
(``io_errors`` with a memory/disk split in :meth:`PassCache.stats`)
instead of silently swallowed; corrupt or foreign-format entry files
are moved into ``<dir>/quarantine/`` under their original names,
never re-read and never silently deleted; and after ``degrade_after``
*consecutive* disk failures the tier trips into memory-only degraded
mode — compiles keep working off the memory tier, the flag shows up
in ``stats()``/``counters()``, and :meth:`PassCache.probe` recovers
the tier once the disk heals.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import json
import os
import re
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple, Union

from ..boolean.permutation import BitPermutation
from ..boolean.truth_table import TruthTable
from ..core.circuit import QuantumCircuit
from ..core.statistics import CircuitStatistics
from ..mapping.routing import RoutingResult
from ..resilience.errors import DegradedCache
from ..resilience.faults import fault_point, mutate_payload
from ..resilience.policies import RetryPolicy, as_retry
from ..synthesis.reversible import MctGate, ReversibleCircuit

#: Default number of entries a cache retains (LRU eviction).
DEFAULT_MAXSIZE = 512

#: Default retry policy for transient disk I/O: three quick attempts
#: with millisecond backoff — enough to ride out a transient EIO or a
#: busy file, cheap enough that a genuinely dead disk fails fast.
DISK_RETRY = RetryPolicy(
    max_attempts=3,
    base_delay=0.002,
    multiplier=4.0,
    max_delay=0.05,
    jitter=0.25,
    seed=0,
)

#: Consecutive disk failures before a tier trips into memory-only
#: degraded mode (``degrade_after``'s default).
DEFAULT_DEGRADE_AFTER = 5

#: Subdirectory (under the cache path) corrupt entries are moved to.
QUARANTINE_DIR = "quarantine"

#: On-disk entry format version; bumped when the schema changes.
#: Version 2 added the generation stamp (``gen``) written by every
#: spill, so readers can tell two atomic rewrites of one key apart.
DISK_FORMAT = 2

#: Names of the entry files the disk tier owns (sha256 hex + .json);
#: ``clear(disk=True)`` and :meth:`PassCache.gc` touch only these.
_ENTRY_FILE_RE = re.compile(r"[0-9a-f]{64}\.json")

#: Spill temp files older than this many seconds are presumed leaked
#: (a crashed writer) and removed by :meth:`PassCache.gc`.
_STALE_TMP_SECONDS = 300.0

#: Per-process monotonic generation counter for disk entry stamps.
_GENERATION = itertools.count(1)


def _slack(budget: Optional[int]) -> Optional[int]:
    """Return ~75% of a budget — the auto-gc hysteresis target."""
    if budget is None:
        return None
    return max(budget - max(1, budget // 4), 0)


def _copy_value(value: Any) -> Any:
    """Return a safe copy of one cached store value.

    Circuits use their cheap ``copy`` (gate objects are immutable);
    everything else is deep-copied.
    """
    if isinstance(value, (QuantumCircuit, ReversibleCircuit)):
        return value.copy()
    if value is None or isinstance(value, (int, float, str, bool, tuple)):
        return value
    return copy.deepcopy(value)


# ----------------------------------------------------------------------
# JSON codec for disk spilling
# ----------------------------------------------------------------------
class _Unspillable(Exception):
    """Internal: the value has no JSON codec (entry stays in memory)."""


def _encode(value: Any) -> Any:
    """Encode one store value as a type-tagged JSON structure."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, QuantumCircuit):
        return {
            "__t__": "qc",
            "name": value.name,
            "nq": value.num_qubits,
            "nc": value.num_clbits,
            "gates": [
                [
                    g.name,
                    list(g.targets),
                    list(g.controls),
                    list(g.params),
                    list(g.cbits),
                ]
                for g in value.gates
            ],
        }
    if isinstance(value, ReversibleCircuit):
        return {
            "__t__": "rev",
            "name": value.name,
            "lines": value.num_lines,
            "gates": [
                [g.target, list(g.controls), list(g.polarity)]
                for g in value.gates
            ],
        }
    if isinstance(value, TruthTable):
        return {"__t__": "tt", "n": value.num_vars, "bits": value.bits}
    if isinstance(value, BitPermutation):
        return {"__t__": "perm", "image": list(value.image)}
    if isinstance(value, RoutingResult):
        return {
            "__t__": "route",
            "circuit": _encode(value.circuit),
            "initial_layout": list(value.initial_layout),
            "final_layout": list(value.final_layout),
            "swap_count": value.swap_count,
            "position_of": list(value.position_of),
        }
    if isinstance(value, CircuitStatistics):
        return {
            "__t__": "stats",
            "num_qubits": value.num_qubits,
            "num_gates": value.num_gates,
            "depth": value.depth,
            "t_count": value.t_count,
            "t_depth": value.t_depth,
            "two_qubit_count": value.two_qubit_count,
            "clifford_count": value.clifford_count,
            "histogram": dict(value.histogram),
        }
    if isinstance(value, (list, tuple)):
        return {
            "__t__": "list" if isinstance(value, list) else "tuple",
            "items": [_encode(v) for v in value],
        }
    if isinstance(value, dict):
        if any(not isinstance(k, str) for k in value):
            raise _Unspillable(f"non-string dict key in {value!r}")
        return {
            "__t__": "dict",
            "items": {k: _encode(v) for k, v in value.items()},
        }
    raise _Unspillable(f"no JSON codec for {type(value).__name__}")


def _decode(value: Any) -> Any:
    """Decode a type-tagged JSON structure back into store values."""
    if not isinstance(value, dict):
        return value
    tag = value.get("__t__")
    if tag == "qc":
        circuit = QuantumCircuit(value["nq"], value["nc"], name=value["name"])
        for name, targets, controls, params, cbits in value["gates"]:
            circuit._add(
                name,
                tuple(targets),
                tuple(controls),
                tuple(params),
                tuple(cbits),
            )
        return circuit
    if tag == "rev":
        circuit = ReversibleCircuit(value["lines"], name=value["name"])
        for target, controls, polarity in value["gates"]:
            circuit.append(
                MctGate(target, tuple(controls), tuple(polarity))
            )
        return circuit
    if tag == "tt":
        return TruthTable(value["n"], value["bits"])
    if tag == "perm":
        return BitPermutation(value["image"])
    if tag == "route":
        return RoutingResult(
            circuit=_decode(value["circuit"]),
            initial_layout=list(value["initial_layout"]),
            final_layout=list(value["final_layout"]),
            swap_count=value["swap_count"],
            position_of=list(value["position_of"]),
        )
    if tag == "stats":
        return CircuitStatistics(
            num_qubits=value["num_qubits"],
            num_gates=value["num_gates"],
            depth=value["depth"],
            t_count=value["t_count"],
            t_depth=value["t_depth"],
            two_qubit_count=value["two_qubit_count"],
            clifford_count=value["clifford_count"],
            histogram=dict(value["histogram"]),
        )
    if tag == "list":
        return [_decode(v) for v in value["items"]]
    if tag == "tuple":
        return tuple(_decode(v) for v in value["items"])
    if tag == "dict":
        return {k: _decode(v) for k, v in value["items"].items()}
    return value


class PassCache:
    """Locked LRU cache mapping content keys to pass outputs.

    Args:
        maxsize: in-memory entry cap; the least recently used entry is
            evicted first.  ``None`` disables eviction.
        path: optional directory for the persistent tier; entries with
            JSON-codable values are written there and reloaded on a
            memory miss, including from other processes.
        max_entries: disk-tier entry budget; a spill that pushes the
            running tally past it triggers an LRU :meth:`gc` sweep.
            ``None`` leaves the tier unbounded.
        max_bytes: disk-tier byte budget, enforced like
            ``max_entries``.
        retry: retry policy for transient disk I/O — a
            :class:`~repro.resilience.RetryPolicy`, an int (attempt
            count), ``None`` (no retries), or ``"default"`` for
            :data:`DISK_RETRY`.
        degrade_after: consecutive disk failures before the tier trips
            into memory-only degraded mode (recover via
            :meth:`probe`); ``None`` never degrades.
    """

    def __init__(
        self,
        maxsize: Optional[int] = DEFAULT_MAXSIZE,
        path: Optional[str] = None,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        retry: Union[RetryPolicy, int, None, str] = "default",
        degrade_after: Optional[int] = DEFAULT_DEGRADE_AFTER,
    ) -> None:
        """Create an empty cache with the given capacity and tier."""
        self.maxsize = maxsize
        self.path = os.fspath(path) if path is not None else None
        if self.path is not None:
            os.makedirs(self.path, exist_ok=True)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        if isinstance(retry, str):
            if retry != "default":
                raise ValueError(f"unknown retry spec {retry!r}")
            self.retry: Optional[RetryPolicy] = DISK_RETRY
        else:
            self.retry = as_retry(retry)
        if degrade_after is not None and degrade_after < 1:
            raise ValueError("degrade_after must be positive or None")
        self.degrade_after = degrade_after
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.memory_evictions = 0
        self.disk_evictions = 0
        self.io_errors = 0
        self.memory_io_errors = 0
        self.disk_io_errors = 0
        self.retries = 0
        self.quarantined = 0
        self._consecutive_io_errors = 0
        self._degraded = False
        self._lock = threading.RLock()
        self._entries: (
            "OrderedDict[str, Tuple[Dict[str, Any], Dict[str, Any], bool]]"
        )
        self._entries = OrderedDict()
        # key -> pin count: pinned entries are never evicted by the
        # memory LRU cap or by gc() — they are in flight in a pipeline
        self._pins: Dict[str, int] = {}
        # entry-file basename -> pin count: the disk-tier view of the
        # same pins, maintained eagerly so gc's per-file check is an
        # O(1) lookup under the lock instead of hashing every pin
        self._pin_names: Dict[str, int] = {}
        # key -> (completion event, owning thread ident): the
        # single-flight registry Pipeline.apply uses so concurrent
        # flows computing the same key run it once
        self._inflight: Dict[str, Tuple[threading.Event, int]] = {}
        # this process's running (entries, bytes) view of the disk
        # tier, seeded lazily by one scan and resynced by every gc();
        # keeps budget checks and stats() off the listdir/stat path.
        # _tally_writes counts additive mutations (spills, drops) so
        # gc() can tell whether its unlocked directory scan went
        # stale; _tally_resets counts destructive ones (clear), which
        # additionally forbid installing a concurrently-taken seed.
        self._disk_tally: Optional[Tuple[int, int]] = None
        self._tally_writes = 0
        self._tally_resets = 0
        # keys this process knows to have an entry file (spilled or
        # loaded): gates the LRU access stamp so memory hits on
        # never-spilled entries skip a guaranteed-failing utime
        self._spilled: set = set()

    def __len__(self) -> int:
        """Return the number of in-memory entries."""
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # pinning and single-flight (in-flight entry lifecycle)
    # ------------------------------------------------------------------
    def _pin_locked(self, key: str) -> None:
        """Add one pin for ``key`` (caller holds the lock)."""
        self._pins[key] = self._pins.get(key, 0) + 1
        if self.path is not None:
            name = os.path.basename(self._entry_path(key))
            self._pin_names[name] = self._pin_names.get(name, 0) + 1

    def _unpin_locked(self, key: str) -> None:
        """Release one pin for ``key`` (caller holds the lock)."""
        count = self._pins.get(key, 0) - 1
        if count > 0:
            self._pins[key] = count
        else:
            self._pins.pop(key, None)
        if self.path is not None:
            name = os.path.basename(self._entry_path(key))
            count = self._pin_names.get(name, 0) - 1
            if count > 0:
                self._pin_names[name] = count
            else:
                self._pin_names.pop(name, None)

    def pin(self, key: str) -> None:
        """Protect ``key`` from eviction until :meth:`unpin`.

        Pins nest (a count per key); both the memory LRU cap and
        :meth:`gc` skip pinned entries.
        """
        with self._lock:
            self._pin_locked(key)

    def unpin(self, key: str) -> None:
        """Release one :meth:`pin` of ``key``."""
        with self._lock:
            self._unpin_locked(key)

    def pinned(self, key: str) -> bool:
        """Return whether ``key`` currently holds any pins."""
        with self._lock:
            return self._pins.get(key, 0) > 0

    def begin_compute(
        self, key: str
    ) -> Tuple[str, Optional[threading.Event]]:
        """Claim (or observe) the in-flight computation of ``key``.

        The caller must pair a ``"leader"`` claim with
        :meth:`end_compute` (use ``try/finally``); the entry stays
        pinned — safe from every eviction path — for the duration.

        Returns:
            ``("leader", event)`` — this caller should compute and
            store the entry; ``("follower", event)`` — another thread
            is computing it, wait on the event and re-read the cache;
            ``("reentrant", None)`` — this thread is already the
            leader for the key (a nested flow), compute directly
            without waiting to avoid self-deadlock.
        """
        me = threading.get_ident()
        with self._lock:
            inflight = self._inflight.get(key)
            if inflight is None:
                event = threading.Event()
                self._inflight[key] = (event, me)
                self._pin_locked(key)
                return "leader", event
            event, owner = inflight
            if owner == me:
                return "reentrant", None
            return "follower", event

    def end_compute(self, key: str) -> None:
        """Release a ``"leader"`` claim and wake the key's followers."""
        with self._lock:
            inflight = self._inflight.pop(key, None)
            if inflight is not None:
                self._unpin_locked(key)
        if inflight is not None:
            inflight[0].set()

    # ------------------------------------------------------------------
    # disk-tier resilience
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Whether the disk tier is in memory-only degraded mode."""
        return self._degraded

    def _record_disk_error(self, site: str, advisory: bool = False) -> None:
        """Count one I/O failure; data-path ones advance degradation.

        Advisory failures (LRU access-stamp touches serving the memory
        tier's bookkeeping) count under the memory split and never
        trip degraded mode — losing a stamp costs eviction precision,
        not data.
        """
        with self._lock:
            self.io_errors += 1
            if advisory:
                self.memory_io_errors += 1
                return
            self.disk_io_errors += 1
            self._consecutive_io_errors += 1
            if (
                self.degrade_after is not None
                and not self._degraded
                and self._consecutive_io_errors >= self.degrade_after
            ):
                self._degraded = True

    def _disk_io(self, operation, site: str):
        """Run one disk operation under the tier's retry policy.

        Transient failures (per the policy's classifier) are retried
        with backoff; the final failure is counted against the tier —
        advancing degradation — and re-raised for the caller to turn
        into its own fallback (skip the spill, miss the load).  Any
        success resets the consecutive-failure streak.
        """
        policy = self.retry
        attempt = 0
        while True:
            try:
                result = operation()
            except OSError as exc:
                if (
                    policy is not None
                    and attempt + 1 < policy.max_attempts
                    and policy.is_transient(exc)
                ):
                    with self._lock:
                        self.retries += 1
                    time.sleep(policy.backoff(attempt))
                    attempt += 1
                    continue
                self._record_disk_error(site)
                raise
            with self._lock:
                self._consecutive_io_errors = 0
            return result

    def _quarantine(
        self, entry_path: str, key: Optional[str] = None
    ) -> Optional[bool]:
        """Move one corrupt entry file into ``quarantine/``.

        The file keeps its original name, so an operator can inspect
        (or replay) exactly what was rejected; quarantined files are
        outside the content-addressed namespace and can never
        resurrect into either tier.

        Returns:
            ``True`` when moved (or, failing that, dropped), ``None``
            when the file was already gone, ``False`` when it could
            not even be removed.
        """
        name = os.path.basename(entry_path)
        quarantine_dir = os.path.join(self.path, QUARANTINE_DIR)
        with self._lock:
            try:
                size = os.stat(entry_path).st_size
            except OSError:
                size = 0
            try:
                os.makedirs(quarantine_dir, exist_ok=True)
                os.replace(
                    entry_path, os.path.join(quarantine_dir, name)
                )
            except FileNotFoundError:
                return None
            except OSError:
                # cannot move it aside — drop it rather than leave a
                # corrupt file in place to be re-read forever
                try:
                    os.unlink(entry_path)
                except FileNotFoundError:
                    return None
                except OSError:
                    self._record_disk_error("cache.quarantine")
                    return False
            self.quarantined += 1
            if key is not None:
                self._spilled.discard(key)
            self._tally_writes += 1
            if self._disk_tally is not None:
                entries, total = self._disk_tally
                self._disk_tally = (
                    max(entries - 1, 0), max(total - size, 0)
                )
            return True

    def probe(self, strict: bool = False) -> bool:
        """Test the disk tier; recover from degraded mode on success.

        Writes, reads back, and removes one probe file under the cache
        path.  A full round trip clears the degraded flag and the
        consecutive-failure streak, so spills and loads resume.

        Args:
            strict: raise :class:`~repro.resilience.DegradedCache`
                on failure instead of returning ``False``.

        Returns:
            ``True`` when the disk tier is usable (memory-only caches
            trivially are), ``False`` otherwise.

        Raises:
            DegradedCache: on failure when ``strict`` is set.
        """
        if self.path is None:
            return True
        probe_path = os.path.join(
            self.path,
            f".probe.{os.getpid()}.{threading.get_ident()}",
        )
        try:
            with open(probe_path, "w") as stream:
                stream.write("probe")
            with open(probe_path) as stream:
                echoed = stream.read()
            os.unlink(probe_path)
            if echoed != "probe":
                raise OSError(f"probe read back {echoed!r}")
        except OSError as exc:
            self._record_disk_error("cache.probe")
            if strict:
                raise DegradedCache(
                    f"cache.probe: disk tier at {self.path!r} "
                    f"unusable: {exc}",
                    site="cache.probe",
                ) from exc
            return False
        with self._lock:
            self._degraded = False
            self._consecutive_io_errors = 0
        return True

    # ------------------------------------------------------------------
    # disk tier
    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> str:
        """Return the spill file path for a content key."""
        digest = hashlib.sha256(key.encode()).hexdigest()
        return os.path.join(self.path, f"{digest}.json")

    def _spill(
        self,
        key: str,
        entry: Tuple[Dict[str, Any], Dict[str, Any], bool],
    ) -> None:
        """Write one entry to the disk tier (best effort)."""
        if self._degraded:
            return  # memory-only mode: skip the disk until probe()
        outputs, details, verified = entry
        try:
            payload = json.dumps(
                {
                    "format": DISK_FORMAT,
                    "key": key,
                    "gen": [os.getpid(), next(_GENERATION)],
                    "verified": verified,
                    "outputs": {k: _encode(v) for k, v in outputs.items()},
                    "details": {k: _encode(v) for k, v in details.items()},
                }
            )
        except (_Unspillable, TypeError, ValueError):
            return
        target = self._entry_path(key)
        # the generation stamp plus the atomic os.replace make
        # concurrent writers safe: readers see either the old or the
        # new complete entry, never a torn mix of the two
        tmp = f"{target}.tmp.{os.getpid()}.{threading.get_ident()}"

        def write() -> int:
            """Write the payload to the temp file; return its length.

            One injection visit per attempt: a raise-spec becomes a
            (retried) I/O error, a torn-spec truncates the payload
            exactly as an interrupted write would.
            """
            data = mutate_payload("cache.spill.write", payload)
            with open(tmp, "w") as stream:
                stream.write(data)
            return len(data)

        try:
            written = self._disk_io(write, "cache.spill.write")
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        # stat + replace + tally update are one locked step, so two
        # racing spills of the same new key cannot both see "no
        # previous file" and double-count the entry
        with self._lock:
            try:
                previous_size: Optional[int] = os.stat(target).st_size
            except OSError:
                previous_size = None
            try:
                os.replace(tmp, target)
            except OSError:
                replaced = False
            else:
                replaced = True
                self._spilled.add(key)
                # bump unconditionally: gc()/_disk_usage() use this to
                # detect spills landing during their unlocked scans
                # even while the tally itself is still unseeded
                self._tally_writes += 1
                if self._disk_tally is not None:
                    entries, size = self._disk_tally
                    self._disk_tally = (
                        entries + (previous_size is None),
                        size + written - (previous_size or 0),
                    )
        if not replaced:
            self._record_disk_error("cache.spill.write")
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        if self.max_entries is not None or self.max_bytes is not None:
            entries, size = self._disk_usage()
            if (
                self.max_entries is not None and entries > self.max_entries
            ) or (self.max_bytes is not None and size > self.max_bytes):
                # hysteresis: sweep ~25% below the budget so a tier
                # sitting at its cap does not pay a full directory
                # scan on every subsequent spill
                self.gc(
                    max_entries=_slack(self.max_entries),
                    max_bytes=_slack(self.max_bytes),
                )

    def _load(
        self, key: str
    ) -> Optional[Tuple[Dict[str, Any], Dict[str, Any], bool]]:
        """Read one entry back from the disk tier, if present."""
        if self._degraded:
            return None  # memory-only mode: miss without touching disk
        entry_path = self._entry_path(key)

        def read() -> Optional[str]:
            """Read the entry file text (``None`` on a plain miss)."""
            fault_point("cache.load.read")
            try:
                with open(entry_path) as stream:
                    return stream.read()
            except FileNotFoundError:
                return None  # a plain miss, not an I/O failure

        try:
            text = self._disk_io(read, "cache.load.read")
        except OSError:
            return None
        if text is None:
            return None
        try:
            payload = json.loads(text)
            if (
                payload.get("format") != DISK_FORMAT
                or payload.get("key") != key
            ):
                self._quarantine(entry_path, key)
                return None
            entry = (
                {k: _decode(v) for k, v in payload["outputs"].items()},
                {k: _decode(v) for k, v in payload["details"].items()},
                bool(payload.get("verified", False)),
            )
        except (ValueError, KeyError, TypeError, AttributeError):
            # torn write or foreign file: move it aside, never re-read
            self._quarantine(entry_path, key)
            return None
        try:
            # bump the LRU access stamp gc() orders evictions by
            os.utime(entry_path, None)
        except FileNotFoundError:
            pass  # concurrently evicted — not an error
        except OSError:
            self._record_disk_error("cache.load.touch", advisory=True)
        return entry

    # ------------------------------------------------------------------
    def get(
        self, key: str, count_miss: bool = True
    ) -> Optional[Tuple[Dict[str, Any], Dict[str, Any], bool]]:
        """Look up ``key`` and return ``(outputs, details, verified)``.

        Args:
            key: content key built by the pipeline.
            count_miss: whether a miss bumps the ``misses`` counter.
                The pipeline's first probe passes ``False`` and
                accounts the miss itself once it knows whether the
                lookup ends in a computation or in a single-flight
                replay — otherwise every replayed follower would log
                one spurious miss per wait.

        Returns:
            A fresh copy of the stored output fields, the recorded
            pass statistics, and whether the entry has already passed
            functional verification — or ``None`` on a miss in both
            tiers.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                on_disk = key in self._spilled
        if (
            entry is not None
            and self.path is not None
            and on_disk
            and not self._degraded
        ):
            # keep the disk LRU stamp in sync with memory-tier reuse,
            # or gc would evict the hottest shared-prefix entries
            # first (their files would never look recently used)
            try:
                os.utime(self._entry_path(key), None)
            except OSError as exc:
                # the file was evicted (gc/other process): forget it,
                # so later hits stop paying a guaranteed-failing touch
                if not isinstance(exc, FileNotFoundError):
                    self._record_disk_error(
                        "cache.get.touch", advisory=True
                    )
                with self._lock:
                    self._spilled.discard(key)
        if entry is None and self.path is not None:
            # file I/O happens outside the lock; insertion re-checks
            loaded = self._load(key)
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self.hits += 1
                elif loaded is not None:
                    entry = loaded
                    self.disk_hits += 1
                    self.hits += 1
                    self._spilled.add(key)
                    try:
                        self._store(key, entry)
                    except OSError:
                        # injected memory-tier failure: the caller
                        # still gets the entry, it just is not cached
                        self.io_errors += 1
                        self.memory_io_errors += 1
        if entry is None:
            if count_miss:
                with self._lock:
                    self.misses += 1
            return None
        # entry tuples are replaced wholesale, never mutated in place,
        # so the defensive copy can run without holding the lock
        outputs, details, verified = entry
        return (
            {name: _copy_value(value) for name, value in outputs.items()},
            dict(details),
            verified,
        )

    def count_miss(self) -> None:
        """Record one cache miss (see ``get(count_miss=False)``)."""
        with self._lock:
            self.misses += 1

    def _store(
        self,
        key: str,
        entry: Tuple[Dict[str, Any], Dict[str, Any], bool],
    ) -> None:
        """Insert an entry into the memory tier and apply the LRU cap."""
        fault_point("cache.store")
        self._entries[key] = entry
        self._entries.move_to_end(key)
        if self.maxsize is not None:
            while len(self._entries) > self.maxsize:
                victim = None
                for candidate in self._entries:
                    # skip in-flight entries and the entry being
                    # inserted right now — never evicted; like gc(),
                    # prefer a transiently-over-budget tier to
                    # dropping either.  The scan stops at the first
                    # evictable key, so the common (pin-free) case
                    # stays O(1) per insert.
                    if candidate != key and not self._pins.get(candidate):
                        victim = candidate
                        break
                if victim is None:
                    break  # everything is pinned — allow the overflow
                del self._entries[victim]
                self.memory_evictions += 1

    def put(
        self,
        key: str,
        outputs: Dict[str, Any],
        details: Dict[str, Any],
        verified: bool = False,
    ) -> None:
        """Store pass outputs under ``key`` (both tiers).

        Args:
            key: content key built by the pipeline.
            outputs: store-field values the pass wrote.
            details: the pass's statistics dict for replayed records.
            verified: whether the outputs passed functional
                verification before being stored.
        """
        entry = (
            {name: _copy_value(value) for name, value in outputs.items()},
            dict(details),
            verified,
        )
        try:
            with self._lock:
                self._store(key, entry)
        except OSError:
            # injected memory-tier failure: the insert is best effort,
            # the computed result the caller holds is unaffected
            with self._lock:
                self.io_errors += 1
                self.memory_io_errors += 1
            return
        if self.path is not None:
            # the spill encodes from this call's private entry tuple,
            # so serializing outside the lock races with nothing
            self._spill(key, entry)

    def mark_verified(self, key: str) -> None:
        """Flag an existing entry as functionally verified."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry = (entry[0], entry[1], True)
                self._entries[key] = entry
        if entry is not None and self.path is not None:
            self._spill(key, entry)

    def drop(self, key: str) -> None:
        """Remove one entry (e.g. after it failed verification)."""
        with self._lock:
            self._entries.pop(key, None)
            if self.path is not None:
                self._spilled.discard(key)
                entry_path = self._entry_path(key)
                try:
                    size = os.stat(entry_path).st_size
                    os.unlink(entry_path)
                except FileNotFoundError:
                    pass  # never spilled or already evicted
                except OSError:
                    self._record_disk_error("cache.drop.unlink")
                else:
                    self._tally_writes += 1
                    if self._disk_tally is not None:
                        entries, total = self._disk_tally
                        self._disk_tally = (
                            max(entries - 1, 0), max(total - size, 0)
                        )

    def clear(self, disk: bool = False) -> None:
        """Drop all in-memory entries and reset the counters.

        Args:
            disk: also delete the persistent tier's entry files (only
                content-named ``<sha256>.json`` files this cache
                owns — other files in the directory are untouched).
        """
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.disk_hits = 0
            self.memory_evictions = 0
            self.disk_evictions = 0
            self.io_errors = 0
            self.memory_io_errors = 0
            self.disk_io_errors = 0
            self.retries = 0
            self.quarantined = 0
            self._consecutive_io_errors = 0
            self._degraded = False
            if disk and self.path is not None:
                for name in os.listdir(self.path):
                    if _ENTRY_FILE_RE.fullmatch(name):
                        try:
                            os.unlink(os.path.join(self.path, name))
                        except OSError:
                            pass
                self._spilled.clear()
                self._disk_tally = None  # reseed on next use
                # invalidate any seeding scan that started pre-clear
                self._tally_resets += 1

    # ------------------------------------------------------------------
    # disk-tier lifecycle
    # ------------------------------------------------------------------
    def _scan_disk(self) -> List[Tuple[str, str, float, int]]:
        """List disk entries as ``(name, path, atime_stamp, size)``."""
        if self.path is None:
            return []
        try:
            names = os.listdir(self.path)
        except OSError:
            return []
        entries = []
        for name in names:
            if not _ENTRY_FILE_RE.fullmatch(name):
                continue
            entry_path = os.path.join(self.path, name)
            try:
                status = os.stat(entry_path)
            except OSError:
                continue  # concurrently evicted — not an error
            entries.append(
                (name, entry_path, status.st_mtime, status.st_size)
            )
        return entries

    def _disk_usage(self) -> Tuple[int, int]:
        """Return this process's (entries, bytes) view of the tier.

        Seeded by one directory scan on first use, then maintained
        incrementally by spills/drops and resynced by every
        :meth:`gc`, so the hot path never re-walks the directory.
        Concurrent writers in other processes drift this view until
        the next :meth:`gc` (which rescans).
        """
        if self.path is None:
            return (0, 0)
        with self._lock:
            tally = self._disk_tally
            resets_before = self._tally_resets
        if tally is None:
            scan = self._scan_disk()
            tally = (len(scan), sum(item[3] for item in scan))
            with self._lock:
                if self._disk_tally is not None:
                    # another thread seeded (and kept current) first
                    tally = self._disk_tally
                elif self._tally_resets == resets_before:
                    # spills racing the scan leave this seed off by at
                    # most the in-flight writes (gc() resyncs); still
                    # installing it keeps sustained-contention spills
                    # from re-walking the directory every time
                    self._disk_tally = tally
                # else: a clear() landed mid-scan — never install
                # pre-clear totals; reseed on next use
        return tally

    def _unlink_if_unpinned(self, name: str, entry_path: str) -> Optional[bool]:
        """Delete one entry file unless its key is pinned right now.

        The pin check and the unlink happen under the cache lock —
        the same lock :meth:`pin`/:meth:`begin_compute` take — so a
        pin can never slip in between check and delete.

        Returns:
            ``True`` when unlinked, ``False`` when skipped because
            the key is in flight, ``None`` when the file was already
            gone (another process evicted it first) or the unlink
            itself failed (counted as a disk I/O error).
        """
        with self._lock:
            if self._pin_names.get(name, 0) > 0:
                return False
            try:
                fault_point("cache.gc.unlink")
                os.unlink(entry_path)
            except FileNotFoundError:
                return None
            except OSError:
                self._record_disk_error("cache.gc.unlink")
                return None
            return True

    def gc(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        validate: bool = False,
    ) -> Dict[str, int]:
        """Sweep the disk tier down to its budgets (LRU order).

        Entries are evicted oldest-access-stamp first until both the
        entry and the byte budget hold.  Entries pinned in this cache
        instance — in flight in a pipeline — are never evicted, even
        if that leaves a budget exceeded (pins in other instances or
        processes are invisible here; evicting their entries costs a
        recompute, never corruption).  Leaked spill temp files older
        than five minutes are removed as well.

        Args:
            max_entries: per-call entry budget overriding the
                instance's ``max_entries``.
            max_bytes: per-call byte budget overriding ``max_bytes``.
            validate: additionally parse every entry file and move the
                corrupt or foreign-format ones into ``quarantine/``
                (CLI maintenance mode); quarantined files count as
                evicted and additionally under ``quarantined``.

        Returns:
            A dict with ``scanned``, ``evicted``, ``quarantined``,
            ``pinned`` (skipped in-flight entries) and the surviving
            ``entries``/``bytes``.
        """
        if self.path is None:
            return {
                "scanned": 0,
                "evicted": 0,
                "quarantined": 0,
                "pinned": 0,
                "entries": 0,
                "bytes": 0,
            }
        try:
            fault_point("cache.gc.scan")
        except OSError:
            # a failed directory scan aborts the sweep (exactly as a
            # failing os.listdir does): nothing evicted, tier intact
            self._record_disk_error("cache.gc.scan")
            return {
                "scanned": 0,
                "evicted": 0,
                "quarantined": 0,
                "pinned": 0,
                "entries": 0,
                "bytes": 0,
            }
        limit_entries = (
            max_entries if max_entries is not None else self.max_entries
        )
        limit_bytes = max_bytes if max_bytes is not None else self.max_bytes
        with self._lock:
            tally_writes_before = self._tally_writes
            tally_resets_before = self._tally_resets
        now = time.time()
        try:
            for name in os.listdir(self.path):
                if ".json.tmp." not in name:
                    continue
                stale = os.path.join(self.path, name)
                try:
                    if now - os.stat(stale).st_mtime > _STALE_TMP_SECONDS:
                        os.unlink(stale)
                except OSError:
                    pass
        except OSError:
            pass
        entries = self._scan_disk()
        scanned = len(entries)
        evicted = 0
        quarantined = 0
        if validate:
            survivors = []
            for name, entry_path, stamp, size in entries:
                try:
                    with open(entry_path) as stream:
                        payload = json.load(stream)
                    generation = payload.get("gen")
                    valid = (
                        payload.get("format") == DISK_FORMAT
                        and "key" in payload
                        and "outputs" in payload
                        and isinstance(generation, list)
                        and len(generation) == 2
                    )
                except (OSError, ValueError):
                    valid = False
                if valid:
                    survivors.append((name, entry_path, stamp, size))
                    continue
                # corrupt entries are quarantined, not deleted: the
                # pin check and the move share the cache lock so an
                # in-flight key can never be swept out from under a
                # pipeline
                with self._lock:
                    if self._pin_names.get(name, 0) > 0:
                        moved: Optional[bool] = False
                    else:
                        moved = self._quarantine(entry_path)
                if moved:
                    evicted += 1
                    quarantined += 1
                elif moved is False:  # in flight — keep it
                    survivors.append((name, entry_path, stamp, size))
            entries = survivors
        entries.sort(key=lambda item: item[2])  # oldest access first
        total_entries = len(entries)
        total_bytes = sum(item[3] for item in entries)
        skipped_pins = 0
        for name, entry_path, _stamp, size in entries:
            over_budget = (
                limit_entries is not None and total_entries > limit_entries
            ) or (limit_bytes is not None and total_bytes > limit_bytes)
            if not over_budget:
                break
            unlinked = self._unlink_if_unpinned(name, entry_path)
            if unlinked is False:  # pinned at delete time — in flight
                skipped_pins += 1
                continue
            if unlinked is None:  # another process won the race
                total_entries -= 1
                total_bytes -= size
                continue
            evicted += 1
            total_entries -= 1
            total_bytes -= size
        with self._lock:
            self.disk_evictions += evicted
            if (
                self._tally_writes == tally_writes_before
                and self._tally_resets == tally_resets_before
            ):
                self._disk_tally = (total_entries, total_bytes)
            else:
                # a spill or clear landed during the (unlocked) scan,
                # so these totals are stale — drop the tally; the next
                # _disk_usage() reseeds it with one scan
                self._disk_tally = None
        return {
            "scanned": scanned,
            "evicted": evicted,
            "quarantined": quarantined,
            "pinned": skipped_pins,
            "entries": total_entries,
            "bytes": total_bytes,
        }

    def stats(self) -> Dict[str, int]:
        """Return the cache's counters and tier sizes.

        Returns:
            A dict with the in-memory ``entries``, the ``hits`` /
            ``misses`` / ``disk_hits`` counters, the total
            ``evictions`` (memory LRU plus disk gc, with the
            ``memory_evictions`` / ``disk_evictions`` split), the
            resilience counters — total ``io_errors`` with the
            ``memory_io_errors`` / ``disk_io_errors`` split, I/O
            ``retries``, ``quarantined`` entries, and ``degraded``
            (1 while the tier is memory-only) — and the disk tier's
            ``disk_entries`` / ``disk_bytes`` (this process's
            incrementally-maintained view — one directory scan on
            first use, resynced by every :meth:`gc`).
        """
        disk_entries, disk_bytes = self._disk_usage()
        with self._lock:
            return self._counters_locked(disk_entries, disk_bytes)

    def counters(self) -> Dict[str, Optional[int]]:
        """Return :meth:`stats` without ever scanning the directory.

        The hot-path variant (every compilation snapshots this): the
        ``disk_entries`` / ``disk_bytes`` figures come from the
        running tally when this process has already seeded it (budget
        enforcement or a prior :meth:`stats`/:meth:`gc` call) and are
        ``None`` otherwise — call :meth:`stats` when an exact disk
        view is worth a scan.
        """
        with self._lock:
            tally = self._disk_tally if self.path is not None else (0, 0)
            disk_entries, disk_bytes = tally if tally is not None else (
                None, None
            )
            return self._counters_locked(disk_entries, disk_bytes)

    def _counters_locked(
        self, disk_entries: Optional[int], disk_bytes: Optional[int]
    ) -> Dict[str, Optional[int]]:
        """Assemble the stats payload (caller holds the lock)."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "evictions": self.memory_evictions + self.disk_evictions,
            "memory_evictions": self.memory_evictions,
            "disk_evictions": self.disk_evictions,
            "io_errors": self.io_errors,
            "memory_io_errors": self.memory_io_errors,
            "disk_io_errors": self.disk_io_errors,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "degraded": int(self._degraded),
            "disk_entries": disk_entries,
            "disk_bytes": disk_bytes,
        }


_SHARED: Optional[PassCache] = None


def shared_cache() -> PassCache:
    """Return the process-wide cache shared by default pipelines."""
    global _SHARED
    if _SHARED is None:
        _SHARED = PassCache()
    return _SHARED

"""Flow state and content fingerprinting for the pass manager.

A compilation flow (Sec. VI, Eq. (5)) threads a small store through a
sequence of passes: the current Boolean specification, the current
reversible (MCT) cascade, the current quantum circuit, and the routing
bookkeeping.  :class:`FlowState` is that store; it mirrors the RevKit
shell's function/circuit registers so the shell, the framework flows,
and the benchmarks can all share one pass-manager substrate.

:func:`state_token` and :func:`state_key` derive deterministic content
fingerprints from the store, which the pass-result cache uses to key
results by *what* a pass consumed rather than by object identity.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Union

from ..boolean.permutation import BitPermutation
from ..boolean.truth_table import TruthTable
from ..core.circuit import QuantumCircuit
from ..mapping.routing import RoutingResult
from ..synthesis.reversible import ReversibleCircuit

#: Names of the structured fields a pass may read or write.
FIELDS = ("function", "reversible", "quantum", "routing", "artifacts")


class PipelineError(RuntimeError):
    """Raised when a pass cannot run or a flow is malformed."""


@dataclass
class FlowState:
    """The store threaded through a compilation flow.

    Attributes:
        function: Boolean specification (permutation or truth table).
        reversible: current MCT cascade.
        quantum: current quantum circuit.
        routing: layout bookkeeping of the last routing pass.
        artifacts: free-form side products (emitted code, synthesis
            result objects with ancilla bookkeeping, ...).
    """

    function: Optional[Union[BitPermutation, TruthTable]] = None
    reversible: Optional[ReversibleCircuit] = None
    quantum: Optional[QuantumCircuit] = None
    routing: Optional[RoutingResult] = None
    artifacts: Dict[str, Any] = field(default_factory=dict)

    def copy(self, skip: Iterable[str] = ()) -> "FlowState":
        """Return a shallow-but-safe copy of the store.

        Circuits are copied via their own ``copy`` (gate objects are
        immutable), the artifacts dict is re-created; specification and
        routing objects are shared (treated as read-only).

        Args:
            skip: circuit fields (``reversible``/``quantum``) to carry
                over by reference instead of copying — an optimization
                for callers about to overwrite them immediately.
        """
        reversible, quantum = self.reversible, self.quantum
        if reversible is not None and "reversible" not in skip:
            reversible = reversible.copy()
        if quantum is not None and "quantum" not in skip:
            quantum = quantum.copy()
        return FlowState(
            function=self.function,
            reversible=reversible,
            quantum=quantum,
            routing=self.routing,
            artifacts=dict(self.artifacts),
        )


def state_token(value: Any) -> str:
    """Return a deterministic content token for one store value.

    Args:
        value: a store field value — ``None``, a specification, a
            circuit, a routing result, or the artifacts dict.

    Returns:
        A string that is equal exactly when the content is equal,
        suitable for hashing into a cache key.
    """
    if value is None:
        return "none"
    if isinstance(value, BitPermutation):
        return f"perm:{tuple(value.image)!r}"
    if isinstance(value, TruthTable):
        return f"tt:{value.num_vars}:{value.bits}"
    if isinstance(value, ReversibleCircuit):
        gates = tuple(
            (g.target, g.controls, g.polarity) for g in value.gates
        )
        # the name participates: replayed outputs carry name-derived
        # metadata (``..._simp``, QASM headers), which must belong to
        # the circuit actually looked up.
        return f"rev:{value.name}:{value.num_lines}:{gates!r}"
    if isinstance(value, QuantumCircuit):
        gates = tuple(
            (g.name, g.targets, g.controls, g.params, g.cbits)
            for g in value.gates
        )
        return (
            f"qc:{value.name}:{value.num_qubits}:"
            f"{value.num_clbits}:{gates!r}"
        )
    if isinstance(value, RoutingResult):
        return (
            f"route:{state_token(value.circuit)}:"
            f"{value.initial_layout!r}:{value.final_layout!r}"
        )
    if isinstance(value, dict):
        items = sorted((str(k), state_token(v)) for k, v in value.items())
        return f"dict:{items!r}"
    return f"obj:{value!r}"


def state_key(state: FlowState, fields: Iterable[str]) -> str:
    """Hash the named store fields into one hex content key.

    Args:
        state: the flow store to fingerprint.
        fields: field names (a subset of :data:`FIELDS`) to include.

    Returns:
        A sha256 hex digest over the selected fields' content tokens.
    """
    digest = hashlib.sha256()
    for name in fields:
        digest.update(name.encode())
        digest.update(b"=")
        digest.update(state_token(getattr(state, name)).encode())
        digest.update(b";")
    return digest.hexdigest()

"""Declarative flow presets mirroring the paper's pipelines.

Three preset flows cover the paper's three tool stories:

* :data:`EQ5` — the RevKit command script of Sec. VI, Eq. (5)
  (``revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c``);
* :data:`QSHARP` — the RevKit-as-preprocessor pipeline behind the Q#
  oracle of Sec. VIII, Fig. 10 (synthesize, simplify, map to
  Clifford+T, cancel) — code emission happens on the result;
* :data:`DEVICE` — the device flow of Sec. VII: cancellation, on-need
  Clifford+T lowering, T-par, and routing onto the paper's 5-qubit
  IBM QE chip.

Each preset is a :class:`Flow`: a named, immutable pass sequence.
The builder functions (:func:`eq5`, :func:`qsharp`, :func:`device`)
parameterize the same shapes for sweeps.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..mapping.routing import CouplingMap
from .passes import (
    GENERATOR_KINDS,
    CancelPass,
    GeneratePass,
    MapToCliffordTPass,
    Pass,
    RoutePass,
    SimplifyPass,
    StatisticsPass,
    SynthesisPass,
    TparPass,
)
from .runner import Pipeline, PipelineResult
from .state import FlowState, PipelineError


@dataclass(frozen=True)
class Flow:
    """A named, immutable sequence of passes.

    Attributes:
        name: preset identifier (``eq5``, ``qsharp``, ``device``).
        description: one-line summary shown in reports.
        passes: the pass sequence, first to last.
        emitter: default :mod:`repro.emit` format for results of this
            flow (used by ``CompilationResult.emit()`` when the
            compilation carried no target); ``None`` means no default.
    """

    name: str
    description: str
    passes: Tuple[Pass, ...]
    emitter: Optional[str] = None

    def run(
        self,
        state: Optional[FlowState] = None,
        pipeline: Optional[Pipeline] = None,
        **pipeline_options,
    ) -> PipelineResult:
        """Execute the flow and return the pipeline result.

        Args:
            state: initial store (fresh and empty by default).
            pipeline: runner to execute on; a new one is created from
                ``pipeline_options`` (``verify=``, ``cache=``) when
                omitted.
            **pipeline_options: forwarded to :class:`~.runner.Pipeline`;
                mutually exclusive with ``pipeline`` (the explicit
                runner already carries its own configuration).

        Returns:
            The :class:`~.runner.PipelineResult` of this execution.

        Raises:
            PipelineError: when both ``pipeline`` and
                ``pipeline_options`` are given (the message names the
                conflicting kwargs), or when an option is not one
                :class:`~.runner.Pipeline` accepts.
        """
        if pipeline is not None and pipeline_options:
            conflict = ", ".join(
                f"{name}=" for name in sorted(pipeline_options)
            )
            raise PipelineError(
                f"flow {self.name!r}: conflicting keyword arguments "
                f"pipeline= and {conflict}; the explicit runner "
                "already carries its own configuration, pass one or "
                "the other"
            )
        if pipeline is not None:
            runner = pipeline
        else:
            valid = tuple(
                name
                for name in inspect.signature(
                    Pipeline.__init__
                ).parameters
                if name != "self"
            )
            unknown = sorted(set(pipeline_options) - set(valid))
            if unknown:
                names = ", ".join(f"{name}=" for name in unknown)
                raise PipelineError(
                    f"flow {self.name!r}: unknown pipeline option(s) "
                    f"{names}; valid options are "
                    + ", ".join(f"{name}=" for name in valid)
                )
            runner = Pipeline(**pipeline_options)
        return runner.run(self.passes, state, flow_name=self.name)

    def __str__(self) -> str:
        """Return ``name: pass1 -> pass2 -> ...``."""
        chain = " -> ".join(p.name for p in self.passes)
        return f"{self.name}: {chain}"


def _generate_pass(options) -> GeneratePass:
    """Translate revgen-style keyword options into a GeneratePass.

    Exactly one generator-family key (``hwb=4``, ``adder=4``, ...)
    selects kind and size; the rest (``seed``, ``const``, ``amount``)
    are family options.
    """
    kinds = [k for k in options if k in GENERATOR_KINDS]
    if len(kinds) != 1:
        raise PipelineError(
            f"need exactly one generator family out of {GENERATOR_KINDS}"
        )
    kind = kinds[0]
    n = options.pop(kind)
    return GeneratePass(kind, n, **options)


def eq5(synthesis: str = "tbs", **revgen_options) -> Flow:
    """Build the Eq. (5) RevKit flow for any benchmark function.

    Args:
        synthesis: synthesis method name for the ``tbs`` stage.
        **revgen_options: revgen-style generator selection (defaults
            to ``hwb=4``, the paper's instance).

    Returns:
        A :class:`Flow` equivalent to
        ``revgen ...; tbs; revsimp; rptm; tpar; ps -c``.
    """
    if not revgen_options:
        revgen_options = {"hwb": 4}
    label = ",".join(f"{k}={v}" for k, v in sorted(revgen_options.items()))
    if synthesis != "tbs":
        label += f",synthesis={synthesis}"
    return Flow(
        name=f"eq5({label})",
        description="Sec. VI Eq. (5): revgen; tbs; revsimp; rptm; tpar; ps -c",
        passes=(
            _generate_pass(dict(revgen_options)),
            SynthesisPass(synthesis),
            SimplifyPass(),
            MapToCliffordTPass(relative_phase=True),
            TparPass(pre_cancel=True, post_cancel=True),
            StatisticsPass(),
        ),
        emitter="qasm2",
    )


def qsharp(synth=None, relative_phase: bool = True) -> Flow:
    """Build the RevKit-as-preprocessor flow behind Fig. 10.

    The flow compiles a permutation specification into the cancelled
    Clifford+T circuit that
    :func:`repro.frameworks.qsharp.permutation_oracle_operation` then
    emits as Q# source.

    Args:
        synth: synthesis method name or callable (default ``tbs``,
            the paper's choice for the running example).
        relative_phase: use relative-phase Toffolis in the mapping.

    Returns:
        A :class:`Flow` over an initial state carrying the
        permutation in ``function``.
    """
    return Flow(
        name="qsharp",
        description="Sec. VIII Fig. 10: synthesize; revsimp; rptm; cancel",
        passes=(
            SynthesisPass(synth if synth is not None else "tbs"),
            SimplifyPass(),
            MapToCliffordTPass(relative_phase=relative_phase),
            CancelPass(),
        ),
        emitter="qsharp",
    )


def device(
    coupling: Optional[CouplingMap] = None,
    optimize: bool = True,
    initial_layout: Optional[Tuple[int, ...]] = None,
) -> Flow:
    """Build the device-targeting flow of Sec. VII.

    Args:
        coupling: device topology to route onto; ``None`` compiles
            for an all-to-all device (no routing pass).
        optimize: include the T-par + cancellation stage.
        initial_layout: optional logical-to-physical seed layout.

    Returns:
        A :class:`Flow` over an initial state carrying the circuit in
        ``quantum``.
    """
    passes: Tuple[Pass, ...] = (
        CancelPass(),
        MapToCliffordTPass(relative_phase=True, only_if_needed=True),
    )
    if optimize:
        passes = passes + (TparPass(pre_cancel=False, post_cancel=True),)
    if coupling is not None:
        passes = passes + (RoutePass(coupling, initial_layout=initial_layout),)
    return Flow(
        name="device",
        description="Sec. VII: cancel; lower to Clifford+T; tpar; route",
        passes=passes,
        emitter="qasm2",
    )


#: The paper's Eq. (5) pipeline on the hwb4 instance.
EQ5 = eq5()

#: The Fig. 10 Q# oracle preprocessing pipeline (tbs backend).
QSHARP = qsharp()

#: The Sec. VII device flow onto the paper's IBM QE bowtie chip.
DEVICE = device(CouplingMap.ibm_qx2())
